"""Figure 3: % of buffer releases with complete receiver information,
without (RMC) and with (H-RMC) periodic updates."""

from benchmarks.conftest import column, table


def test_fig3(regen):
    report = regen("fig3")
    _, rmc_rows = table(report, "(a) without updates")
    _, hrmc_rows = table(report, "(b) with updates")

    # columns: buffer, LAN, MAN, WAN
    for env_idx, env in ((1, "LAN"), (2, "MAN"), (3, "WAN")):
        rmc_vals = column(rmc_rows, env_idx)
        hrmc_vals = column(hrmc_rows, env_idx)
        # updates lift completeness everywhere
        for r, h in zip(rmc_vals, hrmc_vals):
            assert h >= r, f"{env}: updates must not lower completeness"
        assert min(hrmc_vals) > 80.0, f"{env}: H-RMC should be near 100%"

    # RMC in the low-loss environment is information-starved (the whole
    # point of Figure 3a)
    lan_rmc = column(rmc_rows, 1)
    assert max(lan_rmc) < 60.0
    # with loss, NAKs inform the RMC sender more often than at low loss
    wan_rmc = column(rmc_rows, 3)
    assert max(wan_rmc) > max(lan_rmc)
