"""Performance snapshot for the protocol-health observatory (PR 8).

Runs the pinned 100 Mbps LAN transfer three ways -- bare, observed
with the health ledger OFF, and observed with it ON -- and writes
``BENCH_PR8.json`` at the repo root with all three events/sec figures
and the health payload.

The acceptance bar is the *marginal* cost of the health layer: the
health-on run vs the otherwise-identical health-off run (same scrape
loop, same span collector).  The ledger hooks are None-guarded
attribute reads on the hot path, so turning them on must be nearly
free.  The bare figure is recorded for context (the observability
base tax is PR 2/PR 7 territory, gated elsewhere).

Gates:

* health-on keeps >= 0.90 of health-off events/s;
* the pinned lossless LAN reports a clean ledger (no NAKs, no
  retransmissions, nothing unresolved) without being vacuous
  (feedback still reached the sender).

Byte-identity of health-on vs unobserved runs is proven separately by
``tests/obs/test_zero_perturbation.py``.
"""

from __future__ import annotations

import json
import os
import time

from repro.harness.runner import run_transfer
from repro.obs import Observability
from repro.stats.bench import measure_events_per_s, write_bench_snapshot
from repro.workloads.scenarios import build_lan

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_PR8.json")

# pinned scenario, identical to test_perf_snapshot / PINNED_SCENARIO
SEED = 7
N_RECEIVERS = 2
BANDWIDTH = 100e6
NBYTES = 2_000_000
SNDBUF = 512 * 1024


def _observed_run(health: bool):
    """Best-of-2 observed pinned run; returns (events/s, wall, result,
    obs) of the faster repetition (wall noise only ever slows one)."""
    best = None
    for _ in range(2):
        sc = build_lan(N_RECEIVERS, BANDWIDTH, seed=SEED)
        obs = Observability(profile=False, health=health)
        t0 = time.perf_counter()
        res = run_transfer(sc, nbytes=NBYTES, sndbuf=SNDBUF, obs=obs)
        wall_s = time.perf_counter() - t0
        assert res.ok
        eps = res.sim_events / wall_s
        if best is None or eps > best[0]:
            best = (eps, wall_s, res, obs)
    return best


def test_perf_snapshot_health():
    bare = measure_events_per_s(repeats=2)
    off_eps, _, off_res, _ = _observed_run(health=False)
    on_eps, wall_s, res, obs = _observed_run(health=True)

    # identical simulated worlds before comparing their wall clocks
    assert res.sim_events == off_res.sim_events
    assert res.duration_us == off_res.duration_us

    ratio = on_eps / off_eps
    payload = obs.health.payload()
    snapshot = {
        "scenario": {
            "kind": "lan", "receivers": N_RECEIVERS, "seed": SEED,
            "bandwidth_bps": BANDWIDTH, "nbytes": NBYTES,
            "sndbuf": SNDBUF,
        },
        "sim_events": res.sim_events,
        "wall_s": round(wall_s, 3),
        "bare": bare,
        "observed_health_off_events_per_s": round(off_eps, 1),
        "health_on_over_health_off": round(ratio, 3),
        "health": payload,
    }
    doc = write_bench_snapshot(BENCH_PATH, "health-observatory",
                               snapshot, events_per_s=on_eps)
    print()
    print(json.dumps(doc, indent=2, sort_keys=True))

    assert ratio >= 0.90, snapshot
    # the pinned LAN is lossless: the ledger must be clean
    assert payload["suppression"]["naks_sent"] == 0
    assert payload["repair"]["retrans_pkts"] == 0
    assert payload["lag"]["unresolved"] == 0
    # ...but not vacuous: feedback still flowed to the sender
    assert payload["implosion"]["feedback_at_sender"] > 0
    assert payload["group_size"] == N_RECEIVERS
