"""Figure 11: feedback activity (rate requests and NAKs) for the
10 Mbps disk-to-disk tests."""

from benchmarks.conftest import column, table


def test_fig11(regen):
    report = regen("fig11")

    for panel in ("(a) rate requests, small file",
                  "(c) rate requests, large file"):
        _, rows = table(report, panel)
        for rcv_idx in (1, 2, 3):
            reqs = column(rows, rcv_idx)
            # rate requests shrink as buffers grow (64K vs 1024K)
            assert reqs[0] >= reqs[-1], panel
        # somebody actually sent rate requests at the smallest buffer
        assert sum(rows[0][1:]) > 0, panel

    for panel in ("(b) NAKs, small file", "(d) NAKs, large file"):
        _, rows = table(report, panel)
        total_naks = sum(sum(r[1:]) for r in rows)
        data_pkts_lower_bound = 1400  # ~2 MB of MSS packets
        # "data loss was minimal; consequently very few NAKs"
        assert total_naks < data_pkts_lower_bound * 0.05, panel
