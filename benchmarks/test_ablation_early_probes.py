"""Ablation: early probes (paper future work 1) vs the stop-and-wait
behaviour at small buffers on 100 Mbps."""

from benchmarks.conftest import table


def test_ablation_early_probes(regen):
    report = regen("ablation-early-probes")
    _, rows = table(report, "early-probe ablation")
    off = {r[1]: r[2] for r in rows if r[0] == "off"}
    on = {r[1]: r[2] for r in rows if r[0] == "on"}
    # the stop-and-wait regime (smallest buffer) benefits the most
    assert on["64K"] > off["64K"]
    # and nowhere does early probing hurt materially
    for buf in off:
        assert on[buf] > 0.85 * off[buf], (buf, off, on)
