"""Figure 16: simulated 100 Mbps study -- throughput and rate-reduce
requests, 10 receivers, Tests 1-3."""

from benchmarks.conftest import column, table


def test_fig16(regen):
    report = regen("fig16")
    _, tput = table(report, "(a) throughput")
    last = tput[-1]
    t1, t2, t3 = last[1], last[2], last[3]
    assert t1 > t2 > t3, "Test 1 > Test 2 > Test 3 at 100 Mbps"
    # buffer size still helps
    for col in (1, 2, 3):
        series = column(tput, col)
        assert series[-1] >= series[0]

    _, rr = table(report, "(b) rate reduce requests")
    assert sum(sum(r[1:]) for r in rr) >= 0  # table regenerates
