"""Figure 10: H-RMC throughput on the 10 Mbps network (experimental
scenario): memory-to-memory and disk-to-disk, small and large files,
1-3 receivers, kernel buffers 64K-1024K."""

from benchmarks.conftest import column, table


def test_fig10(regen):
    report = regen("fig10")
    for panel in ("(a) memory to memory, small file",
                  "(b) memory to memory, large file",
                  "(c) disk to disk, small file",
                  "(d) disk to disk, large file"):
        _, rows = table(report, panel)
        for rcv_idx in (1, 2, 3):
            tputs = column(rows, rcv_idx)
            # buffer size helps: the smallest buffer is the slowest
            assert tputs[0] <= min(tputs[2:]) + 0.5, panel
            # saturation: 512K and 1024K within 15% of each other
            assert abs(tputs[-1] - tputs[-2]) <= 0.15 * max(tputs[-2:]), \
                panel
            # the saturated value sits in the high-single-digit Mbps
            # band the paper reports (~8.5 Mbps)
            assert 6.0 <= tputs[-1] <= 10.0, panel

    # receiver count barely matters at large buffers (paper obs.)
    _, rows = table(report, "(a) memory to memory")
    last = rows[-1]
    assert max(last[1:]) - min(last[1:]) < 1.5
