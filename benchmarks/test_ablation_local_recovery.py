"""Ablation: local recovery (paper future work 3)."""

from benchmarks.conftest import table


def test_ablation_local_recovery(regen):
    report = regen("ablation-local-recovery")
    _, rows = table(report, "local recovery")
    by = {r[0]: r for r in rows}
    off, on = by["off"], by["on"]
    # peers actually repaired losses
    assert on[3] > 0 and on[4] > 0
    # offloading the sender: fewer NAKs and retransmissions arrive there
    assert on[1] < off[1]
    assert on[2] <= off[2]
