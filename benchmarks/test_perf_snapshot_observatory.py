"""Performance snapshot for the hot-path observatory (PR 7).

Runs the pinned 100 Mbps LAN transfer twice -- bare, then under the
full performance observatory (event-class attribution + deterministic
stack sampling) -- and writes ``BENCH_PR7.json`` at the repo root with
both events/sec figures, the tax-table payload and the overhead ratio.

The snapshot's top-level ``events_per_s`` is the *profiled* run's: it
is what the CI gate compares against a fresh ``hrmc perf profile lan
--bench-out`` snapshot, so both sides of the comparison carry the same
instrument overhead.

Gates:

* the taxonomy places >= 95 % of executed callbacks (the tentpole's
  coverage bar);
* sampling really happened (collapsed stacks exist, rooted at
  ``engine;``);
* the observatory costs less than 4x bare (loose: the sampler traces
  every 16th callback with sys.setprofile, which is expensive by
  design but bounded).
"""

from __future__ import annotations

import json
import os
import time

from repro.harness.runner import run_transfer
from repro.obs import Observability
from repro.obs.perf import PerfObservatory
from repro.stats.bench import measure_events_per_s, write_bench_snapshot
from repro.workloads.scenarios import build_lan

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_PR7.json")

# pinned scenario, identical to test_perf_snapshot / PINNED_SCENARIO
SEED = 7
N_RECEIVERS = 2
BANDWIDTH = 100e6
NBYTES = 2_000_000
SNDBUF = 512 * 1024
SAMPLE_EVERY = 16


def test_perf_snapshot_observatory():
    bare = measure_events_per_s(repeats=2)

    sc = build_lan(N_RECEIVERS, BANDWIDTH, seed=SEED)
    perf = PerfObservatory(sample_every=SAMPLE_EVERY)
    obs = Observability(perf=perf)
    t0 = time.perf_counter()
    res = run_transfer(sc, nbytes=NBYTES, sndbuf=SNDBUF, obs=obs)
    wall_s = time.perf_counter() - t0
    assert res.ok

    profiled_eps = res.sim_events / wall_s
    ratio = bare["events_per_s"] / profiled_eps
    snapshot = {
        "scenario": {
            "kind": "lan", "receivers": N_RECEIVERS, "seed": SEED,
            "bandwidth_bps": BANDWIDTH, "nbytes": NBYTES,
            "sndbuf": SNDBUF, "sample_every": SAMPLE_EVERY,
        },
        "sim_events": res.sim_events,
        "wall_s": round(wall_s, 3),
        "bare": bare,
        "overhead_bare_over_profiled": round(ratio, 3),
        "perf": perf.bench_payload(),
    }
    doc = write_bench_snapshot(BENCH_PATH, "perf-observatory", snapshot,
                               events_per_s=profiled_eps)
    print()
    print(json.dumps(doc, indent=2, sort_keys=True))

    assert perf.profiler.events == res.sim_events
    assert perf.coverage() >= 0.95, snapshot["perf"]
    lines = perf.collapsed_lines()
    assert lines and all(line.startswith("engine;") for line in lines)
    # the instruments cost real time, but boundedly so
    assert ratio < 4.0, snapshot
