"""Figure 14: characteristic groups and test-case definitions."""

from benchmarks.conftest import table


def test_fig14(regen):
    report = regen("fig14")
    _, groups = table(report, "(a) characteristic groups")
    assert [tuple(g) for g in groups] == [
        ("A", "2 ms", "0.005%"),
        ("B", "20 ms", "0.5%"),
        ("C", "100 ms", "2%"),
    ]
    _, cases = table(report, "(b) test cases")
    assert len(cases) == 5
