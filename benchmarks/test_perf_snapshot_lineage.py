"""Performance snapshot for causal lineage tracing (PR 3).

Runs the same pinned 100 Mbps LAN transfer as ``test_perf_snapshot``
twice -- observability with lineage off, then on -- and writes
``BENCH_PR3.json`` at the repo root with both engine events/sec figures
and their ratio.  The acceptance bar: lineage-enabled runs stay within
25 % of lineage-off throughput (ratio >= 0.75).  Each configuration is
measured best-of-2 to keep one noisy CI scheduling blip from failing
the gate.
"""

from __future__ import annotations

import json
import os
import time

from repro.harness.runner import run_transfer
from repro.obs import Observability
from repro.stats.bench import write_bench_snapshot
from repro.workloads.scenarios import build_lan

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_PR3.json")

# pinned scenario, identical to test_perf_snapshot
SEED = 7
N_RECEIVERS = 2
BANDWIDTH = 100e6
NBYTES = 2_000_000
SNDBUF = 512 * 1024
ROUNDS = 2


def _measure(lineage: bool) -> dict:
    """Best-of-ROUNDS events/sec for one configuration."""
    best = None
    for _ in range(ROUNDS):
        sc = build_lan(N_RECEIVERS, BANDWIDTH, seed=SEED)
        obs = Observability(profile=False, lineage=lineage)
        t0 = time.perf_counter()
        res = run_transfer(sc, nbytes=NBYTES, sndbuf=SNDBUF, obs=obs)
        wall_s = time.perf_counter() - t0
        assert res.ok
        sample = {
            "wall_s": round(wall_s, 3),
            "sim_events": res.sim_events,
            "events_per_s": round(res.sim_events / wall_s),
            "lineage_nodes": len(obs.lineage.nodes) if lineage else 0,
        }
        if best is None or sample["events_per_s"] > best["events_per_s"]:
            best = sample
    return best


def test_perf_snapshot_lineage():
    off = _measure(lineage=False)
    on = _measure(lineage=True)
    ratio = on["events_per_s"] / off["events_per_s"]
    snapshot = {
        "scenario": {
            "kind": "lan", "receivers": N_RECEIVERS, "seed": SEED,
            "bandwidth_bps": BANDWIDTH, "nbytes": NBYTES,
            "sndbuf": SNDBUF, "rounds": ROUNDS,
        },
        "lineage_off": off,
        "lineage_on": on,
        "events_per_s_ratio_on_over_off": round(ratio, 3),
    }
    # the canonical trajectory metric is the lineage-off measurement
    # (closest to the pinned bare scenario)
    doc = write_bench_snapshot(BENCH_PATH, "lineage-overhead", snapshot,
                               events_per_s=off["events_per_s"])
    print()
    print(json.dumps(doc, indent=2, sort_keys=True))

    # the lineage DAG actually recorded the run
    assert on["lineage_nodes"] > 1_000, snapshot
    # acceptance: lineage-on within 25% of lineage-off events/sec
    assert ratio >= 0.75, snapshot
    # same protocol outcome regardless of tracing
    assert on["sim_events"] == off["sim_events"], snapshot
