"""Benchmark plumbing.

Each benchmark regenerates one paper table/figure via the experiment
harness, prints it, and asserts the *shape* claims (who wins, trend
directions, onsets).  ``pedantic(rounds=1)`` keeps pytest-benchmark
from re-running multi-minute simulations; the reported time is the
wall-clock cost of regenerating that figure.

Set ``REPRO_FULL_SCALE=1`` for paper-size (10/40 MB) transfers.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import run_experiment


@pytest.fixture
def regen(benchmark):
    """Run one experiment under the benchmark timer and print it."""

    def _run(exp_id: str):
        report = benchmark.pedantic(
            lambda: run_experiment(exp_id), rounds=1, iterations=1)
        print()
        print(report.render())
        return report

    return _run


def table(report, title_prefix: str):
    """Fetch one table (headers, rows) from a report by title prefix."""
    for title, headers, rows in report.tables:
        if title.startswith(title_prefix):
            return headers, rows
    raise KeyError(f"no table starting with {title_prefix!r} in "
                   f"{[t for t, _, _ in report.tables]}")


def column(rows, idx):
    return [r[idx] for r in rows]
