"""Ablation: periodic updates on/off (the Figure 3 mechanism, isolated
on an RMC-style ungated release)."""

from benchmarks.conftest import table


def test_ablation_updates(regen):
    report = regen("ablation-updates")
    _, rows = table(report, "updates ablation")
    by = {(r[0], r[1]): r for r in rows}
    for env in ("LAN", "WAN"):
        off = by[(env, "off")]
        on = by[(env, "on")]
        # updates flow only in the "on" arm
        assert on[3] > 0
        assert off[3] == 0
        # and must not lower release-time completeness
        assert on[2] >= off[2] - 1.0
    # most dramatic at low loss, where NAKs are scarce (Fig. 3a vs 3b):
    # updates at least double the completeness
    assert by[("LAN", "on")][2] >= 2.0 * max(by[("LAN", "off")][2], 0.5)
    # under WAN loss, NAKs already inform the sender fairly often
    assert by[("WAN", "off")][2] > by[("LAN", "off")][2]
