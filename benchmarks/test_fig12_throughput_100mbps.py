"""Figure 12: H-RMC throughput on the 100 Mbps network (memory tests)."""

from benchmarks.conftest import column, table


def test_fig12(regen):
    report = regen("fig12")
    saturated = {}
    for panel in ("(a) small file", "(b) large file"):
        _, rows = table(report, panel)
        for rcv_idx in (1, 2, 3):
            tputs = column(rows, rcv_idx)
            # strong buffer dependence: small buffers stop-and-wait
            assert tputs[-1] > 1.5 * tputs[0], panel
            # monotone up to saturation (allow small wiggle)
            assert tputs[0] < max(tputs), panel
        saturated[panel] = max(column(rows, 1))
    # "throughput is higher for larger transfers"
    assert saturated["(b) large file"] >= saturated["(a) small file"]
