"""Ablation: probe-before-release on/off -- the reliability guarantee."""

from benchmarks.conftest import table


def test_ablation_probes(regen):
    report = regen("ablation-probes")
    _, rows = table(report, "probes ablation")
    by = {r[0]: r for r in rows}

    # H-RMC never violates, at any hold time
    assert by["H-RMC (probes on)"][1] == 0
    assert by["H-RMC (probes on)"][3] == "yes"
    assert by["H-RMC, MINBUF=1"][1] == 0
    assert by["H-RMC, MINBUF=1"][3] == "yes"

    # RMC at the paper's MINBUF=10 is safe in practice ("rare and never
    # happened in the RMC experiments")
    assert by["RMC, MINBUF=10"][1] == 0

    # shrink the hold heuristic and the pure-NAK design drops data
    assert by["RMC, MINBUF=1"][1] > 0
    assert by["RMC, MINBUF=1"][2] > 0
    assert by["RMC, MINBUF=1"][3] == "NO"
