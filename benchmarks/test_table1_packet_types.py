"""Table 1: the packet-type inventory."""

from repro.core.types import PacketType

from benchmarks.conftest import table


def test_table1(regen):
    report = regen("table1")
    headers, rows = table(report, "Packet types")
    assert len(rows) == 11                      # nine RMC + two H-RMC
    names = {r[0] for r in rows}
    assert names == {t.name for t in PacketType}
    hrmc_only = {r[0] for r in rows if r[1] == "H-RMC only"}
    assert hrmc_only == {"UPDATE", "PROBE"}
