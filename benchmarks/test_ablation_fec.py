"""Ablation: forward error correction (paper future work 4)."""

from benchmarks.conftest import table


def test_ablation_fec(regen):
    report = regen("ablation-fec")
    _, rows = table(report, "FEC")
    by = {r[0]: r for r in rows}
    off, on = by["off"], by["on"]
    # parity flowed and repaired losses without a NAK round trip
    assert on[2] > 0 and on[3] > 0
    # so the sender saw substantially fewer NAKs
    assert on[1] < 0.8 * off[1]
    # recovery latency saved shows up as throughput not lost
    assert on[4] >= 0.9 * off[4]
