"""Section 5.2 scaling claim: with large buffers, throughput on the
100 Mbps network degrades only modestly out to ~100 receivers (the
paper reports ~66 Mbps, 'not a significant decrease')."""

from benchmarks.conftest import table


def test_scaling(regen):
    report = regen("scaling")
    _, rows = table(report, "throughput vs group size")
    by_n = {r[0]: r[1] for r in rows}
    ns = sorted(by_n)
    one, ten, many = by_n[ns[0]], by_n[ns[1]], by_n[ns[2]]
    # graceful degradation: the many-receiver run keeps a solid share
    assert many > 0.4 * ten
    assert ten > 0.5 * one
    # update load actually grew with the group
    updates = {r[0]: r[2] for r in rows}
    assert updates[ns[2]] > updates[ns[1]]
