"""Micro-benchmarks of the simulation substrate itself.

Unlike the figure benches (one shot per paper artifact), these run
multiple rounds and track the raw speed of the machinery: engine event
throughput, timer churn, and full-stack packets/second.  Useful for
catching performance regressions in the simulator.
"""

from repro.harness.runner import run_transfer
from repro.sim.engine import Simulator
from repro.sim.timer import Timer
from repro.workloads.scenarios import build_lan


def test_engine_event_throughput(benchmark):
    """Schedule-and-run cost of 20k chained events."""

    def run():
        sim = Simulator()

        def chain(n):
            if n:
                sim.call_after(1, chain, n - 1)

        sim.call_after(0, chain, 20_000)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 20_001


def test_timer_rearm_churn(benchmark):
    """mod_timer/del_timer churn (the protocol's hottest timer path)."""

    def run():
        sim = Simulator()
        t = Timer(sim, lambda: None)
        for i in range(10_000):
            t.mod_after(100)   # re-arm cancels the previous entry
        t.del_timer()
        sim.run()
        return t.fired_count

    fired = benchmark(run)
    assert fired == 0


def test_full_stack_packet_rate(benchmark):
    """End-to-end simulated-packet throughput of the whole stack
    (engine + network + kernel + H-RMC) for a 1 MB LAN transfer."""

    def run():
        sc = build_lan(1, 100e6, seed=99)
        res = run_transfer(sc, nbytes=1_000_000, sndbuf=512 * 1024)
        assert res.ok
        return res.sender_stats.data_pkts_sent

    pkts = benchmark(run)
    assert pkts >= 685  # ~1 MB of MSS segments
