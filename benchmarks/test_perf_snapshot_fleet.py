"""Performance snapshot for the experiment fleet (PR 4).

Runs the whole quick-scale experiment sweep three ways -- serial
in-process, cold through a 4-worker fleet, and again warm from the
content-addressed cache -- and writes ``BENCH_PR4.json`` at the repo
root with the three wall times, the parallel speedup and the cache
accounting.

Gates:

* every rendered report is byte-identical across the three executions
  (the fleet's core correctness claim);
* the warm re-run finishes in under 10 % of the cold parallel wall
  (and therefore "in seconds");
* the warm run serves >= 90 % of cells from the cache;
* on hosts with >= 4 CPUs, the 4-worker cold run is >= 2x faster than
  serial.  A process pool cannot beat serial on fewer cores, so the
  speedup floor is only asserted where the hardware can express it --
  the snapshot's environment block records the CPU count either way.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.fleet import Fleet
from repro.harness.experiments import EXPERIMENTS, run_experiments
from repro.stats.bench import measure_events_per_s, write_bench_snapshot

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_PR4.json")

WORKERS = 4
SCALE = "quick"


def _sweep(fleet: Fleet) -> tuple[dict[str, str], float]:
    exp_ids = list(EXPERIMENTS)
    t0 = time.perf_counter()
    reports = run_experiments(exp_ids, SCALE, fleet)
    wall = time.perf_counter() - t0
    return {k: r.render() for k, r in reports.items()}, wall


def test_perf_snapshot_fleet():
    with tempfile.TemporaryDirectory() as td:
        serial_fleet = Fleet(workers=1, cache_dir=None)
        serial, wall_serial = _sweep(serial_fleet)

        cold_fleet = Fleet(workers=WORKERS, cache_dir=td)
        cold, wall_cold = _sweep(cold_fleet)

        warm_fleet = Fleet(workers=WORKERS, cache_dir=td)
        warm, wall_warm = _sweep(warm_fleet)

        warm_store = dict(warm_fleet.stats.store)
        warm_hit_rate = warm_store.get("hits", 0) / \
            max(1, warm_fleet.stats.runs)

    speedup = wall_serial / wall_cold
    snapshot = {
        "scale": SCALE,
        "experiments": len(EXPERIMENTS),
        "unique_runs": serial_fleet.stats.runs,
        "workers": WORKERS,
        "wall_serial_s": round(wall_serial, 3),
        "wall_parallel_cold_s": round(wall_cold, 3),
        "wall_parallel_warm_s": round(wall_warm, 3),
        "speedup_parallel_over_serial": round(speedup, 2),
        "warm_over_cold_wall": round(wall_warm / wall_cold, 4),
        "warm_cache_hit_rate": round(warm_hit_rate, 4),
        "warm_store": warm_store,
        "reports_identical": serial == cold == warm,
    }
    # the sweep measures fleet mechanics, not engine throughput: the
    # canonical trajectory metric comes from one pinned-scenario run
    pinned = measure_events_per_s()
    snapshot["pinned_scenario_run"] = pinned
    doc = write_bench_snapshot(BENCH_PATH, "fleet-speedup", snapshot,
                               events_per_s=pinned["events_per_s"])
    print()
    print(json.dumps(doc, indent=2, sort_keys=True))

    # determinism: same bytes no matter how the sweep was executed
    assert serial == cold, "parallel aggregates diverge from serial"
    assert serial == warm, "warm-cache aggregates diverge from serial"
    # the warm sweep is a cache read, not a recomputation
    assert warm_hit_rate >= 0.9, snapshot
    assert wall_warm < 0.1 * wall_cold, snapshot
    # parallel speedup, where the host can physically provide it
    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= 2.0, snapshot
