"""Ablation: the MINBUF buffer-hold heuristic (paper section 2 sets it
to 10 RTTs)."""

from benchmarks.conftest import table


def test_ablation_minbuf(regen):
    report = regen("ablation-minbuf")
    _, rows = table(report, "MINBUF ablation")
    by = {r[0]: r for r in rows}
    # a tiny hold time forces probing for data still in flight
    assert by[1][2] >= by[10][2], "MINBUF=1 should probe at least as " \
                                  "much as MINBUF=10"
    # the paper's value sits on the flat part: 5 vs 10 vs 20 all deliver
    flat = [by[k][1] for k in (5, 10, 20)]
    assert max(flat) - min(flat) < 0.5 * max(flat)
    # reliability holds at every setting (H-RMC property)
    # (ok-ness is implied by the experiment completing with throughput)
    assert all(r[1] > 0 for r in rows)
