"""Figure 15: simulated 10 Mbps study -- throughput and rate-reduce
requests for Tests 1-5 with 10 receivers, plus the many-receiver run."""

from benchmarks.conftest import column, table


def test_fig15(regen):
    report = regen("fig15")
    _, tput = table(report, "(a) throughput")
    # use the largest buffer row; columns: buffer, Test1..Test5
    last = tput[-1]
    t1, t2, t3, t4, t5 = last[1], last[2], last[3], last[4], last[5]
    assert t1 > t2 > t3, "Test 1 > Test 2 > Test 3 ordering"
    # Tests 4 and 5 sit near the wide-area level, below the pure-MAN run
    assert t4 < t2 and t5 < t2
    assert t4 < (t2 + t3) / 2 + 0.5
    # throughput grows with buffer size in every test
    for col in range(1, 6):
        series = column(tput, col)
        assert series[-1] >= series[0]

    _, rr = table(report, "(b) rate reduce requests")
    # the lossy environments generate rate requests; the LAN-like barely
    lossy_total = sum(sum(r[2:]) for r in rr)
    lan_total = sum(r[1] for r in rr)
    assert lossy_total > lan_total

    _, many = table(report, "(c) throughput")
    many_last = many[-1]
    # modest decrease vs 10 receivers (not a collapse)
    assert many_last[1] > 0.4 * t1
