"""Performance snapshot: one fixed 100 Mbps scenario, measured.

Runs a pinned LAN transfer under the full observability stack and
writes ``BENCH_PR2.json`` at the repo root with the engine's events/sec,
wall time, peak RSS and delivered-bytes/sec, so perf regressions across
PRs show up as a diff of that file.  The asserted floors are
deliberately loose (an order of magnitude under observed numbers) --
they catch catastrophic slowdowns, not noise.
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time

from repro.harness.runner import run_transfer
from repro.obs import Observability
from repro.stats.bench import write_bench_snapshot
from repro.workloads.scenarios import build_lan

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_PR2.json")

# pinned scenario: 2 receivers on 100 Mbps, 2 MB memory-to-memory,
# 512K buffers -- comfortably past the stop-and-wait regime
SEED = 7
N_RECEIVERS = 2
BANDWIDTH = 100e6
NBYTES = 2_000_000
SNDBUF = 512 * 1024


def _peak_rss_kb() -> int:
    """ru_maxrss is KiB on Linux, bytes on macOS."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss // 1024 if sys.platform == "darwin" else rss


def test_perf_snapshot():
    sc = build_lan(N_RECEIVERS, BANDWIDTH, seed=SEED)
    obs = Observability(profile=True)
    t0 = time.perf_counter()
    res = run_transfer(sc, nbytes=NBYTES, sndbuf=SNDBUF, obs=obs)
    wall_s = time.perf_counter() - t0
    assert res.ok

    engine_eps = res.sim_events / wall_s
    delivered = NBYTES * N_RECEIVERS
    snapshot = {
        "scenario": {
            "kind": "lan", "receivers": N_RECEIVERS, "seed": SEED,
            "bandwidth_bps": BANDWIDTH, "nbytes": NBYTES,
            "sndbuf": SNDBUF,
        },
        "sim_events": res.sim_events,
        "wall_s": round(wall_s, 3),
        "events_per_s_in_callbacks":
            round(obs.profiler.events_per_sec()),
        "delivered_bytes_per_wall_s": round(delivered / wall_s),
        "sim_throughput_mbps": round(res.throughput_mbps, 2),
        "sim_duration_s": round(res.duration_us / 1e6, 3),
        "peak_rss_kb": _peak_rss_kb(),
    }
    doc = write_bench_snapshot(BENCH_PATH, "engine-snapshot", snapshot,
                               events_per_s=engine_eps)
    print()
    print(json.dumps(doc, indent=2, sort_keys=True))

    # loose floors: an order of magnitude below typical CI numbers
    assert engine_eps > 5_000, snapshot
    assert delivered / wall_s > 500_000, snapshot
    assert snapshot["peak_rss_kb"] < 2_000_000, snapshot
    # the observed run stays faithful to the protocol result
    assert res.throughput_mbps > 10, snapshot
