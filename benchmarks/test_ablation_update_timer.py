"""Ablation: dynamic vs fixed update period (paper section 3)."""

from benchmarks.conftest import table


def test_ablation_update_timer(regen):
    report = regen("ablation-update-timer")
    _, rows = table(report, "update-timer ablation")
    by = {(r[0], r[1]): r for r in rows}
    # in the low-loss environment the dynamic timer shortens the period,
    # trading updates for probes
    lan_fixed, lan_dyn = by[("LAN", "fixed")], by[("LAN", "dynamic")]
    assert lan_dyn[2] <= lan_fixed[2]          # fewer probes
    assert lan_dyn[3] >= lan_fixed[3]          # more updates
    # nothing breaks in the lossy environment
    assert by[("WAN", "dynamic")][4] > 0
