"""Figure 13: NAKs on the 100 Mbps memory tests appear only with
kernel buffers beyond 1024K -- card-level drops during window-length
line-rate runs ("the network card is not being able to accept data at
these rates")."""

from benchmarks.conftest import table


def test_fig13(regen):
    report = regen("fig13")
    for panel in ("(a) small file", "(b) large file"):
        _, rows = table(report, panel)
        by_buffer = {r[0]: sum(r[1:]) for r in rows}
        # the paper: no NAKs up to and including 1024K
        for buf in ("64K", "128K", "256K", "512K", "1024K"):
            assert by_buffer[buf] == 0, f"{panel}: NAKs at {buf}"
    # ...and a sharp onset beyond.  The onset needs transfers longer
    # than the buffer (sustained line-rate runs), so assert it on the
    # large-file panel; at quick scale the small file fits inside the
    # big buffers entirely.
    _, rows = table(report, "(b) large file")
    by_buffer = {r[0]: sum(r[1:]) for r in rows}
    assert by_buffer["2048K"] + by_buffer["4096K"] > 0, \
        "expected NAK onset beyond 1024K"
