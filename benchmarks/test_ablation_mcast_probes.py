"""Ablation: multicast probes above a receiver-count threshold (paper
future work 2)."""

from benchmarks.conftest import table


def test_ablation_mcast_probes(regen):
    report = regen("ablation-mcast-probes")
    _, rows = table(report, "probe fan-out")
    by = {r[0]: r for r in rows}
    unicast = [v for k, v in by.items() if k == "unicast"][0]
    mcast = [v for k, v in by.items() if k != "unicast"][0]
    # one multicast probe replaces a per-receiver storm
    assert mcast[1] < unicast[1]
    # without hurting throughput materially
    assert mcast[2] > 0.7 * unicast[2]
