"""Section 6 comparison: H-RMC vs RMC vs ACK-based vs polling-based vs
TCP-like unicast on identical hardware."""

from benchmarks.conftest import table


def test_baselines(regen):
    report = regen("baselines")
    _, rows = table(report, "protocol comparison")
    by_proto = {r[0]: r for r in rows}
    tput = {p: r[1] for p, r in by_proto.items()}
    feedback = {p: r[2] for p, r in by_proto.items()}

    # every protocol delivered everything
    assert all(r[4] == "yes" for r in rows)
    # "throughput comparable to TCP and the purely NAK-based RMC":
    # H-RMC within 10% of RMC, and far above per-group TCP service
    assert tput["hrmc"] > 0.9 * tput["rmc"]
    assert tput["hrmc"] > 2.0 * tput["tcp"]
    # feedback: H-RMC an order of magnitude below ACK-based
    assert feedback["hrmc"] * 5 < feedback["ack"]
    # and H-RMC throughput holds up against ACK-based
    assert tput["hrmc"] > 0.9 * tput["ack"]
