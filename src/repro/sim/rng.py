"""Deterministic per-component random streams.

Every stochastic component (each router's loss process, each NIC, the
disk jitter model, ...) draws from its own ``random.Random`` stream
derived from a master seed and a stable component name.  Adding or
removing one component therefore never perturbs another component's
draws, which keeps A/B comparisons (e.g. updates on vs off) paired.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["substream"]


def substream(master_seed: int, name: str) -> random.Random:
    """Return an independent ``random.Random`` for component ``name``.

    The stream seed is derived by hashing ``(master_seed, name)`` with
    BLAKE2b, so it is stable across runs and Python versions (unlike
    ``hash()``).
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode(), digest_size=8
    ).digest()
    return random.Random(int.from_bytes(digest, "big"))
