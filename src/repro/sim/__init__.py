"""Discrete-event simulation engine (CSIM substitute).

The paper's simulator is built on CSIM, a C-based process-oriented
simulation package.  This package provides the equivalent facilities in
Python:

* :class:`~repro.sim.engine.Simulator` -- event heap with an integer
  microsecond clock.
* :class:`~repro.sim.timer.Timer` -- Linux ``timer_list``-style restartable
  timers (``mod_timer`` / ``del_timer``) plus jiffy conversion helpers.
* :class:`~repro.sim.process.Process` / :class:`~repro.sim.process.SimEvent`
  -- generator-based cooperative processes used for application models
  (CSIM "processes").
* :mod:`repro.sim.rng` -- deterministic per-component random streams.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.process import Process, SimEvent, Delay, ProcessKilled
from repro.sim.resource import Resource, ResourceStats
from repro.sim.timer import Timer, JIFFY_US, jiffies_to_us, us_to_jiffies
from repro.sim.rng import substream

__all__ = [
    "Simulator",
    "SimulationError",
    "Process",
    "SimEvent",
    "Delay",
    "ProcessKilled",
    "Resource",
    "ResourceStats",
    "Timer",
    "JIFFY_US",
    "jiffies_to_us",
    "us_to_jiffies",
    "substream",
]
