"""Generator-based cooperative processes (CSIM "processes").

The paper's simulator uses CSIM processes for hosts, network interfaces
and routers.  Protocol code in this repo is event/timer driven (like the
kernel original), but *application* models -- a sender reading a file
from disk, a receiver writing one -- are naturally sequential, so they
are written as generator processes:

.. code-block:: python

    def receiver_app(sock, nbytes):
        got = 0
        while got < nbytes:
            data = yield from sock.recv(65536)
            got += len(data)
            yield from disk.write(len(data))

A process generator may ``yield``:

* :class:`Delay` -- sleep for N microseconds,
* :class:`SimEvent` -- block until the event fires (``event.fire(value)``
  resumes all waiters; the yielded expression evaluates to the value),
* another generator via ``yield from`` -- ordinary composition.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Simulator

__all__ = ["Delay", "SimEvent", "Process", "ProcessKilled"]


class Delay:
    """Yield inside a process to sleep for ``us`` microseconds."""

    __slots__ = ("us",)

    def __init__(self, us: int):
        if us < 0:
            raise ValueError(f"negative delay {us}")
        self.us = int(us)


class ProcessKilled(Exception):
    """Thrown into a process generator by :meth:`Process.kill`."""


class SimEvent:
    """A one-to-many wake-up point.

    ``fire(value)`` resumes every waiting process at the current time;
    each waiter's ``yield`` evaluates to ``value``.  Events are reusable:
    waiters that arrive after a fire block until the next fire.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self._sim = sim
        self._waiters: list[Process] = []
        self.name = name
        self.fire_count = 0

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim.call_after(0, proc._resume, value)
        return len(waiters)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class Process:
    """Drives a generator as a cooperative simulated process."""

    def __init__(self, sim: Simulator, gen: Generator, name: str = ""):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_event = SimEvent(sim, name=f"{name}.done")
        self._waiting_on: Optional[SimEvent] = None
        sim.call_after(0, self._resume, None)

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if not self.alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        try:
            self._gen.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        self._finish(None, None)

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        if not self.alive:
            return
        self.alive = False
        self.result = result
        self.error = error
        self.done_event.fire(result)

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        lineage = getattr(self._sim, "lineage", None)
        if lineage is not None and self.name:
            lineage.emit("wake", "", self.name)
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except ProcessKilled:
            self._finish(None, None)
            return
        except Exception as exc:  # propagate at join time, don't kill the sim
            self._finish(None, exc)
            return
        if isinstance(yielded, Delay):
            self._sim.call_after(yielded.us, self._resume, None)
        elif isinstance(yielded, SimEvent):
            self._waiting_on = yielded
            yielded._add_waiter(self)
        else:
            self._finish(
                None,
                TypeError(
                    f"process {self.name!r} yielded {type(yielded).__name__}; "
                    "expected Delay or SimEvent"
                ),
            )

    def join(self) -> Generator:
        """``yield from proc.join()`` inside another process."""
        if self.alive:
            yield self.done_event
        if self.error is not None:
            raise self.error
        return self.result
