"""CSIM-style facilities: counted resources with FIFO queueing.

The paper's simulator is process-oriented CSIM, whose central
abstraction is the *facility* -- a server (or k servers) that processes
reserve/release with queueing statistics.  :class:`Resource` provides
that for generator processes:

.. code-block:: python

    bus = Resource(sim, capacity=1, name="pci-bus")

    def dma(nbytes):
        yield from bus.acquire()
        try:
            yield Delay(cost(nbytes))
        finally:
            bus.release()

Statistics (utilization, mean queue length, waits) match what CSIM
reports for facilities, and are exercised by the unit tests.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro.sim.engine import Simulator
from repro.sim.process import SimEvent

__all__ = ["Resource", "ResourceStats"]


class ResourceStats:
    """Time-weighted occupancy/queue statistics."""

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._last_t = sim.now
        self._busy_area = 0.0      # integral of busy servers over time
        self._queue_area = 0.0     # integral of queue length over time
        self.acquisitions = 0
        self.total_wait_us = 0
        self.max_queue = 0

    def _advance(self, busy: int, queued: int) -> None:
        now = self._sim.now
        dt = now - self._last_t
        if dt > 0:
            self._busy_area += busy * dt
            self._queue_area += queued * dt
            self._last_t = now
        self.max_queue = max(self.max_queue, queued)

    def utilization(self, capacity: int) -> float:
        span = max(1, self._sim.now)
        return self._busy_area / (capacity * span)

    def mean_queue_length(self) -> float:
        span = max(1, self._sim.now)
        return self._queue_area / span

    def mean_wait_us(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait_us / self.acquisitions


class Resource:
    """A counted resource with FIFO hand-off.

    ``yield from resource.acquire()`` suspends the calling process until
    a unit is free; :meth:`release` hands the unit to the next waiter.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._in_use = 0
        self._waiters: deque[SimEvent] = deque()
        self.stats = ResourceStats(sim)

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._in_use < self.capacity and not self._waiters:
            self.stats._advance(self._in_use, len(self._waiters))
            self._in_use += 1
            self.stats.acquisitions += 1
            return True
        return False

    def acquire(self) -> Generator:
        """``yield from`` inside a process to acquire one unit (FIFO)."""
        t0 = self.sim.now
        if self.try_acquire():
            return
        gate = SimEvent(self.sim, name=f"{self.name}.gate")
        self.stats._advance(self._in_use, len(self._waiters))
        self._waiters.append(gate)
        yield gate
        # unit was transferred to us by release(); account the wait
        self.stats.acquisitions += 1
        self.stats.total_wait_us += self.sim.now - t0

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        self.stats._advance(self._in_use, len(self._waiters))
        if self._waiters:
            gate = self._waiters.popleft()
            gate.fire()            # hand the unit directly to the waiter
        else:
            self._in_use -= 1
