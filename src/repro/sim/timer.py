"""Linux ``timer_list``-style timers and jiffy arithmetic.

The kernel protocol code in the paper drives everything off four timers
(transmit, retransmit, update, keepalive) managed with ``mod_timer`` /
``del_timer``.  :class:`Timer` reproduces that interface on top of the
event engine so the protocol modules read like their kernel
counterparts.

A jiffy is 10 ms (Linux 2.1 on x86, HZ=100), the granularity at which
the H-RMC transmitter runs.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator

__all__ = ["Timer", "JIFFY_US", "jiffies_to_us", "us_to_jiffies"]

JIFFY_US = 10_000  # 10 ms


def jiffies_to_us(jiffies: int) -> int:
    return int(jiffies) * JIFFY_US


def us_to_jiffies(us: int) -> int:
    return int(us) // JIFFY_US


class Timer:
    """A restartable one-shot timer.

    Mirrors the kernel API the paper's code uses:

    * :meth:`mod_timer` -- (re)arm to fire at an absolute time.
    * :meth:`mod_after` -- (re)arm relative to now.
    * :meth:`del_timer` -- disarm.
    * :attr:`pending` -- armed and not yet fired.

    The callback receives no arguments (bind state via the constructor),
    matching ``timer_list.function(data)`` usage where ``data`` is the
    socket.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None],
                 name: str = "", event_class: str = ""):
        self._sim = sim
        self._callback = callback
        self._entry = None
        self.name = name
        # performance-observatory taxonomy label (see
        # repro.obs.perf.taxonomy); a plain string so the sim layer
        # never imports obs.  Empty means "infer from the timer name".
        self.event_class = event_class
        self.fired_count = 0

    @property
    def pending(self) -> bool:
        return self._entry is not None and not self._entry.cancelled

    @property
    def expires(self) -> int | None:
        """Absolute expiry time in us, or None if not armed."""
        if self.pending:
            return self._entry.time
        return None

    def mod_timer(self, expires: int) -> None:
        """Arm (or re-arm) the timer to fire at absolute time ``expires``."""
        self.del_timer()
        self._entry = self._sim.call_at(max(expires, self._sim.now), self._fire)

    def mod_after(self, delay: int) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` us from now."""
        self.mod_timer(self._sim.now + max(0, int(delay)))

    def del_timer(self) -> bool:
        """Disarm.  Returns True if the timer was pending."""
        if self.pending:
            self._sim.cancel(self._entry)
            self._entry = None
            return True
        self._entry = None
        return False

    def _fire(self) -> None:
        self._entry = None
        self.fired_count += 1
        lineage = getattr(self._sim, "lineage", None)
        if lineage is not None and self.name:
            # `_sim` is either the Simulator or a per-host clock view
            # that forwards `lineage`/`host_addr`; either way the node
            # is parented to whatever armed the timer (the entry's
            # captured cause, restored by the engine before this call).
            lineage.emit("timeout", getattr(self._sim, "host_addr", ""),
                         self.name)
        self._callback()
