"""Core discrete-event engine.

Time is kept as an integer number of microseconds.  Integer time makes
simulations exactly reproducible (no floating-point drift in event
ordering) and is fine-grained enough for the paper's constants (the
smallest delay in the paper is the 10 us per-packet protocol cost; the
coarsest is the 2 s keepalive cap).

Events scheduled for the same instant fire in FIFO order of scheduling,
which gives deterministic traces for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Simulator", "SimulationError", "US_PER_MS", "US_PER_SEC"]

US_PER_MS = 1_000
US_PER_SEC = 1_000_000


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. scheduling into the past)."""


class _Entry:
    """Heap entry.  ``cancelled`` supports O(1) lazy cancellation.

    ``cause`` is the causal-lineage node id of the event that scheduled
    this one (0 when lineage is off or the scheduler had no lineage);
    see :mod:`repro.obs.causal`.
    """

    __slots__ = ("time", "order", "callback", "args", "cancelled", "cause")

    def __init__(self, time: int, order: int, callback: Callable, args: tuple):
        self.time = time
        self.order = order
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.cause = 0

    def __lt__(self, other: "_Entry") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.order < other.order


class Simulator:
    """Event-driven simulator with an integer microsecond clock.

    Usage::

        sim = Simulator()
        sim.call_at(100, print, "hello")
        sim.call_after(50, print, "first")
        sim.run()
    """

    #: heap compaction threshold: rebuild once more than half the heap
    #: is cancelled entries (and it is big enough to matter)
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: list[_Entry] = []
        self._order: int = 0
        self._live: int = 0  # non-cancelled entries in the heap
        self._dead: int = 0  # cancelled entries still in the heap
        self._running = False
        self.events_processed: int = 0
        self.compactions: int = 0
        # optional instrumentation hook (see repro.obs.profiler): when
        # set, every executed callback is routed through
        # ``profiler.execute(callback, args, sim_dt_us)`` where
        # ``sim_dt_us`` is the virtual-clock advance that firing caused.
        # Cancelled entries never reach the hook and compaction only
        # discards entries that will never fire, so attribution is exact.
        self.profiler = None
        # optional causal-lineage recorder (see repro.obs.causal): when
        # set, every scheduled entry captures the lineage of the event
        # scheduling it, and the recorder's ``current`` is restored to
        # that captured cause while the entry executes.  Pure
        # bookkeeping -- no events, no RNG, no reordering.
        self.lineage = None
        # per-simulator packet-id allocator: ids restart at 1 for every
        # run, so results never depend on what else the hosting process
        # has simulated before (fleet workers run many jobs each)
        self._next_packet_id = 0

    def new_packet_id(self) -> int:
        """Allocate the next :class:`~repro.net.packet.NetPacket` id."""
        self._next_packet_id += 1
        return self._next_packet_id

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    def now_seconds(self) -> float:
        return self._now / US_PER_SEC

    # -- scheduling ---------------------------------------------------

    def call_at(self, when: int, callback: Callable, *args: Any) -> _Entry:
        """Schedule ``callback(*args)`` at absolute time ``when`` (us)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} (now is {self._now})"
            )
        entry = _Entry(int(when), self._order, callback, args)
        lineage = self.lineage
        if lineage is not None:
            entry.cause = lineage.current
        self._order += 1
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def call_after(self, delay: int, callback: Callable, *args: Any) -> _Entry:
        """Schedule ``callback(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + int(delay), callback, *args)

    def cancel(self, entry: _Entry) -> None:
        """Cancel a previously scheduled entry (idempotent).

        Cancellation is lazy (the entry stays in the heap until popped),
        but the heap is compacted once cancelled entries outnumber live
        ones: restartable timers re-armed every jiffy would otherwise
        accumulate dead entries for the whole run.
        """
        if not entry.cancelled:
            entry.cancelled = True
            self._live -= 1
            self._dead += 1
            if self._dead > self.COMPACT_MIN and self._dead > self._live:
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._dead = 0
        self.compactions += 1

    # -- execution ----------------------------------------------------

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run until the event list drains, ``until`` (us) is reached, or
        ``max_events`` callbacks have fired.  Returns the final time.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier.
        """
        self._running = True
        budget = max_events if max_events is not None else -1
        profiler = self.profiler
        lineage = self.lineage
        heappop = heapq.heappop   # hoisted: one global lookup per run
        try:
            # NOTE: self._heap must be re-read every iteration -- a
            # callback may cancel enough entries to trigger _compact(),
            # which rebinds the list.
            while self._heap:
                entry = self._heap[0]
                if entry.cancelled:
                    heappop(self._heap)
                    self._dead -= 1
                    continue
                if until is not None and entry.time > until:
                    break
                heappop(self._heap)
                self._live -= 1
                prev = self._now
                self._now = entry.time
                self.events_processed += 1
                if lineage is not None:
                    lineage.current = entry.cause
                if profiler is None:
                    entry.callback(*entry.args)
                else:
                    profiler.execute(entry.callback, entry.args,
                                     entry.time - prev)
                if budget > 0:
                    budget -= 1
                    if budget == 0:
                        break
        finally:
            self._running = False
            if lineage is not None:
                lineage.current = 0
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` when none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            prev = self._now
            self._now = entry.time
            self.events_processed += 1
            lineage = self.lineage
            if lineage is not None:
                lineage.current = entry.cause
            if self.profiler is None:
                entry.callback(*entry.args)
            else:
                self.profiler.execute(entry.callback, entry.args,
                                      entry.time - prev)
            if lineage is not None:
                lineage.current = 0
            return True
        return False

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return self._live

    def peek_time(self) -> int | None:
        """Time of the next live event, or ``None`` if drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._dead -= 1
        return self._heap[0].time if self._heap else None

    def pending_entries(self, limit: int = 32) -> list[_Entry]:
        """The next ``limit`` live entries in firing order, without
        disturbing the heap.  Diagnostic only (stall-frontier snapshots
        -- see repro.obs.diag); O(n log n) in the heap size."""
        live = [e for e in self._heap if not e.cancelled]
        live.sort()
        return live[:limit]
