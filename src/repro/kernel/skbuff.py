"""Socket buffers (``sk_buff``) and queues (``sk_buff_head``).

An :class:`SKBuff` doubles as the transport segment: the H-RMC header
fields live directly on it (the on-the-wire encoding is handled by
:mod:`repro.core.header`).  Segments become logically immutable once
transmitted -- multicast duplication shares them by reference -- except
for the sender-side bookkeeping fields (``tries``, ``last_sent_us``),
which only the sender touches.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.kernel.payload import Payload

__all__ = ["SKBuff", "SkbQueue", "SKB_OVERHEAD"]

# Per-buffer bookkeeping overhead charged against sndbuf/rcvbuf, standing
# in for sizeof(struct sk_buff).
SKB_OVERHEAD = 64


class SKBuff:
    """One transport segment plus kernel bookkeeping."""

    __slots__ = (
        "sport", "dport", "seq", "rate_adv", "length", "tries", "ptype",
        "flags", "payload",
        # sender-side bookkeeping
        "first_sent_us", "last_sent_us", "retrans_pending",
        "release_checked",
        # causal lineage (obs.causal): node id of the event that queued
        # this segment for (re)transmission, consumed at ip_send time
        "cause",
    )

    def __init__(self, *, sport: int, dport: int, seq: int, ptype: int,
                 length: int = 0, rate_adv: int = 0, flags: int = 0,
                 tries: int = 0, payload: Optional[Payload] = None):
        self.sport = sport
        self.dport = dport
        self.seq = seq & 0xFFFFFFFF
        self.rate_adv = rate_adv & 0xFFFFFFFF
        self.length = length
        self.tries = tries
        self.ptype = ptype
        self.flags = flags
        self.payload = payload
        self.first_sent_us = -1
        self.last_sent_us = -1
        self.retrans_pending = False
        self.release_checked = False
        self.cause = 0

    @property
    def end_seq(self) -> int:
        """Sequence number one past the last byte of this segment."""
        return (self.seq + self.length) & 0xFFFFFFFF

    @property
    def truesize(self) -> int:
        """Bytes charged against a socket buffer for this skb."""
        return self.length + SKB_OVERHEAD

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SKBuff(type={self.ptype}, seq={self.seq}, "
                f"len={self.length}, tries={self.tries})")


class SkbQueue:
    """``sk_buff_head``: a FIFO of skbs with byte accounting."""

    def __init__(self, name: str = ""):
        self._q: deque[SKBuff] = deque()
        self.name = name
        self.bytes = 0      # sum of truesize
        self.data_bytes = 0  # sum of payload lengths

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    def __iter__(self) -> Iterator[SKBuff]:
        return iter(self._q)

    def peek(self) -> Optional[SKBuff]:
        return self._q[0] if self._q else None

    def peek_tail(self) -> Optional[SKBuff]:
        return self._q[-1] if self._q else None

    def enqueue(self, skb: SKBuff) -> None:
        self._q.append(skb)
        self.bytes += skb.truesize
        self.data_bytes += skb.length

    def dequeue(self) -> Optional[SKBuff]:
        if not self._q:
            return None
        skb = self._q.popleft()
        self.bytes -= skb.truesize
        self.data_bytes -= skb.length
        return skb

    def requeue_front(self, skb: SKBuff) -> None:
        self._q.appendleft(skb)
        self.bytes += skb.truesize
        self.data_bytes += skb.length

    def clear(self) -> None:
        self._q.clear()
        self.bytes = 0
        self.data_bytes = 0
