"""Payload descriptors.

Protocol correctness depends on sequence numbers and lengths, not on
payload values, so large transfers carry :class:`PatternPayload`
descriptors -- (offset, length) views into a deterministic infinite
byte pattern -- and only materialize bytes when an application actually
reads them.  Unit tests that verify end-to-end stream integrity use
either payload kind and compare materialized bytes.
"""

from __future__ import annotations

__all__ = ["Payload", "BytesPayload", "PatternPayload", "pattern_bytes"]

_PATTERN_PERIOD = 65536
# A fixed pseudo-random-looking pattern; byte i = (i*197 + (i>>8)*73 + 11) & 0xFF
_PATTERN = bytes(((i * 197 + (i >> 8) * 73 + 11) & 0xFF)
                 for i in range(_PATTERN_PERIOD))


def pattern_bytes(offset: int, length: int) -> bytes:
    """Materialize ``length`` bytes of the canonical pattern at ``offset``."""
    if length <= 0:
        return b""
    start = offset % _PATTERN_PERIOD
    end = start + length
    reps = (end + _PATTERN_PERIOD - 1) // _PATTERN_PERIOD
    if reps == 1:
        return _PATTERN[start:end]
    return (_PATTERN * reps)[start:end]


class Payload:
    """Abstract payload: a length plus lazily-materializable bytes."""

    __slots__ = ()

    @property
    def length(self) -> int:
        raise NotImplementedError

    def slice(self, start: int, length: int) -> "Payload":
        raise NotImplementedError

    def tobytes(self) -> bytes:
        raise NotImplementedError

    def __len__(self) -> int:
        return self.length


class BytesPayload(Payload):
    """Payload backed by real bytes (used by tests and small sends)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = bytes(data)

    @property
    def length(self) -> int:
        return len(self.data)

    def slice(self, start: int, length: int) -> "BytesPayload":
        if start < 0 or length < 0 or start + length > len(self.data):
            raise ValueError(f"bad slice ({start}, {length}) of {len(self.data)}")
        return BytesPayload(self.data[start:start + length])

    def tobytes(self) -> bytes:
        return self.data

    def __repr__(self) -> str:  # pragma: no cover
        return f"BytesPayload({len(self.data)}B)"


class PatternPayload(Payload):
    """A zero-copy (offset, length) view into the canonical pattern."""

    __slots__ = ("offset", "_length")

    def __init__(self, offset: int, length: int):
        if offset < 0 or length < 0:
            raise ValueError(f"bad pattern view ({offset}, {length})")
        self.offset = offset
        self._length = length

    @property
    def length(self) -> int:
        return self._length

    def slice(self, start: int, length: int) -> "PatternPayload":
        if start < 0 or length < 0 or start + length > self._length:
            raise ValueError(f"bad slice ({start}, {length}) of {self._length}")
        return PatternPayload(self.offset + start, length)

    def tobytes(self) -> bytes:
        return pattern_bytes(self.offset, self._length)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PatternPayload(@{self.offset}, {self._length}B)"
