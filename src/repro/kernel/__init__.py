"""Linux-kernel-like substrate.

The protocol code in this repo is written against the same abstractions
the paper's kernel driver used: ``sk_buff`` packet buffers and byte
accounting against ``sk->sndbuf`` / ``sk->rcvbuf``, an INET-``sock``-like
structure with write/receive/backlog queues, jiffy timers, and a
blocking BSD socket interface for applications.

The host model charges the paper's measured per-packet processing costs
(H-RMC ``(10 + 0.025*l)`` us, lower layers 150 us, 300 MHz CPU) against
a single serializing CPU, so protocol processing, feedback processing
and application copies all compete for cycles exactly as they did on
the testbed machines.
"""

from repro.kernel.payload import Payload, BytesPayload, PatternPayload
from repro.kernel.skbuff import SKBuff, SkbQueue
from repro.kernel.sock import Sock
from repro.kernel.host import Host, CostModel, Transport
from repro.kernel.socket_api import Socket

__all__ = [
    "Payload",
    "BytesPayload",
    "PatternPayload",
    "SKBuff",
    "SkbQueue",
    "Sock",
    "Host",
    "CostModel",
    "Transport",
    "Socket",
]
