"""Blocking BSD-style socket facade for application processes.

Application code reads like ordinary socket code (paper section 4.1):
the sender binds, connects to a multicast address/port and calls
``send``; the receiver joins the group and calls ``recv``; both call
``close``.  Calls that would block in a kernel (``send`` with a full
send buffer, ``recv`` with an empty receive queue) are generators that
suspend the calling simulated process.

The facade works with any transport exposing the small protocol-side
interface documented on :class:`Socket`.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.payload import BytesPayload, Payload

__all__ = ["Socket"]


class Socket:
    """User-level socket bound to one transport instance.

    The transport must provide::

        sock                      # the kernel Sock
        host                      # the owning Host
        bind(port)
        connect(daddr, dport)
        join(group, port)         # receiver-side setsockopt + bind
        sendmsg_some(payload) -> int      # consume what fits, 0 if none
        recvmsg(max_bytes) -> list[Payload]
        at_eof() -> bool
        close_wait() -> Generator  # drain-and-release on the sender side
        abort()
    """

    def __init__(self, transport):
        self._t = transport
        self.host = transport.host
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def transport(self):
        return self._t

    @property
    def sock(self):
        return self._t.sock

    # -- connection management ---------------------------------------

    def bind(self, port: int) -> None:
        self._t.bind(port)

    def connect(self, daddr: str, dport: int) -> None:
        self._t.connect(daddr, dport)

    def join(self, group: str, port: int) -> None:
        """Receiver-side: join the multicast group and listen on port."""
        self._t.join(group, port)

    # -- data transfer --------------------------------------------------

    def send(self, data) -> Generator:
        """Send all of ``data`` (bytes or a Payload), blocking for
        send-buffer space as needed.  Returns the byte count."""
        payload: Payload = (
            BytesPayload(data) if isinstance(data, (bytes, bytearray))
            else data)
        total = payload.length
        # copy_from_user cost for the whole call
        yield from self.host.cpu_exec(self.host.cost.copy_cost(total))
        offset = 0
        while offset < total:
            rest = payload.slice(offset, total - offset)
            consumed = self._t.sendmsg_some(rest)
            if consumed == 0:
                yield self.sock.write_space
                continue
            offset += consumed
        self.bytes_sent += total
        return total

    def recv(self, max_bytes: int) -> Generator:
        """Receive up to ``max_bytes``; blocks until data or EOF.
        Returns ``b""`` at end of stream."""
        chunks = yield from self.recv_payloads(max_bytes)
        return b"".join(c.tobytes() for c in chunks)

    def recv_payloads(self, max_bytes: int) -> Generator:
        """Like :meth:`recv` but returns payload descriptors without
        materializing bytes (the fast path for large benchmarks).
        Returns ``[]`` at end of stream."""
        while True:
            chunks = self._t.recvmsg(max_bytes)
            if chunks:
                nbytes = sum(c.length for c in chunks)
                # the socket is locked while copying to user space;
                # arriving packets queue on the transport backlog
                lock = getattr(self._t, "lock", None)
                if lock is not None:
                    lock()
                try:
                    yield from self.host.cpu_exec(
                        self.host.cost.copy_cost(nbytes))
                finally:
                    unlock = getattr(self._t, "unlock", None)
                    if unlock is not None:
                        unlock()
                self.bytes_received += nbytes
                return chunks
            if self._t.at_eof():
                return []
            yield self.sock.data_ready

    # -- teardown ---------------------------------------------------------

    def close(self) -> Generator:
        """Close the connection.  On the sender this blocks until every
        receiver has the whole stream and the send window has drained."""
        yield from self._t.close_wait()

    def abort(self) -> None:
        self._t.abort()
