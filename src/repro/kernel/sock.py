"""The INET ``sock`` structure (paper Figure 6).

Holds endpoint addressing, buffer-size limits and allocation counters,
the packet queues shared by all transports, and the wake-up events that
the blocking socket calls sleep on.  The protocol-specific block
(``hrmc_opt`` in the paper's Figure 7) is attached by each transport as
``tp_pinfo``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.kernel.skbuff import SkbQueue
from repro.sim.engine import Simulator
from repro.sim.process import SimEvent

__all__ = ["Sock", "DEFAULT_BUF"]

DEFAULT_BUF = 64 * 1024


class Sock:
    """Network state common to transports (cf. ``struct sock``)."""

    def __init__(self, sim: Simulator, *, sndbuf: int = DEFAULT_BUF,
                 rcvbuf: int = DEFAULT_BUF, name: str = "sk"):
        self.sim = sim
        self.name = name
        # addressing
        self.daddr: Optional[str] = None      # foreign (multicast) address
        self.dport: int = 0                   # destination port
        self.rcv_saddr: Optional[str] = None  # bound local address
        self.num: int = 0                     # local port
        # memory limits / usage
        self.sndbuf = int(sndbuf)
        self.rcvbuf = int(rcvbuf)
        # queues (cf. write_queue / back_log / receive_queue)
        self.write_queue = SkbQueue("write")
        self.back_log = SkbQueue("backlog")
        self.receive_queue = SkbQueue("receive")
        # transport-specific block (tp_pinfo union)
        self.tp_pinfo: Any = None
        # wake-ups
        self.data_ready = SimEvent(sim, name=f"{name}.data_ready")
        self.write_space = SimEvent(sim, name=f"{name}.write_space")
        self.state_change = SimEvent(sim, name=f"{name}.state_change")
        # lifecycle
        self.dead = False
        # the socket lock: packets arriving while an application call
        # holds the socket go to the backlog queue
        self.locked = False

    # -- memory accounting -------------------------------------------

    def wmem_free(self) -> int:
        """Free send-buffer space in bytes."""
        return self.sndbuf - self.write_queue.bytes

    def rmem_used(self) -> int:
        return self.receive_queue.bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Sock({self.name}, port={self.num}, "
                f"wq={self.write_queue.bytes}/{self.sndbuf}, "
                f"rq={self.receive_queue.bytes}/{self.rcvbuf})")
