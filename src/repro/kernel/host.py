"""Host model: one CPU, one NIC, transport dispatch.

The paper measured, on the 300 MHz testbed machines, an H-RMC protocol
processing time of ``(10 + 0.025*l)`` microseconds for a packet of
length ``l`` and a lower-layer (IP + driver + interrupt) time of 150
microseconds, and injected those delays into its simulator's host
processes.  We do the same, with one refinement that the serialized
host process implies: all processing -- transmit-side protocol work,
receive-side protocol work, and application copies -- competes for a
single CPU.  On the receive path the full ``150 + (10 + 0.025*l)`` cost
is charged before the protocol sees a packet (interrupt + IP + H-RMC
all serialize); on the transmit path only the protocol cost is charged,
since the lower-layer work overlaps with NIC DMA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.net.packet import NetPacket
from repro.net.nic import NetworkInterface
from repro.net.topology import Network
from repro.kernel.skbuff import SKBuff
from repro.sim.engine import Simulator
from repro.sim.process import SimEvent

__all__ = ["CostModel", "Host", "HostClock", "Transport"]


class HostClock:
    """A host's view of the jiffy-timer machinery.

    Duck-types the slice of :class:`Simulator` that :class:`~repro.sim.timer.Timer`
    uses (``now`` / ``call_at`` / ``cancel``) so that all of a host's
    protocol timers can be driven through a per-host object.  The fault
    layer uses this to model clock trouble without touching global sim
    time: ``skew`` stretches (or shrinks) every programmed timer delay
    like a drifting oscillator, and ``stalled_until`` defers firings the
    way a wedged timer interrupt would.  Reading ``now`` is unaffected
    -- timestamps stay honest; only *when timers fire* shifts.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self.skew = 1.0          # multiplier on programmed timer delays
        self.stalled_until = 0   # no timer may fire before this sim time
        self.host_addr = ""      # owning host's address, for lineage labels

    @property
    def now(self) -> int:
        return self._sim.now

    @property
    def lineage(self):
        """Forward the causal recorder so timers driven through this
        clock can label their firings (see repro.obs.causal)."""
        return self._sim.lineage

    def call_at(self, when: int, callback: Callable, *args):
        if self.skew != 1.0:
            delay = max(0, int(when) - self._sim.now)
            when = self._sim.now + int(round(delay * self.skew))
        if when < self.stalled_until:
            when = self.stalled_until
        return self._sim.call_at(max(int(when), self._sim.now),
                                 callback, *args)

    def call_after(self, delay: int, callback: Callable, *args):
        return self.call_at(self._sim.now + max(0, int(delay)),
                            callback, *args)

    def cancel(self, entry) -> None:
        self._sim.cancel(entry)


@dataclass(frozen=True)
class CostModel:
    """Per-packet host processing costs (microseconds)."""

    lower_layer_us: float = 150.0
    per_packet_us: float = 10.0
    per_byte_us: float = 0.025
    copy_per_byte_us: float = 0.005   # recvmsg/sendmsg copy_to/from_user
    syscall_us: float = 10.0

    def proto_cost(self, nbytes: int) -> int:
        return round(self.per_packet_us + self.per_byte_us * nbytes)

    def tx_cost(self, nbytes: int) -> int:
        return self.proto_cost(nbytes)

    def rx_cost(self, nbytes: int) -> int:
        """Serialized CPU cost of receiving one packet: interrupt + IP
        (the measured 150 us lower-layer time) plus protocol processing.
        This is what bounds how fast a host can drain its RX ring --
        about 5 000 full-size packets/s on the 300 MHz testbed CPU,
        i.e. roughly 60 Mbps of sustained goodput."""
        return round(self.lower_layer_us) + self.proto_cost(nbytes)

    def copy_cost(self, nbytes: int) -> int:
        return round(self.syscall_us + self.copy_per_byte_us * nbytes)


class Transport:
    """Interface a transport protocol presents to the host/socket layer.

    Concrete protocols (H-RMC, RMC, the baselines) subclass this.
    """

    def segment_received(self, skb: SKBuff, src_addr: str) -> None:
        raise NotImplementedError

    def unbound(self) -> None:
        """Called when the host releases the protocol's port."""


class Host:
    """A participating machine: CPU + NIC + bound transports."""

    def __init__(self, sim: Simulator, network: Network,
                 nic: NetworkInterface, *, cost: CostModel | None = None,
                 name: str = ""):
        self.sim = sim
        self.network = network
        self.nic = nic
        self.cost = cost or CostModel()
        self.name = name or f"host-{nic.addr}"
        self.addr = nic.addr
        self.clock = HostClock(sim)
        self.clock.host_addr = self.addr
        self.crashed = False
        self._cpu_busy_until = 0
        self._ports: dict[int, Transport] = {}
        self._pending_xmit = 0   # charged to CPU, not yet on the NIC
        self.unroutable = 0
        self.tx_ring_busy_drops = 0
        self.checksum_drops = 0
        # optional packet tap: fn(direction, skb, peer_addr, now_us);
        # used by repro.trace to observe traffic without altering it
        self.tap: Optional[Callable[[str, SKBuff, str, int], None]] = None
        nic.rx_handler = self._packet_arrived
        nic.rx_cost_fn = lambda pkt: self.cost.rx_cost(pkt.seg_bytes)
        nic.cpu_run = self.cpu_run

    # -- CPU ------------------------------------------------------------

    def cpu_run(self, cost_us: int, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` after ``cost_us`` of CPU time, serialized
        with all other work on this host.  Arguments ride the engine
        entry itself so per-packet hot paths need no closure
        allocation."""
        start = max(self.sim.now, self._cpu_busy_until)
        end = start + max(0, int(cost_us))
        self._cpu_busy_until = end
        self.sim.call_at(end, fn, *args)

    def cpu_exec(self, cost_us: int) -> Generator:
        """``yield from host.cpu_exec(c)`` inside an application process
        consumes ``c`` us of this host's CPU."""
        done = SimEvent(self.sim)
        self.cpu_run(cost_us, done.fire)
        yield done

    @property
    def cpu_busy_until(self) -> int:
        return self._cpu_busy_until

    # -- faults (repro.faults) ----------------------------------------

    def crash(self) -> None:
        """Power failure: the NIC rings lose their contents and the card
        goes deaf.  The caller (the fault injector) is responsible for
        killing this host's application processes and aborting its
        transports -- kernel state does not survive the crash."""
        self.crashed = True
        self.nic.power_off()

    def restart(self) -> None:
        """Power back on with cold rings and an idle CPU."""
        self.crashed = False
        self.nic.power_on()
        self._cpu_busy_until = self.sim.now

    def pause(self, duration_us: int) -> None:
        """Freeze the CPU for ``duration_us`` (an SMM excursion, a long
        interrupts-off section): all serialized host work -- protocol
        processing, RX drain, application copies -- is pushed past the
        pause window.  Timers still fire on time; their handlers queue
        behind the stall like real softirq work."""
        self._cpu_busy_until = max(self._cpu_busy_until,
                                   self.sim.now + max(0, int(duration_us)))

    # -- port dispatch -----------------------------------------------

    def bind(self, port: int, transport: Transport) -> None:
        if port in self._ports:
            raise ValueError(f"{self.name}: port {port} already bound")
        self._ports[port] = transport

    def unbind(self, port: int) -> None:
        transport = self._ports.pop(port, None)
        if transport is not None:
            transport.unbound()

    # -- packet I/O ----------------------------------------------------

    def ip_send(self, skb: SKBuff, dst_addr: str) -> None:
        """Queue a segment for transmission (cf. ``ip_build_and_send``).

        Charges transmit-side CPU, then hands the packet to the NIC.  A
        full TX ring at hand-off time drops the packet and counts it;
        well-behaved transmitters avoid this by bounding their bursts
        with :meth:`tx_space`.

        The wire size is the header plus the *actual payload carried*:
        control packets (e.g. NAKs) reuse the length field for range
        bookkeeping but carry no payload.
        """
        payload_bytes = skb.payload.length if skb.payload is not None else 0
        seg_bytes = 20 + payload_bytes
        pkt = NetPacket(self.addr, dst_addr, skb, seg_bytes,
                        born_us=self.sim.now,
                        pid=self.sim.new_packet_id())
        lineage = self.sim.lineage
        if lineage is not None:
            # a retransmission carries the lineage of the NAK that queued
            # it (stamped on the skb); consume it so the next send of the
            # same segment falls back to the scheduling context.  The tx
            # node is stamped on the packet rather than advancing the
            # engine context: the NIC rings serialize completions, so
            # downstream delivery must be parented per-packet.
            cause, skb.cause = skb.cause, 0
            pkt.cause = lineage.emit_packet(
                "tx", self.addr, skb,
                parent=cause if cause else None, advance=False)
        if self.tap is not None:
            self.tap("tx", skb, dst_addr, self.sim.now)
        self._pending_xmit += 1
        self.cpu_run(self.cost.tx_cost(seg_bytes), self._xmit, pkt)

    def _xmit(self, pkt: NetPacket) -> None:
        self._pending_xmit -= 1
        if not self.nic.try_transmit(pkt):
            self.tx_ring_busy_drops += 1
            lineage = self.sim.lineage
            if lineage is not None:
                lineage.emit_drop("tx_ring_full", self.addr, pkt.segment,
                                  parent=pkt.cause)

    def tx_space(self) -> int:
        """Device-queue slots not yet spoken for -- counts packets that
        have been charged to the CPU but not yet handed to the NIC, so
        well-behaved transmitters never overcommit the queue."""
        return max(0, self.nic.tx_space() - self._pending_xmit)

    def _packet_arrived(self, pkt: NetPacket) -> None:
        lineage = self.sim.lineage
        if self.crashed:
            if lineage is not None:
                lineage.emit_drop("host_crashed", self.addr, pkt.segment,
                                  parent=pkt.cause)
            return  # nothing is listening; the NIC guards make this rare
        if pkt.corrupted:
            # the header checksum (RFC 1071, over header+payload)
            # catches in-flight bit errors; damaged packets are dropped
            # here exactly like a failed hrmc checksum in the kernel
            self.checksum_drops += 1
            if lineage is not None:
                lineage.emit_drop("checksum", self.addr, pkt.segment,
                                  parent=pkt.cause, blame=pkt.blame)
            return
        skb = pkt.segment
        if lineage is not None:
            # parent to this packet's own transmission and make the rx
            # node the context for everything protocol processing does
            # next (gap detection, NAK scheduling, app wake-ups)
            lineage.emit_packet("rx", self.addr, skb, parent=pkt.cause)
        if self.tap is not None:
            self.tap("rx", skb, pkt.src, self.sim.now)
        transport = self._ports.get(skb.dport)
        if transport is None:
            self.unroutable += 1
            return
        transport.segment_received(skb, pkt.src)

    # -- multicast membership ---------------------------------------------

    def join_group(self, group: str) -> None:
        self.network.join_group(self.nic, group)

    def leave_group(self, group: str) -> None:
        self.network.leave_group(self.nic, group)
