"""A TCP-like reliable unicast stream.

Implements the classic loop: cumulative ACKs on every segment, slow
start and congestion avoidance on a byte-denominated congestion window,
fast retransmit on three duplicate ACKs, retransmission timeout with
Karn/Jacobson RTT estimation and exponential backoff.

The paper's conclusions compare H-RMC's throughput to TCP's; this
transport provides that reference point over the identical kernel and
network substrate.  Serving ``n`` receivers means ``n`` sequential
unicast transfers (see :func:`repro.harness.runner.run_transfer` with
``protocol="tcp"``), which is the cost multicast is meant to avoid.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.baselines.common import (BaseTransport, BaselineType, FIN_FLAG,
                                    ReassemblyBuffer)
from repro.core.rtt import RttEstimator
from repro.core.seq import seq_add, seq_geq, seq_gt, seq_sub
from repro.kernel.host import Host
from repro.kernel.payload import Payload
from repro.kernel.skbuff import SKBuff
from repro.kernel.socket_api import Socket
from repro.sim.timer import JIFFY_US, Timer

__all__ = ["TcpLikeTransport", "open_tcp_socket"]

DUP_ACK_THRESHOLD = 3


class TcpLikeTransport(BaseTransport):
    """One direction of a TCP-like connection (sender or receiver)."""

    def __init__(self, host: Host, *, initial_rtt_us: int = 50_000, **kw):
        super().__init__(host, **kw)
        self.rtt = RttEstimator(initial_rtt_us)
        # sender state
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self._unsent: deque[SKBuff] = deque()
        self.cwnd = 2 * self.mss
        self.ssthresh = 1 << 30
        self.dup_acks = 0
        self._rto_backoff = 1
        self._timed_seq: Optional[int] = None   # Karn: one timed segment
        self._timed_at = 0
        self.fin_seq: Optional[int] = None
        self.closing = False
        # receiver state
        self.rx: Optional[ReassemblyBuffer] = None
        self._sender: Optional[tuple[str, int]] = None
        self.transmit_timer = Timer(host.clock, self._tick, "tcp-tx",
                                    event_class="jiffy-timer")
        self.rto_timer = Timer(host.clock, self._rto_fire, "tcp-rto",
                               event_class="nak-repair-timer")

    # ------------------------------------------------------------------
    # sender

    def _sender_start(self) -> None:
        self.transmit_timer.mod_after(JIFFY_US)

    def listen(self, port: int) -> None:
        """Receiver side of a unicast stream (no multicast join)."""
        self.bind(port)
        self.is_receiver = True
        self.rx = ReassemblyBuffer(self.sock, self.iss)

    def join(self, group: str, port: int) -> None:
        # for harness symmetry a unicast "join" just listens
        self.listen(port)

    def sendmsg_some(self, payload: Payload) -> int:
        consumed = 0
        total = payload.length
        while consumed < total:
            chunk = min(self.mss, total - consumed)
            skb = self.make_skb(BaselineType.DATA, seq=self.snd_nxt,
                                length=chunk,
                                payload=payload.slice(consumed, chunk))
            if self.sock.wmem_free() < skb.truesize:
                break
            self.sock.write_queue.enqueue(skb)
            self._unsent.append(skb)
            self.snd_nxt = seq_add(self.snd_nxt, chunk)
            consumed += chunk
        if consumed and not self.transmit_timer.pending:
            self.transmit_timer.mod_after(0)
        return consumed

    def queue_fin(self) -> None:
        if self.fin_seq is not None:
            return
        skb = self.make_skb(BaselineType.DATA, seq=self.snd_nxt, length=1,
                            flags=FIN_FLAG)
        self.fin_seq = self.snd_nxt
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self.sock.write_queue.enqueue(skb)
        self._unsent.append(skb)
        self.closing = True
        if not self.transmit_timer.pending:
            self.transmit_timer.mod_after(0)

    @property
    def drained(self) -> bool:
        return len(self.sock.write_queue) == 0 and not self._unsent

    def _in_flight(self) -> int:
        return seq_sub(self.snd_nxt, self.snd_una) - sum(
            s.length for s in self._unsent)

    def _tick(self) -> None:
        now = self.sim.now
        ring = self.host.tx_space()
        while (self._unsent and ring > 0 and
               self._in_flight() + self._unsent[0].length <= self.cwnd):
            skb = self._unsent.popleft()
            self._emit(skb, now)
            ring -= 1
        if seq_gt(self.snd_nxt, self.snd_una) and not self.rto_timer.pending:
            self.rto_timer.mod_after(self.rtt.rto_us * self._rto_backoff)
        if not (self.drained and self.closing):
            self.transmit_timer.mod_after(JIFFY_US)

    def _emit(self, skb: SKBuff, now: int, retrans: bool = False) -> None:
        skb.tries += 1
        skb.last_sent_us = now
        if skb.first_sent_us < 0:
            skb.first_sent_us = now
        if not retrans and self._timed_seq is None:
            self._timed_seq = skb.end_seq
            self._timed_at = now
        if retrans and self._timed_seq is not None and \
                seq_gt(self._timed_seq, skb.seq):
            self._timed_seq = None  # Karn: retransmission poisons the sample
        self.host.ip_send(skb, self.sock.daddr)
        if retrans:
            self.stats.retrans_pkts += 1
            self.stats.retrans_bytes += skb.length
        else:
            self.stats.data_pkts_sent += 1
            self.stats.data_bytes_sent += skb.length

    def _retransmit_head(self) -> None:
        head = self.sock.write_queue.peek()
        if head is not None and head.tries > 0:
            self._emit(head, self.sim.now, retrans=True)

    def _rto_fire(self) -> None:
        if self.snd_una == self.snd_nxt:
            return
        self.ssthresh = max(2 * self.mss, self.cwnd // 2)
        self.cwnd = self.mss
        self.dup_acks = 0
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        self._retransmit_head()
        self.rto_timer.mod_after(self.rtt.rto_us * self._rto_backoff)

    def _on_ack(self, skb: SKBuff) -> None:
        self.stats.updates_rcvd += 1
        ack = skb.seq
        if seq_gt(ack, self.snd_una):
            advanced = seq_sub(ack, self.snd_una)
            self.snd_una = ack
            self.dup_acks = 0
            self._rto_backoff = 1
            self.rto_timer.del_timer()
            if self._timed_seq is not None and seq_geq(ack, self._timed_seq):
                self.rtt.sample(self.sim.now - self._timed_at)
                self._timed_seq = None
            if self.cwnd < self.ssthresh:
                self.cwnd += min(advanced, self.mss)
            else:
                self.cwnd += max(1, self.mss * self.mss // self.cwnd)
            released = False
            while self.sock.write_queue:
                head = self.sock.write_queue.peek()
                if not seq_geq(self.snd_una, head.end_seq):
                    break
                self.sock.write_queue.dequeue()
                released = True
            if released:
                self.sock.write_space.fire()
                if self.drained:
                    self.sock.state_change.fire()
            if not self.transmit_timer.pending:
                self.transmit_timer.mod_after(0)
        elif ack == self.snd_una and seq_gt(self.snd_nxt, self.snd_una):
            self.dup_acks += 1
            if self.dup_acks == DUP_ACK_THRESHOLD:
                # fast retransmit / simplified fast recovery
                self.ssthresh = max(2 * self.mss, self.cwnd // 2)
                self.cwnd = self.ssthresh
                self._retransmit_head()

    # ------------------------------------------------------------------
    # receiver

    def _on_data(self, skb: SKBuff, src: str) -> None:
        self.stats.data_pkts_rcvd += 1
        self.stats.data_bytes_rcvd += skb.length
        if self._sender is None:
            self._sender = (src, skb.sport)
        self.rx.offer(skb)
        ack = self.make_skb(BaselineType.ACK, seq=self.rx.rcv_nxt,
                            dport=self._sender[1])
        self.host.ip_send(ack, self._sender[0])
        self.stats.updates_sent += 1

    # ------------------------------------------------------------------
    # dispatch & facade

    def segment_received(self, skb: SKBuff, src_addr: str) -> None:
        ptype = BaselineType(skb.ptype)
        if self.is_sender and ptype == BaselineType.ACK:
            self._on_ack(skb)
        elif self.is_receiver and ptype == BaselineType.DATA:
            self._on_data(skb, src_addr)

    def recvmsg(self, max_bytes: int) -> list[Payload]:
        return self.rx.recvmsg(max_bytes)

    def at_eof(self) -> bool:
        return self.rx is not None and self.rx.at_eof()

    def _teardown(self) -> None:
        self.transmit_timer.del_timer()
        self.rto_timer.del_timer()


def open_tcp_socket(host: Host, *, sndbuf: int = 64 * 1024,
                    rcvbuf: int = 64 * 1024) -> Socket:
    return Socket(TcpLikeTransport(host, sndbuf=sndbuf, rcvbuf=rcvbuf))
