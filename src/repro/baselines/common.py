"""Shared plumbing for the baseline transports.

Each baseline is a :class:`repro.kernel.host.Transport` with the same
socket-facing surface as H-RMC (bind / connect / join / sendmsg_some /
recvmsg / at_eof / close_wait / abort), so the experiment harness can
swap protocols freely.
"""

from __future__ import annotations

import enum
from typing import Generator, Optional

from repro.core.seq import seq_add, seq_geq
from repro.kernel.host import Host, Transport
from repro.kernel.payload import Payload
from repro.kernel.skbuff import SKBuff
from repro.kernel.sock import Sock
from repro.stats.metrics import Counters

__all__ = ["BaselineType", "FIN_FLAG", "BaseTransport"]

FIN_FLAG = 0x0002


class BaselineType(enum.IntEnum):
    """Packet types shared by the baseline protocols."""

    DATA = 1
    ACK = 2
    JOIN = 3
    JOIN_RESPONSE = 4
    POLL = 5
    STATUS = 6
    NAK = 7


class BaseTransport(Transport):
    """Common endpoint state and the socket-facade surface."""

    def __init__(self, host: Host, *, sndbuf: int = 64 * 1024,
                 rcvbuf: int = 64 * 1024, iss: int = 1, mss: int = 1460,
                 name: str = ""):
        self.host = host
        self.sock = Sock(host.sim, sndbuf=sndbuf, rcvbuf=rcvbuf,
                         name=name or f"{type(self).__name__}@{host.addr}")
        self.sim = host.sim
        self.stats = Counters()
        self.iss = iss
        self.mss = mss
        self._bound_port: Optional[int] = None
        self._group: Optional[str] = None
        self.is_sender = False
        self.is_receiver = False

    # -- connection management -------------------------------------------

    def bind(self, port: int) -> None:
        if self._bound_port is not None:
            raise RuntimeError("already bound")
        self.host.bind(port, self)
        self.sock.num = port
        self.sock.rcv_saddr = self.host.addr
        self._bound_port = port

    def connect(self, daddr: str, dport: int) -> None:
        if self._bound_port is None:
            raise RuntimeError("bind before connect")
        self.sock.daddr = daddr
        self.sock.dport = dport
        self.is_sender = True
        self._sender_start()

    def join(self, group: str, port: int) -> None:
        self.bind(port)
        self.host.join_group(group)
        self._group = group
        self.sock.daddr = group
        self.sock.dport = port
        self.is_receiver = True
        self._receiver_start()

    # subclass hooks
    def _sender_start(self) -> None: ...

    def _receiver_start(self) -> None: ...

    def _teardown(self) -> None: ...

    # -- skb helpers ----------------------------------------------------

    def make_skb(self, ptype: BaselineType, *, seq: int = 0,
                 length: int = 0, flags: int = 0, rate_adv: int = 0,
                 payload: Optional[Payload] = None,
                 dport: Optional[int] = None) -> SKBuff:
        return SKBuff(sport=self.sock.num,
                      dport=self.sock.dport if dport is None else dport,
                      seq=seq, ptype=int(ptype), length=length, flags=flags,
                      rate_adv=rate_adv, tries=1, payload=payload)

    # -- teardown ---------------------------------------------------------

    def abort(self) -> None:
        self._teardown()
        if self._group is not None:
            self.host.leave_group(self._group)
            self._group = None
        if self._bound_port is not None:
            self.host.unbind(self._bound_port)
            self._bound_port = None

    #: receivers linger this long after EOF, still ACKing/answering, so
    #: a retransmitted FIN (its ACK may have been lost) finds someone
    #: home -- the moral equivalent of TCP's TIME_WAIT
    RECEIVER_LINGER_US = 2_000_000

    def close_wait(self) -> Generator:
        if self.is_sender:
            self.queue_fin()
            while not self.drained:
                yield self.sock.state_change
        elif self.is_receiver and self.RECEIVER_LINGER_US > 0:
            from repro.sim.timer import Timer
            timeout = Timer(self.host.clock, self.sock.state_change.fire,
                            "linger", event_class="jiffy-timer")
            timeout.mod_after(self.RECEIVER_LINGER_US)
            yield self.sock.state_change
            timeout.del_timer()
        self.abort()
        return None

    # sender-side surface expected by close_wait; subclasses override
    def queue_fin(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def drained(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class ReassemblyBuffer:
    """Receiver-side in-order reassembly shared by the baselines."""

    def __init__(self, sock: Sock, iss: int):
        self.sock = sock
        self.rcv_nxt = iss
        self.rcv_wnd = iss
        self._ooo: dict[int, SKBuff] = {}
        self.eof_seq: Optional[int] = None

    def offer(self, skb: SKBuff) -> bool:
        """Returns True if rcv_nxt advanced."""
        from repro.core.seq import seq_gt, seq_leq, seq_sub

        if seq_leq(skb.end_seq, self.rcv_nxt):
            return False
        if seq_gt(skb.seq, self.rcv_nxt):
            self._ooo.setdefault(skb.seq, skb)
            return False
        self._integrate(skb)
        while True:
            nxt = self._ooo.pop(self.rcv_nxt, None)
            if nxt is None:
                break
            self._integrate(nxt)
        self.sock.data_ready.fire()
        return True

    def _integrate(self, skb: SKBuff) -> None:
        from repro.core.seq import seq_sub

        if skb.flags & FIN_FLAG:
            self.eof_seq = skb.seq
            self.rcv_nxt = skb.end_seq
            return
        trim = seq_sub(self.rcv_nxt, skb.seq)
        length = skb.length - trim
        payload = skb.payload
        if trim > 0 and payload is not None:
            payload = payload.slice(trim, length)
        out = SKBuff(sport=skb.sport, dport=skb.dport, seq=self.rcv_nxt,
                     ptype=skb.ptype, length=length, payload=payload)
        self.sock.receive_queue.enqueue(out)
        self.rcv_nxt = skb.end_seq

    def recvmsg(self, max_bytes: int) -> list[Payload]:
        out: list[Payload] = []
        taken = 0
        q = self.sock.receive_queue
        while taken < max_bytes and q:
            skb = q.peek()
            want = max_bytes - taken
            if skb.length <= want:
                q.dequeue()
                if skb.payload is not None:
                    out.append(skb.payload)
                taken += skb.length
                self.rcv_wnd = skb.end_seq
            else:
                q.dequeue()
                if skb.payload is not None:
                    out.append(skb.payload.slice(0, want))
                rest = SKBuff(sport=skb.sport, dport=skb.dport,
                              seq=seq_add(skb.seq, want), ptype=skb.ptype,
                              length=skb.length - want,
                              payload=(skb.payload.slice(want,
                                                         skb.length - want)
                                       if skb.payload else None))
                q.requeue_front(rest)
                taken += want
                self.rcv_wnd = seq_add(skb.seq, want)
        return out

    def at_eof(self) -> bool:
        return (self.eof_seq is not None and not self.sock.receive_queue
                and seq_geq(self.rcv_wnd, self.eof_seq))
