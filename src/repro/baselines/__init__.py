"""Comparison baselines.

The paper positions H-RMC against the three traditional approaches to
reliable multicast (section 1).  This package implements a compact but
complete representative of each, over the same kernel/network substrate,
plus a TCP-like unicast stream for the "throughput comparable to TCP"
comparison in the conclusions:

* :mod:`repro.baselines.ack` -- ACK-based sliding window multicast
  (XTP/SCE style): every receiver positively acknowledges every packet;
  the window advances on the slowest receiver's cumulative ACK.
* :mod:`repro.baselines.polling` -- polling-based multicast
  (Barcellos & Ezhilchelvan style): receivers stay silent until the
  sender polls them; buffer release is driven by poll responses.
* :mod:`repro.baselines.tcp` -- a TCP-like unicast stream (cumulative
  ACKs, fast retransmit, slow start / congestion avoidance);
  ``n`` receivers are served by ``n`` sequential transfers.
"""

from repro.baselines.ack import AckTransport, open_ack_socket
from repro.baselines.polling import PollingTransport, open_polling_socket
from repro.baselines.tcp import TcpLikeTransport, open_tcp_socket

__all__ = [
    "AckTransport", "open_ack_socket",
    "PollingTransport", "open_polling_socket",
    "TcpLikeTransport", "open_tcp_socket",
]
