"""Polling-based reliable multicast (Barcellos & Ezhilchelvan style;
paper section 1 and reference [8]).

Receivers take no spontaneous action: they receive data and answer only
when polled.  The sender periodically polls a round-robin subset of
receivers; each polled receiver returns a STATUS carrying its
cumulative next-expected sequence number and its first missing range.
The sender retransmits reported losses (multicast) and releases buffer
space once every receiver's reported mark has passed the data.

The characteristic trade-off this reproduces: feedback volume is low
and fully sender-controlled, but loss-recovery latency and buffer
occupancy are bounded below by the polling period.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.baselines.common import (BaseTransport, BaselineType, FIN_FLAG,
                                    ReassemblyBuffer)
from repro.core.rate import RateController
from repro.core.rtt import RttEstimator
from repro.core.seq import seq_add, seq_geq, seq_gt, seq_lt, seq_min, seq_sub
from repro.kernel.host import Host
from repro.kernel.payload import Payload
from repro.kernel.skbuff import SKBuff
from repro.kernel.socket_api import Socket
from repro.sim.timer import JIFFY_US, Timer

__all__ = ["PollingTransport", "open_polling_socket"]


class PollingTransport(BaseTransport):
    def __init__(self, host: Host, *, expected_receivers: int = 1,
                 poll_interval_jiffies: int = 5, poll_fanout: int = 4,
                 min_rate_bps: int = 1_168_000,
                 max_rate_bps: int = 160_000_000,
                 initial_rtt_us: int = 50_000, **kw):
        super().__init__(host, **kw)
        self.expected_receivers = expected_receivers
        self.poll_interval_us = poll_interval_jiffies * JIFFY_US
        self.poll_fanout = poll_fanout
        self.rtt = RttEstimator(initial_rtt_us)
        self.rate = RateController(min_rate=min_rate_bps // 8,
                                   max_rate=max_rate_bps // 8,
                                   mss=self.mss)
        # sender state
        self.snd_wnd = self.iss
        self.snd_nxt = self.iss
        self._unsent: deque[SKBuff] = deque()
        self._retrans: deque[SKBuff] = deque()
        self._marks: dict[str, int] = {}     # receiver -> reported rcv_nxt
        self._poll_order: list[str] = []
        self._poll_cursor = 0
        self._unanswered: dict[str, int] = {}   # consecutive silent polls
        self._stalls: dict[str, int] = {}       # responded-but-stuck polls
        self.evict_after_polls = 20
        self._budget = 0.0
        self._last_tick = 0
        self.fin_seq: Optional[int] = None
        self.closing = False
        # receiver state
        self.rx: Optional[ReassemblyBuffer] = None
        self._sender: Optional[tuple[str, int]] = None
        self.transmit_timer = Timer(host.clock, self._tick, "poll-tx",
                                    event_class="jiffy-timer")
        self.poll_timer = Timer(host.clock, self._poll_round, "poll",
                                event_class="jiffy-timer")

    # ------------------------------------------------------------------
    # sender

    def _sender_start(self) -> None:
        self._last_tick = self.sim.now
        self.transmit_timer.mod_after(JIFFY_US)
        self.poll_timer.mod_after(self.poll_interval_us)

    def sendmsg_some(self, payload: Payload) -> int:
        consumed = 0
        total = payload.length
        while consumed < total:
            chunk = min(self.mss, total - consumed)
            skb = self.make_skb(BaselineType.DATA, seq=self.snd_nxt,
                                length=chunk,
                                payload=payload.slice(consumed, chunk))
            if self.sock.wmem_free() < skb.truesize:
                break
            self.sock.write_queue.enqueue(skb)
            self._unsent.append(skb)
            self.snd_nxt = seq_add(self.snd_nxt, chunk)
            consumed += chunk
        if consumed and not self.transmit_timer.pending:
            self.transmit_timer.mod_after(0)
        return consumed

    def queue_fin(self) -> None:
        if self.fin_seq is not None:
            return
        skb = self.make_skb(BaselineType.DATA, seq=self.snd_nxt, length=1,
                            flags=FIN_FLAG)
        self.fin_seq = self.snd_nxt
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self.sock.write_queue.enqueue(skb)
        self._unsent.append(skb)
        self.closing = True

    @property
    def drained(self) -> bool:
        return len(self.sock.write_queue) == 0 and not self._unsent

    def _tick(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_tick
        self._last_tick = now
        self._budget += self.rate.allowance(elapsed, self.rtt.rtt_us, now)
        self._budget = min(self._budget,
                           max(4.0 * self.mss,
                               self.rate.rate * 2 * JIFFY_US / 1e6))
        ring = self.host.tx_space()
        while ring > 0:
            skb = None
            retrans = False
            if self._retrans:
                skb, retrans = self._retrans[0], True
            elif self._unsent:
                skb = self._unsent[0]
            if skb is None or self._budget < skb.length:
                break
            (self._retrans if retrans else self._unsent).popleft()
            if retrans and not skb.retrans_pending:
                continue
            skb.retrans_pending = False
            skb.tries += 1
            skb.last_sent_us = now
            self.host.ip_send(skb, self.sock.daddr)
            if retrans:
                self.stats.retrans_pkts += 1
            else:
                self.stats.data_pkts_sent += 1
                self.stats.data_bytes_sent += skb.length
            self._budget -= skb.length
            ring -= 1
        self._advance()
        if not (self.drained and self.closing):
            self.transmit_timer.mod_after(JIFFY_US)

    def _advance(self) -> None:
        if len(self._marks) < self.expected_receivers:
            return
        floor = None
        for mark in self._marks.values():
            floor = mark if floor is None else seq_min(floor, mark)
        released = False
        while self.sock.write_queue:
            head = self.sock.write_queue.peek()
            if head.tries == 0 or not seq_geq(floor, head.end_seq):
                break
            self.sock.write_queue.dequeue()
            self.snd_wnd = head.end_seq
            released = True
        if released:
            self.sock.write_space.fire()
            if self.drained:
                self.sock.state_change.fire()

    def _poll_round(self) -> None:
        """Poll the next fanout-sized subset of receivers."""
        if self._poll_order and seq_gt(self.snd_nxt, self.iss):
            lagging = [addr for addr in self._poll_order
                       if seq_lt(self._marks.get(addr, self.iss),
                                 self.snd_nxt)]
            targets = []
            for _ in range(min(self.poll_fanout, len(lagging))):
                addr = lagging[self._poll_cursor % len(lagging)]
                self._poll_cursor += 1
                if addr not in targets:
                    targets.append(addr)
            for addr in targets:
                silent = self._unanswered.get(addr, 0)
                if silent >= self.evict_after_polls:
                    # receiver evidently gone: stop letting it hold the
                    # window (cf. the H-RMC probe-timeout eviction)
                    self._marks[addr] = self.snd_nxt
                    self.stats.member_timeouts += 1
                    self._advance()
                    continue
                poll = self.make_skb(BaselineType.POLL, seq=self.snd_nxt)
                self.host.ip_send(poll, addr)
                self._unanswered[addr] = silent + 1
                self.stats.probes_sent += 1
        if not (self.closing and self.drained):
            self.poll_timer.mod_after(self.poll_interval_us)

    def _on_status(self, skb: SKBuff, src: str) -> None:
        self.stats.updates_rcvd += 1
        self._unanswered[src] = 0
        if src not in self._marks:
            self._marks[src] = self.iss
            self._poll_order.append(src)
        if seq_gt(skb.seq, self._marks[src]):
            self._marks[src] = skb.seq
            self._stalls[src] = 0
        elif seq_lt(skb.seq, self.snd_nxt):
            # mark is stuck: after a few rounds assume tail loss and
            # retransmit from the stuck point
            stalls = self._stalls.get(src, 0) + 1
            self._stalls[src] = stalls
            if stalls >= 4 and not skb.rate_adv:
                self._stalls[src] = 0
                self._queue_retrans(skb.seq,
                                    seq_add(skb.seq, 4 * self.mss))
        # rate_adv carries the length of the first missing range
        if skb.rate_adv:
            start = skb.seq
            end = seq_add(start, skb.rate_adv)
            self.rate.on_loss_signal(self.sim.now, self.rtt.rtt_us)
            self._queue_retrans(start, end)
        self._advance()

    def _queue_retrans(self, start: int, end: int) -> None:
        pace = max(self.rtt.rtt_us, JIFFY_US)
        now = self.sim.now
        for skb in self.sock.write_queue:
            if seq_geq(skb.seq, end):
                break
            if seq_geq(start, skb.end_seq) or skb.tries == 0:
                continue
            if now - skb.last_sent_us < pace or skb.retrans_pending:
                continue
            skb.retrans_pending = True
            self._retrans.append(skb)
        if self._retrans and not self.transmit_timer.pending:
            self.transmit_timer.mod_after(0)

    # ------------------------------------------------------------------
    # receiver

    def _receiver_start(self) -> None:
        self.rx = ReassemblyBuffer(self.sock, self.iss)

    def _on_data(self, skb: SKBuff, src: str) -> None:
        self.stats.data_pkts_rcvd += 1
        self.stats.data_bytes_rcvd += skb.length
        if self._sender is None:
            self._sender = (src, skb.sport)
            # announce ourselves so the sender can include us in polls
            self._send_status()
            self.stats.joins_sent += 1
        self.rx.offer(skb)

    def _on_poll(self, skb: SKBuff) -> None:
        self.stats.probes_rcvd += 1
        self._send_status(horizon=skb.seq)

    def _send_status(self, horizon: Optional[int] = None) -> None:
        if self._sender is None:
            return
        missing = 0
        if horizon is not None and seq_lt(self.rx.rcv_nxt, horizon) and \
                self.rx._ooo:
            # report a loss only on evidence (a buffered out-of-order
            # successor); a bare lag may simply be data in flight
            nxt_buffered = horizon
            for s in self.rx._ooo:
                if seq_gt(s, self.rx.rcv_nxt):
                    nxt_buffered = seq_min(nxt_buffered, s)
            missing = min(seq_sub(nxt_buffered, self.rx.rcv_nxt), 0xFFFF)
            missing = max(missing, 1)
        status = self.make_skb(BaselineType.STATUS, seq=self.rx.rcv_nxt,
                               rate_adv=missing, dport=self._sender[1])
        self.host.ip_send(status, self._sender[0])
        self.stats.updates_sent += 1

    # ------------------------------------------------------------------
    # dispatch & facade

    def segment_received(self, skb: SKBuff, src_addr: str) -> None:
        ptype = BaselineType(skb.ptype)
        if self.is_sender and ptype == BaselineType.STATUS:
            self._on_status(skb, src_addr)
        elif self.is_receiver and ptype == BaselineType.DATA:
            self._on_data(skb, src_addr)
        elif self.is_receiver and ptype == BaselineType.POLL:
            self._on_poll(skb)

    def recvmsg(self, max_bytes: int) -> list[Payload]:
        return self.rx.recvmsg(max_bytes)

    def at_eof(self) -> bool:
        return self.rx is not None and self.rx.at_eof()

    def _teardown(self) -> None:
        if self.is_receiver and self._sender is not None:
            # parting STATUS so the sender can release without polling us
            self._send_status()
        self.transmit_timer.del_timer()
        self.poll_timer.del_timer()


def open_polling_socket(host: Host, *, expected_receivers: int = 1,
                        sndbuf: int = 64 * 1024, rcvbuf: int = 64 * 1024,
                        **kw) -> Socket:
    return Socket(PollingTransport(host,
                                   expected_receivers=expected_receivers,
                                   sndbuf=sndbuf, rcvbuf=rcvbuf, **kw))
