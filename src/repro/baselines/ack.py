"""ACK-based reliable multicast (XTP / SCE style; paper section 1).

Every receiver returns a cumulative ACK for every data packet.  The
sender keeps a per-receiver cumulative acknowledgement mark and slides
its window on the *minimum* -- the slowest receiver paces the group.
A congestion window (bytes) grows by slow start / congestion avoidance
on full-window acknowledgement progress and collapses on retransmission
timeout, where the sender goes back to the slowest receiver's mark.

This is the protocol family whose feedback implosion motivates
NAK-based designs: with ``n`` receivers the sender processes ``n`` ACKs
per data packet, and the host CPU model charges for every one of them.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.baselines.common import (BaseTransport, BaselineType, FIN_FLAG,
                                    ReassemblyBuffer)
from repro.core.rtt import RttEstimator
from repro.core.seq import seq_add, seq_geq, seq_gt, seq_sub
from repro.kernel.host import Host
from repro.kernel.payload import Payload
from repro.kernel.skbuff import SKBuff
from repro.kernel.socket_api import Socket
from repro.sim.timer import JIFFY_US, Timer

__all__ = ["AckTransport", "open_ack_socket"]


class AckTransport(BaseTransport):
    def __init__(self, host: Host, *, expected_receivers: int = 1,
                 initial_rtt_us: int = 50_000, **kw):
        super().__init__(host, **kw)
        self.expected_receivers = expected_receivers
        self.rtt = RttEstimator(initial_rtt_us)
        # sender state
        self.snd_una = self.iss   # min cumulative ack over receivers
        self.snd_nxt = self.iss
        self._unsent: deque[SKBuff] = deque()
        self.cwnd = 2 * self.mss
        self.ssthresh = 1 << 30
        self._acked: dict[str, int] = {}     # receiver -> cumulative ack
        self.fin_seq: Optional[int] = None
        self.closing = False
        self._last_progress_us = 0
        self._rto_backoff = 1
        # receiver state
        self.rx: Optional[ReassemblyBuffer] = None
        self._sender: Optional[tuple[str, int]] = None
        self.transmit_timer = Timer(host.clock, self._tick, "ack-tx",
                                    event_class="jiffy-timer")
        self.rto_timer = Timer(host.clock, self._rto_fire, "ack-rto",
                               event_class="nak-repair-timer")

    # ------------------------------------------------------------------
    # sender

    def _sender_start(self) -> None:
        self.transmit_timer.mod_after(JIFFY_US)

    def sendmsg_some(self, payload: Payload) -> int:
        consumed = 0
        total = payload.length
        while consumed < total:
            chunk = min(self.mss, total - consumed)
            skb = self.make_skb(BaselineType.DATA, seq=self.snd_nxt,
                                length=chunk,
                                payload=payload.slice(consumed, chunk))
            if self.sock.wmem_free() < skb.truesize:
                break
            self.sock.write_queue.enqueue(skb)
            self._unsent.append(skb)
            self.snd_nxt = seq_add(self.snd_nxt, chunk)
            consumed += chunk
        if consumed and not self.transmit_timer.pending:
            self.transmit_timer.mod_after(0)
        return consumed

    def queue_fin(self) -> None:
        if self.fin_seq is not None:
            return
        skb = self.make_skb(BaselineType.DATA, seq=self.snd_nxt, length=1,
                            flags=FIN_FLAG)
        self.fin_seq = self.snd_nxt
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self.sock.write_queue.enqueue(skb)
        self._unsent.append(skb)
        self.closing = True
        if not self.transmit_timer.pending:
            self.transmit_timer.mod_after(0)

    @property
    def drained(self) -> bool:
        return len(self.sock.write_queue) == 0 and not self._unsent

    def _in_flight(self) -> int:
        return seq_sub(self.snd_nxt, self.snd_una) - sum(
            s.length for s in self._unsent)

    def _tick(self) -> None:
        now = self.sim.now
        ring = self.host.tx_space()
        while (self._unsent and ring > 0 and
               self._in_flight() + self._unsent[0].length <= self.cwnd):
            skb = self._unsent.popleft()
            self._emit(skb, now)
            ring -= 1
        if not self.rto_timer.pending and seq_gt(self.snd_nxt, self.snd_una):
            self.rto_timer.mod_after(self.rtt.rto_us * self._rto_backoff)
        if not (self.drained and self.closing):
            self.transmit_timer.mod_after(JIFFY_US)

    def _emit(self, skb: SKBuff, now: int, retrans: bool = False) -> None:
        skb.tries += 1
        skb.last_sent_us = now
        if skb.first_sent_us < 0:
            skb.first_sent_us = now
        self.host.ip_send(skb, self.sock.daddr)
        if retrans:
            self.stats.retrans_pkts += 1
            self.stats.retrans_bytes += skb.length
        else:
            self.stats.data_pkts_sent += 1
            self.stats.data_bytes_sent += skb.length

    def _rto_fire(self) -> None:
        """Timeout: collapse the window and go back to the slowest mark."""
        if self.snd_una == self.snd_nxt:
            return
        self.ssthresh = max(self.mss, self.cwnd // 2)
        self.cwnd = 2 * self.mss
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        now = self.sim.now
        ring = self.host.tx_space()
        budget = self.cwnd
        for skb in self.sock.write_queue:
            if ring <= 0 or budget < skb.length or skb.tries == 0:
                break
            self._emit(skb, now, retrans=True)
            budget -= skb.length
            ring -= 1
        self.rto_timer.mod_after(self.rtt.rto_us * self._rto_backoff)

    def _on_ack(self, skb: SKBuff, src: str) -> None:
        if src not in self._acked:
            return  # ACK from an unknown receiver (never joined)
        prev_min = self.snd_una
        if seq_gt(skb.seq, self._acked[src]):
            self._acked[src] = skb.seq
        if len(self._acked) < self.expected_receivers:
            return  # not everyone has joined yet; don't slide the window
        new_min = min(self._acked.values(),
                      key=lambda a: seq_sub(a, prev_min))
        if seq_gt(new_min, prev_min):
            advanced = seq_sub(new_min, prev_min)
            self.snd_una = new_min
            self._rto_backoff = 1
            self.rto_timer.del_timer()
            # congestion control on progress
            if self.cwnd < self.ssthresh:
                self.cwnd += min(advanced, self.mss)
            else:
                self.cwnd += max(1, self.mss * advanced // self.cwnd)
            # release acknowledged data
            released = False
            while self.sock.write_queue:
                head = self.sock.write_queue.peek()
                if not seq_geq(self.snd_una, head.end_seq):
                    break
                self.sock.write_queue.dequeue()
                released = True
            if released:
                self.sock.write_space.fire()
                if self.drained:
                    self.sock.state_change.fire()
            if not self.transmit_timer.pending:
                self.transmit_timer.mod_after(0)
        if skb.rate_adv and skb.rate_adv == skb.seq:
            pass  # reserved

    # ------------------------------------------------------------------
    # receiver

    def _receiver_start(self) -> None:
        self.rx = ReassemblyBuffer(self.sock, self.iss)

    def _on_data(self, skb: SKBuff, src: str) -> None:
        self.stats.data_pkts_rcvd += 1
        self.stats.data_bytes_rcvd += skb.length
        if self._sender is None:
            self._sender = (src, skb.sport)
            join = self.make_skb(BaselineType.JOIN, seq=self.iss,
                                 dport=skb.sport)
            self.host.ip_send(join, src)
            self.stats.joins_sent += 1
        self.rx.offer(skb)
        ack = self.make_skb(BaselineType.ACK, seq=self.rx.rcv_nxt,
                            dport=self._sender[1])
        self.host.ip_send(ack, self._sender[0])
        self.stats.updates_sent += 1  # ACKs counted as positive feedback

    # ------------------------------------------------------------------
    # dispatch & facade

    def segment_received(self, skb: SKBuff, src_addr: str) -> None:
        ptype = BaselineType(skb.ptype)
        if self.is_sender:
            if ptype == BaselineType.ACK:
                self.stats.updates_rcvd += 1
                self._on_ack(skb, src_addr)
            elif ptype == BaselineType.JOIN:
                self.stats.joins_rcvd += 1
                self._acked.setdefault(src_addr, self.iss)
                resp = self.make_skb(BaselineType.JOIN_RESPONSE,
                                     seq=self.snd_nxt, dport=skb.sport)
                self.host.ip_send(resp, src_addr)
        elif self.is_receiver:
            if ptype == BaselineType.DATA:
                self._on_data(skb, src_addr)

    def recvmsg(self, max_bytes: int) -> list[Payload]:
        return self.rx.recvmsg(max_bytes)

    def at_eof(self) -> bool:
        return self.rx is not None and self.rx.at_eof()

    def _teardown(self) -> None:
        self.transmit_timer.del_timer()
        self.rto_timer.del_timer()


def open_ack_socket(host: Host, *, expected_receivers: int = 1,
                    sndbuf: int = 64 * 1024,
                    rcvbuf: int = 64 * 1024) -> Socket:
    return Socket(AckTransport(host, expected_receivers=expected_receivers,
                               sndbuf=sndbuf, rcvbuf=rcvbuf))
