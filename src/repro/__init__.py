"""hrmc-repro: a reproduction of "H-RMC: A Hybrid Reliable Multicast
Protocol for the Linux Kernel" (McKinley, Rao & Wright, SC '99).

Top-level convenience exports; see the subpackages for the full API:

- :mod:`repro.core` -- the H-RMC protocol
- :mod:`repro.core.rmc` -- the original pure-NAK RMC baseline
- :mod:`repro.baselines` -- ACK-based, polling-based, TCP-like
- :mod:`repro.sim` / :mod:`repro.net` / :mod:`repro.kernel` -- substrate
- :mod:`repro.workloads` / :mod:`repro.harness` -- experiments
- :mod:`repro.trace` -- packet capture & analysis
"""

from repro.core import HRMCConfig, open_hrmc_socket
from repro.harness import TransferResult, run_transfer
from repro.core.rmc import open_rmc_socket
from repro.workloads import build_lan, build_wan

__version__ = "1.0.0"

__all__ = [
    "HRMCConfig",
    "open_hrmc_socket",
    "open_rmc_socket",
    "run_transfer",
    "TransferResult",
    "build_lan",
    "build_wan",
    "__version__",
]
