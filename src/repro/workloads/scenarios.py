"""Scenario builders: a network plus hosts, ready for a transfer.

Two scenario kinds cover the paper's evaluation:

* :func:`build_lan` -- the experimental testbed (shared Ethernet,
  Figures 10-13),
* :func:`build_wan` -- the simulation topology (characteristic groups,
  Figures 3, 15, 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.faults.plan import FaultPlan
from repro.kernel.host import CostModel, Host
from repro.net.addr import host_addr, mcast_addr
from repro.net.topology import (EthernetLanTopology, GroupSpec, Network,
                                WanTreeTopology)
from repro.sim.engine import Simulator

__all__ = ["Scenario", "LanScenario", "WanScenario", "build_lan",
           "build_wan", "build_chaos"]

SENDER_ADDR = "10.0.0.1"


@dataclass
class Scenario:
    """A built network with one sender host and N receiver hosts."""

    sim: Simulator
    network: Network
    sender: Host
    receivers: list[Host]
    bandwidth_bps: float
    group_addr: str = field(default_factory=lambda: mcast_addr(1))
    data_port: int = 6000
    sender_port: int = 5000
    # optional chaos: executed by the harness when set (see repro.faults)
    fault_plan: Optional[FaultPlan] = None

    @property
    def n_receivers(self) -> int:
        return len(self.receivers)


class LanScenario(Scenario):
    pass


class WanScenario(Scenario):
    pass


def build_lan(n_receivers: int, bandwidth_bps: float, *, seed: int = 0,
              cost: CostModel | None = None) -> LanScenario:
    """All hosts on one shared Ethernet segment."""
    sim = Simulator()
    lan = EthernetLanTopology(sim, bandwidth_bps, seed=seed)
    sender = Host(sim, lan, lan.make_nic(SENDER_ADDR), cost=cost)
    receivers = [
        Host(sim, lan, lan.make_nic(host_addr(0, i + 2)), cost=cost)
        for i in range(n_receivers)
    ]
    return LanScenario(sim=sim, network=lan, sender=sender,
                       receivers=receivers, bandwidth_bps=bandwidth_bps)


def build_wan(group_specs: list[GroupSpec], bandwidth_bps: float, *,
              seed: int = 0, cost: CostModel | None = None,
              symmetric_loss: bool = True) -> WanScenario:
    """Sender behind a backbone; one receiver per entry in
    ``group_specs``, placed in that entry's characteristic group."""
    sim = Simulator()
    wan = WanTreeTopology(sim, bandwidth_bps, seed=seed,
                          symmetric_loss=symmetric_loss)
    sender = Host(sim, wan, wan.add_sender(SENDER_ADDR), cost=cost)
    receivers = []
    site_count: dict[str, int] = {}
    site_ids: dict[str, int] = {}
    for spec in group_specs:
        if spec.name not in site_ids:
            site_ids[spec.name] = len(site_ids) + 1
        site = site_ids[spec.name]
        idx = site_count.get(spec.name, 0) + 1
        site_count[spec.name] = idx
        nic = wan.add_receiver(host_addr(site, idx), spec)
        receivers.append(Host(sim, wan, nic, cost=cost))
    return WanScenario(sim=sim, network=wan, sender=sender,
                       receivers=receivers, bandwidth_bps=bandwidth_bps)


def build_chaos(n_receivers: int, bandwidth_bps: float, *, seed: int,
                horizon_us: int = 2_000_000, allow_crash: bool = True,
                max_outage_us: Optional[int] = None,
                cost: CostModel | None = None) -> LanScenario:
    """A LAN scenario carrying a seed-random :class:`FaultPlan` sized to
    a transfer that takes roughly ``horizon_us`` of simulated time.
    The same seed drives both the topology and the plan, so one integer
    reproduces the whole chaotic run."""
    scenario = build_lan(n_receivers, bandwidth_bps, seed=seed, cost=cost)
    scenario.fault_plan = FaultPlan.random(
        seed, n_receivers=n_receivers, horizon_us=horizon_us,
        allow_crash=allow_crash, max_outage_us=max_outage_us)
    return scenario
