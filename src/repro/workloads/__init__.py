"""Workload definitions: characteristic groups and scenario builders."""

from repro.workloads.groups import (GROUP_A, GROUP_B, GROUP_C, TEST_CASES,
                                    expand_test_case)
from repro.workloads.scenarios import (LanScenario, WanScenario, Scenario,
                                       build_lan, build_wan)

__all__ = [
    "GROUP_A", "GROUP_B", "GROUP_C", "TEST_CASES", "expand_test_case",
    "Scenario", "LanScenario", "WanScenario", "build_lan", "build_wan",
]
