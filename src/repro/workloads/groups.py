"""Characteristic groups and test cases (paper Figure 14).

Groups::

    Group   Delay     Loss Rate
    A       2 ms      0.005 %      (local-area environment)
    B       20 ms     0.5 %        (metropolitan-area environment)
    C       100 ms    2 %          (wide-area environment)

Test cases (receiver populations)::

    Test 1  all in A
    Test 2  all in B
    Test 3  all in C
    Test 4  80 % in B, 20 % in C
    Test 5  20 % in B, 80 % in C

90 % of each group's loss is correlated (applied at the group router,
before multicast duplication) and 10 % uncorrelated (at each receiver's
interface), following the Towsley et al. observation the paper cites
that most loss occurs on tail links.
"""

from __future__ import annotations

from repro.net.topology import GroupSpec

__all__ = ["GROUP_A", "GROUP_B", "GROUP_C", "TEST_CASES",
           "expand_test_case", "LOSS_BY_ENV"]

GROUP_A = GroupSpec("A", delay_us=2_000, loss_rate=0.00005)
GROUP_B = GroupSpec("B", delay_us=20_000, loss_rate=0.005)
GROUP_C = GroupSpec("C", delay_us=100_000, loss_rate=0.02)

#: Figure 14(b): test case -> (group, fraction of receivers)
TEST_CASES: dict[int, list[tuple[GroupSpec, float]]] = {
    1: [(GROUP_A, 1.0)],
    2: [(GROUP_B, 1.0)],
    3: [(GROUP_C, 1.0)],
    4: [(GROUP_B, 0.8), (GROUP_C, 0.2)],
    5: [(GROUP_B, 0.2), (GROUP_C, 0.8)],
}

#: Loss rates of the Figure 3 simulation study, by environment name.
LOSS_BY_ENV = {"LAN": 0.00005, "MAN": 0.005, "WAN": 0.02}


def expand_test_case(test: int, n_receivers: int) -> list[GroupSpec]:
    """Expand a test case into one GroupSpec per receiver."""
    mix = TEST_CASES[test]
    out: list[GroupSpec] = []
    for spec, frac in mix:
        out.extend([spec] * round(frac * n_receivers))
    # rounding guard: pad/trim with the last group's spec
    while len(out) < n_receivers:
        out.append(mix[-1][0])
    return out[:n_receivers]
