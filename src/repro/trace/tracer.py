"""Per-host packet capture.

Attaches to the packet tap of :class:`repro.kernel.host.Host` and
records one :class:`TraceEvent` per segment sent or received by that
host.  Capture is observational: the protocol under trace is unchanged
(events are plain records, segments are not copied).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Optional

from repro.core.types import PacketType
from repro.kernel.host import Host
from repro.kernel.skbuff import SKBuff

__all__ = ["TraceEvent", "PacketTracer", "load_trace", "trace_meta"]


@dataclass(frozen=True)
class TraceEvent:
    """One captured segment."""

    t_us: int
    host: str
    direction: str       # "tx" | "rx"
    peer: str            # destination (tx) or source (rx) address
    ptype: int
    seq: int
    length: int
    rate_adv: int
    tries: int
    flags: int

    @property
    def type_name(self) -> str:
        try:
            return PacketType(self.ptype).name
        except ValueError:
            return f"type{self.ptype}"

    @property
    def is_retransmission(self) -> bool:
        return self.ptype == PacketType.DATA and self.tries > 1


class PacketTracer:
    """Capture traffic at one or more hosts.

    >>> tracer = PacketTracer()
    >>> tracer.attach(scenario.sender, *scenario.receivers)
    >>> ... run the simulation ...
    >>> events = tracer.events
    >>> tracer.save("run.trace.jsonl")

    With ``ring=True`` the capture keeps only the most recent
    ``max_events`` records (a flight recorder for long chaos runs)
    instead of truncating at the cap; ``dropped`` counts records lost
    off either end.  ``listeners`` are invoked for every event before
    it is stored, independent of any cap, so online consumers (e.g. the
    invariant checker or the observability layer) always see the full
    stream.  ``raw_listeners`` additionally receive the live ``SKBuff``
    (read-only), for consumers that need segment bookkeeping the
    :class:`TraceEvent` record does not carry (e.g. NIC wire-departure
    stamps for span stitching).
    """

    def __init__(self, *, max_events: Optional[int] = None,
                 ring: bool = False):
        if ring and max_events is None:
            raise ValueError("ring=True requires max_events")
        self.events: "list[TraceEvent] | deque[TraceEvent]" = \
            deque(maxlen=max_events) if ring else []
        self.ring = ring
        self.max_events = max_events
        self.dropped = 0
        self.listeners: list[Callable[[TraceEvent], None]] = []
        self.raw_listeners: list[Callable[[TraceEvent, SKBuff], None]] = []
        self._hosts: list[Host] = []

    def attach(self, *hosts: Host) -> "PacketTracer":
        for host in hosts:
            if host.tap is not None:
                raise RuntimeError(f"{host.name} already has a tap")
            host.tap = self._make_tap(host)
            self._hosts.append(host)
        return self

    def detach(self) -> None:
        for host in self._hosts:
            host.tap = None
        self._hosts.clear()

    def _make_tap(self, host: Host):
        name = host.addr

        def tap(direction: str, skb: SKBuff, peer: str, now: int) -> None:
            ev = TraceEvent(
                t_us=now, host=name, direction=direction, peer=peer,
                ptype=int(skb.ptype), seq=skb.seq, length=skb.length,
                rate_adv=skb.rate_adv, tries=skb.tries, flags=skb.flags)
            for listener in self.listeners:
                listener(ev)
            for raw in self.raw_listeners:
                raw(ev, skb)
            if self.max_events is not None and \
                    len(self.events) >= self.max_events:
                # list mode drops the new event; ring mode (deque with
                # maxlen) evicts the oldest -- count the loss either way
                self.dropped += 1
                if not self.ring:
                    return
            self.events.append(ev)

        return tap

    def add_listener(self, fn: Callable[[TraceEvent], None]) -> None:
        """Call ``fn(event)`` for every captured event (before storage)."""
        self.listeners.append(fn)

    def add_raw_listener(self,
                         fn: Callable[[TraceEvent, SKBuff], None]) -> None:
        """Call ``fn(event, skb)`` for every captured event.  The skb is
        the live segment -- listeners must treat it as read-only."""
        self.raw_listeners.append(fn)

    def recent(self, n: int = 20) -> list[TraceEvent]:
        """The last ``n`` captured events (most recent last)."""
        if n <= 0:
            return []
        return list(self.events)[-n:]

    # -- persistence ------------------------------------------------------

    def save(self, path: str) -> int:
        """Write the capture as JSON lines; returns the event count.

        Events are emitted in time order (a ring capture whose contents
        were assembled across evictions is re-sorted, stably, to be
        safe), and a truncated capture leads with a ``_meta`` line
        recording how many records were lost, so replay tooling knows
        the head of the run is missing.
        """
        events = sorted(self.events, key=lambda e: e.t_us)
        with open(path, "w") as fh:
            if self.dropped:
                meta = {"_meta": {"truncated": True, "ring": self.ring,
                                  "dropped": self.dropped}}
                fh.write(json.dumps(meta, separators=(",", ":")))
                fh.write("\n")
            for ev in events:
                fh.write(json.dumps(asdict(ev), separators=(",", ":")))
                fh.write("\n")
        return len(events)

    # -- convenience filters ------------------------------------------------

    def at_host(self, addr: str) -> list[TraceEvent]:
        return [e for e in self.events if e.host == addr]

    def of_type(self, ptype: PacketType) -> list[TraceEvent]:
        return [e for e in self.events if e.ptype == int(ptype)]


def load_trace(path: str) -> list[TraceEvent]:
    """Read a JSON-lines capture produced by :meth:`PacketTracer.save`.

    Tolerates flight-recorder captures: a leading ``_meta`` line (ring
    truncation marker) is skipped, unknown fields from newer writers are
    ignored, and out-of-order records are re-sorted so downstream
    analyzers always see a time-ordered stream even when the first
    events of the run are missing.
    """
    fields = {f for f in TraceEvent.__dataclass_fields__}
    out: list[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "_meta" in record:
                continue
            out.append(TraceEvent(**{k: v for k, v in record.items()
                                     if k in fields}))
    out.sort(key=lambda e: e.t_us)
    return out


def trace_meta(path: str) -> Optional[dict]:
    """The ``_meta`` record of a saved capture, or ``None`` if the
    capture is complete (no truncation marker)."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                record = json.loads(line)
                return record.get("_meta")
    return None
