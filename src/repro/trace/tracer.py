"""Per-host packet capture.

Attaches to the packet tap of :class:`repro.kernel.host.Host` and
records one :class:`TraceEvent` per segment sent or received by that
host.  Capture is observational: the protocol under trace is unchanged
(events are plain records, segments are not copied).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Optional

from repro.core.types import PacketType
from repro.kernel.host import Host
from repro.kernel.skbuff import SKBuff

__all__ = ["TraceEvent", "PacketTracer", "load_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One captured segment."""

    t_us: int
    host: str
    direction: str       # "tx" | "rx"
    peer: str            # destination (tx) or source (rx) address
    ptype: int
    seq: int
    length: int
    rate_adv: int
    tries: int
    flags: int

    @property
    def type_name(self) -> str:
        try:
            return PacketType(self.ptype).name
        except ValueError:
            return f"type{self.ptype}"

    @property
    def is_retransmission(self) -> bool:
        return self.ptype == PacketType.DATA and self.tries > 1


class PacketTracer:
    """Capture traffic at one or more hosts.

    >>> tracer = PacketTracer()
    >>> tracer.attach(scenario.sender, *scenario.receivers)
    >>> ... run the simulation ...
    >>> events = tracer.events
    >>> tracer.save("run.trace.jsonl")

    With ``ring=True`` the capture keeps only the most recent
    ``max_events`` records (a flight recorder for long chaos runs)
    instead of truncating at the cap.  ``listeners`` are invoked for
    every event before it is stored, independent of any cap, so online
    consumers (e.g. the invariant checker) always see the full stream.
    """

    def __init__(self, *, max_events: Optional[int] = None,
                 ring: bool = False):
        if ring and max_events is None:
            raise ValueError("ring=True requires max_events")
        self.events: "list[TraceEvent] | deque[TraceEvent]" = \
            deque(maxlen=max_events) if ring else []
        self.ring = ring
        self.max_events = max_events
        self.dropped = 0
        self.listeners: list[Callable[[TraceEvent], None]] = []
        self._hosts: list[Host] = []

    def attach(self, *hosts: Host) -> "PacketTracer":
        for host in hosts:
            if host.tap is not None:
                raise RuntimeError(f"{host.name} already has a tap")
            host.tap = self._make_tap(host)
            self._hosts.append(host)
        return self

    def detach(self) -> None:
        for host in self._hosts:
            host.tap = None
        self._hosts.clear()

    def _make_tap(self, host: Host):
        name = host.addr

        def tap(direction: str, skb: SKBuff, peer: str, now: int) -> None:
            ev = TraceEvent(
                t_us=now, host=name, direction=direction, peer=peer,
                ptype=int(skb.ptype), seq=skb.seq, length=skb.length,
                rate_adv=skb.rate_adv, tries=skb.tries, flags=skb.flags)
            for listener in self.listeners:
                listener(ev)
            if not self.ring and self.max_events is not None and \
                    len(self.events) >= self.max_events:
                self.dropped += 1
                return
            self.events.append(ev)

        return tap

    def add_listener(self, fn: Callable[[TraceEvent], None]) -> None:
        """Call ``fn(event)`` for every captured event (before storage)."""
        self.listeners.append(fn)

    def recent(self, n: int = 20) -> list[TraceEvent]:
        """The last ``n`` captured events (most recent last)."""
        if n <= 0:
            return []
        return list(self.events)[-n:]

    # -- persistence ------------------------------------------------------

    def save(self, path: str) -> int:
        """Write the capture as JSON lines; returns the event count."""
        with open(path, "w") as fh:
            for ev in self.events:
                fh.write(json.dumps(asdict(ev), separators=(",", ":")))
                fh.write("\n")
        return len(self.events)

    # -- convenience filters ------------------------------------------------

    def at_host(self, addr: str) -> list[TraceEvent]:
        return [e for e in self.events if e.host == addr]

    def of_type(self, ptype: PacketType) -> list[TraceEvent]:
        return [e for e in self.events if e.ptype == int(ptype)]


def load_trace(path: str) -> list[TraceEvent]:
    """Read a JSON-lines capture produced by :meth:`PacketTracer.save`."""
    out: list[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent(**json.loads(line)))
    return out
