"""Packet tracing and offline analysis.

A :class:`~repro.trace.tracer.PacketTracer` taps one or more hosts and
records every transport segment they send or receive -- the simulated
equivalent of running tcpdump on each machine of the testbed.  Traces
can be saved to JSON-lines files and analyzed offline with
:mod:`repro.trace.analyzer`: per-type summaries, retransmission ratios,
throughput timelines and sequence-progress views.
"""

from repro.trace.tracer import (PacketTracer, TraceEvent, load_trace,
                                trace_meta)
from repro.trace.analyzer import (load_capture, packet_summary,
                                  throughput_timeline, sequence_progress,
                                  sparkline, feedback_latency)

__all__ = [
    "PacketTracer", "TraceEvent", "load_trace", "trace_meta",
    "load_capture", "packet_summary", "throughput_timeline",
    "sequence_progress", "sparkline", "feedback_latency",
]
