"""Offline analysis of packet captures.

Pure functions over lists of :class:`~repro.trace.tracer.TraceEvent`;
NumPy is used for the timeline bucketing so multi-million-event traces
stay fast.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.types import PacketType
from repro.trace.tracer import TraceEvent, load_trace, trace_meta

__all__ = ["load_capture", "packet_summary", "throughput_timeline",
           "sequence_progress", "sparkline", "feedback_latency"]

_BARS = "▁▂▃▄▅▆▇█"


def load_capture(path: str) -> tuple[list[TraceEvent], Optional[dict]]:
    """Load a saved capture together with its ``_meta`` record.

    Returns ``(events, meta)`` where ``meta`` is the truncation marker
    dict written by :meth:`PacketTracer.save` (``{"truncated": True,
    "ring": ..., "dropped": N}``) or ``None`` for a complete capture.
    Analysis of a truncated capture is analysis of a *suffix* of the
    run -- pass ``meta`` on to :func:`packet_summary` so the gap is
    surfaced in the output rather than silently folded into the stats.
    """
    return load_trace(path), trace_meta(path)


def packet_summary(events: Sequence[TraceEvent],
                   meta: Optional[dict] = None) -> dict[str, dict]:
    """Per-packet-type counts and bytes, plus retransmission stats.

    ``meta`` is the capture's ``_meta`` record (see
    :func:`load_capture`); a truncated capture is surfaced as a
    ``"_capture"`` entry so counts are read as lower bounds.
    """
    out: dict[str, dict] = defaultdict(lambda: {"count": 0, "bytes": 0})
    retrans = {"count": 0, "bytes": 0}
    for ev in events:
        if ev.direction != "tx":
            continue
        entry = out[ev.type_name]
        entry["count"] += 1
        # only DATA carries payload; control packets reuse the length
        # field for range bookkeeping
        if ev.ptype == int(PacketType.DATA):
            entry["bytes"] += ev.length
            if ev.is_retransmission:
                retrans["count"] += 1
                retrans["bytes"] += ev.length
    result = dict(out)
    data = result.get("DATA", {"count": 0, "bytes": 0})
    result["_retransmissions"] = dict(
        retrans,
        ratio=(retrans["count"] / data["count"] if data["count"] else 0.0))
    if meta is not None and meta.get("truncated"):
        result["_capture"] = {"truncated": True,
                              "dropped": int(meta.get("dropped", 0)),
                              "ring": bool(meta.get("ring", False))}
    return result


def throughput_timeline(events: Sequence[TraceEvent], *,
                        bucket_us: int = 100_000, host: Optional[str] = None,
                        direction: str = "rx") -> tuple[np.ndarray, np.ndarray]:
    """(bucket_start_us, bytes_per_second) series of DATA goodput."""
    ts, sizes = [], []
    for ev in events:
        if ev.direction != direction or ev.ptype != int(PacketType.DATA):
            continue
        if host is not None and ev.host != host:
            continue
        ts.append(ev.t_us)
        sizes.append(ev.length)
    if not ts:
        return np.array([], dtype=np.int64), np.array([])
    t = np.asarray(ts, dtype=np.int64)
    s = np.asarray(sizes, dtype=np.float64)
    start = int(t.min()) - int(t.min()) % bucket_us
    idx = (t - start) // bucket_us
    nbuckets = int(idx.max()) + 1
    per_bucket = np.bincount(idx, weights=s, minlength=nbuckets)
    times = start + np.arange(nbuckets, dtype=np.int64) * bucket_us
    return times, per_bucket * (1e6 / bucket_us)


def sequence_progress(events: Sequence[TraceEvent], host: str
                      ) -> tuple[np.ndarray, np.ndarray]:
    """(t_us, highest end-seq seen) at a receiving host -- the stream's
    forward progress, flat spots marking recovery stalls."""
    ts, seqs = [], []
    high = 0
    for ev in events:
        if ev.host != host or ev.direction != "rx" or \
                ev.ptype != int(PacketType.DATA):
            continue
        end = ev.seq + ev.length
        if end > high:
            high = end
            ts.append(ev.t_us)
            seqs.append(high)
    return np.asarray(ts, dtype=np.int64), np.asarray(seqs, dtype=np.int64)


def feedback_latency(events: Sequence[TraceEvent], *,
                     sender: str) -> dict[str, float]:
    """Mean time from a NAK arriving at the sender to the first
    retransmission covering its range leaving the sender (repair
    service latency, in microseconds)."""
    naks = [(e.t_us, e.seq) for e in events
            if e.host == sender and e.direction == "rx"
            and e.ptype == int(PacketType.NAK)]
    retr = [(e.t_us, e.seq, e.seq + e.length) for e in events
            if e.host == sender and e.direction == "tx"
            and e.is_retransmission]
    if not naks or not retr:
        return {"samples": 0, "mean_us": 0.0, "max_us": 0.0}
    lats = []
    ri = 0
    for t_nak, seq in naks:
        for t_r, s, e in retr:
            if t_r >= t_nak and s <= seq < e:
                lats.append(t_r - t_nak)
                break
    if not lats:
        return {"samples": 0, "mean_us": 0.0, "max_us": 0.0}
    arr = np.asarray(lats, dtype=np.float64)
    return {"samples": len(arr), "mean_us": float(arr.mean()),
            "max_us": float(arr.max())}


def sparkline(values: Iterable[float], width: int = 60) -> str:
    """Render a series as a unicode sparkline (terminal-friendly)."""
    vals = np.asarray(list(values), dtype=np.float64)
    if vals.size == 0:
        return ""
    if vals.size > width:
        # average down to `width` buckets
        edges = np.linspace(0, vals.size, width + 1).astype(int)
        vals = np.asarray([vals[a:b].mean() if b > a else 0.0
                           for a, b in zip(edges, edges[1:])])
    lo, hi = float(vals.min()), float(vals.max())
    if hi <= lo:
        return _BARS[0] * vals.size
    scaled = (vals - lo) / (hi - lo) * (len(_BARS) - 1)
    return "".join(_BARS[int(round(v))] for v in scaled)
