"""Worker side of the fleet: build a world from a RunSpec, run it.

:func:`execute_spec` is the single execution path for every mode --
in-process serial runs, pool workers, and cache misses all call it.  It
constructs the scenario, configuration and transfer *only* from the
spec (no ambient state), runs the simulation, and returns the
JSON-canonical summary dict.  Keeping the return value JSON-round-
tripped means the multiprocess, serial and warm-cache paths hand the
aggregation layer bit-identical data.
"""

from __future__ import annotations

import json
import signal
from dataclasses import replace
from types import FrameType
from typing import Any, Optional, Union

from repro.fleet.spec import RunSpec
from repro.fleet.summary import RunSummary, summarize_result

__all__ = ["execute_spec", "run_spec", "JobTimeout"]


class JobTimeout(Exception):
    """A job exceeded its per-run wall-clock budget."""


def _build_scenario(spec: RunSpec) -> Any:
    from repro.workloads.groups import GROUP_A, GROUP_B, GROUP_C, \
        expand_test_case
    from repro.workloads.scenarios import build_chaos, build_lan, build_wan

    p = spec.scenario_params
    if spec.scenario == "lan":
        return build_lan(p["receivers"], p["bandwidth_bps"],
                         seed=p["seed"])
    if spec.scenario == "wan":
        if "test" in p:
            groups = expand_test_case(p["test"], p["receivers"])
        else:
            by_name = {g.name: g for g in (GROUP_A, GROUP_B, GROUP_C)}
            try:
                groups = [by_name[name] for name in p["groups"]]
            except KeyError as exc:
                raise ValueError(f"unknown characteristic group "
                                 f"{exc.args[0]!r}") from None
        return build_wan(groups, p["bandwidth_bps"], seed=p["seed"])
    if spec.scenario == "chaos":
        return build_chaos(p["receivers"], p["bandwidth_bps"],
                           seed=p["seed"], horizon_us=p["horizon_us"])
    raise ValueError(f"unknown scenario {spec.scenario!r}")


def _build_config(spec: RunSpec) -> Any:
    from repro.core.config import HRMCConfig

    if not spec.cfg:
        return None
    delta = dict(spec.cfg)
    cfg = HRMCConfig()
    if delta.pop("_rmc", False):
        cfg = cfg.as_rmc()
    try:
        return replace(cfg, **delta)
    except TypeError as exc:
        raise ValueError(f"bad config delta for {spec.describe()}: "
                         f"{exc}") from None


def run_spec(spec: RunSpec) -> RunSummary:
    """Execute one spec and return the :class:`RunSummary` (objects,
    not wire format); the world is built from the spec alone."""
    from repro.harness.runner import run_transfer

    scenario = _build_scenario(spec)
    cfg = _build_config(spec)
    obs = None
    perf = None
    if spec.obs or spec.perf or spec.health:
        from repro.obs import Observability
        if spec.perf:
            # tax table only: flamegraph stacks would bloat the cached
            # summary (sample_every=0 disables the stack sampler)
            from repro.obs.perf import PerfObservatory
            perf = PerfObservatory(sample_every=0)
        obs = Observability(perf=perf, health=spec.health)
    result = run_transfer(
        scenario, nbytes=spec.nbytes, protocol=spec.protocol,
        sndbuf=spec.sndbuf, rcvbuf=spec.rcvbuf, cfg=cfg, disk=spec.disk,
        max_sim_s=spec.max_sim_s, invariants=spec.invariants, obs=obs)
    plan = getattr(scenario, "fault_plan", None)
    return summarize_result(
        result, plan_actions=len(plan) if plan is not None else 0,
        obs_tables=obs.summary_tables() if obs is not None and spec.obs
        else None,
        perf=perf.bench_payload() if perf is not None else None,
        health=obs.health.payload()
        if obs is not None and obs.health is not None else None)


def execute_spec(spec_dict: dict,
                 timeout_s: Optional[float] = None) -> dict:
    """Pool entry point: spec dict in, canonical summary dict out.

    ``timeout_s`` arms a per-job wall-clock alarm (POSIX main thread
    only); expiry raises :class:`JobTimeout`, which the executor treats
    like any other job failure (bounded retries, then reported).
    """
    spec = RunSpec.from_dict(spec_dict)
    use_alarm = (timeout_s is not None and hasattr(signal, "SIGALRM"))
    old_handler: Union[None, int, object] = None
    if use_alarm:
        def _expired(signum: int, frame: Optional[FrameType]) -> None:
            raise JobTimeout(f"job exceeded {timeout_s:g}s wall clock: "
                             f"{spec.describe()}")
        try:
            old_handler = signal.signal(signal.SIGALRM, _expired)
            signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
        except ValueError:          # not the main thread
            use_alarm = False
    try:
        summary = run_spec(spec)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
    # one canonical representation for every execution path
    return json.loads(json.dumps(summary.to_dict(), sort_keys=True))
