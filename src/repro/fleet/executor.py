"""Fault-tolerant parallel executor for RunSpec grids.

:class:`Fleet` fans a list of :class:`RunSpec` jobs out over a
process pool (forkserver where available, so workers start from a
clean interpreter) with:

* a content-addressed result cache consulted before any execution,
* per-job wall-clock timeouts (armed inside the worker),
* bounded retries with exponential backoff,
* crashed-worker recovery -- a broken pool is rebuilt and the
  incomplete jobs requeued,
* deterministic output: results are keyed by spec hash and returned in
  submission order, independent of completion order, and every
  execution path (serial, parallel, cached) flows through the same
  canonical summary dicts, so aggregates are byte-identical.

Progress (completed / running / cached / failed) is reported on stderr
when ``progress=True``.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, wait)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Optional

from repro.fleet.fingerprint import code_fingerprint
from repro.fleet.spec import RunSpec
from repro.fleet.store import ResultStore
from repro.fleet.summary import RunSummary
from repro.fleet.worker import execute_spec

__all__ = ["Fleet", "FleetError", "FleetStats"]


class FleetError(RuntimeError):
    """Raised when jobs are still failing after every retry."""


@dataclass
class FleetStats:
    """What one :meth:`Fleet.run_specs` sweep did."""

    runs: int = 0            # unique specs requested
    executed: int = 0        # simulations actually run
    cached: int = 0          # served from the store
    failed: int = 0          # gave up after retries
    retries: int = 0         # re-submissions after a failure
    pool_restarts: int = 0   # broken pools rebuilt
    wall_s: float = 0.0
    store: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        d = {"runs": self.runs, "executed": self.executed,
             "cached": self.cached, "failed": self.failed,
             "retries": self.retries,
             "pool_restarts": self.pool_restarts,
             "wall_s": round(self.wall_s, 3)}
        if self.store:
            d["store"] = dict(self.store)
        return d

    def render(self) -> str:
        bits = [f"{self.runs} runs", f"{self.cached} cached",
                f"{self.executed} executed"]
        if self.retries:
            bits.append(f"{self.retries} retries")
        if self.pool_restarts:
            bits.append(f"{self.pool_restarts} pool restarts")
        if self.failed:
            bits.append(f"{self.failed} FAILED")
        return f"fleet: {', '.join(bits)} in {self.wall_s:.1f}s"


class _Progress:
    """One-line live counter on stderr (overwritten in place)."""

    def __init__(self, enabled: bool, total: int) -> None:
        self.enabled = enabled and total > 0
        self.total = total
        self._dirty = False

    def update(self, done: int, running: int, cached: int,
               failed: int) -> None:
        if not self.enabled:
            return
        line = (f"fleet: {done}/{self.total} done "
                f"({cached} cached, {running} running"
                + (f", {failed} failed" if failed else "") + ")")
        print(f"\r{line:<70}", end="", file=sys.stderr, flush=True)
        self._dirty = True

    def finish(self) -> None:
        if self.enabled and self._dirty:
            print(file=sys.stderr, flush=True)


def _mp_context() -> multiprocessing.context.BaseContext:
    # fork: cheap worker start and no __main__ re-import requirement.
    # Job isolation does not depend on process hygiene -- the worker
    # rebuilds the whole world from the spec (regression-tested) -- so
    # inheriting the parent image is safe.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class Fleet:
    """Executor for RunSpec grids; construct once, run many sweeps.

    ``workers=1`` (the default) runs jobs in-process through the very
    same worker entry point the pool uses; ``cache_dir=None`` disables
    the result store entirely (every job executes).
    """

    def __init__(self, *, workers: int = 1,
                 cache_dir: Optional[str] = None,
                 refresh: bool = False,
                 timeout_s: Optional[float] = 900.0,
                 retries: int = 2, backoff_s: float = 0.25,
                 progress: bool = False) -> None:
        self.workers = max(1, int(workers))
        self.refresh = refresh
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.progress = progress
        self.fingerprint = code_fingerprint()
        self.store = (ResultStore(cache_dir, self.fingerprint)
                      if cache_dir else None)
        self.stats = FleetStats()

    # -- public API ----------------------------------------------------

    def run_specs(self, specs: list[RunSpec], *,
                  strict: bool = True) -> dict[str, RunSummary]:
        """Execute ``specs``; returns ``{content_hash: RunSummary}`` in
        submission order.  With ``strict`` (default), any job that
        still fails after the retry budget raises :class:`FleetError`
        naming every failed spec (after the rest of the sweep has
        completed, so partial results land in the cache)."""
        t0 = time.perf_counter()
        ordered: list[RunSpec] = []
        seen: set[str] = set()
        for spec in specs:
            h = spec.content_hash()
            if h not in seen:
                seen.add(h)
                ordered.append(spec)
        self.stats.runs += len(ordered)

        results: dict[str, RunSummary] = {}
        errors: dict[str, str] = {}
        pending: list[RunSpec] = []
        for spec in ordered:
            cached = None
            if self.store is not None and not self.refresh:
                cached = self.store.get(spec)
            if cached is not None:
                results[spec.content_hash()] = cached
                self.stats.cached += 1
            else:
                pending.append(spec)

        progress = _Progress(self.progress, len(ordered))
        progress.update(len(results), 0, self.stats.cached, 0)
        try:
            if pending:
                if self.workers == 1:
                    self._run_serial(pending, results, errors, progress)
                else:
                    self._run_pool(pending, results, errors, progress)
        finally:
            progress.finish()
            self.stats.wall_s += time.perf_counter() - t0
            if self.store is not None:
                self.stats.store = self.store.stats.as_dict()

        if errors and strict:
            lines = "\n".join(f"  {h[:12]}: {msg}"
                              for h, msg in sorted(errors.items()))
            raise FleetError(
                f"{len(errors)} job(s) failed after "
                f"{self.retries} retries:\n{lines}")
        # submission order, not completion order
        return {s.content_hash(): results[s.content_hash()]
                for s in ordered if s.content_hash() in results}

    # -- execution paths -----------------------------------------------

    def _record(self, spec: RunSpec, summary_dict: dict,
                results: dict[str, RunSummary]) -> None:
        if self.store is not None:
            self.store.put(spec, summary_dict)
        results[spec.content_hash()] = RunSummary.from_dict(summary_dict)
        self.stats.executed += 1

    def _run_serial(self, pending: list[RunSpec],
                    results: dict[str, RunSummary],
                    errors: dict[str, str],
                    progress: _Progress) -> None:
        done = len(results)
        for spec in pending:
            attempts = 0
            while True:
                try:
                    progress.update(done, 1, self.stats.cached,
                                    self.stats.failed)
                    self._record(spec, execute_spec(spec.to_dict(),
                                                    self.timeout_s),
                                 results)
                    done += 1
                    break
                except Exception as exc:  # noqa: BLE001 - job boundary
                    attempts += 1
                    if attempts > self.retries:
                        errors[spec.content_hash()] = \
                            f"{spec.describe()}: {exc}"
                        self.stats.failed += 1
                        break
                    self.stats.retries += 1
                    time.sleep(self.backoff_s * (2 ** (attempts - 1)))
            progress.update(done, 0, self.stats.cached, self.stats.failed)

    def _run_pool(self, pending: list[RunSpec],
                  results: dict[str, RunSummary],
                  errors: dict[str, str],
                  progress: _Progress) -> None:
        ctx = _mp_context()
        pool = ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=ctx)
        attempts: dict[str, int] = {}
        # jobs whose backoff has not elapsed yet: [(ready_at, spec)]
        backlog: list[tuple[float, RunSpec]] = []
        inflight: dict[Future, RunSpec] = {}
        queue = list(pending)
        done = len(results)
        max_pool_restarts = self.workers + 2
        try:
            while queue or inflight or backlog:
                now = time.monotonic()
                ready = [s for t, s in backlog if t <= now]
                backlog = [(t, s) for t, s in backlog if t > now]
                queue.extend(ready)
                while queue:
                    spec = queue.pop(0)
                    try:
                        fut = pool.submit(execute_spec, spec.to_dict(),
                                          self.timeout_s)
                    except (BrokenProcessPool, RuntimeError):
                        pool, queue, inflight = self._rebuild_pool(
                            pool, ctx, spec, queue, inflight,
                            max_pool_restarts)
                        continue
                    inflight[fut] = spec
                progress.update(done, len(inflight), self.stats.cached,
                                self.stats.failed)
                if not inflight:
                    if backlog:
                        time.sleep(max(0.0, min(t for t, _ in backlog)
                                       - time.monotonic()))
                    continue
                completed, _ = wait(list(inflight),
                                    return_when=FIRST_COMPLETED,
                                    timeout=0.5)
                for fut in completed:
                    spec = inflight.pop(fut, None)
                    if spec is None:  # orphaned by a pool rebuild
                        continue
                    try:
                        summary_dict = fut.result()
                    except BrokenProcessPool:
                        # the worker died (OOM-kill, segfault, ...):
                        # rebuild the pool and requeue everything that
                        # was in flight, this job included; remaining
                        # futures of the dead pool are orphaned above
                        pool, queue, inflight = self._rebuild_pool(
                            pool, ctx, spec, queue, inflight,
                            max_pool_restarts)
                        break
                    except Exception as exc:  # noqa: BLE001
                        h = spec.content_hash()
                        attempts[h] = attempts.get(h, 0) + 1
                        if attempts[h] > self.retries:
                            errors[h] = f"{spec.describe()}: {exc}"
                            self.stats.failed += 1
                        else:
                            self.stats.retries += 1
                            delay = self.backoff_s * \
                                (2 ** (attempts[h] - 1))
                            backlog.append((time.monotonic() + delay,
                                            spec))
                        continue
                    self._record(spec, summary_dict, results)
                    done += 1
                progress.update(done, len(inflight), self.stats.cached,
                                self.stats.failed)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _rebuild_pool(
            self, pool: ProcessPoolExecutor,
            ctx: multiprocessing.context.BaseContext, spec: RunSpec,
            queue: list[RunSpec], inflight: dict[Future, RunSpec],
            max_restarts: int,
    ) -> tuple[ProcessPoolExecutor, list[RunSpec],
               dict[Future, RunSpec]]:
        """Replace a broken pool; requeue the in-flight jobs."""
        self.stats.pool_restarts += 1
        if self.stats.pool_restarts > max_restarts:
            raise FleetError(
                f"process pool died {self.stats.pool_restarts} times; "
                f"giving up (last job: {spec.describe()})")
        pool.shutdown(wait=False, cancel_futures=True)
        requeue = [spec] + list(inflight.values()) + queue
        return (ProcessPoolExecutor(max_workers=self.workers,
                                    mp_context=ctx),
                requeue, {})
