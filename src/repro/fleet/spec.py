"""Declarative job model for the experiment fleet.

A :class:`RunSpec` describes one deterministic simulation run -- the
scenario builder and its parameters, the protocol, the transfer shape
and any :class:`~repro.core.config.HRMCConfig` deltas -- as plain JSON
data.  Because the whole world is reconstructed from the spec inside
the worker, two runs of the same spec are byte-identical no matter
which process (or machine) executes them, and the spec's canonical
content hash becomes a stable address for the result.

The cache key additionally folds in the protocol-code fingerprint
(:mod:`repro.fleet.fingerprint`), so editing anything under
``src/repro/`` automatically invalidates previously stored results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Optional

__all__ = ["RunSpec", "SPEC_VERSION"]

#: bump when the spec schema or its execution semantics change in a way
#: that makes old cached results incomparable
SPEC_VERSION = 1

_SCENARIOS = ("lan", "wan", "chaos")


@dataclass
class RunSpec:
    """One simulation run, content-addressable.

    ``scenario_params`` depend on the builder:

    * ``lan``   -- ``receivers``, ``bandwidth_bps``, ``seed``
    * ``wan``   -- ``bandwidth_bps``, ``seed`` plus either ``groups``
      (list of characteristic-group names, one receiver each) or
      ``test`` + ``receivers`` (a Figure-14 test case)
    * ``chaos`` -- ``receivers``, ``bandwidth_bps``, ``seed``,
      ``horizon_us`` (the same seed drives topology and fault plan)

    ``cfg`` holds :class:`HRMCConfig` field overrides; the reserved key
    ``_rmc`` applies :meth:`HRMCConfig.as_rmc` before the overrides.
    """

    scenario: str
    scenario_params: dict
    nbytes: int
    protocol: str = "hrmc"
    sndbuf: int = 64 * 1024
    rcvbuf: Optional[int] = None
    cfg: dict = field(default_factory=dict)
    disk: bool = False
    max_sim_s: float = 3600.0
    invariants: bool = False
    obs: bool = False          # collect observability summary tables
    perf: bool = False         # collect per-job event-class perf payload
    health: bool = False       # collect the protocol-health payload
    tag: str = ""              # human label (part of the identity)

    def __post_init__(self) -> None:
        if self.scenario not in _SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}; "
                             f"known: {', '.join(_SCENARIOS)}")

    # -- convenience constructors (the shapes the harness uses) --------

    @classmethod
    def lan(cls, receivers: int, bandwidth_bps: float, *, seed: int,
            nbytes: int, **kw: Any) -> "RunSpec":
        return cls(scenario="lan",
                   scenario_params={"receivers": int(receivers),
                                    "bandwidth_bps": float(bandwidth_bps),
                                    "seed": int(seed)},
                   nbytes=nbytes, **kw)

    @classmethod
    def wan(cls, *, bandwidth_bps: float, seed: int, nbytes: int,
            groups: Optional[list[str]] = None,
            test: Optional[int] = None,
            receivers: Optional[int] = None, **kw: Any) -> "RunSpec":
        if (groups is None) == (test is None):
            raise ValueError("wan spec needs exactly one of "
                             "groups= or test=")
        params: dict[str, Any] = {"bandwidth_bps": float(bandwidth_bps),
                                  "seed": int(seed)}
        if groups is not None:
            params["groups"] = [str(g) for g in groups]
        else:
            params["test"] = int(test)
            params["receivers"] = int(receivers)
        return cls(scenario="wan", scenario_params=params,
                   nbytes=nbytes, **kw)

    @classmethod
    def chaos(cls, receivers: int, bandwidth_bps: float, *, seed: int,
              nbytes: int, horizon_us: int = 2_000_000,
              **kw: Any) -> "RunSpec":
        return cls(scenario="chaos",
                   scenario_params={"receivers": int(receivers),
                                    "bandwidth_bps": float(bandwidth_bps),
                                    "seed": int(seed),
                                    "horizon_us": int(horizon_us)},
                   nbytes=nbytes, **kw)

    # -- serialization + addressing ------------------------------------

    def to_dict(self) -> dict:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["version"] = SPEC_VERSION
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        d = dict(d)
        version = d.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(f"unsupported RunSpec version {version!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown RunSpec fields: "
                             f"{', '.join(sorted(unknown))}")
        return cls(**d)

    def canonical_json(self) -> str:
        """Deterministic encoding: sorted keys, no whitespace noise."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """Stable address of this spec (independent of code state)."""
        return hashlib.blake2b(self.canonical_json().encode(),
                               digest_size=16).hexdigest()

    def describe(self) -> str:
        p = self.scenario_params
        where = (f"test{p['test']}x{p['receivers']}" if "test" in p
                 else f"x{len(p['groups'])}" if "groups" in p
                 else f"x{p['receivers']}")
        label = f" [{self.tag}]" if self.tag else ""
        return (f"{self.scenario} {where} {self.protocol} "
                f"{self.nbytes}B sndbuf={self.sndbuf} "
                f"seed={p['seed']}{label}")
