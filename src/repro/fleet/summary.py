"""Per-run result summaries: what crosses the worker boundary.

A :class:`RunSummary` is the JSON-safe projection of a
:class:`~repro.harness.runner.TransferResult` -- every scalar and
counter the experiment suites consume, none of the live objects
(sockets, observability instances, scenario graphs).  Workers return
summaries as plain dicts; the fleet rebuilds :class:`RunSummary`
objects from them, and the cache stores exactly the same dicts, so the
in-process, multiprocess and warm-cache paths all flow through one
representation and byte-identical aggregates fall out for free.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Optional

from repro.stats.metrics import Counters

__all__ = ["RunSummary", "summarize_result"]


@dataclass
class RunSummary:
    """Everything the figure suites read off a finished run."""

    protocol: str
    nbytes: int
    n_receivers: int
    ok: bool
    duration_us: int
    throughput_bps: float
    sender_stats: Counters
    receiver_stats: Counters
    release_checks: int = 0
    release_complete_pct: float = 100.0
    probes_triggered: int = 0
    lost_bytes: int = 0
    reliability_violations: int = 0
    member_timeouts: int = 0
    sim_events: int = 0
    # chaos bookkeeping
    fault_events: int = 0
    plan_actions: int = 0
    crashed_receivers: list = field(default_factory=list)
    restarted_receivers: list = field(default_factory=list)
    invariant_checks: int = 0
    surviving_ok: bool = True
    # observability sample (list of (title, headers, rows) tables)
    obs_tables: list = field(default_factory=list)
    # per-job perf payload (repro.obs.perf bench_payload(); only when
    # the spec asked for it -- carries wall-clock numbers, so it is the
    # one part of a summary that varies between executions)
    perf: dict = field(default_factory=dict)
    # compact protocol-health payload (repro.obs.health payload();
    # only when the spec asked for it)
    health: dict = field(default_factory=dict)

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6

    @property
    def feedback_total(self) -> int:
        return self.receiver_stats.feedback_total

    def to_dict(self) -> dict:
        d = asdict(self)
        d["sender_stats"] = self.sender_stats.as_dict()
        d["receiver_stats"] = self.receiver_stats.as_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunSummary":
        d = dict(d)
        try:
            d["sender_stats"] = Counters(**d["sender_stats"])
            d["receiver_stats"] = Counters(**d["receiver_stats"])
            return cls(**d)
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed run summary: {exc}") from None


def summarize_result(result: Any, *, plan_actions: int = 0,
                     obs_tables: Optional[list] = None,
                     perf: Optional[dict] = None,
                     health: Optional[dict] = None) -> RunSummary:
    """Project a :class:`TransferResult` onto the wire format."""
    return RunSummary(
        protocol=result.protocol, nbytes=result.nbytes,
        n_receivers=result.n_receivers, ok=result.ok,
        duration_us=result.duration_us,
        throughput_bps=result.throughput_bps,
        sender_stats=result.sender_stats,
        receiver_stats=result.receiver_stats,
        release_checks=result.release_checks,
        release_complete_pct=result.release_complete_pct,
        probes_triggered=result.probes_triggered,
        lost_bytes=result.lost_bytes,
        reliability_violations=result.reliability_violations,
        member_timeouts=result.member_timeouts,
        sim_events=result.sim_events,
        fault_events=result.fault_events,
        plan_actions=plan_actions,
        crashed_receivers=list(result.crashed_receivers),
        restarted_receivers=list(result.restarted_receivers),
        invariant_checks=result.invariant_checks,
        surviving_ok=result.surviving_ok,
        obs_tables=list(obs_tables) if obs_tables else [],
        perf=dict(perf) if perf else {},
        health=dict(health) if health else {},
    )
