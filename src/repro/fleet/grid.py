"""Aggregation layer: express a figure suite as a RunSpec grid.

An experiment function is written once, in its natural shape (nested
loops building tables), against ``grid.run(spec)`` instead of a direct
``run_transfer`` call.  It is then evaluated twice:

1. **planning pass** -- ``Grid()`` with no results: ``run`` collects
   every spec (deduplicated, in first-use order) and returns a
   :data:`PROBE` placeholder whose attribute chain always yields zero,
   so the surrounding table-building code runs through without
   executing a single simulation;
2. **report pass** -- ``Grid(results)`` after the fleet executed the
   specs: ``run`` serves the real :class:`RunSummary` for each spec
   and the same code produces the real tables.

Because the grid is keyed by spec content hash, identical cells that
appear in several figure suites (e.g. Figure 10's disk runs reused by
Figure 11) are planned once and simulated once.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from repro.fleet.spec import RunSpec
from repro.fleet.summary import RunSummary

__all__ = ["Grid", "PROBE"]


class _Probe(int):
    """Placeholder result for the planning pass.

    An ``int`` zero whose attribute access returns itself, so any
    chain the report code follows (``res.sender_stats.naks_rcvd``,
    arithmetic, ``round``, truth tests, iteration) evaluates without a
    result being available.  Every value derived from it is discarded
    with the planning pass's report.
    """

    def __new__(cls) -> "_Probe":
        return super().__new__(cls, 0)

    def __getattr__(self, name: str) -> "_Probe":
        if name.startswith("__"):
            raise AttributeError(name)
        return self

    def __iter__(self) -> Iterator[object]:
        return iter(())


PROBE = _Probe()


class Grid:
    """One experiment's spec grid; see the module docstring."""

    def __init__(self,
                 results: Optional[dict[str, RunSummary]] = None) -> None:
        self.specs: list[RunSpec] = []
        self._seen: set[str] = set()
        self._results = results

    @property
    def planning(self) -> bool:
        return self._results is None

    def run(self, spec: RunSpec) -> Union[RunSummary, _Probe]:
        """Register ``spec``; return its summary (or the probe)."""
        h = spec.content_hash()
        if h not in self._seen:
            self._seen.add(h)
            self.specs.append(spec)
        if self._results is None:
            return PROBE
        try:
            return self._results[h]
        except KeyError:
            raise KeyError(
                f"no fleet result for spec {spec.describe()} "
                f"({h}); was the grid executed?") from None
