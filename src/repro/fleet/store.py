"""Content-addressed result store under ``.hrmc-cache/``.

One JSON file per RunSpec, named by the spec's content hash and
sharded by its first two hex digits.  Every entry records the code
fingerprint it was computed under; a lookup whose fingerprint differs
is an *invalidation* (counted, treated as a miss, overwritten on the
next put).  Corrupt or truncated entries are misses too, reported once
with a one-line warning.  Writes are atomic (tmp + rename), so a
killed sweep never leaves a half-written cell -- re-running the sweep
executes exactly the missing specs.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.fleet.spec import RunSpec
from repro.fleet.summary import RunSummary

__all__ = ["ResultStore", "StoreStats", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".hrmc-cache"

_FORMAT = 1


@dataclass
class StoreStats:
    """Hit/miss/invalidation accounting for one store lifetime."""

    hits: int = 0
    misses: int = 0          # absent entries
    invalidated: int = 0     # present, but computed under other code
    corrupt: int = 0         # present, but unreadable
    writes: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "invalidated": self.invalidated,
                "corrupt": self.corrupt, "writes": self.writes}


@dataclass
class StoreStatus:
    """Whole-directory census for ``hrmc-experiments fleet status``."""

    cache_dir: str
    fingerprint: str
    entries: int = 0
    fresh: int = 0           # match the current fingerprint
    stale: int = 0           # computed under a different fingerprint
    corrupt: int = 0
    total_bytes: int = 0
    by_scenario: dict = field(default_factory=dict)


class ResultStore:
    """Cache of :class:`RunSummary` results keyed by spec hash."""

    def __init__(self, cache_dir: str, fingerprint: str) -> None:
        self.cache_dir = cache_dir
        self.fingerprint = fingerprint
        self.stats = StoreStats()

    # -- paths ---------------------------------------------------------

    def path_for(self, spec_hash: str) -> str:
        return os.path.join(self.cache_dir, spec_hash[:2],
                            f"{spec_hash}.json")

    def _read_entry(self, path: str) -> Optional[dict]:
        """Entry dict, or None when absent/corrupt (counted + warned)."""
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if entry.get("format") != _FORMAT:
                raise ValueError(f"unknown format {entry.get('format')!r}")
            if not isinstance(entry.get("summary"), dict):
                raise ValueError("missing summary")
            return entry
        except FileNotFoundError:
            return None
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            self.stats.corrupt += 1
            print(f"hrmc-cache: treating corrupt entry {path} as a miss "
                  f"({exc})", file=sys.stderr)
            return None

    # -- get / put -----------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[RunSummary]:
        path = self.path_for(spec.content_hash())
        entry = self._read_entry(path)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.get("fingerprint") != self.fingerprint:
            self.stats.invalidated += 1
            return None
        try:
            summary = RunSummary.from_dict(entry["summary"])
        except ValueError as exc:
            self.stats.corrupt += 1
            print(f"hrmc-cache: treating corrupt entry {path} as a miss "
                  f"({exc})", file=sys.stderr)
            return None
        self.stats.hits += 1
        return summary

    def put(self, spec: RunSpec, summary_dict: dict) -> str:
        """Atomically store a worker's canonical summary dict."""
        spec_hash = spec.content_hash()
        path = self.path_for(spec_hash)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "format": _FORMAT,
            "spec_hash": spec_hash,
            "fingerprint": self.fingerprint,
            "spec": spec.to_dict(),
            "summary": summary_dict,
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    # -- maintenance ---------------------------------------------------

    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.cache_dir):
            return
        for shard in sorted(os.listdir(self.cache_dir)):
            sdir = os.path.join(self.cache_dir, shard)
            if not os.path.isdir(sdir):
                continue
            for name in sorted(os.listdir(sdir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield os.path.join(sdir, name)

    def status(self) -> StoreStatus:
        st = StoreStatus(cache_dir=self.cache_dir,
                         fingerprint=self.fingerprint)
        for path in self._entry_paths():
            st.entries += 1
            try:
                st.total_bytes += os.path.getsize(path)
            except OSError:
                pass
            entry = self._read_entry(path)
            if entry is None:
                st.corrupt += 1
                continue
            if entry.get("fingerprint") == self.fingerprint:
                st.fresh += 1
            else:
                st.stale += 1
            scenario = entry.get("spec", {}).get("scenario", "?")
            st.by_scenario[scenario] = st.by_scenario.get(scenario, 0) + 1
        return st

    def prune(self) -> int:
        """Drop stale and corrupt entries; returns how many went."""
        removed = 0
        for path in self._entry_paths():
            entry = self._read_entry(path)
            if entry is None or entry.get("fingerprint") != \
                    self.fingerprint:
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        return removed
