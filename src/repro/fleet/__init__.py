"""Parallel experiment-fleet orchestration.

The paper's evaluation is a sweep of independent deterministic
simulations; this package turns each cell of that sweep into a
content-addressed job:

* :mod:`repro.fleet.spec` -- :class:`RunSpec`, the declarative job
  model (scenario builder + params + seed + config deltas) with a
  stable content hash,
* :mod:`repro.fleet.fingerprint` -- the protocol-code fingerprint that
  auto-invalidates cached results when ``src/repro/`` changes,
* :mod:`repro.fleet.worker` -- builds the world from a spec and runs
  it (the one execution path for every mode),
* :mod:`repro.fleet.store` -- the content-addressed result cache under
  ``.hrmc-cache/`` with hit/miss/invalidation accounting,
* :mod:`repro.fleet.executor` -- :class:`Fleet`, the fault-tolerant
  multiprocess executor (timeouts, bounded retries with backoff,
  crashed-worker requeue, deterministic result ordering),
* :mod:`repro.fleet.summary` -- :class:`RunSummary`, the JSON-safe
  per-run aggregate the figure suites consume.
"""

from repro.fleet.executor import Fleet, FleetError, FleetStats
from repro.fleet.fingerprint import code_fingerprint
from repro.fleet.spec import RunSpec
from repro.fleet.store import DEFAULT_CACHE_DIR, ResultStore
from repro.fleet.summary import RunSummary, summarize_result
from repro.fleet.worker import execute_spec, run_spec

__all__ = ["Fleet", "FleetError", "FleetStats", "RunSpec", "RunSummary",
           "ResultStore", "DEFAULT_CACHE_DIR", "code_fingerprint",
           "execute_spec", "run_spec", "summarize_result"]
