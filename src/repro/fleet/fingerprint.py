"""Protocol-code fingerprint: one hash over everything that can change
a simulation result.

The fleet's cache key is ``(RunSpec content hash, code fingerprint)``:
editing any source file under ``src/repro/`` -- the protocol, the
network models, the engine -- silently invalidates every cached result,
while touching the orchestration layer itself (``src/repro/fleet/``)
does not, because the orchestrator never influences what a worker
computes from a spec.

The simlint rule-set version (:data:`repro.analysis.version.
RULESET_VERSION`) is mixed into the fingerprint as well: cached results
were produced by a tree the analyzer of that era accepted, and a rule
change redefines what "acceptable" means, so a rule-set bump must not
stale-serve results the current analyzer would reject.  The analyzer's
*implementation* is excluded from the file walk for the same reason the
fleet is -- pure analyzer refactors with an unchanged rule set cannot
affect what a worker computes.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

from repro.analysis.version import RULESET_VERSION

__all__ = ["code_fingerprint"]

#: subtrees that cannot affect a run's result and are excluded so that
#: iterating on the orchestrator (or the analyzer: rule behaviour is
#: captured by RULESET_VERSION instead) does not churn the cache
_EXCLUDED_TOP_DIRS = frozenset({"fleet", "analysis"})

_cached: Optional[str] = None


def _repro_root() -> Path:
    import repro
    return Path(repro.__file__).resolve().parent


def code_fingerprint(root: Optional[str] = None) -> str:
    """BLAKE2b over every ``*.py`` under ``root`` (default: the
    installed ``repro`` package), excluding :data:`_EXCLUDED_TOP_DIRS`.

    Paths are hashed relative to ``root`` with sorted ordering, so the
    fingerprint is stable across machines, processes and checkout
    locations -- it changes exactly when a source file's content,
    name or location changes.
    """
    global _cached
    if root is None and _cached is not None:
        return _cached
    base = Path(root) if root is not None else _repro_root()
    h = hashlib.blake2b(digest_size=16)
    h.update(b"ruleset:")
    h.update(RULESET_VERSION.encode())
    h.update(b"\x00")
    for path in sorted(base.rglob("*.py")):
        rel = path.relative_to(base)
        if rel.parts and rel.parts[0] in _EXCLUDED_TOP_DIRS:
            continue
        h.update(str(rel).encode())
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    digest = h.hexdigest()
    if root is None:
        _cached = digest
    return digest
