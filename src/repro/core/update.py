"""Dynamic update-timer policy (paper sections 3 and 4.3).

Each update period the receiver sends an UPDATE carrying its next
expected sequence number.  The period starts at 50 jiffies and adapts:
if any PROBE arrived during the period the sender evidently lacked
state, so the period shrinks by one jiffy; otherwise it grows by one
jiffy.  Linear steps keep the period from oscillating; bounds keep it
sane.  In high-loss environments NAKs keep the sender informed, probes
stay rare, and the period drifts up; in quiet environments probes pull
it down until updates pre-empt the probes.
"""

from __future__ import annotations

from repro.sim.timer import JIFFY_US

__all__ = ["UpdatePolicy"]


class UpdatePolicy:
    def __init__(self, *, initial_jiffies: int, min_jiffies: int,
                 max_jiffies: int, step_jiffies: int = 1,
                 dynamic: bool = True):
        if not (min_jiffies <= initial_jiffies <= max_jiffies):
            raise ValueError("initial period outside bounds")
        self.period_jiffies = int(initial_jiffies)
        self.min_jiffies = int(min_jiffies)
        self.max_jiffies = int(max_jiffies)
        self.step = int(step_jiffies)
        self.dynamic = dynamic
        self.probe_seen = False
        self.adjust_downs = 0
        self.adjust_ups = 0
        # optional protocol-health probe (repro.obs.health); None in
        # ordinary runs
        self.health = None

    @property
    def period_us(self) -> int:
        return self.period_jiffies * JIFFY_US

    def note_probe(self) -> None:
        self.probe_seen = True

    def end_period(self) -> int:
        """Close the current period: adjust (if dynamic) and return the
        next period in microseconds."""
        if self.dynamic:
            if self.probe_seen:
                if self.period_jiffies > self.min_jiffies:
                    self.period_jiffies = max(
                        self.min_jiffies, self.period_jiffies - self.step)
                    self.adjust_downs += 1
                    if self.health is not None:
                        self.health.on_update_adjust(-1)
            else:
                if self.period_jiffies < self.max_jiffies:
                    self.period_jiffies = min(
                        self.max_jiffies, self.period_jiffies + self.step)
                    self.adjust_ups += 1
                    if self.health is not None:
                        self.health.on_update_adjust(+1)
        self.probe_seen = False
        return self.period_us
