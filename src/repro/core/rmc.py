"""The original RMC protocol (paper section 2; reference [15]).

RMC is the purely NAK-based predecessor of H-RMC: anonymous group
membership, no periodic updates, no probes, and buffer release governed
only by the MINBUF hold time.  Reliability is therefore *not*
guaranteed: the sender may release data that a receiver later NAKs, in
which case it answers with NAK_ERR and both applications are informed
(the receiver's stream carries a hole, surfaced via
``transport.receiver.error`` / ``lost_bytes``).

The implementation shares the H-RMC engine, configured through
:meth:`repro.core.config.HRMCConfig.as_rmc`; this module provides the
RMC-branded entry points and the configuration preset so experiments
read naturally.  (Formerly the one-module package ``repro.rmc``;
folded into core because a baseline *preset* of the core engine is
core, not a sibling subsystem.)
"""

from typing import Optional

from repro.core.config import HRMCConfig
from repro.core.protocol import HRMCTransport
from repro.kernel.host import Host
from repro.kernel.socket_api import Socket

__all__ = ["rmc_config", "open_rmc_socket", "RMCTransport"]


def rmc_config(base: Optional[HRMCConfig] = None) -> HRMCConfig:
    """The RMC preset: updates, probes and reliable release disabled."""
    return (base or HRMCConfig()).as_rmc()


class RMCTransport(HRMCTransport):
    """An RMC socket endpoint (H-RMC engine, RMC feature set)."""

    def __init__(self, host: Host, cfg: Optional[HRMCConfig] = None, **kw):
        super().__init__(host, rmc_config(cfg), **kw)


def open_rmc_socket(host: Host, cfg: Optional[HRMCConfig] = None, *,
                    sndbuf: int = 64 * 1024,
                    rcvbuf: int = 64 * 1024) -> Socket:
    """Create an RMC socket on ``host``."""
    return Socket(RMCTransport(host, cfg, sndbuf=sndbuf, rcvbuf=rcvbuf))
