"""Receive-window regions (paper Figure 2).

The receive sequence space is split into regions R1..R4.  The live
window ``[rcv_wnd, rcv_wnd + rcv_wnd_size)`` covers R2 (received,
buffered until read) and R3 (receivable now); its *fill level* --
how far the stream has progressed into the window -- classifies into
safe, warning and critical regions that drive the receiver's rate
requests.
"""

from __future__ import annotations

import enum

from repro.core.seq import seq_sub

__all__ = ["Region", "classify_fill", "window_fill", "window_empty"]


class Region(enum.Enum):
    SAFE = "safe"
    WARNING = "warning"
    CRITICAL = "critical"


def window_fill(rcv_wnd: int, high_mark: int) -> int:
    """Bytes of the window occupied up to ``high_mark`` (typically
    ``rcv_nxt`` or the highest buffered out-of-order byte)."""
    return max(0, seq_sub(high_mark, rcv_wnd))


def window_empty(rcv_wnd: int, high_mark: int, wnd_size: int) -> int:
    """Bytes of the window still available past ``high_mark``."""
    return max(0, wnd_size - window_fill(rcv_wnd, high_mark))


def classify_fill(fill: int, wnd_size: int, warn_fill: float,
                  crit_fill: float) -> Region:
    """Map a fill level to its region.  Total and monotone: higher fill
    never maps to a milder region."""
    if wnd_size <= 0:
        return Region.CRITICAL
    frac = fill / wnd_size
    if frac >= crit_fill:
        return Region.CRITICAL
    if frac >= warn_fill:
        return Region.WARNING
    return Region.SAFE
