"""Round-trip-time estimation (Karn & Partridge / Jacobson).

The sender estimates the round-trip time to the *most distant* receiver
(paper section 2) and keeps updating it from feedback.  Samples come
only from unambiguous exchanges, per Karn's rule: a JOIN that names a
first-transmission data packet, or a PROBE answered before any
re-probe.  Smoothing follows Jacobson: ``srtt`` and ``rttvar`` with the
usual 1/8 and 1/4 gains.
"""

from __future__ import annotations

__all__ = ["RttEstimator", "WorstRtt"]


class RttEstimator:
    """Single-flow smoothed RTT with variance (Jacobson/Karn)."""

    ALPHA = 0.125
    BETA = 0.25

    def __init__(self, initial_us: int, min_us: int = 1_000):
        self._initial = int(initial_us)
        self._min = int(min_us)
        self.srtt: float = float(initial_us)
        self.rttvar: float = initial_us / 2.0
        self.samples = 0

    def sample(self, rtt_us: int) -> None:
        """Feed one unambiguous RTT measurement."""
        rtt = max(self._min, int(rtt_us))
        if self.samples == 0:
            self.srtt = float(rtt)
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.srtt += self.ALPHA * err
            self.rttvar += self.BETA * (abs(err) - self.rttvar)
        self.samples += 1

    @property
    def rtt_us(self) -> int:
        return max(self._min, round(self.srtt))

    @property
    def rto_us(self) -> int:
        """Conservative retransmission-style timeout: srtt + 4*rttvar."""
        return max(self._min, round(self.srtt + 4.0 * self.rttvar))


class WorstRtt:
    """Tracks the worst (largest) smoothed RTT over all receivers.

    Each receiver gets its own estimator keyed by address; the protocol
    reads :attr:`rtt_us` = max over receivers.  A slow decay is applied
    when the worst receiver leaves.
    """

    def __init__(self, initial_us: int, min_us: int = 1_000):
        self._initial = int(initial_us)
        self._min = int(min_us)
        self._per_member: dict[str, RttEstimator] = {}

    def sample(self, member_addr: str, rtt_us: int) -> None:
        est = self._per_member.get(member_addr)
        if est is None:
            est = RttEstimator(self._initial, self._min)
            self._per_member[member_addr] = est
        est.sample(rtt_us)

    def forget(self, member_addr: str) -> None:
        self._per_member.pop(member_addr, None)

    @property
    def have_samples(self) -> bool:
        return any(e.samples for e in self._per_member.values())

    @property
    def rtt_us(self) -> int:
        sampled = [e.rtt_us for e in self._per_member.values() if e.samples]
        if not sampled:
            return self._initial
        return max(sampled)

    @property
    def rto_us(self) -> int:
        sampled = [e.rto_us for e in self._per_member.values() if e.samples]
        if not sampled:
            return 2 * self._initial
        return max(sampled)
