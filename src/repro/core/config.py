"""Protocol configuration.

Defaults follow the constants stated in the paper; the feature switches
select between H-RMC (everything on), the original RMC (updates,
probes and reliable release off), and the future-work extensions the
paper lists in its conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["HRMCConfig"]


@dataclass(frozen=True)
class HRMCConfig:
    # segmentation / sequence space
    mss: int = 1460                  # payload bytes per DATA packet
    iss: int = 1                     # initial sequence number

    # buffering rules (paper section 2)
    minbuf_rtts: int = 10            # MINBUF: hold each packet >= 10 RTTs
    warnbuf_rtts: int = 4            # WARNBUF: warning-region rule horizon

    # receive-window regions (fractions of the window that begin the
    # warning and critical regions of paper Figure 2)
    warn_fill: float = 0.50
    crit_fill: float = 0.90

    # rate-based flow control
    min_rate_bps: int = 1_168_000        # 100 mss packets/s
    max_rate_bps: int = 1_000_000_000    # scenario caps this near link speed
    initial_rtt_us: int = 50_000
    min_rtt_us: int = 1_000              # floor for timer arithmetic
    urgent_stop_rtts: int = 2            # urgent request halts sending 2 RTTs

    # keepalives: exponential backoff up to 2 s (paper section 2)
    keepalive_initial_us: int = 100_000
    keepalive_max_us: int = 2_000_000

    # receiver updates (paper sections 3/4.3): initial period 50 jiffies,
    # +/- 1 jiffy per period based on probe observations
    update_initial_jiffies: int = 50
    update_min_jiffies: int = 2
    update_max_jiffies: int = 200
    update_step_jiffies: int = 1

    # NAK handling
    nak_suppress_rtts: float = 1.5   # local suppression interval
    nak_max_range: int = 0xFFFF      # max bytes requested by one NAK

    # probe policy
    probe_backoff: float = 1.5       # re-probe interval growth per try
    join_retry_us: int = 200_000
    join_max_tries: int = 10
    leave_max_tries: int = 8         # LEAVE retransmissions at close
    # a member that answers none of this many probes over at least this
    # long is declared dead and evicted, so one crashed receiver cannot
    # block the group's buffer release forever
    member_timeout_probes: int = 12
    member_timeout_us: int = 10_000_000
    # receiver-side liveness: with keepalives capped at 2 s, total sender
    # silence for this long means the sender is gone; the receiving
    # application is unblocked with an error instead of hanging
    session_timeout_us: int = 30_000_000

    # ---- feature switches ------------------------------------------------
    updates_enabled: bool = True        # H-RMC periodic updates
    probes_enabled: bool = True         # H-RMC probe-before-release
    reliable_release: bool = True       # hold window for complete info
    dynamic_update_timer: bool = True   # adapt the update period
    track_membership: bool = True       # keep the member table (RMC keeps
    #                                     it too, for the Fig. 3 metric,
    #                                     but does not gate release on it)

    # scenario knowledge: with reliable_release the sender refuses to
    # release data until at least this many receivers have joined (the
    # harness sets it; None keeps the paper's anonymous-join semantics)
    expected_receivers: Optional[int] = None

    # ---- paper future-work extensions -----------------------------------
    early_probes: bool = False          # (1) probe before release is due
    early_probe_fraction: float = 0.5   # probe when a packet is this far
    #                                     through its MINBUF hold time
    mcast_probe_threshold: Optional[int] = None   # (2) multicast the probe
    #                                     when this many receivers lack state
    local_recovery: bool = False        # (3) receivers retransmit locally
    local_recovery_tries: int = 2       # multicast NAKs before falling
    #                                     back to unicasting the sender
    repair_cache_bytes: int = 512 * 1024  # per-receiver repair cache
    fec_enabled: bool = False           # (4) forward error correction
    fec_block: int = 16                 # data packets per parity packet

    # -- convenience constructors ------------------------------------------

    def as_rmc(self) -> "HRMCConfig":
        """The original, purely NAK-based RMC protocol."""
        return replace(self, updates_enabled=False, probes_enabled=False,
                       reliable_release=False, dynamic_update_timer=False,
                       expected_receivers=None)

    def with_rate_cap(self, link_bps: float, factor: float = 16.0) -> "HRMCConfig":
        """Set the rate-growth ceiling (the ``max_snd_rate_wnd`` of the
        paper's Figure 7) relative to a scenario's link speed.  The
        default is deliberately far above the link: in the paper's
        memory tests "the rate window grows exponentially with time
        causing a large increase in the sending rate", which is what
        produces window-sized single-jiffy bursts with large buffers."""
        return replace(self, max_rate_bps=int(link_bps * factor))

    def __post_init__(self):
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if not (0.0 < self.warn_fill < self.crit_fill <= 1.0):
            raise ValueError("need 0 < warn_fill < crit_fill <= 1")
        if self.min_rate_bps <= 0 or self.max_rate_bps < self.min_rate_bps:
            raise ValueError("bad rate bounds")
        if self.update_min_jiffies < 1 or \
                self.update_max_jiffies < self.update_initial_jiffies or \
                self.update_initial_jiffies < self.update_min_jiffies:
            raise ValueError("bad update-period bounds")
