"""The H-RMC sender (paper section 4.2, Figure 8).

Five concurrent tasks share the socket state:

* **Application interface** (``hrmc_sendmsg``): fragments the byte
  stream into MSS-sized DATA skbs, charges them to the send buffer and
  queues them on the write queue; data beyond the rate window simply
  waits its turn (the backlog).
* **Transmitter** (``transmit_timer``, every jiffy): spends the
  rate-controller's byte budget on retransmissions first, then new
  data, bounded by NIC ring space; then tries to advance the send
  window.
* **Feedback processor** (``hrmc_master_rcv``): NAKs, rate requests,
  UPDATEs, JOIN/LEAVE.  Every feedback packet carries the receiver's
  next expected sequence number and refreshes the member table.
* **Retransmitter** (``retrans_timer``): serves queued retransmission
  requests promptly rather than waiting out the jiffy.
* **Keepalive controller** (``ka_timer``): exponentially backed-off
  KEEPALIVEs (up to 2 s) whenever the forward path goes quiet, carrying
  the last sequence number so receivers can detect tail loss.

Window release: a packet may leave the buffer only after MINBUF (=10)
RTTs since it was last sent **and**, with reliable release enabled,
once every current member is known to have received it.  Any member
whose state is missing gets a unicast PROBE (multicast above the
optional threshold); the window stalls until the answers arrive.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.config import HRMCConfig
from repro.core.membership import Member, MemberTable
from repro.core.rate import RateController
from repro.core.rtt import WorstRtt
from repro.core.seq import (seq_add, seq_geq, seq_gt, seq_leq, seq_lt,
                            seq_min, seq_sub)
from repro.core.types import FIN, URG, PacketType
from repro.kernel.host import Host
from repro.kernel.payload import Payload
from repro.kernel.skbuff import SKBuff
from repro.kernel.sock import Sock
from repro.sim.timer import JIFFY_US, Timer
from repro.stats.metrics import Counters, ReleaseTracker

__all__ = ["HRMCSender"]


class HRMCSender:
    def __init__(self, host: Host, sock: Sock, cfg: HRMCConfig,
                 counters: Counters):
        self.host = host
        self.sock = sock
        self.cfg = cfg
        self.stats = counters
        self.sim = host.sim

        self.snd_wnd = cfg.iss       # first byte still buffered
        self.snd_nxt = cfg.iss       # next new sequence number
        self.fin_seq: Optional[int] = None
        self.closing = False
        self.finished = False

        self.members = MemberTable()
        self.rtt = WorstRtt(cfg.initial_rtt_us, cfg.min_rtt_us)
        self.rate = RateController(
            min_rate=cfg.min_rate_bps // 8,
            max_rate=cfg.max_rate_bps // 8,
            mss=cfg.mss)  # config is bits/s; the controller works in bytes/s
        self.release = ReleaseTracker()

        self._unsent: deque[SKBuff] = deque()
        self._retrans: deque[SKBuff] = deque()
        self._budget = 0.0
        self._last_tick_us = self.sim.now
        self._last_activity_us = self.sim.now
        self._ka_interval_us = cfg.keepalive_initial_us
        self._fec_since_parity = 0
        self._fec_block_start = cfg.iss
        self._tx_drops_seen = 0
        self._highest_sent_end = cfg.iss   # end of the last DATA sent
        # loss-event gating (NewReno-style): NAKs for data below this
        # mark belong to an already-reacted-to loss event and do not cut
        # the rate again
        self._recover_seq = cfg.iss

        # observation point for the invariant checker: called with
        # (sender, skb) just before each segment leaves the write queue,
        # while the membership evidence justifying the release is intact
        self.release_hook: Optional[Callable[["HRMCSender", SKBuff], None]] = None

        # optional protocol-health monitor (repro.obs.health), installed
        # by HealthMonitor.bind_sender; None in ordinary runs
        self.health = None

        # timers run on the host's clock so the fault layer can skew or
        # stall one machine's timer interrupt without touching sim time
        self.transmit_timer = Timer(host.clock, self._transmit_tick,
                                    "transmit", event_class="jiffy-timer")
        self.retrans_timer = Timer(host.clock, self._retrans_tick,
                                   "retrans", event_class="nak-repair-timer")
        self.ka_timer = Timer(host.clock, self._keepalive_tick,
                              "keepalive", event_class="jiffy-timer")

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        self.transmit_timer.mod_after(JIFFY_US)
        self.ka_timer.mod_after(self._ka_interval_us)

    def stop(self) -> None:
        self.transmit_timer.del_timer()
        self.retrans_timer.del_timer()
        self.ka_timer.del_timer()

    # ------------------------------------------------------------------
    # application interface (hrmc_sendmsg)

    def sendmsg_some(self, payload: Payload) -> int:
        """Fragment as much of ``payload`` as fits the send buffer into
        DATA skbs; returns bytes consumed (0 when the buffer is full)."""
        if self.closing:
            raise RuntimeError("send after close")
        consumed = 0
        total = payload.length
        while consumed < total:
            chunk = min(self.cfg.mss, total - consumed)
            skb = SKBuff(sport=self.sock.num, dport=self.sock.dport,
                         seq=self.snd_nxt, ptype=PacketType.DATA,
                         length=chunk,
                         payload=payload.slice(consumed, chunk))
            if self.sock.wmem_free() < skb.truesize:
                break
            self.sock.write_queue.enqueue(skb)
            self._unsent.append(skb)
            self.snd_nxt = seq_add(self.snd_nxt, chunk)
            consumed += chunk
        if consumed and not self.transmit_timer.pending:
            self.transmit_timer.mod_after(0)
        return consumed

    def queue_fin(self) -> None:
        """Append the FIN marker (one phantom sequence byte)."""
        if self.fin_seq is not None:
            return
        skb = SKBuff(sport=self.sock.num, dport=self.sock.dport,
                     seq=self.snd_nxt, ptype=PacketType.DATA, length=1,
                     flags=FIN, payload=None)
        self.fin_seq = self.snd_nxt
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self.sock.write_queue.enqueue(skb)
        self._unsent.append(skb)
        self.closing = True
        if not self.transmit_timer.pending:
            self.transmit_timer.mod_after(0)

    @property
    def drained(self) -> bool:
        """All queued data released from the buffer."""
        return len(self.sock.write_queue) == 0 and not self._unsent

    # ------------------------------------------------------------------
    # transmitter (transmit_timer, every jiffy)

    def _transmit_tick(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_tick_us
        self._last_tick_us = now
        rtt = self.rtt.rtt_us
        # a device-queue overflow on our own interface is a locally
        # observable congestion signal: react as we would to a NAK
        if self.host.tx_ring_busy_drops > self._tx_drops_seen:
            self._tx_drops_seen = self.host.tx_ring_busy_drops
            self.rate.on_loss_signal(now, rtt)
        self._budget += self.rate.allowance(elapsed, rtt, now)
        cap = max(4.0 * self.cfg.mss, self.rate.rate * (2 * JIFFY_US) / 1e6)
        self._budget = min(self._budget, cap)

        self._pump(now)
        self._advance_window(now)

        if not self.finished:
            self.transmit_timer.mod_after(JIFFY_US)

    def _pump(self, now: int) -> None:
        """Spend budget: retransmissions first, then new data.

        Bursts are bounded by the rate budget and by device-queue space
        (``txqueuelen`` back-pressure): what does not fit the queue
        simply waits for the next tick rather than being dropped.
        """
        ring = self.host.tx_space()
        while ring > 0:
            skb: Optional[SKBuff] = None
            retrans = False
            if self._retrans:
                skb = self._retrans[0]
                retrans = True
            elif self._unsent:
                skb = self._unsent[0]
            if skb is None:
                break
            if self._budget < skb.length:
                break
            if retrans:
                self._retrans.popleft()
                if not skb.retrans_pending:
                    continue  # cancelled (released meanwhile)
                skb.retrans_pending = False
            else:
                self._unsent.popleft()
            self._send_data(skb, now, retrans=retrans)
            self._budget -= skb.length
            ring -= 1

    def _send_data(self, skb: SKBuff, now: int, *, retrans: bool) -> None:
        skb.tries += 1
        if skb.first_sent_us < 0:
            skb.first_sent_us = now
        skb.last_sent_us = now
        skb.rate_adv = self.rate.rate_bps
        self.host.ip_send(skb, self.sock.daddr)
        if seq_gt(skb.end_seq, self._highest_sent_end):
            self._highest_sent_end = skb.end_seq
        self._last_activity_us = now
        self._ka_interval_us = self.cfg.keepalive_initial_us
        if retrans:
            self.stats.retrans_pkts += 1
            self.stats.retrans_bytes += skb.length
        else:
            self.stats.data_pkts_sent += 1
            self.stats.data_bytes_sent += skb.length
            self._maybe_send_fec(skb, now)

    def _maybe_send_fec(self, skb: SKBuff, now: int) -> None:
        """Future-work (4): one parity packet per ``fec_block`` data
        packets, letting receivers repair a single loss per block."""
        if not self.cfg.fec_enabled or skb.flags & FIN:
            return
        self._fec_since_parity += 1
        if self._fec_since_parity < self.cfg.fec_block:
            return
        parity = SKBuff(sport=self.sock.num, dport=self.sock.dport,
                        seq=self._fec_block_start, ptype=PacketType.DATA,
                        length=0, rate_adv=self.rate.rate_bps,
                        flags=0x8000,  # FEC parity marker
                        payload=None)
        # rate_adv is reused to carry the block extent for parity frames
        parity.rate_adv = seq_sub(skb.end_seq, self._fec_block_start)
        parity.tries = 1
        self.host.ip_send(parity, self.sock.daddr)
        self.stats.fec_pkts_sent += 1
        self._fec_since_parity = 0
        self._fec_block_start = skb.end_seq

    # ------------------------------------------------------------------
    # window release (probe_members + advance)

    def _advance_window(self, now: int) -> None:
        # Lazy release: MINBUF is a *minimum* hold -- the window slides
        # only when the application actually needs buffer space (or at
        # close).  This is what gives Figure 3 its buffer-size axis:
        # bigger buffers keep data around longer, so feedback has more
        # time to arrive before release is attempted.
        if not self.closing and \
                self.sock.wmem_free() >= self._release_watermark():
            return
        rtt = self.rtt.rtt_us
        hold_us = self.cfg.minbuf_rtts * rtt
        advanced = False
        while self.sock.write_queue:
            skb = self.sock.write_queue.peek()
            if skb.tries == 0:
                break  # never transmitted yet
            age = now - skb.last_sent_us
            if age < hold_us:
                if (self.cfg.early_probes and self.cfg.probes_enabled
                        and self.cfg.reliable_release
                        and age >= self.cfg.early_probe_fraction * hold_us):
                    lacking = self._lacking_for(skb.end_seq)
                    if lacking:
                        self._probe(lacking, skb.end_seq, now)
                break
            if self.cfg.reliable_release and not self._membership_quorum():
                break  # too early in the transfer: receivers still joining
            boundary = skb.end_seq
            complete = self._info_complete(boundary)
            if not skb.release_checked:
                if self.cfg.track_membership:
                    self.release.record(complete)
                skb.release_checked = True
            if self.cfg.reliable_release:
                if not complete:
                    if self.cfg.probes_enabled:
                        lacking = self._lacking_for(boundary)
                        self._probe(lacking, boundary, now)
                    self.release.stall_us += JIFFY_US
                    break
            # release
            if self.release_hook is not None:
                self.release_hook(self, skb)
            self.sock.write_queue.dequeue()
            skb.retrans_pending = False
            self.snd_wnd = boundary
            advanced = True
        if advanced:
            self.sock.write_space.fire()
            if self.drained:
                self._on_drained()

    def _release_watermark(self) -> int:
        """Free send-buffer space below which release is attempted."""
        from repro.kernel.skbuff import SKB_OVERHEAD
        return 2 * (self.cfg.mss + SKB_OVERHEAD)

    def _membership_quorum(self) -> bool:
        expected = self.cfg.expected_receivers
        if expected is None:
            return True
        # members that already left count toward the quorum having been met
        return (self.members.joins) >= expected

    def _info_complete(self, boundary: int) -> bool:
        return self.members.all_have(boundary)

    def _lacking_for(self, boundary: int) -> list[Member]:
        return self.members.lacking(boundary)

    def _probe(self, lacking: list[Member], boundary: int, now: int) -> None:
        if not lacking:
            return
        rtt = self.rtt.rtt_us
        threshold = self.cfg.mcast_probe_threshold
        if threshold is not None and len(lacking) >= threshold:
            # future-work (2): one multicast probe instead of a storm
            eligible = [m for m in lacking
                        if now - m.last_probe_us >=
                        rtt * (self.cfg.probe_backoff ** min(m.probe_tries, 8))]
            if not eligible:
                return
            skb = self._control_skb(PacketType.PROBE, seq=boundary)
            self.host.ip_send(skb, self.sock.daddr)
            self.stats.probes_sent += 1
            self.release.probes_triggered += 1
            for m in lacking:
                self._note_probe(m, now)
            return
        for m in lacking:
            if (m.probe_tries >= self.cfg.member_timeout_probes and
                    now - m.last_feedback_us > self.cfg.member_timeout_us):
                # unresponsive member: evict so it cannot block release
                self.members.remove(m.addr)
                self.rtt.forget(m.addr)
                self.stats.member_timeouts += 1
                continue
            interval = rtt * (self.cfg.probe_backoff ** min(m.probe_tries, 8))
            if now - m.last_probe_us < interval:
                continue
            skb = self._control_skb(PacketType.PROBE, seq=boundary)
            self.host.ip_send(skb, m.addr)
            self.stats.probes_sent += 1
            self.release.probes_triggered += 1
            self._note_probe(m, now)

    def _note_probe(self, m: Member, now: int) -> None:
        if m.probe_sent_us >= 0:
            m.probe_ambiguous = True   # Karn: a re-probe poisons the sample
        else:
            m.probe_sent_us = now
            m.probe_ambiguous = False
        m.last_probe_us = now
        m.probe_tries += 1

    # ------------------------------------------------------------------
    # retransmitter (retrans_timer)

    def _retrans_tick(self) -> None:
        self._pump(self.sim.now)
        self._advance_window(self.sim.now)

    def _queue_retransmission(self, start: int, end: int) -> None:
        """Queue every buffered skb overlapping [start, end).

        A segment is not retransmitted more often than once per RTT (and
        no faster than once per jiffy): duplicate NAKs for a repair that
        is already in flight must not multiply the repair traffic.
        """
        end = seq_min(end, self.snd_nxt)
        now = self.sim.now
        pace = max(self.rtt.rtt_us, JIFFY_US)
        queued = False
        h = self.health
        for skb in self.sock.write_queue:
            if seq_geq(skb.seq, end):
                break
            if seq_leq(skb.end_seq, start):
                continue
            if skb.tries == 0:
                break  # not sent yet; the normal path will cover it
            if skb.tries > 1 and now - skb.last_sent_us < pace:
                if h is not None:
                    h.on_repair_deflected()
                continue  # a repair is already in flight; don't multiply
            if not skb.retrans_pending:
                skb.retrans_pending = True
                lineage = self.sim.lineage
                if lineage is not None:
                    # remember *which NAK* (or timer) asked for this
                    # repair: the retransmit itself happens later, from
                    # a transmit-timer tick, and ip_send consumes this
                    # stamp to parent the tx node correctly
                    skb.cause = lineage.current
                self._retrans.append(skb)
                queued = True
        if queued and not self.retrans_timer.pending:
            self.retrans_timer.mod_after(self.cfg.min_rtt_us)

    # ------------------------------------------------------------------
    # keepalive controller (ka_timer)

    def _keepalive_tick(self) -> None:
        if self.finished:
            return
        now = self.sim.now
        idle = now - self._last_activity_us
        if idle >= self._ka_interval_us:
            # keepalives carry the last *transmitted* sequence number
            # (paper section 2) -- never queued-but-unsent backlog, which
            # would make receivers NAK data that was never on the wire
            skb = self._control_skb(PacketType.KEEPALIVE,
                                    seq=self._highest_sent_end)
            self.host.ip_send(skb, self.sock.daddr)
            self.stats.keepalives_sent += 1
            self._ka_interval_us = min(self._ka_interval_us * 2,
                                       self.cfg.keepalive_max_us)
            self.ka_timer.mod_after(self._ka_interval_us)
        else:
            self.ka_timer.mod_after(self._ka_interval_us - idle)

    # ------------------------------------------------------------------
    # feedback processor (hrmc_master_rcv)

    def segment_received(self, skb: SKBuff, src: str) -> None:
        ptype = skb.ptype
        now = self.sim.now
        if ptype == PacketType.JOIN:
            self._on_join(skb, src, now)
        elif ptype == PacketType.LEAVE:
            self._on_leave(skb, src)
        elif ptype == PacketType.NAK:
            self._on_nak(skb, src, now)
        elif ptype == PacketType.CONTROL:
            self._on_control(skb, src, now)
        elif ptype == PacketType.UPDATE:
            self._on_update(skb, src, now)
        # DATA echoes (local-recovery repairs) and anything else: ignore

    def _take_probe_sample(self, src: str, now: int) -> None:
        m = self.members.get(src)
        if m is None or m.probe_sent_us < 0:
            return
        if not m.probe_ambiguous:
            self.rtt.sample(src, now - m.probe_sent_us)
        m.probe_sent_us = -1
        m.probe_ambiguous = False
        m.probe_tries = 0

    def _on_join(self, skb: SKBuff, src: str, now: int) -> None:
        self.stats.joins_rcvd += 1
        if self.cfg.track_membership:
            member = self.members.add(src, skb.seq, now)
            member.have_info = True
        # the JOIN echoes (in rate_adv) the seq of the data packet that
        # triggered it; a first-transmission match yields an RTT sample
        echo = skb.rate_adv
        for queued in self.sock.write_queue:
            if seq_leq(queued.seq, echo) and seq_lt(echo, queued.end_seq):
                if queued.tries == 1:
                    self.rtt.sample(src, now - queued.last_sent_us)
                break
            if seq_gt(queued.seq, echo):
                break
        resp = self._control_skb(PacketType.JOIN_RESPONSE, seq=self.snd_nxt)
        self.host.ip_send(resp, src)
        self._kick()

    def _on_leave(self, skb: SKBuff, src: str) -> None:
        self.stats.leaves_rcvd += 1
        self.members.remove(src)
        self.rtt.forget(src)
        resp = self._control_skb(PacketType.LEAVE_RESPONSE, seq=self.snd_nxt)
        self.host.ip_send(resp, src)
        self._kick()

    def _on_nak(self, skb: SKBuff, src: str, now: int) -> None:
        self.stats.naks_rcvd += 1
        h = self.health
        if h is not None:
            h.on_nak_rcvd()
        self._take_probe_sample(src, now)
        if self.cfg.track_membership:
            # a NAK's seq is the requested range start; the receiver's
            # next expected sequence number rides in rate_adv
            self.members.update_feedback(src, skb.rate_adv, now)
        start = skb.seq
        end = seq_add(skb.seq, max(1, skb.length))
        if seq_lt(start, self.snd_wnd):
            # requested data is (at least partly) gone from the buffer
            self.stats.nak_errs_sent += 1
            self.stats.reliability_violations += 1
            if h is not None:
                h.on_nak_err()
            err = self._control_skb(PacketType.NAK_ERR, seq=self.snd_wnd)
            self.host.ip_send(err, src)
            start = self.snd_wnd
            if seq_geq(start, end):
                return
        if seq_geq(start, self._recover_seq):
            # a fresh loss event, not more fallout from the last one
            if self.rate.on_loss_signal(now, self.rtt.rtt_us):
                self._recover_seq = self.snd_nxt
                if h is not None:
                    h.on_loss_event()
        self._queue_retransmission(start, end)
        self._kick()

    def _on_control(self, skb: SKBuff, src: str, now: int) -> None:
        self._take_probe_sample(src, now)
        if self.cfg.track_membership:
            self.members.update_feedback(src, skb.seq, now)
        rtt = self.rtt.rtt_us
        if skb.flags & URG:
            self.stats.urgent_requests_rcvd += 1
            self.rate.on_urgent(now, rtt, self.cfg.urgent_stop_rtts)
            self._budget = 0.0
        else:
            self.stats.rate_requests_rcvd += 1
            self.rate.on_loss_signal(now, rtt)
            self.rate.on_suggestion(skb.rate_adv)
        self._kick()

    def _on_update(self, skb: SKBuff, src: str, now: int) -> None:
        self.stats.updates_rcvd += 1
        self._take_probe_sample(src, now)
        if self.cfg.track_membership:
            self.members.update_feedback(src, skb.seq, now)
        self._kick()

    # ------------------------------------------------------------------
    # helpers

    def _control_skb(self, ptype: PacketType, *, seq: int,
                     flags: int = 0) -> SKBuff:
        return SKBuff(sport=self.sock.num, dport=self.sock.dport, seq=seq,
                      ptype=ptype, length=0, rate_adv=self.rate.rate_bps,
                      flags=flags, tries=1)

    def _kick(self) -> None:
        """Re-evaluate window state promptly after feedback."""
        if self.finished:
            return
        self._advance_window(self.sim.now)
        if self._retrans and not self.retrans_timer.pending:
            self.retrans_timer.mod_after(self.cfg.min_rtt_us)

    def _on_drained(self) -> None:
        self.sock.state_change.fire()
        if self.closing and not self.finished:
            self.finished = True
            self.stop()
