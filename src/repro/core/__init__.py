"""H-RMC: the paper's primary contribution.

A hybrid reliable multicast transport that is primarily NAK-based but
adds three mechanisms so a finite kernel send buffer never compromises
reliability:

* per-receiver membership state (IP address + next expected sequence
  number, kept in a hash table and doubly linked list),
* periodic receiver UPDATE messages with a dynamically adapted period,
* sender PROBE polling of any receiver whose state is unknown at
  buffer-release time -- the window never advances past data a current
  member still lacks.

Flow control combines a rate-based component (slow start / congestion
avoidance / halving on NAKs and warning rate requests / a full stop on
urgent requests) with window-based rules over the send and receive
sequence spaces.
"""

from repro.core.config import HRMCConfig
from repro.core.types import PacketType, URG, FIN
from repro.core.protocol import HRMCTransport, open_hrmc_socket
from repro.core.header import Header, checksum

__all__ = [
    "HRMCConfig",
    "PacketType",
    "URG",
    "FIN",
    "HRMCTransport",
    "open_hrmc_socket",
    "Header",
    "checksum",
]
