"""The 20-byte RMC/H-RMC packet header (paper Figure 1).

Layout (network byte order)::

    0       2       4               8               12      14      16
    +-------+-------+---------------+---------------+-------+---+---+
    | sport | dport |   sequence    |   rate adv    | length| ck| t |
    +-------+-------+---------------+---------------+-------+---+---+
    | tries | type  |  flags (URG/FIN in low bits)  |
    ... packed as HH I I H H B B H == 20 bytes

The checksum is the Internet ones'-complement checksum over the header
(with the checksum field zeroed) and, optionally, the payload.  The
simulation fast path never serializes headers; :class:`Header` exists
so the wire format is real, tested, and available to tools.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.types import PacketType
from repro.kernel.skbuff import SKBuff

__all__ = ["Header", "HEADER_LEN", "checksum"]

HEADER_LEN = 20
_FMT = struct.Struct("!HHIIHHBBH")
assert _FMT.size == HEADER_LEN


def checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class Header:
    """Decoded header fields."""

    sport: int
    dport: int
    seq: int
    rate_adv: int
    length: int
    cksum: int
    tries: int
    ptype: PacketType
    flags: int

    def pack(self, payload: bytes = b"", *, fill_checksum: bool = True) -> bytes:
        """Serialize; computes the checksum over header+payload unless
        ``fill_checksum`` is False (then uses ``self.cksum`` as given)."""
        ck = self.cksum
        if fill_checksum:
            raw = _FMT.pack(self.sport, self.dport, self.seq, self.rate_adv,
                            self.length, 0, self.tries, int(self.ptype),
                            self.flags)
            ck = checksum(raw + payload)
        return _FMT.pack(self.sport, self.dport, self.seq, self.rate_adv,
                         self.length, ck, self.tries, int(self.ptype),
                         self.flags)

    @classmethod
    def unpack(cls, data: bytes) -> "Header":
        if len(data) < HEADER_LEN:
            raise ValueError(f"short header: {len(data)} bytes")
        sport, dport, seq, rate, length, ck, tries, ptype, flags = \
            _FMT.unpack_from(data)
        return cls(sport, dport, seq, rate, length, ck, tries,
                   PacketType(ptype), flags)

    def verify(self, data: bytes) -> bool:
        """True when ``data`` (header+payload) checksums to zero-error."""
        if len(data) % 2:
            data += b"\x00"
        return checksum(data) == 0

    @classmethod
    def from_skb(cls, skb: SKBuff) -> "Header":
        return cls(skb.sport, skb.dport, skb.seq, skb.rate_adv, skb.length,
                   0, skb.tries, PacketType(skb.ptype), skb.flags)

    def to_skb(self) -> SKBuff:
        return SKBuff(sport=self.sport, dport=self.dport, seq=self.seq,
                      ptype=int(self.ptype), length=self.length,
                      rate_adv=self.rate_adv, flags=self.flags,
                      tries=self.tries)
