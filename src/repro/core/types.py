"""Packet types and header flags (paper Table 1 and Figure 1)."""

from __future__ import annotations

import enum

__all__ = ["PacketType", "URG", "FIN", "PACKET_TYPE_USE"]


class PacketType(enum.IntEnum):
    """The eleven H-RMC packet types.  The first nine come from RMC;
    UPDATE and PROBE are the H-RMC additions."""

    DATA = 1
    NAK = 2
    NAK_ERR = 3
    JOIN = 4
    JOIN_RESPONSE = 5
    LEAVE = 6
    LEAVE_RESPONSE = 7
    CONTROL = 8
    KEEPALIVE = 9
    UPDATE = 10   # H-RMC only
    PROBE = 11    # H-RMC only


# Header flag bits
URG = 0x0001
FIN = 0x0002

# Human-readable inventory, mirroring Table 1 (used by the Table-1 bench
# and by diagnostics).
# simlint: ok[R3] read-only documentation table mirroring Table 1; never mutated
PACKET_TYPE_USE: dict[PacketType, str] = {
    PacketType.DATA: "Used by sender for data transmissions and retransmissions.",
    PacketType.NAK: "Used by receiver to request data retransmissions.",
    PacketType.NAK_ERR: "Used by sender to inform a receiver it cannot satisfy "
                        "retransmission request.",
    PacketType.JOIN: "Used by a receiver to request to join the multicast group.",
    PacketType.JOIN_RESPONSE: "Used by sender to confirm that a join request "
                              "has been accepted.",
    PacketType.LEAVE: "Used by a receiver to inform the sender that it is "
                      "leaving the multicast group.",
    PacketType.LEAVE_RESPONSE: "Used by sender to confirm that a leave request "
                               "has been received.",
    PacketType.CONTROL: "Used by a receiver to request a reduced transmission rate.",
    PacketType.KEEPALIVE: "Used by sender to keep the connection active during "
                          "idle time.",
    PacketType.UPDATE: "Used by the receiver to send state information to the "
                       "sender. (H-RMC only)",
    PacketType.PROBE: "Used by the sender to obtain state information from "
                      "receivers. (H-RMC only)",
}

# H-RMC additions over the base RMC protocol
HRMC_ONLY_TYPES = frozenset({PacketType.UPDATE, PacketType.PROBE})
