"""Receiver-side NAK bookkeeping with local suppression.

The receiver keeps a list of missing byte ranges (the "Pending NAK
list" of paper Figure 9).  A NAK is sent when a range is first
detected; the NAK manager (``nak_timer``) re-sends NAKs for ranges that
remain missing, but never before the sender has had ample opportunity
to respond -- the *local NAK suppression* interval, a multiple of the
receiver's RTT estimate.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.seq import seq_geq, seq_leq, seq_lt, seq_max, seq_min, seq_sub

__all__ = ["NakRange", "NakList"]


class NakRange:
    """One missing byte range [start, end)."""

    __slots__ = ("start", "end", "last_sent_us", "tries", "created_us",
                 "local_tries")

    def __init__(self, start: int, end: int, now_us: int):
        self.start = start
        self.end = end
        self.created_us = now_us
        self.last_sent_us = -(10 ** 12)
        self.tries = 0
        self.local_tries = 0  # multicast repair requests (local recovery)

    @property
    def length(self) -> int:
        return seq_sub(self.end, self.start)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NakRange([{self.start},{self.end}) tries={self.tries})"


class NakList:
    """Ordered, disjoint set of missing ranges."""

    def __init__(self):
        self._ranges: list[NakRange] = []
        # optional protocol-health probe (repro.obs.health); None in
        # ordinary runs -- every hook site is a single attribute test
        self.health = None

    def __len__(self) -> int:
        return len(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __iter__(self) -> Iterator[NakRange]:
        return iter(self._ranges)

    def total_missing(self) -> int:
        return sum(r.length for r in self._ranges)

    def add_gap(self, start: int, end: int, now_us: int) -> list[NakRange]:
        """Record that [start, end) is missing.  Returns the newly
        created ranges (portions not already tracked)."""
        if seq_geq(start, end):
            return []
        new: list[NakRange] = []
        cursor = start
        merged: list[NakRange] = []
        for rng in self._ranges:
            if seq_leq(rng.end, cursor) or seq_geq(rng.start, end):
                merged.append(rng)
                continue
            # overlap: keep existing range, emit any uncovered prefix
            if seq_lt(cursor, rng.start):
                fresh = NakRange(cursor, rng.start, now_us)
                new.append(fresh)
                merged.append(fresh)
            merged.append(rng)
            cursor = seq_max(cursor, rng.end)
        if seq_lt(cursor, end):
            fresh = NakRange(cursor, end, now_us)
            new.append(fresh)
            merged.append(fresh)
        merged.sort(key=lambda r: seq_sub(r.start, start))
        # normalize ordering by absolute position relative to first element
        base = merged[0].start if merged else 0
        merged.sort(key=lambda r: seq_sub(r.start, base))
        self._ranges = merged
        if new and self.health is not None:
            self.health.on_gaps_opened(new)
        return new

    def fill(self, start: int, end: int) -> None:
        """Data [start, end) arrived; shrink/split/remove covered ranges."""
        if seq_geq(start, end):
            return
        h = self.health
        out: list[NakRange] = []
        for rng in self._ranges:
            if seq_leq(end, rng.start) or seq_geq(start, rng.end):
                out.append(rng)  # disjoint
                continue
            covered = True
            if seq_lt(rng.start, start):
                left = NakRange(rng.start, seq_min(start, rng.end),
                                rng.created_us)
                left.last_sent_us = rng.last_sent_us
                left.tries = rng.tries
                out.append(left)
                covered = False
            if seq_lt(end, rng.end):
                right = NakRange(seq_max(end, rng.start), rng.end,
                                 rng.created_us)
                right.last_sent_us = rng.last_sent_us
                right.tries = rng.tries
                out.append(right)
                covered = False
            if covered and h is not None:
                h.on_gap_removed(rng)
        self._ranges = out

    def fill_below(self, seq: int) -> None:
        """Everything below ``seq`` is now in order."""
        h = self.health
        out = []
        for rng in self._ranges:
            if seq_leq(rng.end, seq):
                if h is not None:
                    h.on_gap_removed(rng)
                continue
            if seq_lt(rng.start, seq):
                rng.start = seq
            out.append(rng)
        self._ranges = out

    #: re-NAK interval growth per unanswered try, and its cap
    BACKOFF = 2.0
    MAX_INTERVAL_US = 2_000_000

    def due(self, now_us: int, suppress_interval_us: int) -> list[NakRange]:
        """Ranges whose NAK may be (re)sent under local suppression.

        The suppression interval backs off exponentially with the number
        of unanswered tries (capped), so a slow retransmission path is
        not pounded with duplicate NAKs.
        """
        out = []
        for r in self._ranges:
            interval = min(
                suppress_interval_us * (self.BACKOFF ** min(r.tries, 8)),
                self.MAX_INTERVAL_US)
            if now_us - r.last_sent_us >= interval:
                out.append(r)
        return out

    def mark_sent(self, rng: NakRange, now_us: int) -> None:
        rng.last_sent_us = now_us
        rng.tries += 1

    def first(self) -> Optional[NakRange]:
        return self._ranges[0] if self._ranges else None
