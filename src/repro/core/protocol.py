"""H-RMC transport glue: socket-facing object dispatching to the sender
or receiver role.

Mirrors the paper's socket plumbing (section 4.1): creating an AF_HRMC
socket allocates the sock structure; ``connect`` makes it a sending
endpoint, the receiver-side ``setsockopt(IP_ADD_MEMBERSHIP)`` + bind
(our :meth:`join`) makes it a receiving endpoint.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.config import HRMCConfig
from repro.core.receiver import HRMCReceiver
from repro.core.sender import HRMCSender
from repro.kernel.host import Host, Transport
from repro.kernel.payload import Payload
from repro.kernel.skbuff import SKBuff
from repro.kernel.sock import Sock
from repro.kernel.socket_api import Socket
from repro.sim.timer import Timer
from repro.stats.metrics import Counters

__all__ = ["HRMCTransport", "open_hrmc_socket"]


class HRMCTransport(Transport):
    """One H-RMC socket endpoint (sender xor receiver role)."""

    def __init__(self, host: Host, cfg: Optional[HRMCConfig] = None, *,
                 sndbuf: int = 64 * 1024, rcvbuf: int = 64 * 1024,
                 name: str = ""):
        self.host = host
        self.cfg = cfg or HRMCConfig()
        self.sock = Sock(host.sim, sndbuf=sndbuf, rcvbuf=rcvbuf,
                         name=name or f"hrmc@{host.addr}")
        self.stats = Counters()
        self.sender: Optional[HRMCSender] = None
        self.receiver: Optional[HRMCReceiver] = None
        # optional protocol-health monitor (repro.obs.health): set by
        # Observability.attach before the sim runs; forwarded to the
        # lazily created role at connect/join time
        self.health = None
        self._bound_port: Optional[int] = None
        self._group: Optional[str] = None
        self._backlog: list[tuple[SKBuff, str]] = []

    # -- connection management (hrmc_bind / hrmc_connect) ---------------

    def bind(self, port: int) -> None:
        if self._bound_port is not None:
            raise RuntimeError("already bound")
        self.host.bind(port, self)
        self.sock.num = port
        self.sock.rcv_saddr = self.host.addr
        self._bound_port = port

    def connect(self, daddr: str, dport: int) -> None:
        """Become the sending endpoint of a multicast connection."""
        if self.receiver is not None:
            raise RuntimeError("socket already joined as a receiver")
        if self._bound_port is None:
            raise RuntimeError("bind before connect")
        self.sock.daddr = daddr
        self.sock.dport = dport
        self.sock.tp_pinfo = self.sender = HRMCSender(
            self.host, self.sock, self.cfg, self.stats)
        if self.health is not None:
            self.health.bind_sender(self.sender)
        self.sender.start()

    def join(self, group: str, port: int) -> None:
        """Become a receiving endpoint: join the IP multicast group and
        listen on the connection port."""
        if self.sender is not None:
            raise RuntimeError("socket already connected as a sender")
        self.bind(port)
        self.host.join_group(group)
        self._group = group
        self.sock.daddr = group
        self.sock.dport = port
        self.sock.tp_pinfo = self.receiver = HRMCReceiver(
            self.host, self.sock, self.cfg, self.stats)
        if self.health is not None:
            self.health.bind_receiver(self.receiver)
        self.receiver.start()

    # -- host dispatch --------------------------------------------------

    def segment_received(self, skb: SKBuff, src_addr: str) -> None:
        if self.sock.locked:
            # paper Figure 9: packets arriving while an application call
            # holds the socket wait on the backlog queue
            self._backlog.append((skb, src_addr))
            return
        self._dispatch(skb, src_addr)

    def _dispatch(self, skb: SKBuff, src_addr: str) -> None:
        if self.sender is not None:
            self.sender.segment_received(skb, src_addr)
        elif self.receiver is not None:
            self.receiver.segment_received(skb, src_addr)

    # -- socket lock (cf. lock_sock/release_sock + backlog processing) --

    def lock(self) -> None:
        self.sock.locked = True

    def unlock(self) -> None:
        self.sock.locked = False
        while self._backlog and not self.sock.locked:
            skb, src = self._backlog.pop(0)
            self._dispatch(skb, src)

    # -- socket-facade interface ------------------------------------------

    def sendmsg_some(self, payload: Payload) -> int:
        if self.sender is None:
            raise RuntimeError("not a sending socket")
        return self.sender.sendmsg_some(payload)

    def recvmsg(self, max_bytes: int) -> list[Payload]:
        if self.receiver is None:
            raise RuntimeError("not a receiving socket")
        return self.receiver.recvmsg(max_bytes)

    def at_eof(self) -> bool:
        return self.receiver is not None and self.receiver.at_eof()

    def close_wait(self) -> Generator:
        if self.sender is not None:
            self.sender.queue_fin()
            while not self.sender.drained:
                yield self.sock.state_change
            self.abort()
        elif self.receiver is not None:
            # retransmit LEAVE until acknowledged (it may be lost); the
            # sender's probe timeout is the backstop if we give up
            timeout = Timer(self.host.clock, self.sock.state_change.fire,
                            "leave-timeout", event_class="jiffy-timer")
            for _ in range(self.cfg.leave_max_tries):
                self.receiver.send_leave()
                timeout.mod_after(4 * self.receiver.rtt.rtt_us)
                yield self.sock.state_change
                if self.receiver.leave_acked:
                    break
            timeout.del_timer()
            self.abort()
        return None

    def abort(self) -> None:
        if self.sender is not None:
            self.sender.stop()
        if self.receiver is not None:
            self.receiver.stop()
        if self._group is not None:
            self.host.leave_group(self._group)
            self._group = None
        if self._bound_port is not None:
            self.host.unbind(self._bound_port)
            self._bound_port = None

    def unbound(self) -> None:
        pass


def open_hrmc_socket(host: Host, cfg: Optional[HRMCConfig] = None, *,
                     sndbuf: int = 64 * 1024,
                     rcvbuf: int = 64 * 1024) -> Socket:
    """Create an AF_HRMC socket on ``host`` (the ``socket()`` +
    ``hrmc_create`` path of paper Figure 5)."""
    return Socket(HRMCTransport(host, cfg, sndbuf=sndbuf, rcvbuf=rcvbuf))
