"""The H-RMC receiver (paper section 4.3, Figure 9).

Components:

* **Main packet processor** (``hrmc_rcv_data``): reassembles the data
  stream, parks out-of-order segments, detects gaps and generates NAKs,
  and evaluates the flow-control rules of Figure 2 on every arrival.
* **NAK manager** (``nak_timer``): re-sends pending NAKs, under local
  suppression so the sender gets ample opportunity to respond.
* **Update generator** (``update_timer``): periodic UPDATEs carrying
  the next expected sequence number, sent only in the absence of other
  reverse traffic, with the dynamically adapted period.
* **Application interface** (``hrmc_recvmsg``): delivers the in-order
  stream to the application and advances the receive window as data is
  consumed.

Also handles the receiver side of the membership handshake (JOIN on
first data packet, LEAVE at close), PROBE polling (answer with UPDATE
or an immediate NAK), and the optional FEC repair extension.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.sim.rng import substream

from repro.core.config import HRMCConfig
from repro.core.nak import NakList
from repro.core.rtt import RttEstimator
from repro.core.seq import (seq_add, seq_geq, seq_gt, seq_leq, seq_lt,
                            seq_max, seq_sub)
from repro.core.types import FIN, URG, PacketType
from repro.core.window import Region, classify_fill, window_empty, window_fill
from repro.core.update import UpdatePolicy
from repro.kernel.host import Host
from repro.kernel.payload import Payload, PatternPayload
from repro.kernel.skbuff import SKBuff
from repro.kernel.sock import Sock
from repro.sim.timer import JIFFY_US, Timer
from repro.stats.metrics import Counters

__all__ = ["HRMCReceiver"]

FEC_PARITY = 0x8000  # flags bit marking a parity frame


class HRMCReceiver:
    def __init__(self, host: Host, sock: Sock, cfg: HRMCConfig,
                 counters: Counters):
        self.host = host
        self.sock = sock
        self.cfg = cfg
        self.stats = counters
        self.sim = host.sim

        self.rcv_wnd = cfg.iss        # first unread byte
        self.rcv_nxt = cfg.iss        # next expected sequence number
        self.rcv_wnd_size = sock.rcvbuf
        self.highest_seen = cfg.iss   # right-most byte observed (incl. ooo)
        self.eof_seq: Optional[int] = None
        self.eof_reached = False
        self.lost_bytes = 0           # bytes abandoned after NAK_ERR (RMC)
        self.error: Optional[str] = None

        self.sender_addr: Optional[str] = None
        self.sender_port: Optional[int] = None
        self.join_state = "idle"      # idle -> sent -> joined
        self._join_tries = 0
        self._join_sent_us = -1

        self.rtt = RttEstimator(cfg.initial_rtt_us, cfg.min_rtt_us)
        self.naks = NakList()
        self.update = UpdatePolicy(
            initial_jiffies=cfg.update_initial_jiffies,
            min_jiffies=cfg.update_min_jiffies,
            max_jiffies=cfg.update_max_jiffies,
            step_jiffies=cfg.update_step_jiffies,
            dynamic=cfg.dynamic_update_timer)
        self._feedback_since_update = False
        self._last_urgent_us = -(10 ** 12)
        self._last_adv_rate = 0

        self._ooo: dict[int, SKBuff] = {}       # out_of_order_queue by seq
        self._parity: dict[int, int] = {}       # FEC: block start -> extent
        # local recovery (future-work extension 3)
        self._repair_cache: "OrderedDict[int, SKBuff]" = OrderedDict()
        self._repair_cache_bytes = 0
        self._repairs_seen: dict[int, int] = {}   # seq -> time observed
        self._lr_rng = substream(0, f"local-recovery:{host.addr}")

        # optional protocol-health probe (repro.obs.health), installed
        # by HealthMonitor.bind_receiver; None in ordinary runs
        self.health = None

        self.leave_acked = False
        self.failed = False             # sender declared dead
        self._last_sender_us = -1
        self.nak_timer = Timer(host.clock, self._nak_tick, "nak",
                               event_class="nak-repair-timer")
        self.update_timer = Timer(host.clock, self._update_tick, "update",
                                  event_class="jiffy-timer")
        self.join_timer = Timer(host.clock, self._join_retry, "join-retry",
                                event_class="nak-repair-timer")
        self.liveness_timer = Timer(host.clock, self._liveness_tick,
                                    "liveness", event_class="jiffy-timer")
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        if self.cfg.updates_enabled:
            self.update_timer.mod_after(self.update.period_us)

    def stop(self) -> None:
        self._closed = True
        self.nak_timer.del_timer()
        self.update_timer.del_timer()
        self.join_timer.del_timer()
        self.liveness_timer.del_timer()

    # ------------------------------------------------------------------
    # packet processor

    def segment_received(self, skb: SKBuff, src: str) -> None:
        if self._closed:
            return
        ptype = skb.ptype
        if ptype != PacketType.NAK:   # everything else originates at the
            self._last_sender_us = self.sim.now   # sender: it is alive
        if ptype == PacketType.DATA:
            if self.sender_addr is None or src == self.sender_addr:
                self._learn_sender(skb, src)
            if skb.flags & FEC_PARITY:
                self._on_parity(skb)
            else:
                self._on_data(skb, src)
        elif ptype == PacketType.KEEPALIVE:
            self._learn_sender(skb, src)
            self.stats.keepalives_rcvd += 1
            if seq_gt(skb.seq, self.rcv_nxt):
                self._note_gap(self.rcv_nxt, skb.seq)
        elif ptype == PacketType.NAK:
            self._on_peer_nak(skb, src)
        elif ptype == PacketType.PROBE:
            self._on_probe(skb)
        elif ptype == PacketType.JOIN_RESPONSE:
            self._on_join_response()
        elif ptype == PacketType.NAK_ERR:
            self._on_nak_err(skb)
        elif ptype == PacketType.LEAVE_RESPONSE:
            self.leave_acked = True
            self.sock.state_change.fire()

    def _learn_sender(self, skb: SKBuff, src: str) -> None:
        self._last_sender_us = self.sim.now
        if self.sender_addr is None:
            self.sender_addr = src
            self.sender_port = skb.sport
            self.liveness_timer.mod_after(self.cfg.session_timeout_us // 4)
        if self.join_state == "idle":
            self._send_join(trigger_seq=skb.seq)

    def _liveness_tick(self) -> None:
        """Declare the sender dead after prolonged total silence
        (keepalives are capped at 2 s, so silence means it is gone)."""
        if self._closed or self.at_eof():
            return
        idle = self.sim.now - self._last_sender_us
        if idle >= self.cfg.session_timeout_us:
            self.failed = True
            self.error = "sender unreachable (session timeout)"
            self.sock.data_ready.fire()   # unblock a sleeping application
        else:
            self.liveness_timer.mod_after(self.cfg.session_timeout_us // 4)

    # -- data reassembly ----------------------------------------------------

    def _on_data(self, skb: SKBuff, src: str = "") -> None:
        self.stats.data_pkts_rcvd += 1
        self.stats.data_bytes_rcvd += skb.length
        seq, end = skb.seq, skb.end_seq
        self.highest_seen = seq_max(self.highest_seen, end)
        peer_repair = (self.cfg.local_recovery and src and
                       self.sender_addr is not None and
                       src != self.sender_addr)
        h = self.health
        if peer_repair:
            # remember the repair so our own pending repair for the same
            # data is suppressed
            self._repairs_seen[seq] = self.sim.now
            if h is not None:
                # pending NAKs this repair resolves were suppressed by
                # the peer, not by our own re-NAK reaching the sender
                h.on_peer_repair(self.naks, seq, end)

        if seq_leq(end, self.rcv_nxt):
            self.stats.dup_pkts_rcvd += 1
            if h is not None:
                h.on_duplicate_data(skb, peer_repair)
            self._flow_control(skb)
            return
        if peer_repair:
            self.stats.local_repairs_used += 1
        if seq_gt(end, seq_add(self.rcv_wnd, self.rcv_wnd_size + 1)):
            # region R4: beyond the receive window; cannot buffer
            self.stats.out_of_window_drops += 1
            self._send_urgent()
            return

        if seq_gt(seq, self.rcv_nxt):
            # a gap precedes this segment
            self.stats.out_of_order_pkts += 1
            if seq not in self._ooo:
                self._ooo[seq] = skb
                if h is not None and (skb.tries > 1 or peer_repair):
                    h.on_repair_useful(skb)
                self._note_gap(self.rcv_nxt, seq)
            else:
                self.stats.dup_pkts_rcvd += 1
                if h is not None:
                    h.on_duplicate_data(skb, peer_repair)
        else:
            if h is not None and (skb.tries > 1 or peer_repair):
                h.on_repair_useful(skb)
            self._integrate(skb)
            self._drain_ooo()
        self._flow_control(skb)
        self._try_fec_repairs()

    def _integrate(self, skb: SKBuff) -> None:
        """Deliver an skb that starts at or before rcv_nxt."""
        seq, end = skb.seq, skb.end_seq
        if skb.flags & FIN:
            self.eof_seq = skb.seq
            self.rcv_nxt = end  # consume the phantom byte
            self.naks.fill_below(self.rcv_nxt)
            self.sock.data_ready.fire()
            return
        trim = seq_sub(self.rcv_nxt, seq)
        payload: Optional[Payload] = skb.payload
        length = skb.length - trim
        if trim > 0 and payload is not None:
            payload = payload.slice(trim, length)
        out = SKBuff(sport=skb.sport, dport=skb.dport, seq=self.rcv_nxt,
                     ptype=PacketType.DATA, length=length, payload=payload)
        self.sock.receive_queue.enqueue(out)
        if self.cfg.local_recovery and payload is not None:
            self._cache_for_repair(out.seq, length, payload)
        self.rcv_nxt = end
        self.naks.fill_below(self.rcv_nxt)
        self.sock.data_ready.fire()

    def _cache_for_repair(self, seq: int, length: int,
                          payload: Payload) -> None:
        """Retain delivered data so we can serve peer repair requests."""
        h = self.health
        if seq in self._repair_cache:
            if h is not None:
                h.on_cache_overwrite()
            return
        entry = SKBuff(sport=self.sock.num, dport=self.sock.num, seq=seq,
                       ptype=PacketType.DATA, length=length, payload=payload)
        self._repair_cache[seq] = entry
        self._repair_cache_bytes += length
        if h is not None:
            h.on_cache_insert()
        while self._repair_cache_bytes > self.cfg.repair_cache_bytes:
            _, old = self._repair_cache.popitem(last=False)
            self._repair_cache_bytes -= old.length
            if h is not None:
                h.on_cache_evict()

    def _drain_ooo(self) -> None:
        while True:
            skb = self._ooo.pop(self.rcv_nxt, None)
            if skb is None:
                # tolerate retransmissions that re-segmented: find any
                # parked segment now overlapping rcv_nxt
                candidate = None
                for s, parked in self._ooo.items():
                    if seq_leq(s, self.rcv_nxt) and \
                            seq_gt(parked.end_seq, self.rcv_nxt):
                        candidate = s
                        break
                if candidate is None:
                    break
                skb = self._ooo.pop(candidate)
            self._integrate(skb)

    def _note_gap(self, start: int, end: int) -> None:
        """Record missing [start, end) and NAK any newly seen ranges."""
        now = self.sim.now
        lineage = self.sim.lineage
        if lineage is not None:
            # the out-of-order arrival we are processing *revealed* the
            # gap; NAK transmissions chain under this node
            lineage.emit("gap", self.host.addr, "detected",
                         seq=start, end=end)
        fresh = self.naks.add_gap(start, end, now)
        for rng in fresh:
            self._send_nak(rng, now)
        if self.naks and not self.nak_timer.pending:
            self.nak_timer.mod_after(self._nak_period_us())

    # -- NAK manager --------------------------------------------------

    def _nak_period_us(self) -> int:
        return max(JIFFY_US, self.rtt.rtt_us // 2)

    def _suppress_us(self) -> int:
        return int(self.cfg.nak_suppress_rtts * self.rtt.rtt_us)

    def _nak_tick(self) -> None:
        if self._closed:
            return
        now = self.sim.now
        due = self.naks.due(now, self._suppress_us())
        h = self.health
        if h is not None:
            # pending ranges not due are re-NAK opportunities withheld
            # by the local suppression timer
            h.on_nak_tick(len(self.naks), len(due))
        for rng in due:
            self._send_nak(rng, now)
        if self.naks:
            self.nak_timer.mod_after(self._nak_period_us())

    def _send_nak(self, rng, now: int) -> None:
        if self.sender_addr is None:
            return
        length = min(rng.length, self.cfg.nak_max_range)
        skb = self._feedback_skb(PacketType.NAK, seq=rng.start)
        skb.length = length
        # NAKs, like all feedback, carry the receiver's next expected
        # sequence number (paper section 3); it rides in rate_adv since
        # seq names the requested range start.
        skb.rate_adv = self.rcv_nxt
        if (self.cfg.local_recovery and
                rng.local_tries < self.cfg.local_recovery_tries and
                self.sock.daddr is not None):
            # future-work (3): ask the local site first -- multicast the
            # NAK to the group; peers with the data multicast a repair
            skb.dport = self.sock.num
            self.host.ip_send(skb, self.sock.daddr)
            rng.local_tries += 1
        else:
            self.host.ip_send(skb, self.sender_addr)
        self.naks.mark_sent(rng, now)
        self.stats.naks_sent += 1
        if self.health is not None:
            self.health.on_nak_sent(rng)
        self._feedback_since_update = True

    # -- peer repair (local recovery, future-work extension 3) ----------

    def _on_peer_nak(self, skb: SKBuff, src: str) -> None:
        """A peer multicast a NAK; serve it from the repair cache after
        a randomized suppression delay."""
        if not self.cfg.local_recovery or src == self.host.addr:
            return
        start, end = skb.seq, seq_add(skb.seq, max(1, skb.length))
        if seq_lt(self.rcv_nxt, end):
            return  # we don't have all of it either
        chunks = [e for s, e in self._repair_cache.items()
                  if seq_lt(s, end) and seq_gt(e.end_seq, start)]
        h = self.health
        if not chunks:
            if h is not None:
                h.on_cache_miss()
            return
        if h is not None:
            h.on_cache_hit(len(chunks[:8]))
        delay = int(self._lr_rng.uniform(0.1, 1.0) * max(self.rtt.rtt_us,
                                                         2_000))
        self.sim.call_after(delay, self._emit_repairs, chunks[:8])

    def _emit_repairs(self, chunks: list[SKBuff]) -> None:
        if self._closed or self.sock.daddr is None:
            return
        now = self.sim.now
        horizon = 2 * max(self.rtt.rtt_us, 2_000)
        h = self.health
        for entry in chunks:
            seen = self._repairs_seen.get(entry.seq)
            if seen is not None and now - seen < horizon:
                if h is not None:
                    h.on_repair_suppressed()
                continue  # someone else already repaired it
            repair = SKBuff(sport=self.sock.num, dport=self.sock.num,
                            seq=entry.seq, ptype=PacketType.DATA,
                            length=entry.length, tries=1,
                            payload=entry.payload)
            self.host.ip_send(repair, self.sock.daddr)
            self._repairs_seen[entry.seq] = now
            self.stats.local_repairs_sent += 1

    # -- flow control (Figure 2 rules) ------------------------------------

    def _flow_control(self, skb: SKBuff) -> None:
        self._last_adv_rate = skb.rate_adv
        high = seq_max(self.rcv_nxt, self.highest_seen)
        fill = window_fill(self.rcv_wnd, high)
        region = classify_fill(fill, self.rcv_wnd_size,
                               self.cfg.warn_fill, self.cfg.crit_fill)
        if region is Region.SAFE:
            return
        if region is Region.CRITICAL:
            self._send_urgent()
            return
        # warning rule: request a lower rate if WARNBUF RTTs of traffic at
        # the advertised rate would overrun the empty part of the window
        empty = window_empty(self.rcv_wnd, high, self.rcv_wnd_size)
        horizon_s = self.cfg.warnbuf_rtts * self.rtt.rtt_us / 1e6
        if skb.rate_adv * horizon_s > empty:
            suggested = int(empty / horizon_s) if horizon_s > 0 else 0
            ctrl = self._feedback_skb(PacketType.CONTROL, seq=self.rcv_nxt)
            ctrl.rate_adv = max(0, suggested)
            if self.sender_addr is not None:
                self.host.ip_send(ctrl, self.sender_addr)
                self.stats.rate_requests_sent += 1
                self._feedback_since_update = True

    def _send_urgent(self) -> None:
        now = self.sim.now
        if now - self._last_urgent_us < self.rtt.rtt_us:
            return  # the sender is already stopped for 2 RTTs
        if self.sender_addr is None:
            return
        self._last_urgent_us = now
        skb = self._feedback_skb(PacketType.CONTROL, seq=self.rcv_nxt,
                                 flags=URG)
        self.host.ip_send(skb, self.sender_addr)
        self.stats.urgent_requests_sent += 1
        self._feedback_since_update = True

    # -- update generator ----------------------------------------------

    def _update_tick(self) -> None:
        if self._closed:
            return
        if not self._feedback_since_update and self.sender_addr is not None:
            self._send_update()
        self._feedback_since_update = False
        self.update_timer.mod_after(self.update.end_period())

    def _send_update(self) -> None:
        skb = self._feedback_skb(PacketType.UPDATE, seq=self.rcv_nxt)
        self.host.ip_send(skb, self.sender_addr)
        self.stats.updates_sent += 1

    # -- probes ----------------------------------------------------------

    def _on_probe(self, skb: SKBuff) -> None:
        self.stats.probes_rcvd += 1
        self.update.note_probe()
        if seq_geq(self.rcv_nxt, skb.seq):
            if self.sender_addr is not None:
                self._send_update()
                self._feedback_since_update = True
        else:
            # generate (or refresh) the NAK for the needed data, now
            now = self.sim.now
            fresh = self.naks.add_gap(self.rcv_nxt, skb.seq, now)
            for rng in fresh:
                self._send_nak(rng, now)
            # refresh existing NAKs for the probed span, under suppression
            for rng in self.naks.due(now, self._suppress_us()):
                if seq_lt(rng.start, skb.seq):
                    self._send_nak(rng, now)
            if self.naks and not self.nak_timer.pending:
                self.nak_timer.mod_after(self._nak_period_us())

    # -- membership handshake ------------------------------------------

    def _send_join(self, trigger_seq: int) -> None:
        if self.sender_addr is None:
            return
        skb = self._feedback_skb(PacketType.JOIN, seq=self.rcv_nxt)
        skb.rate_adv = trigger_seq  # echo: lets the sender take an RTT sample
        self.host.ip_send(skb, self.sender_addr)
        self.stats.joins_sent += 1
        self.join_state = "sent"
        self._join_tries += 1
        self._join_sent_us = self.sim.now
        self._feedback_since_update = True
        self.join_timer.mod_after(self.cfg.join_retry_us)

    def _join_retry(self) -> None:
        if self.join_state != "sent" or self._closed:
            return
        if self._join_tries >= self.cfg.join_max_tries:
            self.join_state = "joined"  # give up; data flow implies success
            return
        self.join_state = "idle"
        self._send_join(trigger_seq=self.rcv_nxt)

    def _on_join_response(self) -> None:
        if self.join_state == "sent":
            self.rtt.sample(self.sim.now - self._join_sent_us)
            self.join_state = "joined"
            self.join_timer.del_timer()

    # -- NAK_ERR: requested data is gone (RMC's reliability escape hatch)

    def _on_nak_err(self, skb: SKBuff) -> None:
        self.stats.nak_errs_rcvd += 1
        self.error = "retransmission unavailable (NAK_ERR)"
        lost_to = skb.seq  # the sender's window edge
        if seq_gt(lost_to, self.rcv_nxt):
            self.lost_bytes += seq_sub(lost_to, self.rcv_nxt)
            self.rcv_nxt = lost_to
            # unread data resumes after the hole; window origin moves too
            self.rcv_wnd = seq_max(self.rcv_wnd, lost_to)
            h = self.health
            if h is not None:
                # gaps wiped by a NAK_ERR were abandoned, not recovered
                h.abandoning = True
            self.naks.fill_below(lost_to)
            if h is not None:
                h.abandoning = False
            self._drain_ooo()
            self.sock.data_ready.fire()

    # -- FEC repair (future-work extension 4) ---------------------------------

    def _on_parity(self, skb: SKBuff) -> None:
        self._parity[skb.seq] = skb.rate_adv  # block extent in bytes
        self._try_fec_repairs()

    def _try_fec_repairs(self) -> None:
        if not self.cfg.fec_enabled or not self._parity:
            return
        repaired = []
        for block_start, extent in self._parity.items():
            block_end = seq_add(block_start, extent)
            if seq_leq(block_end, self.rcv_nxt):
                repaired.append(block_start)
                continue
            gaps = self._gaps_in(block_start, block_end)
            if len(gaps) == 1 and gaps[0][1] - gaps[0][0] <= self.cfg.mss:
                start, end = gaps[0]
                length = end - start
                synth = SKBuff(
                    sport=self.sender_port or 0, dport=self.sock.num,
                    seq=start % (1 << 32), ptype=PacketType.DATA,
                    length=length,
                    payload=PatternPayload(seq_sub(start, self.cfg.iss),
                                           length))
                self.stats.fec_repairs += 1
                self.naks.fill(start, end)
                if seq_leq(synth.seq, self.rcv_nxt):
                    self._integrate(synth)
                    self._drain_ooo()
                else:
                    self._ooo.setdefault(synth.seq, synth)
                repaired.append(block_start)
        for b in repaired:
            self._parity.pop(b, None)

    def _gaps_in(self, start: int, end: int) -> list[tuple[int, int]]:
        """Missing subranges of [start, end) given rcv_nxt and the ooo
        queue.  Works on absolute positions relative to ``start``."""
        lo = seq_max(start, self.rcv_nxt)
        if seq_geq(lo, end):
            return []
        covered: list[tuple[int, int]] = []
        for s, skb in self._ooo.items():
            e = skb.end_seq
            if seq_lt(s, end) and seq_gt(e, lo):
                covered.append((seq_sub(s, lo), seq_sub(e, lo)))
        covered.sort()
        span = seq_sub(end, lo)
        gaps: list[tuple[int, int]] = []
        cursor = 0
        for s, e in covered:
            if s > cursor:
                gaps.append((cursor, s))
            cursor = max(cursor, e)
        if cursor < span:
            gaps.append((cursor, span))
        return [(seq_add(lo, g0), seq_add(lo, g1)) for g0, g1 in gaps]

    # ------------------------------------------------------------------
    # application interface (hrmc_recvmsg)

    def recvmsg(self, max_bytes: int) -> list[Payload]:
        """Pop up to ``max_bytes`` of in-order payload; non-blocking."""
        out: list[Payload] = []
        taken = 0
        q = self.sock.receive_queue
        while taken < max_bytes and q:
            skb = q.peek()
            want = max_bytes - taken
            if skb.length <= want:
                q.dequeue()
                if skb.payload is not None:
                    out.append(skb.payload)
                taken += skb.length
                # seq_max, not assignment: a NAK_ERR may have advanced
                # the window origin past queued-but-unread data
                self.rcv_wnd = seq_max(self.rcv_wnd, skb.end_seq)
            else:
                # partial read: split the head skb
                q.dequeue()
                head = skb.payload.slice(0, want) if skb.payload else None
                if head is not None:
                    out.append(head)
                rest = SKBuff(sport=skb.sport, dport=skb.dport,
                              seq=seq_add(skb.seq, want),
                              ptype=PacketType.DATA,
                              length=skb.length - want,
                              payload=(skb.payload.slice(want,
                                                         skb.length - want)
                                       if skb.payload else None))
                q.requeue_front(rest)
                taken += want
                self.rcv_wnd = seq_max(self.rcv_wnd, seq_add(skb.seq, want))
        if self.eof_seq is not None and not self.sock.receive_queue and \
                seq_geq(self.rcv_wnd, self.eof_seq):
            self.eof_reached = True
        return out

    def at_eof(self) -> bool:
        if self.failed and not self.sock.receive_queue:
            return True   # sender gone: surface EOF (error is set)
        return self.eof_reached or (
            self.eof_seq is not None and not self.sock.receive_queue and
            seq_geq(self.rcv_wnd, self.eof_seq))

    # -- teardown ---------------------------------------------------------

    def send_leave(self) -> None:
        if self.sender_addr is None:
            return
        skb = self._feedback_skb(PacketType.LEAVE, seq=self.rcv_nxt)
        self.host.ip_send(skb, self.sender_addr)
        self.stats.leaves_sent += 1

    # ------------------------------------------------------------------

    def _feedback_skb(self, ptype: PacketType, *, seq: int,
                      flags: int = 0) -> SKBuff:
        return SKBuff(sport=self.sock.num,
                      dport=self.sender_port or self.sock.dport,
                      seq=seq, ptype=ptype, length=0, flags=flags, tries=1)
