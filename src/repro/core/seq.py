"""32-bit wrap-safe sequence-number arithmetic (TCP-style).

The byte stream is numbered modulo 2**32; comparisons are valid as long
as the live window spans less than 2**31 bytes, which every
configuration here satisfies by orders of magnitude.
"""

from __future__ import annotations

__all__ = ["SEQ_MASK", "seq_add", "seq_sub", "seq_lt", "seq_leq", "seq_gt",
           "seq_geq", "seq_between", "seq_max", "seq_min"]

SEQ_MASK = 0xFFFFFFFF
_HALF = 0x80000000


def seq_add(seq: int, delta: int) -> int:
    """``seq + delta`` modulo 2**32 (delta may be negative)."""
    return (seq + delta) & SEQ_MASK


def seq_sub(a: int, b: int) -> int:
    """Signed distance ``a - b`` interpreted in the window around ``b``.

    Positive when ``a`` is ahead of ``b``, negative when behind.
    """
    diff = (a - b) & SEQ_MASK
    return diff - (1 << 32) if diff >= _HALF else diff


def seq_lt(a: int, b: int) -> bool:
    return seq_sub(a, b) < 0


def seq_leq(a: int, b: int) -> bool:
    return seq_sub(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    return seq_sub(a, b) > 0


def seq_geq(a: int, b: int) -> bool:
    return seq_sub(a, b) >= 0


def seq_between(low: int, x: int, high: int) -> bool:
    """True when ``low <= x < high`` in circular order."""
    return seq_leq(low, x) and seq_lt(x, high)


def seq_max(a: int, b: int) -> int:
    return a if seq_geq(a, b) else b


def seq_min(a: int, b: int) -> int:
    return a if seq_leq(a, b) else b
