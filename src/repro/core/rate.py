"""Rate-based flow control (paper section 2, "Flow Control").

The sender maintains a current transmission rate, advertised in every
outgoing packet.  Dynamics mirror TCP's congestion control translated
into the rate domain (the paper cites Jacobson's slow start and
congestion avoidance):

* at connection start, and after any *urgent* rate request, the rate is
  set to a minimum and grows by slow start (doubling per RTT) up to the
  slow-start threshold, then linearly (one MSS-per-RTT worth of rate
  each RTT);
* a NAK or a *warning* rate request halves the rate and re-enters
  linear growth (at most one cut per RTT so a burst of feedback counts
  once);
* an urgent request additionally stops forward transmission entirely
  for two RTTs.

All rates are in bytes/second.  :meth:`allowance` converts elapsed wall
time into a transmission budget, applying growth continuously so the
per-jiffy transmitter sees smooth rate evolution.
"""

from __future__ import annotations

import enum

from repro.sim.timer import JIFFY_US

__all__ = ["RateController", "RatePhase"]


class RatePhase(enum.Enum):
    SLOW_START = "slow-start"
    CONG_AVOID = "congestion-avoidance"


class RateController:
    def __init__(self, *, min_rate: int, max_rate: int, mss: int):
        # rates in bytes/second
        self.min_rate = float(min_rate)
        self.max_rate = float(max_rate)
        self.mss = int(mss)
        self.rate = self.min_rate
        self.ssthresh = self.max_rate
        self.phase = RatePhase.SLOW_START
        self.stopped_until: int = 0
        self._last_cut_us: int = -(10 ** 12)
        # counters
        self.cuts = 0
        self.urgent_stops = 0

    # -- queries -----------------------------------------------------------

    @property
    def rate_bps(self) -> int:
        return int(self.rate)

    def is_stopped(self, now_us: int) -> bool:
        return now_us < self.stopped_until

    # -- growth ---------------------------------------------------------

    def grow(self, elapsed_us: int, rtt_us: int) -> None:
        """Advance the rate by ``elapsed_us`` of loss-free progress.

        The control timescale is clamped to a jiffy: the kernel's rate
        timer cannot react faster than its tick, so neither growth nor
        cut damping runs on sub-jiffy RTTs.
        """
        if elapsed_us <= 0:
            return
        rtt_us = max(rtt_us, JIFFY_US)
        rtts = elapsed_us / max(1, rtt_us)
        if self.phase is RatePhase.SLOW_START:
            self.rate = min(self.rate * (2.0 ** min(rtts, 30.0)),
                            self.ssthresh)
            if self.rate >= self.ssthresh:
                self.phase = RatePhase.CONG_AVOID
        if self.phase is RatePhase.CONG_AVOID:
            # one mss of window per RTT translates to mss/rtt of rate per RTT
            step_per_rtt = self.mss / (max(1, rtt_us) / 1e6)
            self.rate += step_per_rtt * rtts
        self.rate = min(self.rate, self.max_rate)

    def allowance(self, elapsed_us: int, rtt_us: int, now_us: int) -> float:
        """Grow, then return the byte budget earned over ``elapsed_us``.

        Returns 0 while stopped by an urgent rate request.
        """
        if self.is_stopped(now_us):
            return 0.0
        self.grow(elapsed_us, rtt_us)
        return self.rate * (elapsed_us / 1e6)

    # -- feedback reactions ----------------------------------------------

    def on_loss_signal(self, now_us: int, rtt_us: int) -> bool:
        """NAK or warning rate request: halve, go linear.  Returns True
        when a cut was applied (at most one per RTT, no faster than one
        per jiffy)."""
        if now_us - self._last_cut_us < max(rtt_us, JIFFY_US):
            return False
        self._last_cut_us = now_us
        self.ssthresh = max(self.min_rate, self.rate / 2.0)
        self.rate = max(self.min_rate, self.rate / 2.0)
        self.phase = RatePhase.CONG_AVOID
        self.cuts += 1
        return True

    def on_urgent(self, now_us: int, rtt_us: int, stop_rtts: int = 2) -> None:
        """Urgent rate request: stop for ``stop_rtts`` RTTs, then slow
        start again from the minimum rate."""
        self.urgent_stops += 1
        self.stopped_until = max(self.stopped_until,
                                 now_us + stop_rtts * rtt_us)
        self.ssthresh = max(self.min_rate, self.rate / 2.0)
        self.rate = self.min_rate
        self.phase = RatePhase.SLOW_START
        self._last_cut_us = now_us

    def on_suggestion(self, suggested_bps: int) -> None:
        """A receiver-computed rate suggestion caps the current rate."""
        if suggested_bps > 0:
            self.rate = min(self.rate,
                            max(self.min_rate, float(suggested_bps)))
