"""Group-membership state at the sender (paper sections 3 and 4.2).

For each receiver the sender keeps a small structure -- the (unicast)
IP address and the next sequence number that receiver expects -- stored
both in a doubly linked list and in a hash table (``mem_hash`` with
``RMC_HTABLE_SIZE`` buckets in the paper's ``hrmc_opt``), so lookup by
address and iteration over all members are both cheap.  Every piece of
feedback (NAK, rate request, UPDATE, JOIN) carries the receiver's next
expected sequence number, and updates this table.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.seq import seq_geq, seq_gt, seq_lt
from repro.net.addr import addr_hash

__all__ = ["Member", "MemberTable", "RMC_HTABLE_SIZE"]

RMC_HTABLE_SIZE = 32


class Member:
    """Per-receiver state (cf. ``struct mc_member``)."""

    __slots__ = ("addr", "next_expected", "have_info", "last_feedback_us",
                 "joined_us",
                 # probe bookkeeping
                 "last_probe_us", "probe_tries", "probe_sent_us",
                 "probe_ambiguous",
                 # intrusive links
                 "prev", "next", "hnext")

    def __init__(self, addr: str, next_expected: int, now_us: int):
        self.addr = addr
        self.next_expected = next_expected
        self.have_info = False       # any feedback since the tracked seq?
        self.last_feedback_us = now_us
        self.joined_us = now_us
        self.last_probe_us = -(10 ** 12)
        self.probe_tries = 0
        self.probe_sent_us = -1      # outstanding probe timestamp (-1: none)
        self.probe_ambiguous = False  # re-probed: Karn says discard sample
        self.prev: Optional["Member"] = None
        self.next: Optional["Member"] = None
        self.hnext: Optional["Member"] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Member({self.addr}, next={self.next_expected})"


class MemberTable:
    """Doubly linked list + hash table of members, as in the paper."""

    def __init__(self, buckets: int = RMC_HTABLE_SIZE):
        self._buckets: list[Optional[Member]] = [None] * buckets
        self._nbuckets = buckets
        self._head: Optional[Member] = None
        self._tail: Optional[Member] = None
        self._count = 0
        self.joins = 0
        self.leaves = 0
        self._departed: set[str] = set()  # addresses whose LEAVE was seen

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Member]:
        node = self._head
        while node is not None:
            yield node
            node = node.next

    def __contains__(self, addr: str) -> bool:
        return self.get(addr) is not None

    # -- hash helpers ----------------------------------------------------

    def _bucket(self, addr: str) -> int:
        return addr_hash(addr, self._nbuckets)

    def get(self, addr: str) -> Optional[Member]:
        node = self._buckets[self._bucket(addr)]
        while node is not None:
            if node.addr == addr:
                return node
            node = node.hnext
        return None

    # -- add/remove (cf. add_member / rm_member) ---------------------------

    def add(self, addr: str, next_expected: int, now_us: int) -> Member:
        """Add a member; duplicate JOINs return the existing entry."""
        existing = self.get(addr)
        if existing is not None:
            return existing
        member = Member(addr, next_expected, now_us)
        # hash chain
        idx = self._bucket(addr)
        member.hnext = self._buckets[idx]
        self._buckets[idx] = member
        # list tail insert
        member.prev = self._tail
        if self._tail is not None:
            self._tail.next = member
        else:
            self._head = member
        self._tail = member
        self._count += 1
        self.joins += 1
        self._departed.discard(addr)  # re-join after an earlier leave
        return member

    def remove(self, addr: str) -> bool:
        """Remove a member; unknown addresses are a no-op (idempotent).

        A LEAVE from an address that never made it into the table still
        counts toward the join/leave tallies (once): it proves a
        receiver whose JOIN was lost existed and is done -- on a
        transfer shorter than the join-retry period the JOIN is never
        retried, and without this the sender would wait forever for a
        join quorum that can no longer form.
        """
        member = self.get(addr)
        if member is None:
            if addr not in self._departed:
                self._departed.add(addr)
                self.joins += 1
                self.leaves += 1
            return False
        # hash chain unlink
        idx = self._bucket(addr)
        node = self._buckets[idx]
        prev_h: Optional[Member] = None
        while node is not None:
            if node is member:
                if prev_h is None:
                    self._buckets[idx] = node.hnext
                else:
                    prev_h.hnext = node.hnext
                break
            prev_h, node = node, node.hnext
        # list unlink
        if member.prev is not None:
            member.prev.next = member.next
        else:
            self._head = member.next
        if member.next is not None:
            member.next.prev = member.prev
        else:
            self._tail = member.prev
        member.prev = member.next = member.hnext = None
        self._count -= 1
        self.leaves += 1
        self._departed.add(addr)  # retried LEAVEs must not re-count
        return True

    # -- feedback (cf. update_mem) ----------------------------------------

    def update_feedback(self, addr: str, next_expected: int,
                        now_us: int) -> Optional[Member]:
        """Record feedback from a member; next_expected only advances."""
        member = self.get(addr)
        if member is None:
            return None
        if seq_gt(next_expected, member.next_expected):
            member.next_expected = next_expected
        member.have_info = True
        member.last_feedback_us = now_us
        if member.probe_sent_us >= 0:
            member.probe_sent_us = -1  # probe answered
        return member

    # -- release queries -------------------------------------------------

    def lacking(self, boundary_seq: int) -> list[Member]:
        """Members not known to have every byte below ``boundary_seq``."""
        return [m for m in self if seq_lt(m.next_expected, boundary_seq)]

    def all_have(self, boundary_seq: int) -> bool:
        return all(seq_geq(m.next_expected, boundary_seq) for m in self)

    # -- invariant check (used by tests) ---------------------------------

    def check_consistency(self) -> None:
        """Hash table and linked list must contain exactly the same
        members; raises AssertionError otherwise."""
        via_list = list(self)
        via_hash = []
        for head in self._buckets:
            node = head
            while node is not None:
                via_hash.append(node)
                node = node.hnext
        assert len(via_list) == self._count, "list length mismatch"
        assert (
            # simlint: ok[R5] identity comparison within one audit pass
            sorted(id(m) for m in via_list) ==
            # simlint: ok[R5] identity comparison within one audit pass
            sorted(id(m) for m in via_hash)
        ), "hash/list disagree"
        # doubly linked integrity
        for m in via_list:
            if m.prev is not None:
                assert m.prev.next is m
            if m.next is not None:
                assert m.next.prev is m
