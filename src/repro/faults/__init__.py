"""Deterministic fault injection and protocol-invariant checking.

The paper validates H-RMC on a clean testbed; this package supplies the
missing adversary.  A :class:`~repro.faults.plan.FaultPlan` is a
declarative, seed-reproducible schedule of faults (link flaps, NIC
burst drops and corruption, receiver crashes/restarts, CPU pauses,
clock trouble) executed by a
:class:`~repro.faults.injector.FaultInjector` through injection hooks
built into the network and kernel layers -- never by monkey-patching.
An :class:`~repro.faults.invariants.InvariantChecker` rides the packet
tracer and re-asserts the protocol's safety properties after every
captured event, failing fast with the offending trace slice.
"""

from repro.faults.plan import (ClockSkew, FaultAction, FaultPlan, HostPause,
                               LinkDegrade, LinkFlap, NicBurstDrop,
                               NicCorrupt, ReceiverCrash, TimerStall)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantViolation

__all__ = [
    "FaultAction", "FaultPlan",
    "LinkFlap", "LinkDegrade", "NicBurstDrop", "NicCorrupt",
    "ReceiverCrash", "HostPause", "ClockSkew", "TimerStall",
    "FaultInjector", "InvariantChecker", "InvariantViolation",
]
