"""Executes a :class:`~repro.faults.plan.FaultPlan` against a built
scenario.

Every fault goes through an injection hook built into the component
itself (``SharedLink``/``Pipe`` up/degrade flags, the NIC's power and
fault fields, ``Host.crash/restart/pause``, the per-host
``HostClock``); the injector only schedules when those knobs turn, so
the simulation stays deterministic and nothing is monkey-patched.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.faults.plan import (ClockSkew, FaultPlan, HostPause, LinkDegrade,
                               LinkFlap, NicBurstDrop, NicCorrupt,
                               ReceiverCrash, SENDER, TimerStall)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms a plan's actions on the simulator.

    Usage (the harness does this for you)::

        injector = FaultInjector(scenario, plan, checker=checker)
        injector.register_receivers(rsocks, procs, restart_fn=rejoin)
        injector.arm()
    """

    def __init__(self, scenario, plan: FaultPlan, checker=None):
        self.scenario = scenario
        self.sim = scenario.sim
        self.plan = plan
        self.checker = checker
        self._surfaces = scenario.network.fault_surfaces()
        self.log: list[tuple[int, str]] = []
        self.crashed: set[int] = set()
        self.restarted: set[int] = set()
        self._rsocks: list = []
        self._rprocs: list = []
        self._restart_fn: Optional[Callable[[int], None]] = None
        self._armed = False

    @property
    def fault_events(self) -> int:
        return len(self.log)

    def register_receivers(self, socks: list, procs: list,
                           restart_fn: Optional[Callable[[int], None]]
                           = None) -> None:
        """Tell the injector which socket/process pair embodies each
        receiver index, and how to rebuild one after a restart.
        ``restart_fn(idx)`` must create a fresh socket + application
        process on the (already restarted) host."""
        self._rsocks = list(socks)
        self._rprocs = list(procs)
        self._restart_fn = restart_fn

    # ------------------------------------------------------------------

    def arm(self) -> None:
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for idx, action in enumerate(self.plan.actions):
            at = max(int(action.at_us), self.sim.now)
            if isinstance(action, LinkFlap):
                surface = self._surface(action.surface)
                self.sim.call_at(at, self._set_up, surface,
                                 action.surface, False, idx)
                self.sim.call_at(at + action.duration_us, self._set_up,
                                 surface, action.surface, True, idx)
            elif isinstance(action, LinkDegrade):
                surface = self._surface(action.surface)
                self.sim.call_at(at, self._set_loss, surface,
                                 action.surface, action.loss_rate, idx)
                self.sim.call_at(at + action.duration_us, self._set_loss,
                                 surface, action.surface, 0.0, idx)
            elif isinstance(action, NicBurstDrop):
                self.sim.call_at(at, self._burst_drop, action, idx)
            elif isinstance(action, NicCorrupt):
                nic = self._host(action.target).nic
                self.sim.call_at(at, self._set_corrupt, nic,
                                 action.target, action.rate, idx)
                self.sim.call_at(at + action.duration_us, self._set_corrupt,
                                 nic, action.target, 0.0, idx)
            elif isinstance(action, ReceiverCrash):
                if not 0 <= action.target < len(self.scenario.receivers):
                    raise ValueError(
                        f"crash target {action.target} out of range")
                self.sim.call_at(at, self._crash, action, idx)
            elif isinstance(action, HostPause):
                self.sim.call_at(at, self._pause, action, idx)
            elif isinstance(action, ClockSkew):
                clock = self._host(action.target).clock
                self.sim.call_at(at, self._set_skew, clock,
                                 action.target, action.skew, idx)
                self.sim.call_at(at + action.duration_us, self._set_skew,
                                 clock, action.target, 1.0, idx)
            elif isinstance(action, TimerStall):
                self.sim.call_at(at, self._stall, action, idx)
            else:
                raise TypeError(f"unknown fault action {action!r}")

    # ------------------------------------------------------------------

    def _host(self, target: int):
        if target == SENDER:
            return self.scenario.sender
        return self.scenario.receivers[target]

    def _target_name(self, target: int) -> str:
        return "sender" if target == SENDER else f"rcv{target}"

    def _surface(self, name: str):
        try:
            return self._surfaces[name]
        except KeyError:
            raise ValueError(
                f"unknown fault surface {name!r}; this topology has: "
                f"{sorted(self._surfaces)}") from None

    def _note(self, msg: str) -> None:
        self.log.append((self.sim.now, msg))

    def _emit(self, what: str, where: str, idx: int,
              detail: str = "") -> int:
        """Record the fault action as a causal root (see obs.causal).
        The returned node id is stamped on the poisoned component's
        ``fault_cause`` so its drops can blame this exact plan entry."""
        lineage = self.sim.lineage
        if lineage is None:
            return 0
        return lineage.emit("fault", where, what,
                            detail=detail or f"plan[{idx}]")

    # -- action bodies --------------------------------------------------

    def _set_up(self, surface, name: str, up: bool, idx: int = -1) -> None:
        surface.up = up
        if up:
            self._emit("link_restored", name, idx, f"plan[{idx}] up")
            surface.fault_cause = 0
        else:
            surface.fault_cause = self._emit("link_flap", name, idx)
        self._note(f"{name} {'up' if up else 'down'}")

    def _set_loss(self, surface, name: str, rate: float,
                  idx: int = -1) -> None:
        surface.fault_loss_rate = rate
        if rate > 0.0:
            surface.fault_cause = self._emit(
                "link_degrade", name, idx, f"plan[{idx}] loss={rate}")
        else:
            self._emit("link_restored", name, idx, f"plan[{idx}] loss=0")
            surface.fault_cause = 0
        self._note(f"{name} loss={rate}")

    def _burst_drop(self, action: NicBurstDrop, idx: int = -1) -> None:
        nic = self._host(action.target).nic
        until = self.sim.now + action.duration_us
        nic.fault_rx_drop_until = max(nic.fault_rx_drop_until, until)
        nic.fault_cause = self._emit(
            "nic_burst_drop", self._target_name(action.target), idx,
            f"plan[{idx}] until={until}")
        self._note(f"{self._target_name(action.target)} nic deaf "
                   f"until {until}")

    def _set_corrupt(self, nic, target: int, rate: float,
                     idx: int = -1) -> None:
        nic.fault_corrupt_rate = rate
        if rate > 0.0:
            nic.fault_cause = self._emit(
                "nic_corrupt", self._target_name(target), idx,
                f"plan[{idx}] rate={rate}")
        else:
            self._emit("nic_restored", self._target_name(target), idx,
                       f"plan[{idx}] corrupt=0")
            nic.fault_cause = 0
        self._note(f"{self._target_name(target)} nic corrupt={rate}")

    def _pause(self, action: HostPause, idx: int = -1) -> None:
        self._host(action.target).pause(action.duration_us)
        self._emit("host_pause", self._target_name(action.target), idx,
                   f"plan[{idx}] {action.duration_us}us")
        self._note(f"{self._target_name(action.target)} cpu paused "
                   f"{action.duration_us}us")

    def _set_skew(self, clock, target: int, skew: float,
                  idx: int = -1) -> None:
        clock.skew = skew
        self._emit("clock_skew", self._target_name(target), idx,
                   f"plan[{idx}] skew={skew}")
        self._note(f"{self._target_name(target)} clock skew={skew}")

    def _stall(self, action: TimerStall, idx: int = -1) -> None:
        clock = self._host(action.target).clock
        until = self.sim.now + action.duration_us
        clock.stalled_until = max(clock.stalled_until, until)
        self._emit("timer_stall", self._target_name(action.target), idx,
                   f"plan[{idx}] until={until}")
        self._note(f"{self._target_name(action.target)} timers stalled "
                   f"until {until}")

    def _crash(self, action: ReceiverCrash, idx: int = -1) -> None:
        tgt = action.target
        if tgt in self.crashed:
            return  # already dead (two crash actions for one target)
        host = self.scenario.receivers[tgt]
        host.nic.fault_cause = self._emit("receiver_crash", f"rcv{tgt}", idx)
        proc = self._rprocs[tgt] if tgt < len(self._rprocs) else None
        if proc is not None and proc.alive:
            proc.kill()
        sock = self._rsocks[tgt] if tgt < len(self._rsocks) else None
        if sock is not None:
            # dead kernels are exempt from coherence checks
            if self.checker is not None:
                self.checker.forget(sock.transport)
            sock.abort()
        host.crash()
        self.crashed.add(tgt)
        self._note(f"rcv{tgt} crashed")
        if action.restart_at_us is not None and self._restart_fn is not None:
            self.sim.call_at(max(int(action.restart_at_us), self.sim.now + 1),
                             self._restart, tgt)

    def _restart(self, idx: int) -> None:
        host = self.scenario.receivers[idx]
        host.restart()
        # the restart (and the rejoin it triggers) is *caused by* the
        # crash: the engine already restored the crash node as current,
        # so the new node chains under it
        lineage = self.sim.lineage
        if lineage is not None:
            lineage.emit("fault", f"rcv{idx}", "receiver_restart")
        host.nic.fault_cause = 0
        self.restarted.add(idx)
        self._note(f"rcv{idx} restarted")
        self._restart_fn(idx)
