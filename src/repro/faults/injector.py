"""Executes a :class:`~repro.faults.plan.FaultPlan` against a built
scenario.

Every fault goes through an injection hook built into the component
itself (``SharedLink``/``Pipe`` up/degrade flags, the NIC's power and
fault fields, ``Host.crash/restart/pause``, the per-host
``HostClock``); the injector only schedules when those knobs turn, so
the simulation stays deterministic and nothing is monkey-patched.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.faults.plan import (ClockSkew, FaultPlan, HostPause, LinkDegrade,
                               LinkFlap, NicBurstDrop, NicCorrupt,
                               ReceiverCrash, SENDER, TimerStall)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms a plan's actions on the simulator.

    Usage (the harness does this for you)::

        injector = FaultInjector(scenario, plan, checker=checker)
        injector.register_receivers(rsocks, procs, restart_fn=rejoin)
        injector.arm()
    """

    def __init__(self, scenario, plan: FaultPlan, checker=None):
        self.scenario = scenario
        self.sim = scenario.sim
        self.plan = plan
        self.checker = checker
        self._surfaces = scenario.network.fault_surfaces()
        self.log: list[tuple[int, str]] = []
        self.crashed: set[int] = set()
        self.restarted: set[int] = set()
        self._rsocks: list = []
        self._rprocs: list = []
        self._restart_fn: Optional[Callable[[int], None]] = None
        self._armed = False

    @property
    def fault_events(self) -> int:
        return len(self.log)

    def register_receivers(self, socks: list, procs: list,
                           restart_fn: Optional[Callable[[int], None]]
                           = None) -> None:
        """Tell the injector which socket/process pair embodies each
        receiver index, and how to rebuild one after a restart.
        ``restart_fn(idx)`` must create a fresh socket + application
        process on the (already restarted) host."""
        self._rsocks = list(socks)
        self._rprocs = list(procs)
        self._restart_fn = restart_fn

    # ------------------------------------------------------------------

    def arm(self) -> None:
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for action in self.plan.actions:
            at = max(int(action.at_us), self.sim.now)
            if isinstance(action, LinkFlap):
                surface = self._surface(action.surface)
                self.sim.call_at(at, self._set_up, surface,
                                 action.surface, False)
                self.sim.call_at(at + action.duration_us, self._set_up,
                                 surface, action.surface, True)
            elif isinstance(action, LinkDegrade):
                surface = self._surface(action.surface)
                self.sim.call_at(at, self._set_loss, surface,
                                 action.surface, action.loss_rate)
                self.sim.call_at(at + action.duration_us, self._set_loss,
                                 surface, action.surface, 0.0)
            elif isinstance(action, NicBurstDrop):
                self.sim.call_at(at, self._burst_drop, action)
            elif isinstance(action, NicCorrupt):
                nic = self._host(action.target).nic
                self.sim.call_at(at, self._set_corrupt, nic,
                                 action.target, action.rate)
                self.sim.call_at(at + action.duration_us,
                                 self._set_corrupt, nic, action.target, 0.0)
            elif isinstance(action, ReceiverCrash):
                if not 0 <= action.target < len(self.scenario.receivers):
                    raise ValueError(
                        f"crash target {action.target} out of range")
                self.sim.call_at(at, self._crash, action)
            elif isinstance(action, HostPause):
                self.sim.call_at(at, self._pause, action)
            elif isinstance(action, ClockSkew):
                clock = self._host(action.target).clock
                self.sim.call_at(at, self._set_skew, clock,
                                 action.target, action.skew)
                self.sim.call_at(at + action.duration_us, self._set_skew,
                                 clock, action.target, 1.0)
            elif isinstance(action, TimerStall):
                self.sim.call_at(at, self._stall, action)
            else:
                raise TypeError(f"unknown fault action {action!r}")

    # ------------------------------------------------------------------

    def _host(self, target: int):
        if target == SENDER:
            return self.scenario.sender
        return self.scenario.receivers[target]

    def _target_name(self, target: int) -> str:
        return "sender" if target == SENDER else f"rcv{target}"

    def _surface(self, name: str):
        try:
            return self._surfaces[name]
        except KeyError:
            raise ValueError(
                f"unknown fault surface {name!r}; this topology has: "
                f"{sorted(self._surfaces)}") from None

    def _note(self, msg: str) -> None:
        self.log.append((self.sim.now, msg))

    # -- action bodies --------------------------------------------------

    def _set_up(self, surface, name: str, up: bool) -> None:
        surface.up = up
        self._note(f"{name} {'up' if up else 'down'}")

    def _set_loss(self, surface, name: str, rate: float) -> None:
        surface.fault_loss_rate = rate
        self._note(f"{name} loss={rate}")

    def _burst_drop(self, action: NicBurstDrop) -> None:
        nic = self._host(action.target).nic
        until = self.sim.now + action.duration_us
        nic.fault_rx_drop_until = max(nic.fault_rx_drop_until, until)
        self._note(f"{self._target_name(action.target)} nic deaf "
                   f"until {until}")

    def _set_corrupt(self, nic, target: int, rate: float) -> None:
        nic.fault_corrupt_rate = rate
        self._note(f"{self._target_name(target)} nic corrupt={rate}")

    def _pause(self, action: HostPause) -> None:
        self._host(action.target).pause(action.duration_us)
        self._note(f"{self._target_name(action.target)} cpu paused "
                   f"{action.duration_us}us")

    def _set_skew(self, clock, target: int, skew: float) -> None:
        clock.skew = skew
        self._note(f"{self._target_name(target)} clock skew={skew}")

    def _stall(self, action: TimerStall) -> None:
        clock = self._host(action.target).clock
        until = self.sim.now + action.duration_us
        clock.stalled_until = max(clock.stalled_until, until)
        self._note(f"{self._target_name(action.target)} timers stalled "
                   f"until {until}")

    def _crash(self, action: ReceiverCrash) -> None:
        idx = action.target
        if idx in self.crashed:
            return  # already dead (two crash actions for one target)
        host = self.scenario.receivers[idx]
        proc = self._rprocs[idx] if idx < len(self._rprocs) else None
        if proc is not None and proc.alive:
            proc.kill()
        sock = self._rsocks[idx] if idx < len(self._rsocks) else None
        if sock is not None:
            # dead kernels are exempt from coherence checks
            if self.checker is not None:
                self.checker.forget(sock.transport)
            sock.abort()
        host.crash()
        self.crashed.add(idx)
        self._note(f"rcv{idx} crashed")
        if action.restart_at_us is not None and self._restart_fn is not None:
            self.sim.call_at(max(int(action.restart_at_us), self.sim.now + 1),
                             self._restart, idx)

    def _restart(self, idx: int) -> None:
        self.scenario.receivers[idx].restart()
        self.restarted.add(idx)
        self._note(f"rcv{idx} restarted")
        self._restart_fn(idx)
