"""Declarative fault plans.

A :class:`FaultPlan` is pure data: a master seed plus a tuple of
:class:`FaultAction` records, each naming a fault kind, a sim time, a
target, and the fault's parameters.  Plans serialize to JSON (so a
failing chaos run can be replayed from its artifact) and can be drawn
at random from a seeded substream, which is what the property-test
battery does: the plan *is* the test case.

Targets
-------
Host-directed actions address hosts by receiver index (``0 ..
n_receivers-1``); ``SENDER`` (-1) addresses the sender host where that
makes sense (pause, clock trouble, NIC faults -- crashing the sender is
not modelled; the paper's protocol declares the session dead via the
receiver-side session timeout instead).  Link-directed actions name a
*fault surface* from :meth:`repro.net.topology.Network.fault_surfaces`
(``"lan"`` on the Ethernet testbed; ``"group:<name>"`` / ``"rx:<addr>"``
on the WAN tree).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import ClassVar, Optional

from repro.sim.rng import substream

__all__ = ["SENDER", "FaultAction", "LinkFlap", "LinkDegrade",
           "NicBurstDrop", "NicCorrupt", "ReceiverCrash", "HostPause",
           "ClockSkew", "TimerStall", "FaultPlan"]

SENDER = -1


@dataclass(frozen=True)
class FaultAction:
    """Base record: every fault happens at an absolute sim time."""

    kind: ClassVar[str] = ""
    at_us: int

    def describe(self) -> str:
        params = {f.name: getattr(self, f.name) for f in fields(self)
                  if f.name != "at_us"}
        inner = " ".join(f"{k}={v}" for k, v in params.items())
        return f"{self.kind}({inner})"


@dataclass(frozen=True)
class LinkFlap(FaultAction):
    """Take a fault surface down completely for ``duration_us``."""

    kind: ClassVar[str] = "link_flap"
    surface: str = "lan"
    duration_us: int = 100_000


@dataclass(frozen=True)
class LinkDegrade(FaultAction):
    """Add random loss on a fault surface for ``duration_us``."""

    kind: ClassVar[str] = "link_degrade"
    surface: str = "lan"
    loss_rate: float = 0.1
    duration_us: int = 500_000


@dataclass(frozen=True)
class NicBurstDrop(FaultAction):
    """One NIC drops every otherwise-deliverable frame for a while
    (an overrun burst; the paper's Figure 13 ring-buffer drops made
    contiguous and schedulable)."""

    kind: ClassVar[str] = "nic_burst_drop"
    target: int = 0
    duration_us: int = 100_000


@dataclass(frozen=True)
class NicCorrupt(FaultAction):
    """One NIC flips bits in a fraction of received frames for a while;
    the host checksum turns each into a silent drop."""

    kind: ClassVar[str] = "nic_corrupt"
    target: int = 0
    rate: float = 0.1
    duration_us: int = 500_000


@dataclass(frozen=True)
class ReceiverCrash(FaultAction):
    """Power-fail one receiver host mid-transfer.  Kernel and
    application state die with it.  With ``restart_at_us`` set, the
    host powers back up then and rejoins the group as a fresh endpoint
    (it re-learns the sender and recovers what the sender still
    buffers; data released before the rejoin is gone for it)."""

    kind: ClassVar[str] = "receiver_crash"
    target: int = 0
    restart_at_us: Optional[int] = None


@dataclass(frozen=True)
class HostPause(FaultAction):
    """Freeze one host's CPU for ``duration_us`` (SMM excursion, long
    interrupts-off section): serialized host work queues up behind it."""

    kind: ClassVar[str] = "host_pause"
    target: int = 0
    duration_us: int = 100_000


@dataclass(frozen=True)
class ClockSkew(FaultAction):
    """Multiply one host's programmed timer delays by ``skew`` for
    ``duration_us`` (a drifting oscillator: >1 slow, <1 fast)."""

    kind: ClassVar[str] = "clock_skew"
    target: int = 0
    skew: float = 1.5
    duration_us: int = 1_000_000


@dataclass(frozen=True)
class TimerStall(FaultAction):
    """Wedge one host's timer interrupt: no protocol timer on that host
    fires before ``at_us + duration_us`` (already-scheduled expiries
    included are *not* rescheduled -- only new arms are deferred, like
    a stuck ``timer_bh``)."""

    kind: ClassVar[str] = "timer_stall"
    target: int = 0
    duration_us: int = 200_000


_ACTION_KINDS = {cls.kind: cls for cls in (
    LinkFlap, LinkDegrade, NicBurstDrop, NicCorrupt, ReceiverCrash,
    HostPause, ClockSkew, TimerStall)}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered schedule of fault actions."""

    seed: int = 0
    actions: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "actions",
                           tuple(sorted(self.actions, key=lambda a: a.at_us)))

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def crashes(self) -> tuple:
        return tuple(a for a in self.actions if isinstance(a, ReceiverCrash))

    def describe(self) -> str:
        return "; ".join(f"t={a.at_us}us {a.describe()}"
                         for a in self.actions) or "(empty)"

    # -- persistence ------------------------------------------------------

    def to_json(self) -> str:
        recs = []
        for a in self.actions:
            rec = asdict(a)
            rec["kind"] = a.kind
            recs.append(rec)
        return json.dumps({"seed": self.seed, "actions": recs}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        actions = []
        for rec in doc.get("actions", []):
            rec = dict(rec)
            kind = rec.pop("kind")
            try:
                action_cls = _ACTION_KINDS[kind]
            except KeyError:
                raise ValueError(f"unknown fault kind {kind!r}") from None
            actions.append(action_cls(**rec))
        return cls(seed=int(doc.get("seed", 0)), actions=tuple(actions))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())

    # -- random generation ------------------------------------------------

    @classmethod
    def random(cls, seed: int, *, n_receivers: int, horizon_us: int,
               allow_crash: bool = True,
               max_outage_us: Optional[int] = None,
               surfaces: tuple = ("lan",)) -> "FaultPlan":
        """Draw a reproducible random plan for a transfer expected to
        take roughly ``horizon_us`` of sim time.

        At most one receiver crash is drawn (and only when
        ``allow_crash``); protocols whose liveness cannot survive a
        silent receiver (the ACK baseline stalls on its minimum
        cumulative ack forever) should pass ``allow_crash=False`` and a
        ``max_outage_us`` short enough that transient outages stay
        below their eviction/timeout horizons.
        """
        rng = substream(seed, "fault:plan")

        def outage(lo_frac: float, hi_frac: float) -> int:
            d = int(rng.uniform(lo_frac, hi_frac) * horizon_us)
            if max_outage_us is not None:
                d = min(d, max_outage_us)
            return max(1_000, d)

        def when(lo_frac: float = 0.05, hi_frac: float = 0.75) -> int:
            return int(rng.uniform(lo_frac, hi_frac) * horizon_us)

        kinds = ["link_flap", "link_degrade", "nic_burst_drop",
                 "nic_corrupt", "host_pause", "clock_skew", "timer_stall"]
        actions: list[FaultAction] = []
        for _ in range(rng.randint(2, 5)):
            kind = rng.choice(kinds)
            target = rng.randrange(n_receivers)
            if kind == "link_flap":
                actions.append(LinkFlap(
                    at_us=when(), surface=rng.choice(list(surfaces)),
                    duration_us=outage(0.02, 0.10)))
            elif kind == "link_degrade":
                actions.append(LinkDegrade(
                    at_us=when(), surface=rng.choice(list(surfaces)),
                    loss_rate=round(rng.uniform(0.05, 0.35), 3),
                    duration_us=outage(0.10, 0.40)))
            elif kind == "nic_burst_drop":
                actions.append(NicBurstDrop(
                    at_us=when(), target=target,
                    duration_us=outage(0.02, 0.10)))
            elif kind == "nic_corrupt":
                actions.append(NicCorrupt(
                    at_us=when(), target=target,
                    rate=round(rng.uniform(0.05, 0.25), 3),
                    duration_us=outage(0.10, 0.40)))
            elif kind == "host_pause":
                actions.append(HostPause(
                    at_us=when(), target=target,
                    duration_us=outage(0.02, 0.08)))
            elif kind == "clock_skew":
                actions.append(ClockSkew(
                    at_us=when(), target=target,
                    skew=round(rng.choice([rng.uniform(0.5, 0.9),
                                           rng.uniform(1.1, 2.5)]), 3),
                    duration_us=outage(0.20, 0.50)))
            else:
                actions.append(TimerStall(
                    at_us=when(), target=target,
                    duration_us=outage(0.02, 0.10)))
        if allow_crash and rng.random() < 0.5:
            t = when(0.10, 0.50)
            restart = (t + int(rng.uniform(0.10, 0.30) * horizon_us)
                       if rng.random() < 0.7 else None)
            actions.append(ReceiverCrash(
                at_us=t, target=rng.randrange(n_receivers),
                restart_at_us=restart))
        return cls(seed=seed, actions=tuple(actions))
