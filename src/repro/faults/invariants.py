"""Always-on protocol-invariant checking.

The :class:`InvariantChecker` rides a :class:`~repro.trace.tracer.PacketTracer`
as a listener and re-asserts the protocol's safety properties after
every captured packet event, on every watched endpoint:

* **Release safety** -- with reliable release enabled, the sender never
  releases a byte below some current member's next-expected sequence
  number (checked at the release point itself, via the sender's
  ``release_hook``, while the membership evidence is intact), and only
  ever releases the window head.
* **Stream safety** -- each receiver's reassembled stream is ordered
  and gap-free except for holes explicitly accounted to ``lost_bytes``
  (the NAK_ERR escape hatch); ``rcv_nxt``/``rcv_wnd`` are monotone and
  the window never exceeds its advertised size.
* **NAK sanity** -- no pending NAK range is empty or references data
  already reassembled; no queued retransmission references data the
  sender has released.
* **Accounting** -- send-buffer charge and the rate budget never go
  negative; the repair cache respects its byte bound; window spans are
  coherent (``snd_wnd``/``snd_una`` never pass the feedback marks that
  justify them, on the baselines too).

A failed assertion raises :class:`InvariantViolation` carrying the most
recent trace events, so a chaos run dies at the first bad state with
the packet history that produced it, not at end-of-run verification.
"""

from __future__ import annotations

from typing import Optional

from repro.core.seq import seq_gt, seq_lt, seq_sub
from repro.trace.tracer import PacketTracer, TraceEvent

__all__ = ["InvariantChecker", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """A protocol safety property failed; carries the trace tail and,
    when the run was observed, a metrics snapshot taken at failure."""

    def __init__(self, message: str, trace: Optional[list] = None,
                 metrics: Optional[dict] = None):
        self.violation = message
        self.trace = list(trace or [])
        self.metrics = dict(metrics or {})
        if self.trace:
            lines = "\n".join(
                f"  t={e.t_us:>10} {e.host:>10} {e.direction} "
                f"{e.type_name:<14} seq={e.seq} len={e.length} "
                f"tries={e.tries}" for e in self.trace)
            message = f"{message}\nlast {len(self.trace)} trace events:\n" \
                      f"{lines}"
        if self.metrics:
            lines = "\n".join(f"  {name} = {value}"
                              for name, value in self.metrics.items())
            message = f"{message}\nmetrics at failure:\n{lines}"
        super().__init__(message)


class InvariantChecker:
    """Attach with ``InvariantChecker(tracer)`` before the run starts;
    register endpoints with :meth:`watch_sender` / :meth:`watch_receiver`
    (transports of crashed hosts must be :meth:`forget`-ten -- a dead
    kernel's state is not required to be coherent)."""

    #: expensive whole-structure audits run every this many events
    AUDIT_EVERY = 64
    #: trace-tail length attached to violations
    TRACE_TAIL = 16

    def __init__(self, tracer: PacketTracer, obs=None):
        self.tracer = tracer
        self.obs = obs   # optional Observability: snapshot on failure
        self.checks = 0
        self._senders: list = []
        self._receivers: list = []
        self._last: dict[int, tuple[int, int]] = {}   # id -> (rcv_nxt, rcv_wnd)
        self._hooked: set[int] = set()
        tracer.add_listener(self._on_event)

    # -- registration ---------------------------------------------------

    def watch_sender(self, transport) -> None:
        self._senders.append(transport)
        self._install_release_hook(transport)

    def watch_receiver(self, transport) -> None:
        self._receivers.append(transport)

    def forget(self, transport) -> None:
        if transport in self._senders:
            self._senders.remove(transport)
        if transport in self._receivers:
            self._receivers.remove(transport)
        # simlint: ok[R5] lookaside key, confined to _last; never serialized
        self._last.pop(id(transport), None)

    def _install_release_hook(self, transport) -> None:
        sender = getattr(transport, "sender", None)
        # simlint: ok[R5] hook-dedup membership test, in-memory only
        if sender is None or id(sender) in self._hooked:
            return
        sender.release_hook = self._on_release
        # simlint: ok[R5] hook-dedup set, confined to _hooked; never serialized
        self._hooked.add(id(sender))

    # -- event pump ---------------------------------------------------

    def _on_event(self, ev: TraceEvent) -> None:
        self.checks += 1
        audit = (self.checks % self.AUDIT_EVERY) == 0
        for t in self._senders:
            self._check_sender(t, audit)
        for t in self._receivers:
            self._check_receiver(t, audit)

    def final_check(self) -> None:
        """One full audit pass; call after the simulation ends."""
        self.checks += 1
        for t in self._senders:
            self._check_sender(t, audit=True)
        for t in self._receivers:
            self._check_receiver(t, audit=True)

    def _fail(self, message: str) -> None:
        snapshot = self.obs.snapshot() if self.obs is not None else None
        raise InvariantViolation(message,
                                 self.tracer.recent(self.TRACE_TAIL),
                                 metrics=snapshot)

    # -- sender-side properties ----------------------------------------

    def _check_sender(self, t, audit: bool) -> None:
        # HRMC/RMC transports hold the role object in .sender (created
        # lazily at connect); baselines flag themselves with .is_sender
        sender = getattr(t, "sender", None)
        if sender is not None:
            self._check_hrmc_sender(t, sender, audit)
        elif getattr(t, "is_sender", False):
            if hasattr(t, "snd_una"):
                self._check_ack_sender(t)
            elif hasattr(t, "_marks"):
                self._check_polling_sender(t)

    def _check_hrmc_sender(self, t, sender, audit: bool) -> None:
        self._install_release_hook(t)
        sock = sender.sock
        if sock.wmem_free() < 0:
            self._fail(f"{sock.name}: send-buffer charge exceeds sndbuf "
                       f"(wmem_free={sock.wmem_free()})")
        if sender._budget < -1e-6:
            self._fail(f"{sock.name}: rate budget negative "
                       f"({sender._budget:.3f})")
        self._check_write_queue(sock, sender.snd_wnd, sender.snd_nxt,
                                head_at_wnd=True)
        for skb in sender._retrans:
            if skb.retrans_pending and seq_lt(skb.seq, sender.snd_wnd):
                self._fail(
                    f"{sock.name}: queued retransmission references "
                    f"released data (seq={skb.seq} < snd_wnd="
                    f"{sender.snd_wnd})")
        for m in sender.members:
            if seq_gt(m.next_expected, sender.snd_nxt):
                self._fail(
                    f"{sock.name}: member {m.addr} expects "
                    f"{m.next_expected}, beyond snd_nxt={sender.snd_nxt}")
        if audit:
            try:
                sender.members.check_consistency()
            except AssertionError as exc:
                self._fail(f"{sock.name}: member table corrupt: {exc}")

    def _check_write_queue(self, sock, wnd: int, nxt: int, *,
                           head_at_wnd: bool) -> None:
        cursor = None
        for skb in sock.write_queue:
            if cursor is None:
                cursor = skb.seq
                if head_at_wnd and skb.seq != wnd:
                    self._fail(f"{sock.name}: write-queue head seq="
                               f"{skb.seq} != window edge {wnd}")
                if not head_at_wnd and seq_gt(wnd, skb.end_seq):
                    self._fail(f"{sock.name}: write-queue head "
                               f"[{skb.seq},{skb.end_seq}) fully below "
                               f"window edge {wnd}")
            elif skb.seq != cursor:
                self._fail(f"{sock.name}: write queue not contiguous "
                           f"(gap/overlap at seq={skb.seq}, expected "
                           f"{cursor})")
            cursor = skb.end_seq
        if cursor is not None and cursor != nxt:
            self._fail(f"{sock.name}: write-queue tail ends at {cursor}, "
                       f"snd_nxt={nxt}")

    def _on_release(self, sender, skb) -> None:
        """Runs at the sender's release point, before the dequeue."""
        sock = sender.sock
        if skb.tries == 0:
            self._fail(f"{sock.name}: releasing never-transmitted data "
                       f"seq={skb.seq}")
        if skb.seq != sender.snd_wnd:
            self._fail(f"{sock.name}: non-head release (seq={skb.seq}, "
                       f"snd_wnd={sender.snd_wnd})")
        cfg = sender.cfg
        if cfg.reliable_release and cfg.track_membership:
            if not sender._membership_quorum():
                self._fail(f"{sock.name}: release before the expected "
                           f"membership assembled")
            lagging = [m for m in sender.members
                       if seq_lt(m.next_expected, skb.end_seq)]
            if lagging:
                worst = min(m.next_expected for m in lagging)
                self._fail(
                    f"{sock.name}: releasing [{skb.seq},{skb.end_seq}) "
                    f"but {len(lagging)} member(s) only have up to "
                    f"{worst} ({', '.join(m.addr for m in lagging[:4])})")

    def _check_ack_sender(self, t) -> None:
        for addr, acked in t._acked.items():
            if seq_gt(t.snd_una, acked):
                self._fail(
                    f"{t.sock.name}: snd_una={t.snd_una} passed "
                    f"{addr}'s cumulative ack {acked}")
        if t.sock.wmem_free() < 0:
            self._fail(f"{t.sock.name}: send-buffer charge exceeds sndbuf")
        self._check_write_queue(t.sock, t.snd_una, t.snd_nxt,
                                head_at_wnd=False)

    def _check_polling_sender(self, t) -> None:
        for addr, mark in t._marks.items():
            if seq_gt(t.snd_wnd, mark):
                self._fail(
                    f"{t.sock.name}: snd_wnd={t.snd_wnd} passed "
                    f"{addr}'s reported mark {mark}")
        if t.sock.wmem_free() < 0:
            self._fail(f"{t.sock.name}: send-buffer charge exceeds sndbuf")
        self._check_write_queue(t.sock, t.snd_wnd, t.snd_nxt,
                                head_at_wnd=True)

    # -- receiver-side properties ----------------------------------------

    def _check_receiver(self, t, audit: bool) -> None:
        receiver = getattr(t, "receiver", None)
        if receiver is not None:
            if not receiver._closed:
                self._check_hrmc_receiver(t, receiver, audit)
            return
        rx = getattr(t, "rx", None)
        if rx is not None:
            self._check_reassembly(t.sock, rx.rcv_nxt, rx.rcv_wnd,
                                   # simlint: ok[R5] _last key; in-memory only
                                   lost_bytes=0, key=id(t))

    def _check_hrmc_receiver(self, t, r, audit: bool) -> None:
        sock = r.sock
        self._check_reassembly(sock, r.rcv_nxt, r.rcv_wnd,
                               # simlint: ok[R5] _last key; in-memory only
                               lost_bytes=r.lost_bytes, key=id(t))
        # +1: the FIN occupies one phantom sequence byte past the window
        span = seq_sub(r.rcv_nxt, r.rcv_wnd)
        if span > r.rcv_wnd_size + 1:
            self._fail(f"{sock.name}: window span {span} exceeds "
                       f"advertised size {r.rcv_wnd_size}")
        for rng in r.naks:
            if rng.length <= 0:
                self._fail(f"{sock.name}: empty NAK range "
                           f"[{rng.start},{rng.end})")
            if seq_lt(rng.start, r.rcv_nxt):
                self._fail(
                    f"{sock.name}: NAK range [{rng.start},{rng.end}) "
                    f"references reassembled data (rcv_nxt={r.rcv_nxt})")
        if r._repair_cache_bytes > r.cfg.repair_cache_bytes:
            self._fail(
                f"{sock.name}: repair cache holds "
                f"{r._repair_cache_bytes} bytes, bound is "
                f"{r.cfg.repair_cache_bytes}")
        if audit:
            actual = sum(e.length for e in r._repair_cache.values())
            if actual != r._repair_cache_bytes:
                self._fail(
                    f"{sock.name}: repair-cache accounting drift "
                    f"(counter={r._repair_cache_bytes}, actual={actual})")

    def _check_reassembly(self, sock, rcv_nxt: int, rcv_wnd: int,
                          *, lost_bytes: int, key: int) -> None:
        prev = self._last.get(key)
        if prev is not None:
            p_nxt, p_wnd = prev
            if seq_lt(rcv_nxt, p_nxt):
                self._fail(f"{sock.name}: rcv_nxt moved backwards "
                           f"({p_nxt} -> {rcv_nxt})")
            if seq_lt(rcv_wnd, p_wnd):
                self._fail(f"{sock.name}: rcv_wnd moved backwards "
                           f"({p_wnd} -> {rcv_wnd})")
        self._last[key] = (rcv_nxt, rcv_wnd)
        if seq_gt(rcv_wnd, rcv_nxt):
            self._fail(f"{sock.name}: rcv_wnd={rcv_wnd} ahead of "
                       f"rcv_nxt={rcv_nxt}")
        cursor = None
        gap_total = 0
        for skb in sock.receive_queue:
            if cursor is not None:
                if seq_lt(skb.seq, cursor):
                    self._fail(f"{sock.name}: receive queue out of order "
                               f"(seq={skb.seq} after byte {cursor})")
                gap_total += seq_sub(skb.seq, cursor)
            cursor = skb.end_seq
        if gap_total > lost_bytes:
            self._fail(f"{sock.name}: {gap_total} bytes of unexplained "
                       f"gaps in the delivered stream (lost_bytes="
                       f"{lost_bytes})")
        if cursor is not None and seq_gt(cursor, rcv_nxt):
            self._fail(f"{sock.name}: receive queue extends to {cursor}, "
                       f"past rcv_nxt={rcv_nxt}")
