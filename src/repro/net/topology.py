"""Topology builders.

Two network shapes cover everything in the paper's evaluation:

* :class:`EthernetLanTopology` -- the experimental testbed: every host
  on one shared 10/100 Mbps Ethernet segment (Figures 10-13).
* :class:`WanTreeTopology` -- the simulation study: the sender behind a
  loss-free backbone, receivers partitioned into *characteristic
  groups*, each behind its own router carrying the group's delay and
  90 % of its loss; the remaining 10 % is uncorrelated at each
  receiver's interface (Figures 3, 15, 16).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import SharedLink
from repro.net.nic import NetworkInterface
from repro.net.router import Pipe, Router
from repro.sim.engine import Simulator

__all__ = ["Network", "EthernetLanTopology", "WanTreeTopology", "GroupSpec"]


class Network:
    """Base: a registry of interfaces plus multicast join plumbing."""

    def __init__(self, sim: Simulator, seed: int = 0):
        self.sim = sim
        self.seed = seed
        self.nics: dict[str, NetworkInterface] = {}

    def register(self, nic: NetworkInterface) -> NetworkInterface:
        if nic.addr in self.nics:
            raise ValueError(f"duplicate interface address {nic.addr}")
        self.nics[nic.addr] = nic
        return nic

    def join_group(self, nic: NetworkInterface, group: str) -> None:
        nic.join_group(group)

    def leave_group(self, nic: NetworkInterface, group: str) -> None:
        nic.leave_group(group)

    def drop_summary(self) -> dict[str, int]:
        """Aggregate drop counters across the fabric."""
        summary = {"nic_rx_ring": 0, "nic_rx_loss": 0, "nic_fault": 0,
                   "nic_corrupt": 0}
        for nic in self.nics.values():
            summary["nic_rx_ring"] += nic.rx_ring_drops
            summary["nic_rx_loss"] += nic.rx_loss_drops
            summary["nic_fault"] += nic.fault_drops
            summary["nic_corrupt"] += nic.fault_corruptions
        return summary

    def fault_surfaces(self) -> dict[str, object]:
        """Name -> medium exposing the link-fault hooks (``up``,
        ``fault_loss_rate``, ``fault_drops``) for the fault injector.
        Keys are topology-specific (e.g. ``"lan"``, ``"group:A"``,
        ``"rx:10.0.0.3"``)."""
        return {}


class EthernetLanTopology(Network):
    """All hosts on one shared Ethernet segment."""

    def __init__(self, sim: Simulator, bandwidth_bps: float, *,
                 prop_delay_us: int = 5, seed: int = 0,
                 tx_ring: int = 100, rx_ring: int = 768):
        super().__init__(sim, seed)
        self.link = SharedLink(sim, bandwidth_bps,
                               prop_delay_us=prop_delay_us, seed=seed)
        self.tx_ring = tx_ring
        self.rx_ring = rx_ring

    def make_nic(self, addr: str) -> NetworkInterface:
        nic = NetworkInterface(self.sim, addr, tx_ring=self.tx_ring,
                               rx_ring=self.rx_ring, seed=self.seed)
        self.link.attach(nic)
        nic.attach(self.link)
        return self.register(nic)

    def fault_surfaces(self) -> dict[str, object]:
        return {"lan": self.link}

    def drop_summary(self) -> dict[str, int]:
        summary = super().drop_summary()
        summary["link_fault"] = self.link.fault_drops
        return summary


@dataclass(frozen=True)
class GroupSpec:
    """A characteristic group (paper Figure 14a)."""

    name: str
    delay_us: int       # one-way network delay to receivers in the group
    loss_rate: float    # total loss rate seen by a receiver in the group

    @property
    def router_loss(self) -> float:
        """Correlated share (90 %) applied at the group router."""
        return self.loss_rate * 0.9

    @property
    def nic_loss(self) -> float:
        """Uncorrelated share (10 %) applied per receiver interface."""
        return self.loss_rate * 0.1


class WanTreeTopology(Network):
    """Sender -- backbone router -- per-group routers -- receivers.

    ``speed_bps`` is the scenario's network speed (10 or 100 Mbps); it
    is applied to every pipe so serialization matches the paper's
    "network speed" router attribute.  ``symmetric_loss`` applies each
    group's correlated loss to the feedback direction as well.
    """

    LOCAL_DELAY_US = 10        # group router <-> receiver NIC
    ACCESS_DELAY_US = 10       # sender NIC <-> backbone

    def __init__(self, sim: Simulator, speed_bps: float, *,
                 queue_limit: int = 2000, seed: int = 0,
                 symmetric_loss: bool = True,
                 tx_ring: int = 100, rx_ring: int = 768):
        super().__init__(sim, seed)
        self.speed_bps = float(speed_bps)
        self.queue_limit = int(queue_limit)
        self.symmetric_loss = symmetric_loss
        self.tx_ring = tx_ring
        self.rx_ring = rx_ring
        self.backbone = Router(sim, loss_rate=0.0, seed=seed, name="backbone")
        self._group_routers: dict[str, Router] = {}
        self._group_down: dict[str, Pipe] = {}   # backbone -> group router
        self._nic_group: dict[str, GroupSpec] = {}   # receiver addr -> spec
        self._nic_down: dict[str, Pipe] = {}     # group router -> NIC
        self._pipes: list[Pipe] = []             # every pipe in the fabric
        self.sender_nic: NetworkInterface | None = None

    # -- construction ---------------------------------------------------

    def _pipe(self, name: str, *, prop: int, loss: float = 0.0) -> Pipe:
        pipe = Pipe(self.sim, self.speed_bps, prop_delay_us=prop,
                    queue_limit=self.queue_limit, loss_rate=loss,
                    seed=self.seed, name=name)
        self._pipes.append(pipe)
        return pipe

    def add_sender(self, addr: str) -> NetworkInterface:
        if self.sender_nic is not None:
            raise ValueError("sender already added")
        nic = NetworkInterface(self.sim, addr, tx_ring=self.tx_ring,
                               rx_ring=self.rx_ring, seed=self.seed)
        up = self._pipe(f"up:{addr}", prop=self.ACCESS_DELAY_US)
        up.connect(self.backbone)
        nic.attach(up)
        down = self._pipe(f"down:{addr}", prop=self.ACCESS_DELAY_US)
        down.connect(nic)
        self.backbone.add_route(addr, down)
        self.sender_nic = nic
        return self.register(nic)

    def _ensure_group(self, spec: GroupSpec) -> Router:
        router = self._group_routers.get(spec.name)
        if router is None:
            router = Router(self.sim, loss_rate=spec.router_loss,
                            seed=self.seed, name=f"gr:{spec.name}")
            down = self._pipe(f"bb->{spec.name}", prop=spec.delay_us)
            down.connect(router)
            up_loss = spec.router_loss if self.symmetric_loss else 0.0
            up = self._pipe(f"{spec.name}->bb", prop=spec.delay_us,
                            loss=up_loss)
            up.connect(self.backbone)
            router.set_default_route(up)
            self._group_routers[spec.name] = router
            self._group_down[spec.name] = down
        return router

    def add_receiver(self, addr: str, spec: GroupSpec) -> NetworkInterface:
        router = self._ensure_group(spec)
        nic = NetworkInterface(self.sim, addr, tx_ring=self.tx_ring,
                               rx_ring=self.rx_ring,
                               rx_loss_rate=spec.nic_loss, seed=self.seed)
        up = self._pipe(f"up:{addr}", prop=self.LOCAL_DELAY_US)
        up.connect(router)
        nic.attach(up)
        down = self._pipe(f"down:{addr}", prop=self.LOCAL_DELAY_US)
        down.connect(nic)
        router.add_route(addr, down)
        self.backbone.add_route(addr, self._group_down[spec.name])
        self._nic_group[addr] = spec
        self._nic_down[addr] = down
        return self.register(nic)

    # -- multicast plumbing ----------------------------------------------

    def join_group(self, nic: NetworkInterface, group: str) -> None:
        nic.join_group(group)
        spec = self._nic_group.get(nic.addr)
        if spec is None:
            return  # the sender does not receive its own multicast
        router = self._group_routers[spec.name]
        router.mcast_subscribe(group, self._nic_down[nic.addr])
        self.backbone.mcast_subscribe(group, self._group_down[spec.name])

    def leave_group(self, nic: NetworkInterface, group: str) -> None:
        nic.leave_group(group)
        spec = self._nic_group.get(nic.addr)
        if spec is None:
            return
        router = self._group_routers[spec.name]
        router.mcast_unsubscribe(group, self._nic_down[nic.addr])
        if group not in router._mcast:
            self.backbone.mcast_unsubscribe(group, self._group_down[spec.name])

    def drop_summary(self) -> dict[str, int]:
        summary = super().drop_summary()
        summary["router_loss"] = sum(
            r.loss_drops for r in self._group_routers.values())
        summary["pipe_loss"] = sum(p.loss_drops for p in self._pipes)
        summary["pipe_queue"] = sum(p.queue_drops for p in self._pipes)
        summary["pipe_fault"] = sum(p.fault_drops for p in self._pipes)
        return summary

    def fault_surfaces(self) -> dict[str, object]:
        """Downstream pipes: ``group:<name>`` cuts a whole characteristic
        group off the backbone; ``rx:<addr>`` cuts one receiver."""
        surfaces: dict[str, object] = {}
        for name, pipe in self._group_down.items():
            surfaces[f"group:{name}"] = pipe
        for addr, pipe in self._nic_down.items():
            surfaces[f"rx:{addr}"] = pipe
        return surfaces
