"""IPv4-style addressing helpers.

Addresses are dotted-quad strings.  Class-D addresses (224.0.0.0 --
239.255.255.255) are multicast, exactly as in IP.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Endpoint", "is_multicast", "mcast_addr", "host_addr", "addr_hash"]


class Endpoint(NamedTuple):
    """A transport endpoint: (IPv4 address, port)."""

    addr: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.addr}:{self.port}"


def _first_octet(addr: str) -> int:
    dot = addr.find(".")
    if dot <= 0:
        raise ValueError(f"malformed address {addr!r}")
    return int(addr[:dot])


def is_multicast(addr: str) -> bool:
    """True for class-D (224/4) addresses."""
    return 224 <= _first_octet(addr) <= 239


def mcast_addr(group: int) -> str:
    """A multicast group address; ``group`` selects distinct groups."""
    if not 0 <= group <= 0xFFFF:
        raise ValueError(f"group id {group} out of range")
    return f"224.1.{group >> 8}.{group & 0xFF}"


def host_addr(site: int, host: int) -> str:
    """A unicast host address within a numbered site."""
    if not (0 <= site <= 255 and 1 <= host <= 0xFFFF):
        raise ValueError(f"bad site/host ({site}, {host})")
    return f"10.{site}.{host >> 8}.{host & 0xFF}"


def addr_hash(addr: str, buckets: int) -> int:
    """Stable hash of an address into ``buckets`` slots (for the
    membership hash table; must not depend on PYTHONHASHSEED)."""
    acc = 0
    for part in addr.split("."):
        acc = (acc * 257 + int(part)) & 0xFFFFFFFF
    return acc % buckets
