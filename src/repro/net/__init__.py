"""Best-effort network substrate.

Models the pieces beneath the transport protocol: an IP-multicast-capable
best-effort datagram network built from shared-medium Ethernet links
(the experimental testbed), point-to-point pipes and routers with an
assigned network speed, queue size and loss rate (the CSIM simulation
topology of the paper), and network interfaces with a finite transmit
ring (the mechanism behind the paper's Figure 13 NAK observations).
"""

from repro.net.addr import Endpoint, is_multicast, mcast_addr, host_addr
from repro.net.packet import NetPacket, IP_OVERHEAD, LINK_OVERHEAD
from repro.net.link import SharedLink
from repro.net.nic import NetworkInterface
from repro.net.router import Pipe, Router
from repro.net.topology import Network, EthernetLanTopology, WanTreeTopology

__all__ = [
    "Endpoint",
    "is_multicast",
    "mcast_addr",
    "host_addr",
    "NetPacket",
    "IP_OVERHEAD",
    "LINK_OVERHEAD",
    "SharedLink",
    "NetworkInterface",
    "Pipe",
    "Router",
    "Network",
    "EthernetLanTopology",
    "WanTreeTopology",
]
