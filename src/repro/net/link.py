"""Shared-medium Ethernet link.

Models the testbed's single Ethernet segment: every attached interface
hears every frame; transmission is serialized on the medium (an
idealised CSMA -- no collisions, first-come first-served arbitration),
and the sender does not receive its own frame.

The link is a pure medium: queueing happens in the NIC transmit rings,
which ask the link for the next free slot via :meth:`reserve`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import Simulator, US_PER_SEC
from repro.sim.rng import substream

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nic import NetworkInterface
    from repro.net.packet import NetPacket

__all__ = ["SharedLink"]


class SharedLink:
    """A broadcast Ethernet segment with finite bandwidth.

    Parameters
    ----------
    bandwidth_bps:
        Raw medium speed (10e6 or 100e6 in the paper's testbed).
    prop_delay_us:
        One-way propagation delay across the segment.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float,
                 prop_delay_us: int = 5, name: str = "eth0",
                 seed: int = 0):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.prop_delay_us = int(prop_delay_us)
        self.name = name
        self._nics: list["NetworkInterface"] = []
        self._busy_until: int = 0
        self.frames_carried = 0
        self.bytes_carried = 0
        # -- fault-injection hooks (repro.faults) ------------------------
        # Structural loss draws come from the NICs; faults use their own
        # substream so enabling a fault never perturbs the structural RNG
        # sequences of an otherwise identical run.
        self.up = True                 # link flap: down drops every frame
        self.fault_loss_rate = 0.0     # link degrade: extra random loss
        self.fault_drops = 0
        self._fault_rng = substream(seed, f"fault:link:{name}")
        # lineage id of the fault action degrading this link (obs.causal)
        self.fault_cause = 0

    def attach(self, nic: "NetworkInterface") -> None:
        self._nics.append(nic)

    def tx_time_us(self, pkt: "NetPacket") -> int:
        return max(1, round(pkt.wire_bits * US_PER_SEC / self.bandwidth_bps))

    def reserve(self, pkt: "NetPacket") -> tuple[int, int]:
        """Claim the medium for ``pkt``.

        Returns ``(start_us, end_us)`` of the transmission slot.  The
        caller (a NIC ring) must not submit its next frame before
        ``end_us``.
        """
        start = max(self.sim.now, self._busy_until)
        end = start + self.tx_time_us(pkt)
        self._busy_until = end
        return start, end

    def broadcast(self, pkt: "NetPacket", sender: "NetworkInterface",
                  end_us: int) -> None:
        """Deliver ``pkt`` to every other interface after propagation."""
        if not self.up:
            self.fault_drops += 1
            lineage = self.sim.lineage
            if lineage is not None:
                lineage.emit_drop("link_down", self.name, pkt.segment,
                                  parent=pkt.cause, blame=self.fault_cause)
            return
        if self.fault_loss_rate > 0.0 and \
                self._fault_rng.random() < self.fault_loss_rate:
            self.fault_drops += 1
            lineage = self.sim.lineage
            if lineage is not None:
                lineage.emit_drop("link_fault_loss", self.name, pkt.segment,
                                  parent=pkt.cause, blame=self.fault_cause)
            return
        self.frames_carried += 1
        self.bytes_carried += pkt.wire_bytes
        arrive = end_us + self.prop_delay_us
        for nic in self._nics:
            if nic is not sender:
                self.sim.call_at(arrive, nic.medium_deliver,
                                 pkt.fork(self.sim.new_packet_id()))

    @property
    def utilization_bytes(self) -> int:
        return self.bytes_carried
