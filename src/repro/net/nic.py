"""Network interface model.

Reproduces the two behaviours of real 1999-era cards that matter to the
paper's results:

* **Transmit path** -- a finite device queue (Linux ``txqueuelen``,
  ~100 packets) drained at line rate.  The transmitter checks queue
  space per packet, so a full queue back-pressures the protocol rather
  than dropping, and in-flight data stays bounded.
* **Receive path** -- a finite RX ring drained by *host CPU*
  processing (150 us lower-layer + protocol cost per packet, from the
  paper's measurements).  When data arrives faster than the host can
  drain the ring, packets are dropped.  On a 100 Mbps wire a sustained
  back-to-back run longer than ~3 MB overflows a 768-slot ring, which
  reproduces the paper's Figure 13: NAKs appear only once send buffers
  exceed 1024 KB, and never at 10 Mbps where the wire rate is below the
  host's drain rate.

The interface also performs IP-multicast filtering (it accepts frames
for its unicast address and for any group it has joined) and can apply
an uncorrelated loss rate (the "network interface process" loss of the
paper's simulation study).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Protocol

from repro.net.addr import is_multicast
from repro.net.packet import NetPacket
from repro.sim.engine import Simulator
from repro.sim.rng import substream

__all__ = ["NetworkInterface", "MediumPort"]


class MediumPort(Protocol):
    """What a NIC needs from its attachment (shared link or pipe)."""

    def reserve(self, pkt: NetPacket) -> tuple[int, int]: ...

    def broadcast(self, pkt: NetPacket, sender: "NetworkInterface",
                  end_us: int) -> None: ...


class NetworkInterface:
    """A host's network interface.

    Parameters
    ----------
    rx_loss_rate:
        Probability of silently dropping an otherwise-deliverable
        incoming packet (the uncorrelated 10 % share of group loss in
        the simulation study).
    tx_ring / rx_ring:
        Ring sizes in packets.
    rx_delay_us:
        Extra fixed hold per delivered packet (the "assigned delay" of
        the paper's network-interface process).
    """

    def __init__(self, sim: Simulator, addr: str, *,
                 tx_ring: int = 100, rx_ring: int = 768,
                 rx_loss_rate: float = 0.0, rx_delay_us: int = 0,
                 rx_latency_us: int = 0,
                 seed: int = 0, name: str = ""):
        self.sim = sim
        self.addr = addr
        self.name = name or f"nic-{addr}"
        self.tx_ring_cap = int(tx_ring)
        self.rx_ring_cap = int(rx_ring)
        self.rx_loss_rate = float(rx_loss_rate)
        self.rx_delay_us = int(rx_delay_us)
        # pipelined DMA/interrupt latency: delays delivery into the RX
        # ring without consuming ring slots or CPU (order-preserving)
        self.rx_latency_us = int(rx_latency_us)
        self._rng = substream(seed, f"nic:{addr}")
        self._port: Optional[MediumPort] = None
        self._tx_queue: deque[NetPacket] = deque()
        self._tx_active = False
        self._groups: set[str] = set()
        self._rx_queue: deque[NetPacket] = deque()
        self._rx_active = False
        # set by the owning Host
        self.rx_handler: Optional[Callable[[NetPacket], None]] = None
        self.rx_cost_fn: Optional[Callable[[NetPacket], int]] = None
        self.cpu_run: Optional[Callable[..., None]] = None
        # counters
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.rx_ring_drops = 0
        self.rx_loss_drops = 0
        self.filtered = 0
        # -- fault-injection hooks (repro.faults) ------------------------
        # Fault draws come from a dedicated substream so that arming a
        # fault never perturbs the structural ``rx_loss_rate`` sequence.
        self.powered = True
        self.fault_rx_drop_until = -1   # burst drop: drop all rx until t
        self.fault_rx_loss_rate = 0.0   # extra random rx loss
        self.fault_corrupt_rate = 0.0   # bit errors; host checksum drops
        self.fault_drops = 0
        self.fault_corruptions = 0
        self._fault_rng = substream(seed, f"fault:nic:{addr}")
        # lineage id of the fault action currently poisoning this card
        # (set by the injector, cleared on restore); drops performed
        # while set carry it as a ``blame`` edge (see repro.obs.causal)
        self.fault_cause = 0

    # -- wiring ---------------------------------------------------------

    def attach(self, port: MediumPort) -> None:
        self._port = port

    def join_group(self, group: str) -> None:
        self._groups.add(group)

    def leave_group(self, group: str) -> None:
        self._groups.discard(group)

    def in_group(self, group: str) -> bool:
        return group in self._groups

    # -- power (host crash/restart) --------------------------------------

    def power_off(self) -> None:
        """Host crash: both rings lose their contents and the card goes
        deaf.  In-flight completion callbacks are disarmed by the
        head-identity guards in the done handlers."""
        self.powered = False
        self._tx_queue.clear()
        self._rx_queue.clear()
        self._tx_active = False
        self._rx_active = False

    def power_on(self) -> None:
        """Restart with empty rings (ring contents died with the host)."""
        self.powered = True

    # -- transmit path ---------------------------------------------------

    def tx_space(self) -> int:
        """Free TX-ring slots; the transmitter defers when this is 0."""
        return self.tx_ring_cap - len(self._tx_queue)

    def try_transmit(self, pkt: NetPacket) -> bool:
        """Queue a packet for transmission.  Returns False (and accepts
        nothing) when the ring is full -- the caller must retry later,
        mirroring driver back-pressure."""
        if self._port is None:
            raise RuntimeError(f"{self.name} not attached to a medium")
        if not self.powered:
            # a dead card accepts and loses the frame; the caller (a
            # crashed host's last scheduled work) must not spin on retry
            self.fault_drops += 1
            lineage = self.sim.lineage
            if lineage is not None:
                lineage.emit_drop("tx_nic_dead", self.addr, pkt.segment,
                                  parent=pkt.cause, blame=self.fault_cause)
            return True
        if len(self._tx_queue) >= self.tx_ring_cap:
            return False
        self._tx_queue.append(pkt)
        if not self._tx_active:
            self._tx_active = True
            self._tx_next()
        return True

    def _tx_next(self) -> None:
        if not self._tx_queue:
            self._tx_active = False
            return
        pkt = self._tx_queue[0]
        start, end = self._port.reserve(pkt)
        self.sim.call_at(end, self._tx_done, pkt, end)

    def _tx_done(self, pkt: NetPacket, end_us: int) -> None:
        if not self._tx_queue or self._tx_queue[0] is not pkt:
            return  # ring torn down (power_off) while this frame was in flight
        self._tx_queue.popleft()
        self.tx_packets += 1
        self.tx_bytes += pkt.wire_bytes
        # stamp wire-departure time on the segment: "most recently sent"
        # in the window-release rule means when the packet left the host,
        # not when it entered the device queue
        try:
            pkt.segment.last_sent_us = self.sim.now
        except AttributeError:
            pass
        self._port.broadcast(pkt, self, end_us)
        self._tx_next()

    # -- receive path ------------------------------------------------

    def medium_deliver(self, pkt: NetPacket) -> None:
        """Called by the medium when a frame passes this interface."""
        if pkt.dst != self.addr:
            if not (is_multicast(pkt.dst) and pkt.dst in self._groups):
                self.filtered += 1
                return
        lineage = self.sim.lineage
        if not self.powered or self.sim.now < self.fault_rx_drop_until:
            self.fault_drops += 1
            if lineage is not None:
                why = "nic_dead" if not self.powered else "nic_burst_drop"
                lineage.emit_drop(why, self.addr, pkt.segment,
                                  parent=pkt.cause, blame=self.fault_cause)
            return
        if self.fault_rx_loss_rate > 0.0 and \
                self._fault_rng.random() < self.fault_rx_loss_rate:
            self.fault_drops += 1
            if lineage is not None:
                lineage.emit_drop("nic_fault_loss", self.addr, pkt.segment,
                                  parent=pkt.cause, blame=self.fault_cause)
            return
        if self.fault_corrupt_rate > 0.0 and \
                self._fault_rng.random() < self.fault_corrupt_rate:
            # flip bits in our private fork; the host checksum drops it
            pkt.corrupted = True
            pkt.blame = self.fault_cause
            self.fault_corruptions += 1
        if self.rx_loss_rate > 0.0 and self._rng.random() < self.rx_loss_rate:
            self.rx_loss_drops += 1
            if lineage is not None:
                lineage.emit_drop("rx_loss", self.addr, pkt.segment,
                                  parent=pkt.cause)
            return
        if self.rx_latency_us:
            self.sim.call_after(self.rx_latency_us, self._rx_enqueue, pkt)
        else:
            self._rx_enqueue(pkt)

    def _rx_enqueue(self, pkt: NetPacket) -> None:
        if not self.powered:
            self.fault_drops += 1  # arrived via rx_latency after a crash
            lineage = self.sim.lineage
            if lineage is not None:
                lineage.emit_drop("nic_dead", self.addr, pkt.segment,
                                  parent=pkt.cause, blame=self.fault_cause)
            return
        if len(self._rx_queue) >= self.rx_ring_cap:
            self.rx_ring_drops += 1
            lineage = self.sim.lineage
            if lineage is not None:
                lineage.emit_drop("rx_ring_overflow", self.addr, pkt.segment,
                                  parent=pkt.cause)
            return
        self._rx_queue.append(pkt)
        if not self._rx_active:
            self._rx_active = True
            self._rx_next()

    def _rx_next(self) -> None:
        if not self._rx_queue:
            self._rx_active = False
            return
        pkt = self._rx_queue[0]
        if self.rx_delay_us:
            # the "assigned delay" of the paper's network-interface process
            self.sim.call_after(self.rx_delay_us, self._rx_process, pkt)
        else:
            self._rx_process(pkt)

    def _rx_process(self, pkt: NetPacket) -> None:
        if not self._rx_queue or self._rx_queue[0] is not pkt:
            return  # ring torn down (power_off) while waiting for rx_delay
        cost = self.rx_cost_fn(pkt) if self.rx_cost_fn else 0
        if self.cpu_run is not None:
            self.cpu_run(cost, self._rx_done, pkt)
        else:
            self.sim.call_after(cost, self._rx_done, pkt)

    def _rx_done(self, pkt: NetPacket) -> None:
        if not self._rx_queue or self._rx_queue[0] is not pkt:
            return  # ring torn down (power_off) while the CPU worked on it
        self._rx_queue.popleft()
        self.rx_packets += 1
        self.rx_bytes += pkt.wire_bytes
        if self.rx_handler is not None:
            self.rx_handler(pkt)
        self._rx_next()
