"""IP-level packet envelope.

A :class:`NetPacket` wraps one transport segment with network addressing
and accounts for wire overheads.  Routers duplicate multicast packets by
creating copies that *share* the segment object (segments are treated as
immutable once sent), mirroring how the paper's simulator duplicates
packets within a router.
"""

from __future__ import annotations

from typing import Any

__all__ = ["NetPacket", "IP_OVERHEAD", "LINK_OVERHEAD"]

IP_OVERHEAD = 20  # IPv4 header, as in the paper's partial IP header
LINK_OVERHEAD = 18  # Ethernet MAC header + FCS


class NetPacket:
    """One best-effort datagram in flight.

    ``segment`` is the transport-layer object (an H-RMC segment, an ACK
    segment for a baseline protocol, ...).  ``seg_bytes`` is the size of
    the transport header plus payload; the wire size adds IP and link
    overheads.
    """

    __slots__ = ("src", "dst", "segment", "seg_bytes", "id", "hops",
                 "born_us", "corrupted", "cause", "blame")

    def __init__(self, src: str, dst: str, segment: Any, seg_bytes: int,
                 born_us: int = 0, pid: int = 0):
        # ids are allocated per-Simulator (sim.new_packet_id()), never
        # from process-global state: two runs in one worker process must
        # produce identical packet streams
        self.src = src
        self.dst = dst
        self.segment = segment
        self.seg_bytes = int(seg_bytes)
        self.id = pid
        self.hops = 0
        self.born_us = born_us
        self.corrupted = False   # bit errors in flight; checksum catches
        self.cause = 0           # lineage id of the tx event (obs.causal)
        self.blame = 0           # lineage id of the fault that damaged us

    @property
    def wire_bytes(self) -> int:
        return self.seg_bytes + IP_OVERHEAD + LINK_OVERHEAD

    @property
    def wire_bits(self) -> int:
        return self.wire_bytes * 8

    def fork(self, pid: int = 0) -> "NetPacket":
        """Duplicate for multicast fan-out (shares the segment)."""
        dup = NetPacket(self.src, self.dst, self.segment, self.seg_bytes,
                        self.born_us, pid)
        dup.hops = self.hops
        dup.corrupted = self.corrupted
        dup.cause = self.cause
        dup.blame = self.blame
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"NetPacket(#{self.id} {self.src}->{self.dst} "
                f"{self.seg_bytes}B {self.segment!r})")
