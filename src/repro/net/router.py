"""Routers and point-to-point pipes.

The paper's simulation assigns each router "a network speed, a queue
size, and a loss rate"; multicast packets "are duplicated within a
router as necessary".  Here a :class:`Router` performs the loss draw
(this is the *correlated* loss -- the copy is dropped before
duplication, so every downstream receiver misses it) and routes the
packet into :class:`Pipe` objects which model the speed / queue-size
part: FIFO service at a fixed bandwidth, a finite queue, and a
propagation delay.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addr import is_multicast
from repro.net.packet import NetPacket
from repro.net.nic import NetworkInterface
from repro.sim.engine import Simulator, US_PER_SEC
from repro.sim.rng import substream

__all__ = ["Pipe", "Router"]


class Pipe:
    """A unidirectional point-to-point transmission line.

    Service discipline: packets are serialized at ``bandwidth_bps``;
    at most ``queue_limit`` packets may be waiting for the line (drops
    beyond that -- a router output queue); delivery happens
    ``prop_delay_us`` after the last bit leaves.

    The downstream end is any object with an ``ingress(pkt)`` method
    (a Router) or a :class:`NetworkInterface` (delivered via
    ``medium_deliver``).
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float, *,
                 prop_delay_us: int = 0, queue_limit: int = 1000,
                 loss_rate: float = 0.0, corrupt_rate: float = 0.0,
                 seed: int = 0, name: str = ""):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.prop_delay_us = int(prop_delay_us)
        self.queue_limit = int(queue_limit)
        self.loss_rate = float(loss_rate)
        self.corrupt_rate = float(corrupt_rate)
        self.name = name or "pipe"
        self._rng = substream(seed, f"pipe:{name}")
        self._dst: Optional[Callable[[NetPacket], None]] = None
        self._busy_until = 0
        self._queued = 0
        self.forwarded = 0
        self.bytes_carried = 0   # payload of every delivered packet
        self.queue_drops = 0
        self.loss_drops = 0
        self.corruptions = 0
        # -- fault-injection hooks (repro.faults) ------------------------
        self.up = True                 # flap: a down pipe drops everything
        self.fault_loss_rate = 0.0     # degrade: extra loss, own substream
        self.fault_drops = 0
        self._fault_rng = substream(seed, f"fault:pipe:{self.name}")
        # lineage id of the fault action degrading this pipe (obs.causal)
        self.fault_cause = 0

    def _fault_dropped(self, pkt: NetPacket) -> bool:
        if not self.up:
            self.fault_drops += 1
            self._emit_drop("pipe_down", pkt, blame=self.fault_cause)
            return True
        if self.fault_loss_rate > 0.0 and \
                self._fault_rng.random() < self.fault_loss_rate:
            self.fault_drops += 1
            self._emit_drop("pipe_fault_loss", pkt, blame=self.fault_cause)
            return True
        return False

    def _emit_drop(self, why: str, pkt: NetPacket, blame: int = 0) -> None:
        lineage = self.sim.lineage
        if lineage is not None:
            lineage.emit_drop(why, self.name, pkt.segment,
                              parent=pkt.cause, blame=blame)

    def connect(self, dst) -> None:
        """Attach the downstream end (Router or NetworkInterface)."""
        if isinstance(dst, NetworkInterface):
            self._dst = dst.medium_deliver
        else:
            self._dst = dst.ingress

    def tx_time_us(self, pkt: NetPacket) -> int:
        return max(1, round(pkt.wire_bits * US_PER_SEC / self.bandwidth_bps))

    def send(self, pkt: NetPacket) -> None:
        if self._dst is None:
            raise RuntimeError(f"{self.name} not connected")
        if self._fault_dropped(pkt):
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.loss_drops += 1
            self._emit_drop("pipe_loss", pkt)
            return
        if self._queued >= self.queue_limit:
            self.queue_drops += 1
            self._emit_drop("pipe_queue_overflow", pkt)
            return
        if self.corrupt_rate > 0.0 and self._rng.random() < self.corrupt_rate:
            pkt.corrupted = True   # delivered damaged; checksum catches it
            self.corruptions += 1
        self._queued += 1
        start = max(self.sim.now, self._busy_until)
        end = start + self.tx_time_us(pkt)
        self._busy_until = end
        self.sim.call_at(end + self.prop_delay_us, self._deliver, pkt)

    def _deliver(self, pkt: NetPacket) -> None:
        self._queued -= 1
        self.forwarded += 1
        self.bytes_carried += pkt.wire_bytes
        pkt.hops += 1
        self._dst(pkt)

    # NIC MediumPort interface, so a NIC can sit directly on a pipe pair
    def reserve(self, pkt: NetPacket) -> tuple[int, int]:
        start = max(self.sim.now, self._busy_until)
        end = start + self.tx_time_us(pkt)
        self._busy_until = end
        return start, end

    def broadcast(self, pkt: NetPacket, sender: NetworkInterface,
                  end_us: int) -> None:
        if self._dst is None:
            raise RuntimeError(f"{self.name} not connected")
        if self._fault_dropped(pkt):
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.loss_drops += 1
            self._emit_drop("pipe_loss", pkt)
            return
        self.forwarded += 1
        self.bytes_carried += pkt.wire_bytes
        self.sim.call_at(end_us + self.prop_delay_us, self._dst, pkt)


class Router:
    """A store-and-forward router with multicast duplication.

    ``loss_rate`` is applied once per *incoming* packet, before
    duplication -- the correlated loss of the paper's study (90 % of a
    characteristic group's loss happens here).
    """

    def __init__(self, sim: Simulator, *, loss_rate: float = 0.0,
                 forward_delay_us: int = 10, seed: int = 0, name: str = "r"):
        self.sim = sim
        self.name = name
        self.loss_rate = float(loss_rate)
        self.forward_delay_us = int(forward_delay_us)
        self._rng = substream(seed, f"router:{name}")
        self._unicast: dict[str, Pipe] = {}
        self._default: Optional[Pipe] = None
        self._mcast: dict[str, list[Pipe]] = {}
        self.forwarded = 0
        self.loss_drops = 0
        self.no_route_drops = 0

    # -- table management --------------------------------------------

    def add_route(self, dst_addr: str, pipe: Pipe) -> None:
        self._unicast[dst_addr] = pipe

    def set_default_route(self, pipe: Pipe) -> None:
        self._default = pipe

    def mcast_subscribe(self, group: str, pipe: Pipe) -> None:
        pipes = self._mcast.setdefault(group, [])
        if pipe not in pipes:
            pipes.append(pipe)

    def mcast_unsubscribe(self, group: str, pipe: Pipe) -> None:
        pipes = self._mcast.get(group)
        if pipes and pipe in pipes:
            pipes.remove(pipe)
            if not pipes:
                del self._mcast[group]

    # -- forwarding ---------------------------------------------------

    def ingress(self, pkt: NetPacket) -> None:
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.loss_drops += 1
            lineage = self.sim.lineage
            if lineage is not None:
                # correlated loss: the copy dies before duplication, so
                # every downstream receiver misses it
                lineage.emit_drop("router_loss", self.name, pkt.segment,
                                  parent=pkt.cause)
            return
        self.sim.call_after(self.forward_delay_us, self._forward, pkt)

    def _forward(self, pkt: NetPacket) -> None:
        if is_multicast(pkt.dst):
            pipes = self._mcast.get(pkt.dst, ())
            if not pipes:
                self.no_route_drops += 1
                return
            self.forwarded += 1
            for pipe in pipes:
                pipe.send(pkt.fork(self.sim.new_packet_id()))
        else:
            pipe = self._unicast.get(pkt.dst, self._default)
            if pipe is None:
                self.no_route_drops += 1
                return
            self.forwarded += 1
            pipe.send(pkt)
