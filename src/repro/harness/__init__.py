"""Experiment harness: one entry point per paper table/figure."""

from repro.harness.runner import TransferResult, run_transfer

__all__ = ["TransferResult", "run_transfer"]
