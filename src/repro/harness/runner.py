"""Run one multicast file transfer and collect every metric the paper
reports.

:func:`run_transfer` wires a scenario (from
:mod:`repro.workloads.scenarios`) to a protocol (H-RMC, RMC, the
ACK/polling baselines, or the TCP-like unicast reference), runs the
sender and receiver application processes to completion, and returns a
:class:`TransferResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.diskmodel import DiskModel
from repro.apps.filetransfer import AppResult, receiver_app, sender_app
from repro.baselines.ack import open_ack_socket
from repro.baselines.polling import open_polling_socket
from repro.baselines.tcp import TcpLikeTransport
from repro.core.config import HRMCConfig
from repro.core.protocol import open_hrmc_socket
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.kernel.socket_api import Socket
from repro.obs.observer import Observability
from repro.core.rmc import open_rmc_socket
from repro.sim.engine import US_PER_SEC
from repro.sim.process import Process
from repro.stats.metrics import Counters
from repro.trace.tracer import PacketTracer
from repro.workloads.scenarios import Scenario

__all__ = ["TransferResult", "run_transfer", "PROTOCOLS"]

PROTOCOLS = ("hrmc", "rmc", "ack", "polling", "tcp")


@dataclass
class TransferResult:
    protocol: str
    nbytes: int
    n_receivers: int
    ok: bool                       # everyone got every byte, verified
    duration_us: int               # to last receiver's final byte
    throughput_bps: float
    sender_stats: Counters
    receiver_stats: Counters       # aggregated over receivers
    per_receiver: list[AppResult]
    release_checks: int = 0
    release_complete_pct: float = 100.0
    probes_triggered: int = 0
    lost_bytes: int = 0            # RMC-mode stream holes
    reliability_violations: int = 0
    member_timeouts: int = 0
    sim_events: int = 0
    wall_events_per_packet: float = 0.0
    drop_summary: dict = field(default_factory=dict)
    # chaos bookkeeping (populated when a fault plan ran)
    fault_events: int = 0
    crashed_receivers: list = field(default_factory=list)
    restarted_receivers: list = field(default_factory=list)
    invariant_checks: int = 0
    rejoin_results: list = field(default_factory=list)
    # observability (set when the run was passed obs=Observability(...))
    obs: Optional[Observability] = None

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6

    @property
    def feedback_total(self) -> int:
        return self.receiver_stats.feedback_total

    @property
    def surviving_ok(self) -> bool:
        """Every receiver that was *not* crashed by the fault plan got
        the whole stream, verified (and the sender finished).  With no
        faults this collapses to :attr:`ok`."""
        crashed = set(self.crashed_receivers)
        survivors = [r for i, r in enumerate(self.per_receiver)
                     if i not in crashed]
        return (all(r.done and r.verified and r.bytes_done == self.nbytes
                    for r in survivors)
                and len(survivors) + len(crashed) == self.n_receivers)


def _open_socket(protocol: str, host, cfg: HRMCConfig, *, sndbuf: int,
                 rcvbuf: int, n_receivers: int) -> Socket:
    if protocol == "hrmc":
        return open_hrmc_socket(host, cfg, sndbuf=sndbuf, rcvbuf=rcvbuf)
    if protocol == "rmc":
        return open_rmc_socket(host, cfg, sndbuf=sndbuf, rcvbuf=rcvbuf)
    if protocol == "ack":
        return open_ack_socket(host, expected_receivers=n_receivers,
                               sndbuf=sndbuf, rcvbuf=rcvbuf)
    if protocol == "polling":
        return open_polling_socket(host, expected_receivers=n_receivers,
                                   sndbuf=sndbuf, rcvbuf=rcvbuf)
    raise ValueError(f"unknown protocol {protocol!r}")


def run_transfer(scenario: Scenario, *, nbytes: int,
                 protocol: str = "hrmc",
                 sndbuf: int = 64 * 1024, rcvbuf: Optional[int] = None,
                 cfg: Optional[HRMCConfig] = None,
                 disk: bool = False, chunk: int = 64 * 1024,
                 verify: str = "offsets", seed: int = 0,
                 max_sim_s: float = 3600.0,
                 fault_plan: Optional[FaultPlan] = None,
                 invariants: bool = False,
                 tracer: Optional[PacketTracer] = None,
                 obs: Optional[Observability] = None) -> TransferResult:
    """Transfer ``nbytes`` from the scenario's sender to every receiver.

    ``sndbuf`` is the per-socket kernel buffer of the experiments' x
    axis; ``rcvbuf`` defaults to the same value (the paper varies them
    together as "the kernel buffer size").

    ``fault_plan`` (or ``scenario.fault_plan``) schedules fault
    injection for the run; ``invariants=True`` attaches the
    always-on protocol-invariant checker, which raises
    :class:`~repro.faults.invariants.InvariantViolation` at the first
    unsafe state.  Pass a ``tracer`` to keep the capture (the harness
    attaches it to every host); otherwise the checker runs on an
    internal flight-recorder tracer.

    ``obs`` attaches a :class:`~repro.obs.observer.Observability`
    instance for the run: gauges are scraped on simulated time, spans
    are stitched from the packet tap, and the finished instance is
    returned on ``TransferResult.obs``.  Observation is read-only and
    does not change protocol behaviour.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    rcvbuf = sndbuf if rcvbuf is None else rcvbuf
    sim = scenario.sim
    n = scenario.n_receivers

    fault_plan = fault_plan if fault_plan is not None \
        else getattr(scenario, "fault_plan", None)
    if fault_plan is not None and protocol == "tcp":
        raise ValueError("fault plans are not supported for the "
                         "tcp-like reference (sequential unicast)")
    if tracer is not None or invariants or obs is not None:
        if tracer is None:
            # flight recorder: bounded memory, listeners see everything
            tracer = PacketTracer(max_events=256, ring=True)
        tracer.attach(scenario.sender, *scenario.receivers)
    checker = InvariantChecker(tracer, obs=obs) if invariants else None

    base = cfg or HRMCConfig()
    if protocol in ("hrmc", "rmc"):
        base = base.with_rate_cap(scenario.bandwidth_bps)
        if protocol == "hrmc" and base.expected_receivers is None:
            from dataclasses import replace
            base = replace(base, expected_receivers=n)

    sender_result = AppResult(name="sender")
    receiver_results = [AppResult(name=f"rcv{i}") for i in range(n)]
    disks = {}
    if disk:
        disks["sender"] = DiskModel(sim, seed=seed, name="sender")
        for i in range(n):
            disks[i] = DiskModel(sim, seed=seed, name=f"rcv{i}")

    if protocol == "tcp":
        sockets = _run_tcp_sequential(scenario, nbytes, sndbuf, rcvbuf,
                                      sender_result, receiver_results,
                                      disks, chunk, verify)
        if obs is not None:
            obs.attach(scenario, tracer)
    else:
        ssock = _open_socket(protocol, scenario.sender, base,
                             sndbuf=sndbuf, rcvbuf=rcvbuf, n_receivers=n)
        rsocks = [_open_socket(protocol, h, base, sndbuf=sndbuf,
                               rcvbuf=rcvbuf, n_receivers=n)
                  for h in scenario.receivers]
        rprocs = []
        for i, rsock in enumerate(rsocks):
            rprocs.append(
                Process(sim, receiver_app(rsock, group=scenario.group_addr,
                                          port=scenario.data_port,
                                          result=receiver_results[i],
                                          disk=disks.get(i), chunk=chunk,
                                          verify=verify), name=f"rcv{i}"))
        Process(sim, sender_app(ssock, nbytes, sport=scenario.sender_port,
                                group=scenario.group_addr,
                                port=scenario.data_port,
                                result=sender_result,
                                disk=disks.get("sender"), chunk=chunk),
                name="sender")
        sockets = (ssock, rsocks)
        if obs is not None:
            obs.attach(scenario, tracer, ssock=ssock, rsocks=rsocks)
        if checker is not None:
            checker.watch_sender(ssock.transport)
            for rsock in rsocks:
                checker.watch_receiver(rsock.transport)

    injector = None
    rejoin_results: list[AppResult] = []
    if fault_plan is not None:
        injector = FaultInjector(scenario, fault_plan, checker=checker)

        def rejoin(idx: int) -> None:
            """Fresh socket + application on the restarted host: the
            kernel endpoint died with the crash, so the receiver comes
            back as a new group member and resumes mid-stream."""
            sock = _open_socket(protocol, scenario.receivers[idx], base,
                                sndbuf=sndbuf, rcvbuf=rcvbuf,
                                n_receivers=n)
            res = AppResult(name=f"rcv{idx}-rejoin")
            rejoin_results.append(res)
            Process(sim, receiver_app(sock, group=scenario.group_addr,
                                      port=scenario.data_port, result=res,
                                      chunk=chunk, verify=verify,
                                      resume=True),
                    name=f"rcv{idx}-rejoin")
            if checker is not None:
                checker.watch_receiver(sock.transport)

        injector.register_receivers(rsocks, rprocs, restart_fn=rejoin)
        injector.arm()

    try:
        sim.run(until=round(max_sim_s * US_PER_SEC))
        if checker is not None:
            checker.final_check()
    finally:
        if obs is not None:
            obs.finalize(sim.now)
    result = _collect(scenario, protocol, nbytes, sockets, sender_result,
                      receiver_results)
    result.obs = obs
    if injector is not None:
        result.fault_events = injector.fault_events
        result.crashed_receivers = sorted(injector.crashed)
        result.restarted_receivers = sorted(injector.restarted)
        result.rejoin_results = rejoin_results
    if checker is not None:
        result.invariant_checks = checker.checks
    return result


def _run_tcp_sequential(scenario, nbytes, sndbuf, rcvbuf, sender_result,
                        receiver_results, disks, chunk, verify):
    """TCP-like reference: n sequential unicast transfers."""
    sim = scenario.sim
    sender_socks: list[Socket] = []
    rsocks: list[Socket] = []
    procs: list[Process] = []
    for i, rhost in enumerate(scenario.receivers):
        rsock = Socket(TcpLikeTransport(rhost, sndbuf=sndbuf,
                                        rcvbuf=rcvbuf))
        rsocks.append(rsock)
        procs.append(Process(
            sim,
            receiver_app(rsock, group=rhost.addr,
                         port=scenario.data_port,
                         result=receiver_results[i],
                         disk=disks.get(i), chunk=chunk, verify=verify),
            name=f"tcp-rcv{i}"))

    def orchestrate():
        total = 0
        for i, rhost in enumerate(scenario.receivers):
            ssock = Socket(TcpLikeTransport(scenario.sender, sndbuf=sndbuf,
                                            rcvbuf=rcvbuf))
            sender_socks.append(ssock)
            one = AppResult(name=f"tcp-snd{i}")
            proc = Process(sim, sender_app(
                ssock, nbytes, sport=scenario.sender_port + i,
                group=rhost.addr, port=scenario.data_port, result=one,
                disk=disks.get("sender"), chunk=chunk), name=f"tcp-snd{i}")
            yield from proc.join()
            total += one.bytes_done
        sender_result.bytes_done = total
        sender_result.finished_at_us = sim.now

    Process(sim, orchestrate(), name="tcp-orchestrator")
    return (sender_socks, rsocks)


def _collect(scenario, protocol, nbytes, sockets, sender_result,
             receiver_results) -> TransferResult:
    sim = scenario.sim
    n = scenario.n_receivers
    ssock, rsocks = sockets

    rstats = Counters()
    lost = 0
    for rsock in rsocks:
        rstats.add(rsock.transport.stats)
        receiver = getattr(rsock.transport, "receiver", None)
        if receiver is not None:
            lost += getattr(receiver, "lost_bytes", 0)

    data_done = [r.data_done_at_us for r in receiver_results if r.done]
    all_done = (len(data_done) == n and sender_result.done)
    duration = max(data_done) if data_done else sim.now
    complete = all(r.bytes_done == nbytes for r in receiver_results)
    verified = all(r.verified for r in receiver_results)
    throughput = (nbytes * 8 * US_PER_SEC / duration) if duration > 0 else 0.0

    if protocol == "tcp":
        sstats = Counters()
        for s in ssock:
            sstats.add(s.transport.stats)
        release_checks, release_pct, probes, violations, timeouts = \
            0, 100.0, 0, 0, 0
    else:
        sstats = ssock.transport.stats
        sender = getattr(ssock.transport, "sender", None)
        if sender is not None:
            release_checks = sender.release.checks
            release_pct = sender.release.percent_complete
            probes = sender.release.probes_triggered
        else:
            release_checks, release_pct, probes = 0, 100.0, 0
        violations = sstats.reliability_violations
        timeouts = sstats.member_timeouts

    pkts = max(1, sstats.data_pkts_sent + sstats.retrans_pkts)
    return TransferResult(
        protocol=protocol, nbytes=nbytes, n_receivers=n,
        ok=bool(all_done and complete and verified and lost == 0),
        duration_us=duration, throughput_bps=throughput,
        sender_stats=sstats, receiver_stats=rstats,
        per_receiver=receiver_results,
        release_checks=release_checks, release_complete_pct=release_pct,
        probes_triggered=probes, lost_bytes=lost,
        reliability_violations=violations, member_timeouts=timeouts,
        sim_events=sim.events_processed,
        wall_events_per_packet=sim.events_processed / pkts,
        drop_summary=scenario.network.drop_summary(),
    )
