"""One function per paper table/figure, plus the ablation studies.

Every experiment returns a :class:`Report` whose tables carry the same
rows/series the paper plots.  Transfers default to a 1:5 scaled file
size (2 MB / 8 MB instead of 10 MB / 40 MB) so the full suite runs in
minutes; set ``REPRO_FULL_SCALE=1`` (or pass ``scale="full"``) for
paper-size runs.  Shape claims -- who wins, trend directions, where the
NAK onset falls -- hold at either scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.core.config import HRMCConfig
from repro.core.types import PACKET_TYPE_USE, PacketType
from repro.harness.runner import TransferResult, run_transfer
from repro.stats.report import format_table
from repro.workloads.groups import (GROUP_A, GROUP_B, GROUP_C, TEST_CASES,
                                    expand_test_case)
from repro.workloads.scenarios import build_chaos, build_lan, build_wan

__all__ = ["Report", "EXPERIMENTS", "run_experiment", "file_sizes",
           "BUFFERS_K", "BUFFERS_BIG_K"]

BUFFERS_K = (64, 128, 256, 512, 1024)
BUFFERS_BIG_K = (64, 128, 256, 512, 1024, 2048, 4096)
MBPS_10 = 10e6
MBPS_100 = 100e6


@dataclass
class Report:
    exp_id: str
    title: str
    tables: list = field(default_factory=list)  # (title, headers, rows)
    notes: list = field(default_factory=list)

    def add(self, title: str, headers, rows) -> None:
        self.tables.append((title, list(headers), [list(r) for r in rows]))

    def render(self) -> str:
        parts = [f"### {self.exp_id}: {self.title}"]
        for title, headers, rows in self.tables:
            parts.append(format_table(title, headers, rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)


def _scale(scale: Optional[str]) -> str:
    if scale is not None:
        return scale
    return "full" if os.environ.get("REPRO_FULL_SCALE") == "1" else "quick"


def file_sizes(scale: Optional[str] = None) -> tuple[int, int]:
    """(small, large) transfer sizes: 10/40 MB at full scale, 2/8 MB
    scaled."""
    if _scale(scale) == "full":
        return 10_000_000, 40_000_000
    return 2_000_000, 8_000_000


def _many_receivers(scale: Optional[str]) -> int:
    return 100 if _scale(scale) == "full" else 40


# ---------------------------------------------------------------------------
# Table 1

def table1_packet_types(scale: Optional[str] = None) -> Report:
    rep = Report("table1", "RMC and H-RMC packet types")
    rows = [(t.name, "H-RMC only" if t in (PacketType.UPDATE,
                                           PacketType.PROBE) else "both",
             PACKET_TYPE_USE[t])
            for t in PacketType]
    rep.add("Packet types", ["Type", "Protocols", "Use"], rows)
    return rep


# ---------------------------------------------------------------------------
# Figure 3: release-time information completeness

def fig3_release_info(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    nbytes = small // 2
    envs = [("LAN", GROUP_A), ("MAN", GROUP_B), ("WAN", GROUP_C)]
    buffers = (64, 256, 1024) if _scale(scale) == "quick" else BUFFERS_K
    rep = Report("fig3", "% of releases with complete receiver info "
                         "(10 receivers)")
    for label, rmc in (("(a) without updates (original RMC)", True),
                       ("(b) with updates (H-RMC)", False)):
        rows = []
        for buf in buffers:
            row = [f"{buf}K"]
            for _, group in envs:
                sc = build_wan([group] * 10, MBPS_10, seed=7)
                cfg = HRMCConfig()
                if rmc:
                    cfg = cfg.as_rmc()
                    # keep the member table for measurement only
                    cfg = replace(cfg, track_membership=True)
                res = run_transfer(sc, nbytes=nbytes,
                                   protocol="rmc" if rmc else "hrmc",
                                   cfg=cfg, sndbuf=buf * 1024)
                row.append(round(res.release_complete_pct, 1))
            rows.append(row)
        rep.add(label, ["buffer"] + [e[0] for e in envs], rows)
    rep.notes.append("H-RMC updates should lift completeness toward 100% "
                     "in every environment; RMC is low in low-loss "
                     "environments where NAK feedback is scarce.")
    return rep


# ---------------------------------------------------------------------------
# Figures 10-13: the experimental (LAN) study

def _lan_throughput(bw: float, nbytes: int, mode_disk: bool,
                    receivers, buffers, seed: int = 3):
    rows = []
    for buf in buffers:
        row = [f"{buf}K"]
        for n in receivers:
            sc = build_lan(n, bw, seed=seed)
            res = run_transfer(sc, nbytes=nbytes, sndbuf=buf * 1024,
                               disk=mode_disk)
            row.append(round(res.throughput_mbps, 2))
        rows.append(row)
    return rows


def fig10_throughput_10mbps(scale: Optional[str] = None) -> Report:
    small, large = file_sizes(scale)
    rep = Report("fig10", "Throughput of H-RMC on a 10 Mbps network")
    receivers = (1, 2, 3)
    headers = ["buffer"] + [f"{n} rcv" for n in receivers]
    rep.add("(a) memory to memory, small file",
            headers, _lan_throughput(MBPS_10, small, False, receivers,
                                     BUFFERS_K))
    rep.add("(b) memory to memory, large file",
            headers, _lan_throughput(MBPS_10, large, False, receivers,
                                     BUFFERS_K))
    rep.add("(c) disk to disk, small file",
            headers, _lan_throughput(MBPS_10, small, True, receivers,
                                     BUFFERS_K))
    rep.add("(d) disk to disk, large file",
            headers, _lan_throughput(MBPS_10, large, True, receivers,
                                     BUFFERS_K))
    rep.notes.append("expect: throughput rises with buffer size and "
                     "saturates near 8.5-9 Mbps by 512K (paper Fig. 10).")
    return rep


def _lan_feedback(bw: float, nbytes: int, mode_disk: bool, receivers,
                  buffers, seed: int = 3):
    rate_rows, nak_rows = [], []
    for buf in buffers:
        rr = [f"{buf}K"]
        nr = [f"{buf}K"]
        for n in receivers:
            sc = build_lan(n, bw, seed=seed)
            res = run_transfer(sc, nbytes=nbytes, sndbuf=buf * 1024,
                               disk=mode_disk)
            rr.append(res.sender_stats.rate_requests_rcvd +
                      res.sender_stats.urgent_requests_rcvd)
            nr.append(res.sender_stats.naks_rcvd)
        rate_rows.append(rr)
        nak_rows.append(nr)
    return rate_rows, nak_rows


def fig11_feedback_10mbps(scale: Optional[str] = None) -> Report:
    small, large = file_sizes(scale)
    rep = Report("fig11", "Feedback activity of H-RMC on 10 Mbps "
                          "(disk tests)")
    receivers = (1, 2, 3)
    headers = ["buffer"] + [f"{n} rcv" for n in receivers]
    rr, nr = _lan_feedback(MBPS_10, small, True, receivers, BUFFERS_K)
    rep.add("(a) rate requests, small file, disk to disk", headers, rr)
    rep.add("(b) NAKs, small file, disk to disk", headers, nr)
    rr, nr = _lan_feedback(MBPS_10, large, True, receivers, BUFFERS_K)
    rep.add("(c) rate requests, large file, disk to disk", headers, rr)
    rep.add("(d) NAKs, large file, disk to disk", headers, nr)
    rep.notes.append("expect: rate requests shrink as buffers grow; NAKs "
                     "stay near zero at 10 Mbps (paper Fig. 11).")
    return rep


def fig12_throughput_100mbps(scale: Optional[str] = None) -> Report:
    small, large = file_sizes(scale)
    rep = Report("fig12", "Throughput of H-RMC on a 100 Mbps network "
                          "(memory to memory)")
    receivers = (1, 2, 3)
    headers = ["buffer"] + [f"{n} rcv" for n in receivers]
    rep.add("(a) small file", headers,
            _lan_throughput(MBPS_100, small, False, receivers, BUFFERS_K))
    rep.add("(b) large file", headers,
            _lan_throughput(MBPS_100, large, False, receivers, BUFFERS_K))
    rep.notes.append("expect: strong buffer-size dependence (stop-and-wait "
                     "at small buffers) and higher throughput for the "
                     "larger transfer (paper Fig. 12).")
    return rep


def fig13_nak_100mbps(scale: Optional[str] = None) -> Report:
    small, large = file_sizes(scale)
    rep = Report("fig13", "NAK activity of H-RMC on 100 Mbps "
                          "(memory tests)")
    receivers = (1, 2, 3)
    headers = ["buffer"] + [f"{n} rcv" for n in receivers]
    for label, nbytes in (("(a) small file", small), ("(b) large file",
                                                      large)):
        rows = []
        for buf in BUFFERS_BIG_K:
            row = [f"{buf}K"]
            for n in receivers:
                sc = build_lan(n, MBPS_100, seed=3)
                res = run_transfer(sc, nbytes=nbytes, sndbuf=buf * 1024)
                row.append(res.sender_stats.naks_rcvd)
            rows.append(row)
        rep.add(label, headers, rows)
    rep.notes.append("expect: zero NAKs through 1024K and a sharp onset "
                     "beyond, caused by card-level drops during "
                     "window-length line-rate runs (paper Fig. 13).")
    return rep


# ---------------------------------------------------------------------------
# Figures 14-16: the simulation study

def fig14_groups(scale: Optional[str] = None) -> Report:
    rep = Report("fig14", "Simulated characteristic groups and test cases")
    rep.add("(a) characteristic groups",
            ["Group", "Delay", "Loss Rate"],
            [(g.name, f"{g.delay_us // 1000} ms",
              f"{g.loss_rate * 100:g}%")
             for g in (GROUP_A, GROUP_B, GROUP_C)])
    rep.add("(b) test cases", ["Test", "Receivers"],
            [(t, " + ".join(f"{frac:.0%} in {g.name}"
                            for g, frac in mix))
             for t, mix in TEST_CASES.items()])
    return rep


def _sim_study(bw: float, n_receivers: int, nbytes: int, buffers,
               tests=(1, 2, 3, 4, 5), seed: int = 11):
    tput_rows, rr_rows = [], []
    for buf in buffers:
        tr = [f"{buf}K"]
        rr = [f"{buf}K"]
        for t in tests:
            sc = build_wan(expand_test_case(t, n_receivers), bw, seed=seed)
            res = run_transfer(sc, nbytes=nbytes, sndbuf=buf * 1024)
            tr.append(round(res.throughput_mbps, 2))
            rr.append(res.sender_stats.rate_requests_rcvd +
                      res.sender_stats.urgent_requests_rcvd)
        tput_rows.append(tr)
        rr_rows.append(rr)
    return tput_rows, rr_rows


def fig15_sim_10mbps(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    nbytes = small // 2
    buffers = (64, 256, 1024) if _scale(scale) == "quick" else BUFFERS_K
    rep = Report("fig15", "H-RMC performance on a 10 Mbps network "
                          "(simulated)")
    headers = ["buffer"] + [f"Test {t}" for t in (1, 2, 3, 4, 5)]
    tput, rr = _sim_study(MBPS_10, 10, nbytes, buffers)
    rep.add("(a) throughput, 10 receivers (Mbps)", headers, tput)
    rep.add("(b) rate reduce requests, 10 receivers", headers, rr)
    many = _many_receivers(scale)
    tput_many, _ = _sim_study(MBPS_10, many, nbytes, buffers[-2:],
                              tests=(1, 2, 3))
    rep.add(f"(c) throughput, {many} receivers (Mbps, Tests 1-3)",
            ["buffer", "Test 1", "Test 2", "Test 3"], tput_many)
    rep.notes.append("expect: Test 1 > Test 2 > Test 3; Tests 4 and 5 "
                     "close to Test 3 (the protocol adapts to the least "
                     "capable receiver); modest decrease with many "
                     "receivers (paper Fig. 15).")
    return rep


def fig16_sim_100mbps(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    nbytes = small
    buffers = (64, 256, 1024) if _scale(scale) == "quick" else BUFFERS_K
    rep = Report("fig16", "H-RMC performance on a 100 Mbps network "
                          "(simulated, 10 receivers)")
    headers = ["buffer"] + [f"Test {t}" for t in (1, 2, 3)]
    tput, rr = _sim_study(MBPS_100, 10, nbytes, buffers, tests=(1, 2, 3))
    rep.add("(a) throughput (Mbps)", headers, tput)
    rep.add("(b) rate reduce requests", headers, rr)
    rep.notes.append("expect: same ordering as Fig. 15 with more rate "
                     "requests than at 10 Mbps (receive windows fill "
                     "faster while applications read no faster).")
    return rep


def scaling_100rcv(scale: Optional[str] = None) -> Report:
    """Section 5.2 claim: ~66 Mbps with 100 receivers on 100 Mbps."""
    small, _ = file_sizes(scale)
    many = _many_receivers(scale)
    rep = Report("scaling", f"Throughput vs receiver count, 100 Mbps, "
                            f"large buffers")
    rows = []
    for n in (1, 10, many):
        sc = build_wan(expand_test_case(1, n), MBPS_100, seed=11)
        res = run_transfer(sc, nbytes=small, sndbuf=1024 * 1024)
        rows.append([n, round(res.throughput_mbps, 2),
                     res.sender_stats.updates_rcvd])
    rep.add("throughput vs group size",
            ["receivers", "Mbps", "updates at sender"], rows)
    rep.notes.append("expect: only a modest decrease out to ~100 "
                     "receivers (paper reports ~66 Mbps max, 'not a "
                     "significant decrease').")
    return rep


# ---------------------------------------------------------------------------
# Section 6: protocol comparison (TCP / RMC / baselines)

def baselines_compare(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    rep = Report("baselines", "H-RMC vs RMC, ACK-based, polling-based "
                              "and TCP-like unicast (10 Mbps LAN, "
                              "3 receivers, 256K buffers)")
    rows = []
    for proto in ("hrmc", "rmc", "ack", "polling", "tcp"):
        sc = build_lan(3, MBPS_10, seed=5)
        res = run_transfer(sc, nbytes=small, protocol=proto,
                           sndbuf=256 * 1024)
        rows.append([proto, round(res.throughput_mbps, 2),
                     res.feedback_total, res.sender_stats.retrans_pkts,
                     "yes" if res.ok else "NO"])
    rep.add("protocol comparison",
            ["protocol", "Mbps", "feedback pkts", "retrans", "reliable"],
            rows)
    rep.notes.append("expect: H-RMC ~= RMC ~= ACK in throughput with far "
                     "less feedback than ACK; TCP-like unicast pays ~n x "
                     "in service time (paper section 6).")
    return rep


# ---------------------------------------------------------------------------
# Ablations

def ablation_updates(scale: Optional[str] = None) -> Report:
    """Isolates what UPDATEs contribute: RMC-style (ungated) release
    with the member table tracked, with and without periodic updates --
    exactly the Figure 3 construction."""
    small, _ = file_sizes(scale)
    nbytes = small
    rep = Report("ablation-updates", "Periodic updates on/off "
                                     "(release-time information)")
    rows = []
    for env, group in (("LAN", GROUP_A), ("WAN", GROUP_C)):
        for updates in (False, True):
            sc = build_wan([group] * 10, MBPS_10, seed=7)
            # RMC-style ungated release, expressed as config so the
            # updates switch survives (the rmc entry point would force
            # updates off); 1024K buffers so data outlives one fixed
            # update period before release -- the Figure 3 setting
            cfg = replace(HRMCConfig(), reliable_release=False,
                          probes_enabled=False, dynamic_update_timer=False,
                          updates_enabled=updates, track_membership=True,
                          expected_receivers=None)
            res = run_transfer(sc, nbytes=nbytes, protocol="hrmc", cfg=cfg,
                               sndbuf=1024 * 1024)
            rows.append([env, "on" if updates else "off",
                         round(res.release_complete_pct, 1),
                         res.sender_stats.updates_rcvd,
                         round(res.throughput_mbps, 2)])
    rep.add("updates ablation",
            ["env", "updates", "info %", "updates rcvd", "Mbps"], rows)
    rep.notes.append("expect: updates raise release-time completeness, "
                     "most dramatically at low loss where NAK feedback "
                     "is scarce (the Figure 3 mechanism).")
    return rep


def ablation_probes(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    nbytes = small // 2
    rep = Report("ablation-probes", "Probe-before-release on/off "
                                    "(reliability with small buffers)")
    arms = [
        ("H-RMC (probes on)", "hrmc", HRMCConfig()),
        ("RMC, MINBUF=10", "rmc", HRMCConfig().as_rmc()),
        # the hazard case the MINBUF heuristic is protecting against:
        # shrink the hold time and the pure-NAK design drops data
        ("RMC, MINBUF=1", "rmc",
         replace(HRMCConfig().as_rmc(), minbuf_rtts=1)),
        ("H-RMC, MINBUF=1", "hrmc", replace(HRMCConfig(), minbuf_rtts=1)),
    ]
    rows = []
    for label, proto, cfg in arms:
        sc = build_wan([GROUP_C] * 10, MBPS_10, seed=9)
        res = run_transfer(sc, nbytes=nbytes, protocol=proto, cfg=cfg,
                           sndbuf=64 * 1024, max_sim_s=120)
        rows.append([label, res.reliability_violations, res.lost_bytes,
                     "yes" if res.ok else "NO",
                     round(res.throughput_mbps, 2)])
    rep.add("probes ablation (WAN, 64K buffers)",
            ["variant", "NAK_ERRs", "lost bytes", "all bytes delivered",
             "Mbps"], rows)
    rep.notes.append("expect: at MINBUF=10 RMC violations are rare (the "
                     "paper saw none); shrink the hold time and pure-NAK "
                     "RMC drops data while H-RMC still delivers "
                     "everything -- probes, not the hold heuristic, are "
                     "what guarantee reliability.")
    return rep


def ablation_update_timer(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    # the +-1 jiffy/period drift needs ~13 s to reach the floor from the
    # 50-jiffy start, so the low-loss arm gets a long transfer (this is
    # the regime the paper's 10-90 s transfers lived in)
    sizes = {"LAN": 16_000_000, "WAN": small}
    rep = Report("ablation-update-timer", "Dynamic vs fixed update period")
    rows = []
    for env, group in (("LAN", GROUP_A), ("WAN", GROUP_C)):
        for dynamic in (False, True):
            sc = build_wan([group] * 10, MBPS_10, seed=13)
            cfg = replace(HRMCConfig(), dynamic_update_timer=dynamic)
            res = run_transfer(sc, nbytes=sizes[env], cfg=cfg,
                               sndbuf=256 * 1024, max_sim_s=600)
            rows.append([env, "dynamic" if dynamic else "fixed",
                         res.sender_stats.probes_sent,
                         res.sender_stats.updates_rcvd,
                         round(res.throughput_mbps, 2)])
    rep.add("update-timer ablation",
            ["env", "timer", "probes", "updates", "Mbps"], rows)
    rep.notes.append("expect: the dynamic timer trades updates for probes "
                     "per environment -- more updates where probes were "
                     "frequent (low loss), fewer where NAKs suffice.")
    return rep


def ablation_early_probes(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    rep = Report("ablation-early-probes", "Future work (1): early probes "
                                          "vs stop-and-wait at small "
                                          "buffers (100 Mbps)")
    rows = []
    for early in (False, True):
        for buf in (64, 128, 256):
            sc = build_lan(2, MBPS_100, seed=5)
            cfg = replace(HRMCConfig(), early_probes=early)
            res = run_transfer(sc, nbytes=small, cfg=cfg,
                               sndbuf=buf * 1024)
            rows.append(["on" if early else "off", f"{buf}K",
                         round(res.throughput_mbps, 2),
                         res.sender_stats.probes_sent])
    rep.add("early-probe ablation",
            ["early probes", "buffer", "Mbps", "probes"], rows)
    rep.notes.append("expect: probing before release is due overlaps the "
                     "wait with transmission and lifts small-buffer "
                     "throughput at 100 Mbps.")
    return rep


def ablation_mcast_probes(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    nbytes = small // 2
    many = _many_receivers(scale)
    rep = Report("ablation-mcast-probes", "Future work (2): multicast "
                                          "probes above a threshold")
    rows = []
    for threshold in (None, 5):
        sc = build_wan(expand_test_case(1, many), MBPS_10, seed=17)
        cfg = replace(HRMCConfig(), mcast_probe_threshold=threshold)
        res = run_transfer(sc, nbytes=nbytes, cfg=cfg, sndbuf=256 * 1024)
        rows.append(["unicast" if threshold is None else f">= {threshold}",
                     res.sender_stats.probes_sent,
                     round(res.throughput_mbps, 2)])
    rep.add(f"probe fan-out, {many} receivers",
            ["probe mode", "probe packets", "Mbps"], rows)
    rep.notes.append("expect: one multicast probe replaces a unicast "
                     "probe storm when many receivers lack state.")
    return rep


def ablation_minbuf(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    nbytes = small // 2
    rep = Report("ablation-minbuf", "MINBUF sweep (buffer-hold heuristic)")
    rows = []
    for minbuf in (1, 2, 5, 10, 20):
        sc = build_wan([GROUP_B] * 10, MBPS_10, seed=19)
        cfg = replace(HRMCConfig(), minbuf_rtts=minbuf)
        res = run_transfer(sc, nbytes=nbytes, cfg=cfg, sndbuf=256 * 1024)
        rows.append([minbuf, round(res.throughput_mbps, 2),
                     res.sender_stats.probes_sent,
                     res.sender_stats.naks_rcvd])
    rep.add("MINBUF ablation (MAN, 256K buffers)",
            ["MINBUF (RTTs)", "Mbps", "probes", "NAKs"], rows)
    rep.notes.append("expect: MINBUF trades throughput against feedback "
                     "volume -- shrinking the hold releases (and probes) "
                     "for data still in flight, inflating NAK/probe "
                     "traffic, while growing it slows the pipeline. "
                     "Reliability holds at every setting because probes, "
                     "not the hold, provide the guarantee (contrast the "
                     "probes ablation, where RMC at MINBUF=1 loses data).")
    return rep


def ablation_local_recovery(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    nbytes = small // 2
    rep = Report("ablation-local-recovery", "Future work (3): local "
                                            "recovery")
    rows = []
    for local in (False, True):
        sc = build_wan([GROUP_C] * 10, MBPS_10, seed=23)
        cfg = replace(HRMCConfig(), local_recovery=local)
        res = run_transfer(sc, nbytes=nbytes, cfg=cfg, sndbuf=256 * 1024)
        rows.append(["on" if local else "off",
                     res.sender_stats.naks_rcvd,
                     res.sender_stats.retrans_pkts,
                     res.receiver_stats.local_repairs_sent,
                     res.receiver_stats.local_repairs_used,
                     round(res.throughput_mbps, 2)])
    rep.add("local recovery (WAN group, 10 receivers)",
            ["local recovery", "NAKs at sender", "sender retrans",
             "peer repairs sent", "peer repairs used", "Mbps"], rows)
    rep.notes.append("expect: peers repair uncorrelated tail-link losses "
                     "locally, cutting NAKs and retransmissions at the "
                     "sender.")
    return rep


def ablation_fec(scale: Optional[str] = None) -> Report:
    small, _ = file_sizes(scale)
    nbytes = small // 2
    rep = Report("ablation-fec", "Future work (4): forward error "
                                 "correction")
    rows = []
    for fec in (False, True):
        sc = build_wan([GROUP_C] * 10, MBPS_10, seed=29)
        cfg = replace(HRMCConfig(), fec_enabled=fec)
        res = run_transfer(sc, nbytes=nbytes, cfg=cfg, sndbuf=256 * 1024)
        rows.append(["on" if fec else "off",
                     res.sender_stats.naks_rcvd,
                     res.sender_stats.fec_pkts_sent,
                     res.receiver_stats.fec_repairs,
                     round(res.throughput_mbps, 2)])
    rep.add("FEC (WAN group, 2% loss, 10 receivers)",
            ["FEC", "NAKs at sender", "parity sent", "repairs", "Mbps"],
            rows)
    rep.notes.append("expect: one parity per block repairs isolated "
                     "losses without a NAK round trip -- fewer NAKs at "
                     "the sender.")
    return rep


# ---------------------------------------------------------------------------
# Chaos: fault injection + invariant checking (beyond the paper, which
# validated on a clean testbed)

#: chaos runs shorten the sender's member-eviction horizon so a crashed
#: receiver stops blocking window release within ~2 s instead of ~10 s
def chaos_config() -> HRMCConfig:
    return replace(HRMCConfig(), member_timeout_us=2_000_000,
                   member_timeout_probes=4)


def chaos_suite(scale: Optional[str] = None) -> Report:
    """Seeded random fault plans (link flaps/loss, NIC bursts and
    corruption, CPU pauses, clock trouble, receiver crashes with and
    without restart) with the protocol-invariant checker attached.
    The claim under test: every safety property holds through every
    fault, and surviving receivers always get the whole stream."""
    from repro.obs import Observability

    n_seeds = 12 if _scale(scale) == "full" else 6
    nbytes = 250_000
    rep = Report("chaos", "H-RMC under seeded fault injection "
                          "(3 receivers, 10 Mbps LAN)")
    rows = []
    obs_tables = []
    for seed in range(1, n_seeds + 1):
        sc = build_chaos(3, MBPS_10, seed=seed, horizon_us=1_000_000)
        # one observed run per sweep: the first seed doubles as the
        # suite's observability sample (metrics + spans in the report)
        obs = Observability() if seed == 1 else None
        res = run_transfer(sc, nbytes=nbytes, sndbuf=128 * 1024,
                           cfg=chaos_config(), invariants=True,
                           max_sim_s=120, obs=obs)
        if obs is not None:
            obs_tables = obs.summary_tables()
        rows.append([seed, len(sc.fault_plan), res.fault_events,
                     ",".join(map(str, res.crashed_receivers)) or "-",
                     ",".join(map(str, res.restarted_receivers)) or "-",
                     res.invariant_checks,
                     "yes" if res.surviving_ok else "NO"])
    rep.add("chaos sweep",
            ["seed", "plan actions", "fault events", "crashed",
             "restarted", "invariant checks", "survivors ok"], rows)
    for title, headers, obs_rows in obs_tables:
        rep.add(f"seed 1 observability: {title}", headers, obs_rows)
    rep.notes.append("expect: 'survivors ok' on every seed and zero "
                     "invariant violations (a violation aborts the run "
                     "with the offending trace slice).")
    return rep


# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[[Optional[str]], Report]] = {
    "table1": table1_packet_types,
    "fig3": fig3_release_info,
    "fig10": fig10_throughput_10mbps,
    "fig11": fig11_feedback_10mbps,
    "fig12": fig12_throughput_100mbps,
    "fig13": fig13_nak_100mbps,
    "fig14": fig14_groups,
    "fig15": fig15_sim_10mbps,
    "fig16": fig16_sim_100mbps,
    "scaling": scaling_100rcv,
    "baselines": baselines_compare,
    "ablation-updates": ablation_updates,
    "ablation-probes": ablation_probes,
    "ablation-update-timer": ablation_update_timer,
    "ablation-early-probes": ablation_early_probes,
    "ablation-mcast-probes": ablation_mcast_probes,
    "ablation-minbuf": ablation_minbuf,
    "ablation-local-recovery": ablation_local_recovery,
    "ablation-fec": ablation_fec,
    "chaos": chaos_suite,
}


def run_experiment(exp_id: str, scale: Optional[str] = None) -> Report:
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}") from None
    return fn(scale)
