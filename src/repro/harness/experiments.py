"""One function per paper table/figure, plus the ablation studies.

Every experiment returns a :class:`Report` whose tables carry the same
rows/series the paper plots.  Transfers default to a 1:5 scaled file
size (2 MB / 8 MB instead of 10 MB / 40 MB) so the full suite runs in
minutes; set ``REPRO_FULL_SCALE=1`` (or pass ``scale="full"``) for
paper-size runs.  Shape claims -- who wins, trend directions, where the
NAK onset falls -- hold at either scale.

Since PR 4 every experiment expresses its simulations as a
:class:`~repro.fleet.spec.RunSpec` grid executed through the fleet
(:mod:`repro.fleet`): the experiment function is evaluated once to
*plan* the grid, the fleet runs (or cache-serves) the specs -- in
parallel if asked -- and the function is evaluated again to assemble
the report from the summaries.  Serial, parallel and warm-cache
executions produce byte-identical reports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import HRMCConfig
from repro.core.types import PACKET_TYPE_USE, PacketType
from repro.fleet.executor import Fleet
from repro.fleet.grid import Grid
from repro.fleet.spec import RunSpec
from repro.stats.report import format_table
from repro.workloads.groups import GROUP_A, GROUP_B, GROUP_C, TEST_CASES

__all__ = ["Report", "EXPERIMENTS", "INVENTORY", "ExperimentInfo",
           "run_experiment", "run_experiments", "plan_experiment",
           "inventory_rows", "inventory_markdown", "file_sizes",
           "BUFFERS_K", "BUFFERS_BIG_K"]

BUFFERS_K = (64, 128, 256, 512, 1024)
BUFFERS_BIG_K = (64, 128, 256, 512, 1024, 2048, 4096)
MBPS_10 = 10e6
MBPS_100 = 100e6


@dataclass
class Report:
    exp_id: str
    title: str
    tables: list = field(default_factory=list)  # (title, headers, rows)
    notes: list = field(default_factory=list)

    def add(self, title: str, headers, rows) -> None:
        self.tables.append((title, list(headers), [list(r) for r in rows]))

    def render(self) -> str:
        parts = [f"### {self.exp_id}: {self.title}"]
        for title, headers, rows in self.tables:
            parts.append(format_table(title, headers, rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)


def _scale(scale: Optional[str]) -> str:
    if scale is not None:
        return scale
    return "full" if os.environ.get("REPRO_FULL_SCALE") == "1" else "quick"


def file_sizes(scale: Optional[str] = None) -> tuple[int, int]:
    """(small, large) transfer sizes: 10/40 MB at full scale, 2/8 MB
    scaled."""
    if _scale(scale) == "full":
        return 10_000_000, 40_000_000
    return 2_000_000, 8_000_000


def _many_receivers(scale: Optional[str]) -> int:
    return 100 if _scale(scale) == "full" else 40


# ---------------------------------------------------------------------------
# Table 1

def table1_packet_types(scale: Optional[str] = None,
                        grid: Optional[Grid] = None) -> Report:
    rep = Report("table1", "RMC and H-RMC packet types")
    rows = [(t.name, "H-RMC only" if t in (PacketType.UPDATE,
                                           PacketType.PROBE) else "both",
             PACKET_TYPE_USE[t])
            for t in PacketType]
    rep.add("Packet types", ["Type", "Protocols", "Use"], rows)
    return rep


# ---------------------------------------------------------------------------
# Figure 3: release-time information completeness

def fig3_release_info(scale: Optional[str] = None,
                      grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    nbytes = small // 2
    envs = [("LAN", GROUP_A), ("MAN", GROUP_B), ("WAN", GROUP_C)]
    buffers = (64, 256, 1024) if _scale(scale) == "quick" else BUFFERS_K
    rep = Report("fig3", "% of releases with complete receiver info "
                         "(10 receivers)")
    for label, rmc in (("(a) without updates (original RMC)", True),
                       ("(b) with updates (H-RMC)", False)):
        rows = []
        for buf in buffers:
            row = [f"{buf}K"]
            for _, group in envs:
                # RMC keeps the member table for measurement only
                cfg = {"_rmc": True, "track_membership": True} if rmc \
                    else {}
                res = grid.run(RunSpec.wan(
                    groups=[group.name] * 10, bandwidth_bps=MBPS_10,
                    seed=7, nbytes=nbytes,
                    protocol="rmc" if rmc else "hrmc", cfg=cfg,
                    sndbuf=buf * 1024))
                row.append(round(res.release_complete_pct, 1))
            rows.append(row)
        rep.add(label, ["buffer"] + [e[0] for e in envs], rows)
    rep.notes.append("H-RMC updates should lift completeness toward 100% "
                     "in every environment; RMC is low in low-loss "
                     "environments where NAK feedback is scarce.")
    return rep


# ---------------------------------------------------------------------------
# Figures 10-13: the experimental (LAN) study

def _lan_throughput(grid: Grid, bw: float, nbytes: int, mode_disk: bool,
                    receivers, buffers, seed: int = 3):
    rows = []
    for buf in buffers:
        row = [f"{buf}K"]
        for n in receivers:
            res = grid.run(RunSpec.lan(n, bw, seed=seed, nbytes=nbytes,
                                       sndbuf=buf * 1024,
                                       disk=mode_disk))
            row.append(round(res.throughput_mbps, 2))
        rows.append(row)
    return rows


def fig10_throughput_10mbps(scale: Optional[str] = None,
                            grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, large = file_sizes(scale)
    rep = Report("fig10", "Throughput of H-RMC on a 10 Mbps network")
    receivers = (1, 2, 3)
    headers = ["buffer"] + [f"{n} rcv" for n in receivers]
    rep.add("(a) memory to memory, small file",
            headers, _lan_throughput(grid, MBPS_10, small, False,
                                     receivers, BUFFERS_K))
    rep.add("(b) memory to memory, large file",
            headers, _lan_throughput(grid, MBPS_10, large, False,
                                     receivers, BUFFERS_K))
    rep.add("(c) disk to disk, small file",
            headers, _lan_throughput(grid, MBPS_10, small, True,
                                     receivers, BUFFERS_K))
    rep.add("(d) disk to disk, large file",
            headers, _lan_throughput(grid, MBPS_10, large, True,
                                     receivers, BUFFERS_K))
    rep.notes.append("expect: throughput rises with buffer size and "
                     "saturates near 8.5-9 Mbps by 512K (paper Fig. 10).")
    return rep


def _lan_feedback(grid: Grid, bw: float, nbytes: int, mode_disk: bool,
                  receivers, buffers, seed: int = 3):
    rate_rows, nak_rows = [], []
    for buf in buffers:
        rr = [f"{buf}K"]
        nr = [f"{buf}K"]
        for n in receivers:
            res = grid.run(RunSpec.lan(n, bw, seed=seed, nbytes=nbytes,
                                       sndbuf=buf * 1024,
                                       disk=mode_disk))
            rr.append(res.sender_stats.rate_requests_rcvd +
                      res.sender_stats.urgent_requests_rcvd)
            nr.append(res.sender_stats.naks_rcvd)
        rate_rows.append(rr)
        nak_rows.append(nr)
    return rate_rows, nak_rows


def fig11_feedback_10mbps(scale: Optional[str] = None,
                          grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, large = file_sizes(scale)
    rep = Report("fig11", "Feedback activity of H-RMC on 10 Mbps "
                          "(disk tests)")
    receivers = (1, 2, 3)
    headers = ["buffer"] + [f"{n} rcv" for n in receivers]
    rr, nr = _lan_feedback(grid, MBPS_10, small, True, receivers,
                           BUFFERS_K)
    rep.add("(a) rate requests, small file, disk to disk", headers, rr)
    rep.add("(b) NAKs, small file, disk to disk", headers, nr)
    rr, nr = _lan_feedback(grid, MBPS_10, large, True, receivers,
                           BUFFERS_K)
    rep.add("(c) rate requests, large file, disk to disk", headers, rr)
    rep.add("(d) NAKs, large file, disk to disk", headers, nr)
    rep.notes.append("expect: rate requests shrink as buffers grow; NAKs "
                     "stay near zero at 10 Mbps (paper Fig. 11).")
    return rep


def fig12_throughput_100mbps(scale: Optional[str] = None,
                             grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, large = file_sizes(scale)
    rep = Report("fig12", "Throughput of H-RMC on a 100 Mbps network "
                          "(memory to memory)")
    receivers = (1, 2, 3)
    headers = ["buffer"] + [f"{n} rcv" for n in receivers]
    rep.add("(a) small file", headers,
            _lan_throughput(grid, MBPS_100, small, False, receivers,
                            BUFFERS_K))
    rep.add("(b) large file", headers,
            _lan_throughput(grid, MBPS_100, large, False, receivers,
                            BUFFERS_K))
    rep.notes.append("expect: strong buffer-size dependence (stop-and-wait "
                     "at small buffers) and higher throughput for the "
                     "larger transfer (paper Fig. 12).")
    return rep


def fig13_nak_100mbps(scale: Optional[str] = None,
                      grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, large = file_sizes(scale)
    rep = Report("fig13", "NAK activity of H-RMC on 100 Mbps "
                          "(memory tests)")
    receivers = (1, 2, 3)
    headers = ["buffer"] + [f"{n} rcv" for n in receivers]
    for label, nbytes in (("(a) small file", small), ("(b) large file",
                                                      large)):
        rows = []
        for buf in BUFFERS_BIG_K:
            row = [f"{buf}K"]
            for n in receivers:
                res = grid.run(RunSpec.lan(n, MBPS_100, seed=3,
                                           nbytes=nbytes,
                                           sndbuf=buf * 1024))
                row.append(res.sender_stats.naks_rcvd)
            rows.append(row)
        rep.add(label, headers, rows)
    rep.notes.append("expect: zero NAKs through 1024K and a sharp onset "
                     "beyond, caused by card-level drops during "
                     "window-length line-rate runs (paper Fig. 13).")
    return rep


# ---------------------------------------------------------------------------
# Figures 14-16: the simulation study

def fig14_groups(scale: Optional[str] = None,
                 grid: Optional[Grid] = None) -> Report:
    rep = Report("fig14", "Simulated characteristic groups and test cases")
    rep.add("(a) characteristic groups",
            ["Group", "Delay", "Loss Rate"],
            [(g.name, f"{g.delay_us // 1000} ms",
              f"{g.loss_rate * 100:g}%")
             for g in (GROUP_A, GROUP_B, GROUP_C)])
    rep.add("(b) test cases", ["Test", "Receivers"],
            [(t, " + ".join(f"{frac:.0%} in {g.name}"
                            for g, frac in mix))
             for t, mix in TEST_CASES.items()])
    return rep


def _sim_study(grid: Grid, bw: float, n_receivers: int, nbytes: int,
               buffers, tests=(1, 2, 3, 4, 5), seed: int = 11):
    tput_rows, rr_rows = [], []
    for buf in buffers:
        tr = [f"{buf}K"]
        rr = [f"{buf}K"]
        for t in tests:
            res = grid.run(RunSpec.wan(test=t, receivers=n_receivers,
                                       bandwidth_bps=bw, seed=seed,
                                       nbytes=nbytes,
                                       sndbuf=buf * 1024))
            tr.append(round(res.throughput_mbps, 2))
            rr.append(res.sender_stats.rate_requests_rcvd +
                      res.sender_stats.urgent_requests_rcvd)
        tput_rows.append(tr)
        rr_rows.append(rr)
    return tput_rows, rr_rows


def fig15_sim_10mbps(scale: Optional[str] = None,
                     grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    nbytes = small // 2
    buffers = (64, 256, 1024) if _scale(scale) == "quick" else BUFFERS_K
    rep = Report("fig15", "H-RMC performance on a 10 Mbps network "
                          "(simulated)")
    headers = ["buffer"] + [f"Test {t}" for t in (1, 2, 3, 4, 5)]
    tput, rr = _sim_study(grid, MBPS_10, 10, nbytes, buffers)
    rep.add("(a) throughput, 10 receivers (Mbps)", headers, tput)
    rep.add("(b) rate reduce requests, 10 receivers", headers, rr)
    many = _many_receivers(scale)
    tput_many, _ = _sim_study(grid, MBPS_10, many, nbytes, buffers[-2:],
                              tests=(1, 2, 3))
    rep.add(f"(c) throughput, {many} receivers (Mbps, Tests 1-3)",
            ["buffer", "Test 1", "Test 2", "Test 3"], tput_many)
    rep.notes.append("expect: Test 1 > Test 2 > Test 3; Tests 4 and 5 "
                     "close to Test 3 (the protocol adapts to the least "
                     "capable receiver); modest decrease with many "
                     "receivers (paper Fig. 15).")
    return rep


def fig16_sim_100mbps(scale: Optional[str] = None,
                      grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    nbytes = small
    buffers = (64, 256, 1024) if _scale(scale) == "quick" else BUFFERS_K
    rep = Report("fig16", "H-RMC performance on a 100 Mbps network "
                          "(simulated, 10 receivers)")
    headers = ["buffer"] + [f"Test {t}" for t in (1, 2, 3)]
    tput, rr = _sim_study(grid, MBPS_100, 10, nbytes, buffers,
                          tests=(1, 2, 3))
    rep.add("(a) throughput (Mbps)", headers, tput)
    rep.add("(b) rate reduce requests", headers, rr)
    rep.notes.append("expect: same ordering as Fig. 15 with more rate "
                     "requests than at 10 Mbps (receive windows fill "
                     "faster while applications read no faster).")
    return rep


def scaling_100rcv(scale: Optional[str] = None,
                   grid: Optional[Grid] = None) -> Report:
    """Section 5.2 claim: ~66 Mbps with 100 receivers on 100 Mbps."""
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    many = _many_receivers(scale)
    rep = Report("scaling", f"Throughput vs receiver count, 100 Mbps, "
                            f"large buffers")
    rows = []
    for n in (1, 10, many):
        res = grid.run(RunSpec.wan(test=1, receivers=n,
                                   bandwidth_bps=MBPS_100, seed=11,
                                   nbytes=small, sndbuf=1024 * 1024))
        rows.append([n, round(res.throughput_mbps, 2),
                     res.sender_stats.updates_rcvd])
    rep.add("throughput vs group size",
            ["receivers", "Mbps", "updates at sender"], rows)
    rep.notes.append("expect: only a modest decrease out to ~100 "
                     "receivers (paper reports ~66 Mbps max, 'not a "
                     "significant decrease').")
    return rep


# ---------------------------------------------------------------------------
# Section 6: protocol comparison (TCP / RMC / baselines)

def baselines_compare(scale: Optional[str] = None,
                      grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    rep = Report("baselines", "H-RMC vs RMC, ACK-based, polling-based "
                              "and TCP-like unicast (10 Mbps LAN, "
                              "3 receivers, 256K buffers)")
    rows = []
    for proto in ("hrmc", "rmc", "ack", "polling", "tcp"):
        res = grid.run(RunSpec.lan(3, MBPS_10, seed=5, nbytes=small,
                                   protocol=proto, sndbuf=256 * 1024))
        rows.append([proto, round(res.throughput_mbps, 2),
                     res.feedback_total, res.sender_stats.retrans_pkts,
                     "yes" if res.ok else "NO"])
    rep.add("protocol comparison",
            ["protocol", "Mbps", "feedback pkts", "retrans", "reliable"],
            rows)
    rep.notes.append("expect: H-RMC ~= RMC ~= ACK in throughput with far "
                     "less feedback than ACK; TCP-like unicast pays ~n x "
                     "in service time (paper section 6).")
    return rep


# ---------------------------------------------------------------------------
# Ablations

def ablation_updates(scale: Optional[str] = None,
                     grid: Optional[Grid] = None) -> Report:
    """Isolates what UPDATEs contribute: RMC-style (ungated) release
    with the member table tracked, with and without periodic updates --
    exactly the Figure 3 construction."""
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    nbytes = small
    rep = Report("ablation-updates", "Periodic updates on/off "
                                     "(release-time information)")
    rows = []
    for env, group in (("LAN", GROUP_A), ("WAN", GROUP_C)):
        for updates in (False, True):
            # RMC-style ungated release, expressed as config so the
            # updates switch survives (the rmc entry point would force
            # updates off); 1024K buffers so data outlives one fixed
            # update period before release -- the Figure 3 setting
            cfg = {"reliable_release": False, "probes_enabled": False,
                   "dynamic_update_timer": False,
                   "updates_enabled": updates, "track_membership": True,
                   "expected_receivers": None}
            res = grid.run(RunSpec.wan(
                groups=[group.name] * 10, bandwidth_bps=MBPS_10, seed=7,
                nbytes=nbytes, protocol="hrmc", cfg=cfg,
                sndbuf=1024 * 1024))
            rows.append([env, "on" if updates else "off",
                         round(res.release_complete_pct, 1),
                         res.sender_stats.updates_rcvd,
                         round(res.throughput_mbps, 2)])
    rep.add("updates ablation",
            ["env", "updates", "info %", "updates rcvd", "Mbps"], rows)
    rep.notes.append("expect: updates raise release-time completeness, "
                     "most dramatically at low loss where NAK feedback "
                     "is scarce (the Figure 3 mechanism).")
    return rep


def ablation_probes(scale: Optional[str] = None,
                    grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    nbytes = small // 2
    rep = Report("ablation-probes", "Probe-before-release on/off "
                                    "(reliability with small buffers)")
    arms = [
        ("H-RMC (probes on)", "hrmc", {}),
        ("RMC, MINBUF=10", "rmc", {"_rmc": True}),
        # the hazard case the MINBUF heuristic is protecting against:
        # shrink the hold time and the pure-NAK design drops data
        ("RMC, MINBUF=1", "rmc", {"_rmc": True, "minbuf_rtts": 1}),
        ("H-RMC, MINBUF=1", "hrmc", {"minbuf_rtts": 1}),
    ]
    rows = []
    for label, proto, cfg in arms:
        res = grid.run(RunSpec.wan(
            groups=["C"] * 10, bandwidth_bps=MBPS_10, seed=9,
            nbytes=nbytes, protocol=proto, cfg=cfg, sndbuf=64 * 1024,
            max_sim_s=120))
        rows.append([label, res.reliability_violations, res.lost_bytes,
                     "yes" if res.ok else "NO",
                     round(res.throughput_mbps, 2)])
    rep.add("probes ablation (WAN, 64K buffers)",
            ["variant", "NAK_ERRs", "lost bytes", "all bytes delivered",
             "Mbps"], rows)
    rep.notes.append("expect: at MINBUF=10 RMC violations are rare (the "
                     "paper saw none); shrink the hold time and pure-NAK "
                     "RMC drops data while H-RMC still delivers "
                     "everything -- probes, not the hold heuristic, are "
                     "what guarantee reliability.")
    return rep


def ablation_update_timer(scale: Optional[str] = None,
                          grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    # the +-1 jiffy/period drift needs ~13 s to reach the floor from the
    # 50-jiffy start, so the low-loss arm gets a long transfer (this is
    # the regime the paper's 10-90 s transfers lived in)
    sizes = {"LAN": 16_000_000, "WAN": small}
    rep = Report("ablation-update-timer", "Dynamic vs fixed update period")
    rows = []
    for env, group in (("LAN", GROUP_A), ("WAN", GROUP_C)):
        for dynamic in (False, True):
            res = grid.run(RunSpec.wan(
                groups=[group.name] * 10, bandwidth_bps=MBPS_10, seed=13,
                nbytes=sizes[env],
                cfg={"dynamic_update_timer": dynamic},
                sndbuf=256 * 1024, max_sim_s=600))
            rows.append([env, "dynamic" if dynamic else "fixed",
                         res.sender_stats.probes_sent,
                         res.sender_stats.updates_rcvd,
                         round(res.throughput_mbps, 2)])
    rep.add("update-timer ablation",
            ["env", "timer", "probes", "updates", "Mbps"], rows)
    rep.notes.append("expect: the dynamic timer trades updates for probes "
                     "per environment -- more updates where probes were "
                     "frequent (low loss), fewer where NAKs suffice.")
    return rep


def ablation_early_probes(scale: Optional[str] = None,
                          grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    rep = Report("ablation-early-probes", "Future work (1): early probes "
                                          "vs stop-and-wait at small "
                                          "buffers (100 Mbps)")
    rows = []
    for early in (False, True):
        for buf in (64, 128, 256):
            res = grid.run(RunSpec.lan(2, MBPS_100, seed=5, nbytes=small,
                                       cfg={"early_probes": early},
                                       sndbuf=buf * 1024))
            rows.append(["on" if early else "off", f"{buf}K",
                         round(res.throughput_mbps, 2),
                         res.sender_stats.probes_sent])
    rep.add("early-probe ablation",
            ["early probes", "buffer", "Mbps", "probes"], rows)
    rep.notes.append("expect: probing before release is due overlaps the "
                     "wait with transmission and lifts small-buffer "
                     "throughput at 100 Mbps.")
    return rep


def ablation_mcast_probes(scale: Optional[str] = None,
                          grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    nbytes = small // 2
    many = _many_receivers(scale)
    rep = Report("ablation-mcast-probes", "Future work (2): multicast "
                                          "probes above a threshold")
    rows = []
    for threshold in (None, 5):
        res = grid.run(RunSpec.wan(
            test=1, receivers=many, bandwidth_bps=MBPS_10, seed=17,
            nbytes=nbytes, cfg={"mcast_probe_threshold": threshold},
            sndbuf=256 * 1024))
        rows.append(["unicast" if threshold is None else f">= {threshold}",
                     res.sender_stats.probes_sent,
                     round(res.throughput_mbps, 2)])
    rep.add(f"probe fan-out, {many} receivers",
            ["probe mode", "probe packets", "Mbps"], rows)
    rep.notes.append("expect: one multicast probe replaces a unicast "
                     "probe storm when many receivers lack state.")
    return rep


def ablation_minbuf(scale: Optional[str] = None,
                    grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    nbytes = small // 2
    rep = Report("ablation-minbuf", "MINBUF sweep (buffer-hold heuristic)")
    rows = []
    for minbuf in (1, 2, 5, 10, 20):
        res = grid.run(RunSpec.wan(
            groups=["B"] * 10, bandwidth_bps=MBPS_10, seed=19,
            nbytes=nbytes, cfg={"minbuf_rtts": minbuf},
            sndbuf=256 * 1024))
        rows.append([minbuf, round(res.throughput_mbps, 2),
                     res.sender_stats.probes_sent,
                     res.sender_stats.naks_rcvd])
    rep.add("MINBUF ablation (MAN, 256K buffers)",
            ["MINBUF (RTTs)", "Mbps", "probes", "NAKs"], rows)
    rep.notes.append("expect: MINBUF trades throughput against feedback "
                     "volume -- shrinking the hold releases (and probes) "
                     "for data still in flight, inflating NAK/probe "
                     "traffic, while growing it slows the pipeline. "
                     "Reliability holds at every setting because probes, "
                     "not the hold, provide the guarantee (contrast the "
                     "probes ablation, where RMC at MINBUF=1 loses data).")
    return rep


def ablation_local_recovery(scale: Optional[str] = None,
                            grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    nbytes = small // 2
    rep = Report("ablation-local-recovery", "Future work (3): local "
                                            "recovery")
    rows = []
    for local in (False, True):
        res = grid.run(RunSpec.wan(
            groups=["C"] * 10, bandwidth_bps=MBPS_10, seed=23,
            nbytes=nbytes, cfg={"local_recovery": local},
            sndbuf=256 * 1024))
        rows.append(["on" if local else "off",
                     res.sender_stats.naks_rcvd,
                     res.sender_stats.retrans_pkts,
                     res.receiver_stats.local_repairs_sent,
                     res.receiver_stats.local_repairs_used,
                     round(res.throughput_mbps, 2)])
    rep.add("local recovery (WAN group, 10 receivers)",
            ["local recovery", "NAKs at sender", "sender retrans",
             "peer repairs sent", "peer repairs used", "Mbps"], rows)
    rep.notes.append("expect: peers repair uncorrelated tail-link losses "
                     "locally, cutting NAKs and retransmissions at the "
                     "sender.")
    return rep


def ablation_fec(scale: Optional[str] = None,
                 grid: Optional[Grid] = None) -> Report:
    grid = grid if grid is not None else Grid()
    small, _ = file_sizes(scale)
    nbytes = small // 2
    rep = Report("ablation-fec", "Future work (4): forward error "
                                 "correction")
    rows = []
    for fec in (False, True):
        res = grid.run(RunSpec.wan(
            groups=["C"] * 10, bandwidth_bps=MBPS_10, seed=29,
            nbytes=nbytes, cfg={"fec_enabled": fec}, sndbuf=256 * 1024))
        rows.append(["on" if fec else "off",
                     res.sender_stats.naks_rcvd,
                     res.sender_stats.fec_pkts_sent,
                     res.receiver_stats.fec_repairs,
                     round(res.throughput_mbps, 2)])
    rep.add("FEC (WAN group, 2% loss, 10 receivers)",
            ["FEC", "NAKs at sender", "parity sent", "repairs", "Mbps"],
            rows)
    rep.notes.append("expect: one parity per block repairs isolated "
                     "losses without a NAK round trip -- fewer NAKs at "
                     "the sender.")
    return rep


# ---------------------------------------------------------------------------
# Chaos: fault injection + invariant checking (beyond the paper, which
# validated on a clean testbed)

#: chaos runs shorten the sender's member-eviction horizon so a crashed
#: receiver stops blocking window release within ~2 s instead of ~10 s
def chaos_config() -> HRMCConfig:
    from dataclasses import replace
    return replace(HRMCConfig(), **chaos_config_delta())


def chaos_config_delta() -> dict:
    """The chaos tuning as a RunSpec config delta."""
    return {"member_timeout_us": 2_000_000, "member_timeout_probes": 4}


def chaos_suite(scale: Optional[str] = None,
                grid: Optional[Grid] = None) -> Report:
    """Seeded random fault plans (link flaps/loss, NIC bursts and
    corruption, CPU pauses, clock trouble, receiver crashes with and
    without restart) with the protocol-invariant checker attached.
    The claim under test: every safety property holds through every
    fault, and surviving receivers always get the whole stream."""
    grid = grid if grid is not None else Grid()
    n_seeds = 12 if _scale(scale) == "full" else 6
    nbytes = 250_000
    rep = Report("chaos", "H-RMC under seeded fault injection "
                          "(3 receivers, 10 Mbps LAN)")
    rows = []
    obs_tables = []
    for seed in range(1, n_seeds + 1):
        # one observed run per sweep: the first seed doubles as the
        # suite's observability sample (metrics + spans in the report)
        res = grid.run(RunSpec.chaos(
            3, MBPS_10, seed=seed, horizon_us=1_000_000, nbytes=nbytes,
            sndbuf=128 * 1024, cfg=chaos_config_delta(), invariants=True,
            max_sim_s=120, obs=(seed == 1)))
        if res.obs_tables:
            obs_tables = res.obs_tables
        rows.append([seed, res.plan_actions, res.fault_events,
                     ",".join(map(str, res.crashed_receivers)) or "-",
                     ",".join(map(str, res.restarted_receivers)) or "-",
                     res.invariant_checks,
                     "yes" if res.surviving_ok else "NO"])
    rep.add("chaos sweep",
            ["seed", "plan actions", "fault events", "crashed",
             "restarted", "invariant checks", "survivors ok"], rows)
    for title, headers, obs_rows in obs_tables:
        rep.add(f"seed 1 observability: {title}", headers, obs_rows)
    rep.notes.append("expect: 'survivors ok' on every seed and zero "
                     "invariant violations (a violation aborts the run "
                     "with the offending trace slice).")
    return rep


# ---------------------------------------------------------------------------
# Registry + inventory (single source of truth for docs and CLI)

EXPERIMENTS: dict[str, Callable[..., Report]] = {
    "table1": table1_packet_types,
    "fig3": fig3_release_info,
    "fig10": fig10_throughput_10mbps,
    "fig11": fig11_feedback_10mbps,
    "fig12": fig12_throughput_100mbps,
    "fig13": fig13_nak_100mbps,
    "fig14": fig14_groups,
    "fig15": fig15_sim_10mbps,
    "fig16": fig16_sim_100mbps,
    "scaling": scaling_100rcv,
    "baselines": baselines_compare,
    "ablation-updates": ablation_updates,
    "ablation-probes": ablation_probes,
    "ablation-update-timer": ablation_update_timer,
    "ablation-early-probes": ablation_early_probes,
    "ablation-mcast-probes": ablation_mcast_probes,
    "ablation-minbuf": ablation_minbuf,
    "ablation-local-recovery": ablation_local_recovery,
    "ablation-fec": ablation_fec,
    "chaos": chaos_suite,
}


@dataclass(frozen=True)
class ExperimentInfo:
    """Inventory row: what an experiment regenerates, and which bench
    asserts its shape claims.  ``hrmc-experiments --list`` and the
    EXPERIMENTS.md per-experiment table both render from this."""

    exp_id: str
    figure: str
    bench: str


INVENTORY: dict[str, ExperimentInfo] = {info.exp_id: info for info in (
    ExperimentInfo("table1", "Table 1",
                   "benchmarks/test_table1_packet_types.py"),
    ExperimentInfo("fig3", "Figure 3(a,b)",
                   "benchmarks/test_fig03_release_info.py"),
    ExperimentInfo("fig10", "Figure 10(a–d)",
                   "benchmarks/test_fig10_throughput_10mbps.py"),
    ExperimentInfo("fig11", "Figure 11(a–d)",
                   "benchmarks/test_fig11_feedback_10mbps.py"),
    ExperimentInfo("fig12", "Figure 12(a,b)",
                   "benchmarks/test_fig12_throughput_100mbps.py"),
    ExperimentInfo("fig13", "Figure 13(a,b)",
                   "benchmarks/test_fig13_nic_drops.py"),
    ExperimentInfo("fig14", "Figure 14(a,b)",
                   "benchmarks/test_fig14_groups.py"),
    ExperimentInfo("fig15", "Figure 15(a–c)",
                   "benchmarks/test_fig15_sim_10mbps.py"),
    ExperimentInfo("fig16", "Figure 16(a,b)",
                   "benchmarks/test_fig16_sim_100mbps.py"),
    ExperimentInfo("scaling", "§5.2 scaling claim",
                   "benchmarks/test_scaling_100rcv.py"),
    ExperimentInfo("baselines", "§6 comparison",
                   "benchmarks/test_baselines_compare.py"),
    ExperimentInfo("ablation-updates", "§3 mechanism: updates",
                   "benchmarks/test_ablation_updates.py"),
    ExperimentInfo("ablation-probes",
                   "§3 mechanism: probe-before-release",
                   "benchmarks/test_ablation_probes.py"),
    ExperimentInfo("ablation-update-timer",
                   "§3 mechanism: dynamic update timer",
                   "benchmarks/test_ablation_update_timer.py"),
    ExperimentInfo("ablation-early-probes",
                   "§6 future work (1): early probes",
                   "benchmarks/test_ablation_early_probes.py"),
    ExperimentInfo("ablation-mcast-probes",
                   "§6 future work (2): multicast probes",
                   "benchmarks/test_ablation_mcast_probes.py"),
    ExperimentInfo("ablation-minbuf",
                   "§3 MINBUF hold heuristic",
                   "benchmarks/test_ablation_minbuf.py"),
    ExperimentInfo("ablation-local-recovery",
                   "§6 future work (3): local recovery",
                   "benchmarks/test_ablation_local_recovery.py"),
    ExperimentInfo("ablation-fec",
                   "§6 future work (4): FEC",
                   "benchmarks/test_ablation_fec.py"),
    ExperimentInfo("chaos", "beyond the paper: fault injection",
                   "tests/faults/test_chaos_battery.py"),
)}

assert set(INVENTORY) == set(EXPERIMENTS), \
    "experiment registry and inventory diverged"


def inventory_rows() -> list[tuple[str, str, str]]:
    return [(i.exp_id, i.figure, i.bench) for i in INVENTORY.values()]


def inventory_markdown() -> str:
    """The EXPERIMENTS.md per-experiment table (kept drift-free by
    ``tests/harness/test_experiments.py``)."""
    lines = ["| id | regenerates | bench |", "|---|---|---|"]
    for exp_id, figure, bench in inventory_rows():
        lines.append(f"| `{exp_id}` | {figure} | `{bench}` |")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Execution through the fleet

def plan_experiment(exp_id: str,
                    scale: Optional[str] = None) -> list[RunSpec]:
    """The experiment's RunSpec grid, without executing anything."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}") from None
    grid = Grid()
    fn(scale, grid)
    return grid.specs


def run_experiments(exp_ids: list[str], scale: Optional[str] = None,
                    fleet: Optional[Fleet] = None) -> dict[str, Report]:
    """Plan every experiment, execute the union of their grids in one
    fleet sweep (shared cells are simulated once), then assemble each
    report.  Reports are byte-identical regardless of worker count or
    cache temperature."""
    fleet = fleet if fleet is not None else Fleet()
    specs: list[RunSpec] = []
    for exp_id in exp_ids:
        specs.extend(plan_experiment(exp_id, scale))
    results = fleet.run_specs(specs)
    return {exp_id: EXPERIMENTS[exp_id](scale, Grid(results))
            for exp_id in exp_ids}


def run_experiment(exp_id: str, scale: Optional[str] = None,
                   fleet: Optional[Fleet] = None) -> Report:
    return run_experiments([exp_id], scale, fleet)[exp_id]
