"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    hrmc-experiments --list
    hrmc-experiments fig10 fig13
    hrmc-experiments --all --parallel 4
    hrmc-experiments --all --scale full --parallel 8 --cache-stats s.json
    hrmc-experiments fig13 --refresh
    hrmc-experiments fleet status
    hrmc-experiments fleet prune
    hrmc-experiments --chaos-seed 10
    hrmc-experiments --fault-plan plan.json --metrics-out out/
    hrmc-experiments report lan --receivers 5 --metrics-out out/
    hrmc-experiments report wan --html --metrics-out out/
    hrmc-experiments report wan --from out/
    hrmc-experiments why wan --seq 58401 --seed 21
    hrmc-experiments diff out/runA out/runB
    hrmc-experiments perf profile lan --html --alloc
    hrmc-experiments perf compare BENCH_PR2.json perf-artifacts/fresh.json
    hrmc-experiments perf history
    hrmc-experiments health report wan --bounds HEALTH_BOUNDS.json
    hrmc-experiments health sweep --experiment fig14 --html sweep.html

(or ``python -m repro.harness.cli``).  Experiment runs go through the
fleet (:mod:`repro.fleet`): specs are planned, served from the
content-addressed cache under ``--cache-dir`` (default
``.hrmc-cache``), and misses are executed -- across ``--parallel N``
worker processes when asked.  Report bodies go to stdout and are
byte-identical regardless of worker count or cache temperature; timing,
progress and cache accounting go to stderr (``--cache-stats FILE``
saves the accounting as JSON).  ``--no-cache`` runs without touching
the cache; ``--refresh`` re-executes and overwrites cached entries.

``fleet status`` summarizes the cache directory (entries, freshness
against the current code fingerprint, bytes); ``fleet prune`` deletes
entries the current code can no longer use.

``--chaos-seed``/``--fault-plan``
run one fault-injected transfer with the invariant checker attached and
print what happened (see :mod:`repro.faults`).  ``--metrics-out DIR``
additionally attaches the observability layer (:mod:`repro.obs`) and
writes its artifacts -- JSONL/CSV metric series, a text summary, a
Perfetto-loadable trace, and (with lineage) the packet trace + causal
DAG -- into ``DIR``.

Subcommands:

* ``report lan|wan|chaos`` runs one observed transfer of a canned
  scenario and prints the observability summary; ``--html`` also writes
  the self-contained HTML report, ``--from DIR`` re-renders a
  previously written artifact directory without running anything.
* ``why lan|wan|chaos`` runs the scenario with causal lineage enabled
  and answers "why did sequence N need recovery?" (``--seq N``) or
  explains the worst recovery episodes (default).
* ``diff RUN_A RUN_B`` aligns two artifact directories and reports the
  first causally significant divergence.  Exit status: 0 = runs align,
  1 = diverged, 2 = unusable input.
* ``perf profile lan|wan|chaos`` runs one transfer under the hot-path
  performance observatory (:mod:`repro.obs.perf`): event-class tax
  table, collapsed-stack flamegraph, optional allocation tracking.
  ``perf compare OLD NEW`` gates a candidate snapshot against a
  baseline (exit 0 = within thresholds, 1 = regressed, 2 = unusable);
  ``perf history`` renders the longitudinal ``BENCH_HISTORY.jsonl``.
* ``health report lan|wan|chaos`` runs one transfer under the
  protocol-health observatory (:mod:`repro.obs.health`): NAK-
  suppression ledger, feedback-implosion index, repair economics and
  recovery-lag distributions; ``--bounds`` gates effectiveness /
  redundancy against the committed ``HEALTH_BOUNDS.json`` (exit 0 =
  healthy, 1 = violated, 2 = unusable).  ``health sweep`` runs a
  fleet grid over group sizes and fits scaling laws
  (:mod:`repro.stats.scaling`) -- the paper's §5.2 flat-feedback
  claim as a fitted exponent -- with per-cell anomaly flags.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.harness.experiments import (EXPERIMENTS, inventory_rows,
                                       run_experiments)

__all__ = ["main"]


# -- fleet subcommand ---------------------------------------------------

def _run_fleet(argv) -> int:
    """``fleet status`` / ``fleet prune``: cache administration."""
    from repro.fleet import DEFAULT_CACHE_DIR, ResultStore, code_fingerprint

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments fleet",
        description="Inspect or prune the content-addressed run cache.")
    parser.add_argument("action", choices=("status", "prune"))
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=DEFAULT_CACHE_DIR)
    args = parser.parse_args(argv)

    store = ResultStore(args.cache_dir, code_fingerprint())
    if args.action == "prune":
        removed = store.prune()
        print(f"pruned {removed} stale/corrupt entries "
              f"from {args.cache_dir}")
        return 0
    st = store.status()
    print(f"cache dir: {args.cache_dir}")
    print(f"entries:   {st.entries} ({st.total_bytes} bytes)")
    print(f"fresh:     {st.fresh} (usable with the current code)")
    print(f"stale:     {st.stale} (code fingerprint changed)")
    print(f"corrupt:   {st.corrupt}")
    for scenario, count in sorted(st.by_scenario.items()):
        print(f"  {scenario}: {count}")
    return 0


def _run_chaos(args) -> int:
    """Run one fault-injected transfer and report what happened."""
    from repro.faults.plan import FaultPlan
    from repro.harness.experiments import chaos_config
    from repro.harness.runner import run_transfer
    from repro.workloads.scenarios import build_chaos, build_lan

    if args.fault_plan:
        try:
            plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load fault plan {args.fault_plan!r}: {exc}",
                  file=sys.stderr)
            return 2
        scenario = build_lan(args.receivers, 10e6, seed=plan.seed)
        scenario.fault_plan = plan
    else:
        scenario = build_chaos(args.receivers, 10e6, seed=args.chaos_seed,
                               horizon_us=1_000_000)
        plan = scenario.fault_plan
    print(plan.describe())
    obs = tracer = None
    if args.metrics_out:
        from repro.obs import Observability
        from repro.trace.tracer import PacketTracer
        obs = Observability(profile=True, lineage=True)
        tracer = PacketTracer()
    try:
        result = run_transfer(scenario, protocol="hrmc", nbytes=args.nbytes,
                              sndbuf=128 * 1024, cfg=chaos_config(),
                              invariants=True, max_sim_s=120, obs=obs,
                              tracer=tracer)
    except ValueError as exc:  # e.g. plan targets a missing receiver
        print(f"cannot run fault plan: {exc}", file=sys.stderr)
        return 2
    if obs is not None:
        try:
            paths = obs.write_artifacts(args.metrics_out, prefix="chaos")
        except OSError as exc:
            print(f"cannot write artifacts to {args.metrics_out!r}: {exc}",
                  file=sys.stderr)
            return 2
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    print(f"fault events: {result.fault_events}  "
          f"crashed: {result.crashed_receivers}  "
          f"restarted: {result.restarted_receivers}  "
          f"invariant checks: {result.invariant_checks}")
    for r in result.per_receiver:
        print(f"  {r.name}: bytes={r.bytes_done} verified={r.verified} "
              f"done={r.done}")
    for r in result.rejoin_results:
        print(f"  {r.name}: bytes={r.bytes_done} "
              f"resumed_at={r.resumed_at_offset} verified={r.verified}")
    ok = result.surviving_ok
    print("survivors ok" if ok else "FAILED: survivor did not complete")
    return 0 if ok else 1


# -- shared scenario construction ---------------------------------------

def _scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("scenario", choices=("lan", "wan", "chaos"),
                        help="canned scenario to observe")
    parser.add_argument("--receivers", type=int, default=5)
    parser.add_argument("--nbytes", type=int, default=500_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--bandwidth", type=float, default=10.0,
                        metavar="MBPS", help="link bandwidth in Mbit/s")
    parser.add_argument("--protocol", default="hrmc",
                        help="protocol to run (default hrmc)")
    parser.add_argument("--sndbuf", type=int, default=None, metavar="BYTES",
                        help="socket send-buffer size (default: the "
                             "runner's; chaos pins 128K)")
    parser.add_argument("--wan-test", type=int, default=2, metavar="N",
                        help="characteristic-group test case for wan")


def _build_scenario(args):
    from repro.workloads.groups import expand_test_case
    from repro.workloads.scenarios import build_chaos, build_lan, build_wan

    bw = args.bandwidth * 1e6
    if args.scenario == "lan":
        scenario = build_lan(args.receivers, bw, seed=args.seed)
    elif args.scenario == "wan":
        specs = expand_test_case(args.wan_test, args.receivers)
        scenario = build_wan(specs, bw, seed=args.seed)
    else:
        scenario = build_chaos(args.receivers, bw, seed=args.seed,
                               horizon_us=1_000_000, allow_crash=False)
    kwargs = {}
    if args.scenario == "chaos":
        from repro.harness.experiments import chaos_config
        kwargs = {"cfg": chaos_config(), "invariants": True,
                  "sndbuf": 128 * 1024}
    if getattr(args, "sndbuf", None):
        kwargs["sndbuf"] = args.sndbuf
    return scenario, kwargs


# -- report subcommand --------------------------------------------------

class _OfflineObs:
    """Enough of the :class:`Observability` surface to re-render a
    report from a previously written ``*.series.jsonl`` (used by
    ``report --from DIR``)."""

    def __init__(self, registry, finalized_at_us):
        self.registry = registry
        self.finalized_at_us = finalized_at_us
        self.spans = None
        self.profiler = None

    def summary_tables(self):
        rows = self.registry.summary_rows()
        return [("observed metric series",
                 ["series", "samples", "min", "mean", "max", "last"],
                 rows)] if rows else []


def _load_series(path: str):
    """Rebuild a :class:`MetricsRegistry` from a series JSONL dump.

    Raises ``ValueError`` with a one-line reason on corrupt input.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    last_t = None
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                kind = rec.get("kind")
                if kind == "sample":
                    name = rec["series"]
                    if name not in registry.series:
                        from repro.obs.metrics import TimeSeries
                        registry.series[name] = TimeSeries(
                            name, rec.get("unit", ""))
                    registry.series[name].append(rec["t_us"], rec["value"])
                    last_t = rec["t_us"] if last_t is None \
                        else max(last_t, rec["t_us"])
                elif kind == "counter":
                    registry.counter(rec["name"]).inc(int(rec["value"]))
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"corrupt series file {path!r}: {exc}") from None
    registry.scrapes = max((len(s) for s in registry.series.values()),
                           default=0)
    return registry, last_t


def _report_offline(args) -> int:
    """``report --from DIR``: re-render the observability report from a
    previously written artifact directory; never runs a transfer."""
    outdir = getattr(args, "from")
    prefix = args.scenario
    summary_path = os.path.join(outdir, f"{prefix}.summary.txt")
    series_path = os.path.join(outdir, f"{prefix}.series.jsonl")
    trace_path = os.path.join(outdir, f"{prefix}.trace.jsonl")

    try:
        with open(summary_path) as fh:
            summary = fh.read()
    except OSError as exc:
        print(f"cannot read metrics summary {summary_path!r}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    print(summary.rstrip("\n"))

    if os.path.exists(trace_path):
        from repro.trace.tracer import trace_meta
        try:
            meta = trace_meta(trace_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot read trace {trace_path!r}: {exc}",
                  file=sys.stderr)
            return 2
        if meta and meta.get("truncated"):
            print(f"\nnote: packet trace is truncated "
                  f"({meta.get('dropped', '?')} events lost"
                  f"{' off the ring' if meta.get('ring') else ''})")

    if args.html:
        from repro.obs.html import write_report
        try:
            registry, last_t = _load_series(series_path)
        except OSError as exc:
            print(f"cannot read metrics series {series_path!r}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        html_path = os.path.join(outdir, f"{prefix}.report.html")
        try:
            write_report(html_path, _OfflineObs(registry, last_t),
                         title=f"H-RMC run report: {prefix} (offline)")
        except OSError as exc:
            print(f"cannot write {html_path!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"\nwrote html: {html_path}")
    return 0


def _run_report(argv) -> int:
    """``report`` subcommand: one observed transfer + obs summary."""
    from repro.harness.runner import run_transfer
    from repro.obs import Observability

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments report",
        description="Run one observed transfer and print the "
                    "observability report (metric series, packet "
                    "lifecycle latency, protocol phases, profile).")
    _scenario_args(parser)
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="also write JSONL/CSV series, summary, "
                             "Perfetto trace, packet trace and causal "
                             "lineage into DIR")
    parser.add_argument("--html", action="store_true",
                        help="also write the self-contained HTML report "
                             "(implies causal lineage; needs "
                             "--metrics-out or --from)")
    parser.add_argument("--lineage", action="store_true",
                        help="enable causal lineage tracing for the run")
    parser.add_argument("--from", metavar="DIR", default=None,
                        help="re-render a previously written artifact "
                             "directory instead of running a transfer")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the engine profiler")
    args = parser.parse_args(argv)

    if getattr(args, "from"):
        return _report_offline(args)
    if args.html and not args.metrics_out:
        print("--html needs --metrics-out DIR (or --from DIR)",
              file=sys.stderr)
        return 2

    lineage = args.lineage or args.html
    obs = Observability(profile=not args.no_profile, lineage=lineage)
    tracer = None
    if lineage and args.metrics_out:
        from repro.trace.tracer import PacketTracer
        tracer = PacketTracer()
    scenario, kwargs = _build_scenario(args)
    result = run_transfer(scenario, nbytes=args.nbytes,
                          protocol=args.protocol, obs=obs,
                          max_sim_s=300, tracer=tracer, **kwargs)
    print(f"{args.scenario} x{args.receivers} {args.protocol} "
          f"{args.nbytes} bytes: ok={result.ok} "
          f"throughput={result.throughput_mbps:.2f} Mbit/s "
          f"duration={result.duration_us / 1e6:.3f} s\n")
    print(obs.summary())
    if args.metrics_out:
        try:
            paths = obs.write_artifacts(args.metrics_out,
                                        prefix=args.scenario,
                                        html=args.html)
        except OSError as exc:
            print(f"cannot write artifacts to {args.metrics_out!r}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        print()
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    return 0 if result.ok else 1


# -- why subcommand -----------------------------------------------------

def _run_why(argv) -> int:
    """``why`` subcommand: run with lineage on, answer why(seq)."""
    from repro.harness.runner import run_transfer
    from repro.obs import Observability

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments why",
        description="Run a lineage-traced transfer and explain why a "
                    "sequence range needed recovery (--seq), or walk "
                    "the worst recovery episodes (default).")
    _scenario_args(parser)
    parser.add_argument("--seq", type=int, default=None, metavar="N",
                        help="explain this byte sequence number; "
                             "default: the worst recovery episodes")
    parser.add_argument("--worst", type=int, default=3, metavar="K",
                        help="how many worst episodes to explain "
                             "when --seq is not given (default 3)")
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="also write the run's artifacts into DIR")
    args = parser.parse_args(argv)

    obs = Observability(profile=False, lineage=True)
    tracer = None
    if args.metrics_out:
        from repro.trace.tracer import PacketTracer
        tracer = PacketTracer()
    scenario, kwargs = _build_scenario(args)
    result = run_transfer(scenario, nbytes=args.nbytes,
                          protocol=args.protocol, obs=obs,
                          max_sim_s=300, tracer=tracer, **kwargs)
    print(f"{args.scenario} x{args.receivers} {args.protocol} "
          f"{args.nbytes} bytes: ok={result.ok} "
          f"duration={result.duration_us / 1e6:.3f} s\n")
    diag = obs.diag()
    if args.seq is not None:
        print(diag.why(args.seq).render())
    else:
        worst = diag.explain_worst(args.worst)
        if not worst:
            print("no recovery episodes: every packet arrived first try")
        for i, (span, why) in enumerate(worst):
            if i:
                print()
            print(f"-- recovery {span.name} @ {span.host}: "
                  f"{span.dur_us} us --")
            print(why.render())
    stall = diag.why_stalled()
    if stall is not None:
        print()
        print(stall.render())
    if args.metrics_out:
        try:
            paths = obs.write_artifacts(args.metrics_out,
                                        prefix=args.scenario)
        except OSError as exc:
            print(f"cannot write artifacts to {args.metrics_out!r}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        print()
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    return 0 if result.ok else 1


# -- perf subcommand family ---------------------------------------------

def _run_perf_profile(argv) -> int:
    """``perf profile lan|wan|chaos``: one transfer under the hot-path
    performance observatory (repro.obs.perf)."""
    from repro.harness.runner import run_transfer
    from repro.obs import Observability
    from repro.obs.perf import PerfObservatory
    from repro.stats.report import format_table

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments perf profile",
        description="Run one transfer under the performance "
                    "observatory: event-class tax table, collapsed-"
                    "stack flamegraph, optional allocation/GC "
                    "tracking.")
    _scenario_args(parser)
    parser.add_argument("--out", metavar="DIR", default="perf-artifacts",
                        help="artifact directory (default perf-artifacts)")
    parser.add_argument("--sample-every", type=int, default=16, metavar="N",
                        help="flamegraph-sample every Nth engine event "
                             "(0 disables stack sampling; default 16)")
    parser.add_argument("--alloc", action="store_true",
                        help="also track allocations and GC pauses "
                             "(tracemalloc; slows the run)")
    parser.add_argument("--html", action="store_true",
                        help="also write the self-contained HTML report "
                             "with the flamegraph inline")
    parser.add_argument("--bench-out", metavar="FILE", default=None,
                        help="also write a schema-v2 bench snapshot "
                             "(appends to BENCH_HISTORY.jsonl beside it)")
    args = parser.parse_args(argv)
    if args.sample_every < 0:
        print("--sample-every must be >= 0", file=sys.stderr)
        return 2

    perf = PerfObservatory(sample_every=args.sample_every,
                           alloc=args.alloc)
    obs = Observability(perf=perf, lineage=args.html)
    tracer = None
    if args.html:
        from repro.trace.tracer import PacketTracer
        tracer = PacketTracer()
    scenario, kwargs = _build_scenario(args)
    wall_t0 = time.perf_counter()
    result = run_transfer(scenario, nbytes=args.nbytes,
                          protocol=args.protocol, obs=obs,
                          max_sim_s=300, tracer=tracer, **kwargs)
    wall_s = time.perf_counter() - wall_t0

    events_per_s = result.sim_events / wall_s if wall_s > 0 else 0.0
    print(f"{args.scenario} x{args.receivers} {args.protocol} "
          f"{args.nbytes} bytes: ok={result.ok} "
          f"sim_events={result.sim_events} wall={wall_s:.3f}s "
          f"events/s={events_per_s:.0f}\n")
    for title, headers, rows in perf.summary_tables():
        print(format_table(title, headers, rows))
        print()

    try:
        paths = obs.write_artifacts(args.out, prefix=args.scenario,
                                    html=args.html)
    except OSError as exc:
        print(f"cannot write artifacts to {args.out!r}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    if args.bench_out:
        from repro.stats.bench import write_bench_snapshot
        payload = {
            "scenario": {"kind": args.scenario,
                         "receivers": args.receivers,
                         "seed": args.seed, "nbytes": args.nbytes,
                         "bandwidth_bps": args.bandwidth * 1e6},
            "sim_events": result.sim_events,
            "wall_s": round(wall_s, 3),
            "perf": perf.bench_payload(),
        }
        try:
            write_bench_snapshot(args.bench_out, "perf-profile", payload,
                                 events_per_s=events_per_s)
        except OSError as exc:
            print(f"cannot write {args.bench_out!r}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        paths["bench"] = args.bench_out
    for name, path in paths.items():
        print(f"wrote {name}: {path}")
    return 0 if result.ok else 1


def _run_perf_compare(argv) -> int:
    """``perf compare OLD NEW``: trajectory regression gate.

    Exit status: 0 = within thresholds, 1 = regressed, 2 = unusable.
    """
    from repro.stats.report import format_table
    from repro.stats.trajectory import compare

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments perf compare",
        description="Compare two BENCH_*.json snapshots against the "
                    "events/s regression threshold.")
    parser.add_argument("old", help="baseline bench snapshot")
    parser.add_argument("new", help="candidate bench snapshot")
    parser.add_argument("--threshold", type=float, default=0.15,
                        metavar="FRAC",
                        help="tolerated fractional events/s drop "
                             "(default 0.15)")
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        print("--threshold must be in [0, 1)", file=sys.stderr)
        return 2

    try:
        verdict = compare(args.old, args.new,
                          {"events_per_s": args.threshold})
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_table(f"{args.old} -> {args.new}",
                       ["metric", "old", "new", "ratio", "gate",
                        "verdict"], verdict.rows()))
    if not verdict.usable:
        print("no comparable metric present in both snapshots",
              file=sys.stderr)
        return 2
    return 1 if verdict.regressed else 0


def _run_perf_history(argv) -> int:
    """``perf history``: render the longitudinal BENCH_HISTORY.jsonl."""
    from repro.stats.report import format_table
    from repro.stats.trajectory import collapse_history, history_rows

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments perf history",
        description="Show the bench trajectory appended by every "
                    "snapshot regeneration.")
    parser.add_argument("--file", metavar="PATH",
                        default="BENCH_HISTORY.jsonl",
                        help="history log (default BENCH_HISTORY.jsonl)")
    parser.add_argument("--bench", metavar="NAME", default=None,
                        help="only rows of this bench name")
    args = parser.parse_args(argv)

    try:
        rows = history_rows(args.file)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    # histories written before the replace-on-match fix can carry
    # duplicate (bench, rev) rows; show one point per revision
    rows = collapse_history(rows)
    if args.bench:
        rows = [r for r in rows if r.get("bench") == args.bench]
    table = [[r.get("date", "?"), r.get("bench", "?"),
              r.get("git_rev", "?"), r.get("events_per_s", "?"),
              r.get("python", "?"), r.get("host", "?")]
             for r in rows]
    print(format_table(f"bench trajectory ({args.file})",
                       ["date", "bench", "rev", "events/s", "python",
                        "host"], table))
    return 0


def _run_perf(argv) -> int:
    """Dispatch the ``perf`` subcommand family."""
    if argv and argv[0] == "profile":
        return _run_perf_profile(argv[1:])
    if argv and argv[0] == "compare":
        return _run_perf_compare(argv[1:])
    if argv and argv[0] == "history":
        return _run_perf_history(argv[1:])
    print("usage: hrmc-experiments perf {profile,compare,history} ...",
          file=sys.stderr)
    return 2


# -- health subcommand family -------------------------------------------

def _load_health_bounds(path: str, scenario: str):
    """Load the committed gate file; ``None`` means unusable input.

    The file maps scenario name (or ``"*"``) to ``metric_min`` /
    ``metric_max`` entries over the flat cell metrics of
    :func:`repro.stats.scaling.health_cell`.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read health bounds {path!r}: {exc}",
              file=sys.stderr)
        return None
    if not isinstance(doc, dict):
        print(f"health bounds {path!r}: expected a JSON object",
              file=sys.stderr)
        return None
    bounds = doc.get(scenario, doc.get("*"))
    if bounds is None:
        print(f"health bounds {path!r}: no entry for {scenario!r}",
              file=sys.stderr)
        return None
    return bounds


def _check_health_bounds(bounds: dict, cell: dict) -> list[str]:
    """Gate a flat health cell; returns violation messages."""
    violations = []
    for key, limit in sorted(bounds.items()):
        if key.endswith("_min"):
            metric, low = key[:-4], True
        elif key.endswith("_max"):
            metric, low = key[:-4], False
        else:
            violations.append(f"bad bound key {key!r} "
                              f"(want metric_min / metric_max)")
            continue
        value = cell.get(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            violations.append(f"{metric}: absent from the health payload")
            continue
        if low and value < limit:
            violations.append(f"{metric}={value:g} below bound {limit:g}")
        elif not low and value > limit:
            violations.append(f"{metric}={value:g} above bound {limit:g}")
    return violations


def _run_health_report(argv) -> int:
    """``health report lan|wan|chaos``: one transfer under the
    protocol-health observatory, optionally gated against committed
    bounds.  Exit 0 = healthy, 1 = run failed or bound violated,
    2 = unusable input.
    """
    from repro.harness.runner import run_transfer
    from repro.obs import Observability
    from repro.stats.report import format_table
    from repro.stats.scaling import health_cell

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments health report",
        description="Run one transfer with the protocol-health "
                    "observatory attached and print the NAK-"
                    "suppression ledger, implosion/repair economics "
                    "and recovery-lag tables.")
    _scenario_args(parser)
    parser.add_argument("--json", action="store_true",
                        help="emit the health payload as JSON instead "
                             "of tables")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="also write the health payload as JSON")
    parser.add_argument("--html", metavar="FILE", default=None,
                        help="also write the self-contained HTML "
                             "report (health tables included)")
    parser.add_argument("--bounds", metavar="FILE", default=None,
                        help="gate against committed bounds "
                             "(HEALTH_BOUNDS.json)")
    args = parser.parse_args(argv)

    bounds = None
    if args.bounds:
        bounds = _load_health_bounds(args.bounds, args.scenario)
        if bounds is None:
            return 2

    obs = Observability(profile=False, health=True)
    scenario, kwargs = _build_scenario(args)
    result = run_transfer(scenario, nbytes=args.nbytes,
                          protocol=args.protocol, obs=obs,
                          max_sim_s=300, **kwargs)
    payload = obs.health.payload()

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"{args.scenario} x{args.receivers} {args.protocol} "
              f"{args.nbytes} bytes: ok={result.ok} "
              f"throughput={result.throughput_mbps:.2f} Mbit/s\n")
        for title, headers, rows in obs.health.summary_tables():
            print(format_table(title, headers, rows))
            print()
    if args.out:
        try:
            with open(args.out, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write {args.out!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote health payload: {args.out}")
    if args.html:
        from repro.obs.html import write_report
        try:
            write_report(args.html, obs,
                         title=f"H-RMC protocol health: {args.scenario}")
        except OSError as exc:
            print(f"cannot write {args.html!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote html: {args.html}")

    rc = 0 if result.ok else 1
    if bounds is not None:
        cell = health_cell(payload, label=args.scenario,
                           throughput_bps=result.throughput_bps)
        violations = _check_health_bounds(bounds, cell)
        for msg in violations:
            print(f"HEALTH BOUND VIOLATED: {msg}", file=sys.stderr)
        if violations:
            rc = 1
        else:
            print(f"health bounds ok ({len(bounds)} gates)")
    return rc


def _run_health_sweep(argv) -> int:
    """``health sweep``: a fleet grid over group sizes with health
    payloads on, reduced to scaling-law fits and per-cell anomaly
    flags.  Exit 0 = clean, 1 = anomalies flagged or a cell failed,
    2 = unusable input.
    """
    from repro.fleet import DEFAULT_CACHE_DIR, Fleet, FleetError, RunSpec
    from repro.stats.report import format_table
    from repro.stats.scaling import health_cell, sweep_report

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments health sweep",
        description="Sweep the protocol-health observatory over a "
                    "group-size grid (Figure-14 axis) and report "
                    "scaling-law fits -- does sender-visible feedback "
                    "stay flat as the group grows? -- plus per-cell "
                    "anomaly flags against the sweep median.")
    parser.add_argument("--experiment", default="fig14",
                        choices=("fig14",),
                        help="sweep family (fig14: feedback vs group "
                             "size on the WAN test cases)")
    parser.add_argument("--grid", metavar="N,N,...", default="2,3,5,8",
                        help="group sizes to sweep (default 2,3,5,8)")
    parser.add_argument("--wan-test", type=int, default=2, metavar="N",
                        help="characteristic-group test case "
                             "(default 2)")
    parser.add_argument("--nbytes", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--bandwidth", type=float, default=10.0,
                        metavar="MBPS")
    parser.add_argument("--parallel", type=int, default=1, metavar="N")
    parser.add_argument("--cache-dir", metavar="DIR", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--json", action="store_true",
                        help="emit the sweep report as JSON")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="also write the sweep report as JSON")
    parser.add_argument("--html", metavar="FILE", default=None,
                        help="also write the HTML sweep dashboard")
    args = parser.parse_args(argv)

    try:
        sizes = [int(tok) for tok in args.grid.split(",") if tok.strip()]
    except ValueError:
        print(f"bad --grid {args.grid!r}: want comma-separated ints",
              file=sys.stderr)
        return 2
    if not sizes or any(n < 1 for n in sizes):
        print(f"bad --grid {args.grid!r}: need positive group sizes",
              file=sys.stderr)
        return 2

    specs = [RunSpec.wan(test=args.wan_test, receivers=n,
                         bandwidth_bps=args.bandwidth * 1e6,
                         seed=args.seed, nbytes=args.nbytes,
                         sndbuf=128 * 1024, max_sim_s=300.0,
                         health=True, tag=f"health-n{n}")
             for n in sizes]
    fleet = Fleet(workers=args.parallel,
                  cache_dir=None if args.no_cache
                  else (args.cache_dir or DEFAULT_CACHE_DIR))
    try:
        results = fleet.run_specs(specs)
    except FleetError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    cells, failed = [], 0
    for n, spec in zip(sizes, specs):
        summary = results[spec.content_hash()]
        if not summary.ok:
            failed += 1
        cells.append(health_cell(
            summary.health, label=f"n={n}", group_size=n,
            throughput_bps=summary.throughput_bps))
    report = sweep_report(cells)

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        from repro.obs.html import _SWEEP_COLUMNS
        columns = [c for c in _SWEEP_COLUMNS
                   if any(c in cell for cell in cells)]
        print(format_table(
            f"health sweep ({args.experiment}, test {args.wan_test}, "
            f"seed {args.seed})", columns,
            [[cell.get(c, "-") for c in columns] for cell in cells]))
        print()
        if report["fits"]:
            print(format_table(
                "scaling-law fits (log-log least squares)",
                ["fit", "exponent", "coefficient", "r2", "n"],
                [[name, f["exponent"], f["coefficient"], f["r2"],
                  f["n"]]
                 for name, f in sorted(report["fits"].items())]))
        else:
            print("no scaling fits (grid too small or zero metrics)")
        print()
        if report["anomalies"]:
            for a in report["anomalies"]:
                print(f"ANOMALY {a['cell']}: {a['metric']}="
                      f"{a['value']:g} {a['direction']} vs sweep "
                      f"median {a['median']:g}")
        else:
            print("no per-cell anomalies")
    if args.out:
        try:
            with open(args.out, "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write {args.out!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote sweep report: {args.out}")
    if args.html:
        from repro.obs.html import write_sweep_report
        try:
            write_sweep_report(
                args.html, report,
                title=f"H-RMC health sweep: {args.experiment} "
                      f"(test {args.wan_test}, seed {args.seed})")
        except OSError as exc:
            print(f"cannot write {args.html!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote html: {args.html}")
    return 1 if (failed or report["anomalies"]) else 0


def _run_health(argv) -> int:
    """Dispatch the ``health`` subcommand family."""
    if argv and argv[0] == "report":
        return _run_health_report(argv[1:])
    if argv and argv[0] == "sweep":
        return _run_health_sweep(argv[1:])
    print("usage: hrmc-experiments health {report,sweep} ...",
          file=sys.stderr)
    return 2


# -- diff subcommand ----------------------------------------------------

def _run_diff(argv) -> int:
    """``diff`` subcommand: first causal divergence between two runs.

    Exit status: 0 = aligned, 1 = diverged, 2 = unusable input.
    """
    from repro.obs.diffing import diff_runs

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments diff",
        description="Align two run artifact directories (or bare "
                    "*.trace.jsonl files) and report the first causally "
                    "significant divergence, with each side's lineage.")
    parser.add_argument("run_a", help="first run directory / trace file")
    parser.add_argument("run_b", help="second run directory / trace file")
    args = parser.parse_args(argv)

    try:
        result = diff_runs(args.run_a, args.run_b)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(result.render())
    return 1 if result.diverged else 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "report":
        return _run_report(argv[1:])
    if argv and argv[0] == "why":
        return _run_why(argv[1:])
    if argv and argv[0] == "diff":
        return _run_diff(argv[1:])
    if argv and argv[0] == "fleet":
        return _run_fleet(argv[1:])
    if argv and argv[0] == "perf":
        return _run_perf(argv[1:])
    if argv and argv[0] == "health":
        return _run_health(argv[1:])
    parser = argparse.ArgumentParser(
        prog="hrmc-experiments",
        description="Regenerate the tables and figures of the H-RMC "
                    "paper (SC '99) from the simulation.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--scale", choices=("quick", "full"), default=None,
                        help="quick = 1:5 scaled transfers (default); "
                             "full = paper-size 10/40 MB transfers")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes for the run fleet "
                             "(default 1 = serial in-process)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed run cache location "
                             "(default .hrmc-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the run cache")
    parser.add_argument("--refresh", action="store_true",
                        help="re-execute every run, overwriting cached "
                             "entries")
    parser.add_argument("--cache-stats", metavar="FILE", default=None,
                        help="write fleet/cache accounting as JSON")
    parser.add_argument("--job-timeout", type=float, default=900.0,
                        metavar="S", help="per-run wall-clock budget in "
                                          "seconds (default 900)")
    parser.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                        help="run one chaos transfer with a seed-random "
                             "fault plan and the invariant checker on")
    parser.add_argument("--fault-plan", metavar="FILE", default=None,
                        help="run one chaos transfer driven by a saved "
                             "FaultPlan JSON file")
    parser.add_argument("--receivers", type=int, default=3,
                        help="receiver count for --chaos-seed/--fault-plan")
    parser.add_argument("--nbytes", type=int, default=250_000,
                        help="transfer size for --chaos-seed/--fault-plan")
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="attach the observability layer to the "
                             "chaos run and write metric series, summary, "
                             "Perfetto trace, packet trace and causal "
                             "lineage into DIR")
    args = parser.parse_args(argv)

    if args.chaos_seed is not None or args.fault_plan:
        return _run_chaos(args)

    if args.list:
        rows = inventory_rows()
        wid = max(len(r[0]) for r in rows)
        wfig = max(len(r[1]) for r in rows)
        for exp_id, figure, bench in rows:
            print(f"{exp_id:<{wid}}  {figure:<{wfig}}  {bench}")
        return 0

    targets = list(EXPERIMENTS) if args.all else args.experiments
    if not targets:
        parser.print_usage()
        return 2
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        for exp_id in unknown:
            print(f"unknown experiment {exp_id!r}; "
                  f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    from repro.fleet import DEFAULT_CACHE_DIR, Fleet, FleetError
    cache_dir = None if args.no_cache else \
        (args.cache_dir or DEFAULT_CACHE_DIR)
    fleet = Fleet(workers=args.parallel, cache_dir=cache_dir,
                  refresh=args.refresh, timeout_s=args.job_timeout,
                  progress=sys.stderr.isatty())
    started = time.time()
    try:
        reports = run_experiments(targets, args.scale, fleet)
    except FleetError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 1
    finally:
        elapsed = time.time() - started
        print(fleet.stats.render(), file=sys.stderr)
        if args.cache_stats:
            stats = dict(fleet.stats.as_dict(), argv=targets,
                         parallel=args.parallel, scale=args.scale,
                         elapsed_s=round(elapsed, 3))
            try:
                with open(args.cache_stats, "w") as fh:
                    json.dump(stats, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            except OSError as exc:
                print(f"cannot write {args.cache_stats!r}: "
                      f"{exc.strerror or exc}", file=sys.stderr)

    # stdout carries only the deterministic report bodies: identical
    # for serial, parallel and warm-cache executions (CI byte-compares)
    for exp_id in targets:
        report = reports[exp_id]
        if args.json:
            print(json.dumps({
                "id": report.exp_id,
                "title": report.title,
                "tables": [{"title": t, "headers": h, "rows": r}
                           for t, h, r in report.tables],
                "notes": report.notes,
            }, sort_keys=True))
        else:
            print(report.render())
            print()
        print(f"[{exp_id} done]", file=sys.stderr)
    print(f"[{len(targets)} experiment(s) in {elapsed:.1f}s]",
          file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
