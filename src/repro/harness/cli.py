"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    hrmc-experiments --list
    hrmc-experiments fig10 fig13
    hrmc-experiments --all
    hrmc-experiments --all --scale full

(or ``python -m repro.harness.cli``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="hrmc-experiments",
        description="Regenerate the tables and figures of the H-RMC "
                    "paper (SC '99) from the simulation.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--scale", choices=("quick", "full"), default=None,
                        help="quick = 1:5 scaled transfers (default); "
                             "full = paper-size 10/40 MB transfers")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    targets = list(EXPERIMENTS) if args.all else args.experiments
    if not targets:
        parser.print_usage()
        return 2

    status = 0
    for exp_id in targets:
        started = time.time()
        try:
            report = run_experiment(exp_id, args.scale)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            continue
        if args.json:
            print(json.dumps({
                "id": report.exp_id,
                "title": report.title,
                "tables": [{"title": t, "headers": h, "rows": r}
                           for t, h, r in report.tables],
                "notes": report.notes,
                "elapsed_s": round(time.time() - started, 2),
            }))
        else:
            print(report.render())
            print(f"[{exp_id} completed in {time.time() - started:.1f}s]\n")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
