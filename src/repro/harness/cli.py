"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    hrmc-experiments --list
    hrmc-experiments fig10 fig13
    hrmc-experiments --all --parallel 4
    hrmc-experiments --all --scale full --parallel 8 --cache-stats s.json
    hrmc-experiments fig13 --refresh
    hrmc-experiments fleet status
    hrmc-experiments fleet prune
    hrmc-experiments --chaos-seed 10
    hrmc-experiments --fault-plan plan.json --metrics-out out/
    hrmc-experiments report lan --receivers 5 --metrics-out out/
    hrmc-experiments report wan --html --metrics-out out/
    hrmc-experiments report wan --from out/
    hrmc-experiments why wan --seq 58401 --seed 21
    hrmc-experiments diff out/runA out/runB

(or ``python -m repro.harness.cli``).  Experiment runs go through the
fleet (:mod:`repro.fleet`): specs are planned, served from the
content-addressed cache under ``--cache-dir`` (default
``.hrmc-cache``), and misses are executed -- across ``--parallel N``
worker processes when asked.  Report bodies go to stdout and are
byte-identical regardless of worker count or cache temperature; timing,
progress and cache accounting go to stderr (``--cache-stats FILE``
saves the accounting as JSON).  ``--no-cache`` runs without touching
the cache; ``--refresh`` re-executes and overwrites cached entries.

``fleet status`` summarizes the cache directory (entries, freshness
against the current code fingerprint, bytes); ``fleet prune`` deletes
entries the current code can no longer use.

``--chaos-seed``/``--fault-plan``
run one fault-injected transfer with the invariant checker attached and
print what happened (see :mod:`repro.faults`).  ``--metrics-out DIR``
additionally attaches the observability layer (:mod:`repro.obs`) and
writes its artifacts -- JSONL/CSV metric series, a text summary, a
Perfetto-loadable trace, and (with lineage) the packet trace + causal
DAG -- into ``DIR``.

Subcommands:

* ``report lan|wan|chaos`` runs one observed transfer of a canned
  scenario and prints the observability summary; ``--html`` also writes
  the self-contained HTML report, ``--from DIR`` re-renders a
  previously written artifact directory without running anything.
* ``why lan|wan|chaos`` runs the scenario with causal lineage enabled
  and answers "why did sequence N need recovery?" (``--seq N``) or
  explains the worst recovery episodes (default).
* ``diff RUN_A RUN_B`` aligns two artifact directories and reports the
  first causally significant divergence.  Exit status: 0 = runs align,
  1 = diverged, 2 = unusable input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.harness.experiments import (EXPERIMENTS, inventory_rows,
                                       run_experiments)

__all__ = ["main"]


# -- fleet subcommand ---------------------------------------------------

def _run_fleet(argv) -> int:
    """``fleet status`` / ``fleet prune``: cache administration."""
    from repro.fleet import DEFAULT_CACHE_DIR, ResultStore, code_fingerprint

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments fleet",
        description="Inspect or prune the content-addressed run cache.")
    parser.add_argument("action", choices=("status", "prune"))
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=DEFAULT_CACHE_DIR)
    args = parser.parse_args(argv)

    store = ResultStore(args.cache_dir, code_fingerprint())
    if args.action == "prune":
        removed = store.prune()
        print(f"pruned {removed} stale/corrupt entries "
              f"from {args.cache_dir}")
        return 0
    st = store.status()
    print(f"cache dir: {args.cache_dir}")
    print(f"entries:   {st.entries} ({st.total_bytes} bytes)")
    print(f"fresh:     {st.fresh} (usable with the current code)")
    print(f"stale:     {st.stale} (code fingerprint changed)")
    print(f"corrupt:   {st.corrupt}")
    for scenario, count in sorted(st.by_scenario.items()):
        print(f"  {scenario}: {count}")
    return 0


def _run_chaos(args) -> int:
    """Run one fault-injected transfer and report what happened."""
    from repro.faults.plan import FaultPlan
    from repro.harness.experiments import chaos_config
    from repro.harness.runner import run_transfer
    from repro.workloads.scenarios import build_chaos, build_lan

    if args.fault_plan:
        try:
            plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load fault plan {args.fault_plan!r}: {exc}",
                  file=sys.stderr)
            return 2
        scenario = build_lan(args.receivers, 10e6, seed=plan.seed)
        scenario.fault_plan = plan
    else:
        scenario = build_chaos(args.receivers, 10e6, seed=args.chaos_seed,
                               horizon_us=1_000_000)
        plan = scenario.fault_plan
    print(plan.describe())
    obs = tracer = None
    if args.metrics_out:
        from repro.obs import Observability
        from repro.trace.tracer import PacketTracer
        obs = Observability(profile=True, lineage=True)
        tracer = PacketTracer()
    try:
        result = run_transfer(scenario, protocol="hrmc", nbytes=args.nbytes,
                              sndbuf=128 * 1024, cfg=chaos_config(),
                              invariants=True, max_sim_s=120, obs=obs,
                              tracer=tracer)
    except ValueError as exc:  # e.g. plan targets a missing receiver
        print(f"cannot run fault plan: {exc}", file=sys.stderr)
        return 2
    if obs is not None:
        try:
            paths = obs.write_artifacts(args.metrics_out, prefix="chaos")
        except OSError as exc:
            print(f"cannot write artifacts to {args.metrics_out!r}: {exc}",
                  file=sys.stderr)
            return 2
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    print(f"fault events: {result.fault_events}  "
          f"crashed: {result.crashed_receivers}  "
          f"restarted: {result.restarted_receivers}  "
          f"invariant checks: {result.invariant_checks}")
    for r in result.per_receiver:
        print(f"  {r.name}: bytes={r.bytes_done} verified={r.verified} "
              f"done={r.done}")
    for r in result.rejoin_results:
        print(f"  {r.name}: bytes={r.bytes_done} "
              f"resumed_at={r.resumed_at_offset} verified={r.verified}")
    ok = result.surviving_ok
    print("survivors ok" if ok else "FAILED: survivor did not complete")
    return 0 if ok else 1


# -- shared scenario construction ---------------------------------------

def _scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("scenario", choices=("lan", "wan", "chaos"),
                        help="canned scenario to observe")
    parser.add_argument("--receivers", type=int, default=5)
    parser.add_argument("--nbytes", type=int, default=500_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--bandwidth", type=float, default=10.0,
                        metavar="MBPS", help="link bandwidth in Mbit/s")
    parser.add_argument("--protocol", default="hrmc",
                        help="protocol to run (default hrmc)")
    parser.add_argument("--wan-test", type=int, default=2, metavar="N",
                        help="characteristic-group test case for wan")


def _build_scenario(args):
    from repro.workloads.groups import expand_test_case
    from repro.workloads.scenarios import build_chaos, build_lan, build_wan

    bw = args.bandwidth * 1e6
    if args.scenario == "lan":
        scenario = build_lan(args.receivers, bw, seed=args.seed)
    elif args.scenario == "wan":
        specs = expand_test_case(args.wan_test, args.receivers)
        scenario = build_wan(specs, bw, seed=args.seed)
    else:
        scenario = build_chaos(args.receivers, bw, seed=args.seed,
                               horizon_us=1_000_000, allow_crash=False)
    kwargs = {}
    if args.scenario == "chaos":
        from repro.harness.experiments import chaos_config
        kwargs = {"cfg": chaos_config(), "invariants": True,
                  "sndbuf": 128 * 1024}
    return scenario, kwargs


# -- report subcommand --------------------------------------------------

class _OfflineObs:
    """Enough of the :class:`Observability` surface to re-render a
    report from a previously written ``*.series.jsonl`` (used by
    ``report --from DIR``)."""

    def __init__(self, registry, finalized_at_us):
        self.registry = registry
        self.finalized_at_us = finalized_at_us
        self.spans = None
        self.profiler = None

    def summary_tables(self):
        rows = self.registry.summary_rows()
        return [("observed metric series",
                 ["series", "samples", "min", "mean", "max", "last"],
                 rows)] if rows else []


def _load_series(path: str):
    """Rebuild a :class:`MetricsRegistry` from a series JSONL dump.

    Raises ``ValueError`` with a one-line reason on corrupt input.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    last_t = None
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                kind = rec.get("kind")
                if kind == "sample":
                    name = rec["series"]
                    if name not in registry.series:
                        from repro.obs.metrics import TimeSeries
                        registry.series[name] = TimeSeries(
                            name, rec.get("unit", ""))
                    registry.series[name].append(rec["t_us"], rec["value"])
                    last_t = rec["t_us"] if last_t is None \
                        else max(last_t, rec["t_us"])
                elif kind == "counter":
                    registry.counter(rec["name"]).inc(int(rec["value"]))
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"corrupt series file {path!r}: {exc}") from None
    registry.scrapes = max((len(s) for s in registry.series.values()),
                           default=0)
    return registry, last_t


def _report_offline(args) -> int:
    """``report --from DIR``: re-render the observability report from a
    previously written artifact directory; never runs a transfer."""
    outdir = getattr(args, "from")
    prefix = args.scenario
    summary_path = os.path.join(outdir, f"{prefix}.summary.txt")
    series_path = os.path.join(outdir, f"{prefix}.series.jsonl")
    trace_path = os.path.join(outdir, f"{prefix}.trace.jsonl")

    try:
        with open(summary_path) as fh:
            summary = fh.read()
    except OSError as exc:
        print(f"cannot read metrics summary {summary_path!r}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    print(summary.rstrip("\n"))

    if os.path.exists(trace_path):
        from repro.trace.tracer import trace_meta
        try:
            meta = trace_meta(trace_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot read trace {trace_path!r}: {exc}",
                  file=sys.stderr)
            return 2
        if meta and meta.get("truncated"):
            print(f"\nnote: packet trace is truncated "
                  f"({meta.get('dropped', '?')} events lost"
                  f"{' off the ring' if meta.get('ring') else ''})")

    if args.html:
        from repro.obs.html import write_report
        try:
            registry, last_t = _load_series(series_path)
        except OSError as exc:
            print(f"cannot read metrics series {series_path!r}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        html_path = os.path.join(outdir, f"{prefix}.report.html")
        try:
            write_report(html_path, _OfflineObs(registry, last_t),
                         title=f"H-RMC run report: {prefix} (offline)")
        except OSError as exc:
            print(f"cannot write {html_path!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"\nwrote html: {html_path}")
    return 0


def _run_report(argv) -> int:
    """``report`` subcommand: one observed transfer + obs summary."""
    from repro.harness.runner import run_transfer
    from repro.obs import Observability

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments report",
        description="Run one observed transfer and print the "
                    "observability report (metric series, packet "
                    "lifecycle latency, protocol phases, profile).")
    _scenario_args(parser)
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="also write JSONL/CSV series, summary, "
                             "Perfetto trace, packet trace and causal "
                             "lineage into DIR")
    parser.add_argument("--html", action="store_true",
                        help="also write the self-contained HTML report "
                             "(implies causal lineage; needs "
                             "--metrics-out or --from)")
    parser.add_argument("--lineage", action="store_true",
                        help="enable causal lineage tracing for the run")
    parser.add_argument("--from", metavar="DIR", default=None,
                        help="re-render a previously written artifact "
                             "directory instead of running a transfer")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the engine profiler")
    args = parser.parse_args(argv)

    if getattr(args, "from"):
        return _report_offline(args)
    if args.html and not args.metrics_out:
        print("--html needs --metrics-out DIR (or --from DIR)",
              file=sys.stderr)
        return 2

    lineage = args.lineage or args.html
    obs = Observability(profile=not args.no_profile, lineage=lineage)
    tracer = None
    if lineage and args.metrics_out:
        from repro.trace.tracer import PacketTracer
        tracer = PacketTracer()
    scenario, kwargs = _build_scenario(args)
    result = run_transfer(scenario, nbytes=args.nbytes,
                          protocol=args.protocol, obs=obs,
                          max_sim_s=300, tracer=tracer, **kwargs)
    print(f"{args.scenario} x{args.receivers} {args.protocol} "
          f"{args.nbytes} bytes: ok={result.ok} "
          f"throughput={result.throughput_mbps:.2f} Mbit/s "
          f"duration={result.duration_us / 1e6:.3f} s\n")
    print(obs.summary())
    if args.metrics_out:
        try:
            paths = obs.write_artifacts(args.metrics_out,
                                        prefix=args.scenario,
                                        html=args.html)
        except OSError as exc:
            print(f"cannot write artifacts to {args.metrics_out!r}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        print()
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    return 0 if result.ok else 1


# -- why subcommand -----------------------------------------------------

def _run_why(argv) -> int:
    """``why`` subcommand: run with lineage on, answer why(seq)."""
    from repro.harness.runner import run_transfer
    from repro.obs import Observability

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments why",
        description="Run a lineage-traced transfer and explain why a "
                    "sequence range needed recovery (--seq), or walk "
                    "the worst recovery episodes (default).")
    _scenario_args(parser)
    parser.add_argument("--seq", type=int, default=None, metavar="N",
                        help="explain this byte sequence number; "
                             "default: the worst recovery episodes")
    parser.add_argument("--worst", type=int, default=3, metavar="K",
                        help="how many worst episodes to explain "
                             "when --seq is not given (default 3)")
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="also write the run's artifacts into DIR")
    args = parser.parse_args(argv)

    obs = Observability(profile=False, lineage=True)
    tracer = None
    if args.metrics_out:
        from repro.trace.tracer import PacketTracer
        tracer = PacketTracer()
    scenario, kwargs = _build_scenario(args)
    result = run_transfer(scenario, nbytes=args.nbytes,
                          protocol=args.protocol, obs=obs,
                          max_sim_s=300, tracer=tracer, **kwargs)
    print(f"{args.scenario} x{args.receivers} {args.protocol} "
          f"{args.nbytes} bytes: ok={result.ok} "
          f"duration={result.duration_us / 1e6:.3f} s\n")
    diag = obs.diag()
    if args.seq is not None:
        print(diag.why(args.seq).render())
    else:
        worst = diag.explain_worst(args.worst)
        if not worst:
            print("no recovery episodes: every packet arrived first try")
        for i, (span, why) in enumerate(worst):
            if i:
                print()
            print(f"-- recovery {span.name} @ {span.host}: "
                  f"{span.dur_us} us --")
            print(why.render())
    stall = diag.why_stalled()
    if stall is not None:
        print()
        print(stall.render())
    if args.metrics_out:
        try:
            paths = obs.write_artifacts(args.metrics_out,
                                        prefix=args.scenario)
        except OSError as exc:
            print(f"cannot write artifacts to {args.metrics_out!r}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        print()
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    return 0 if result.ok else 1


# -- diff subcommand ----------------------------------------------------

def _run_diff(argv) -> int:
    """``diff`` subcommand: first causal divergence between two runs.

    Exit status: 0 = aligned, 1 = diverged, 2 = unusable input.
    """
    from repro.obs.diffing import diff_runs

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments diff",
        description="Align two run artifact directories (or bare "
                    "*.trace.jsonl files) and report the first causally "
                    "significant divergence, with each side's lineage.")
    parser.add_argument("run_a", help="first run directory / trace file")
    parser.add_argument("run_b", help="second run directory / trace file")
    args = parser.parse_args(argv)

    try:
        result = diff_runs(args.run_a, args.run_b)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(result.render())
    return 1 if result.diverged else 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "report":
        return _run_report(argv[1:])
    if argv and argv[0] == "why":
        return _run_why(argv[1:])
    if argv and argv[0] == "diff":
        return _run_diff(argv[1:])
    if argv and argv[0] == "fleet":
        return _run_fleet(argv[1:])
    parser = argparse.ArgumentParser(
        prog="hrmc-experiments",
        description="Regenerate the tables and figures of the H-RMC "
                    "paper (SC '99) from the simulation.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--scale", choices=("quick", "full"), default=None,
                        help="quick = 1:5 scaled transfers (default); "
                             "full = paper-size 10/40 MB transfers")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes for the run fleet "
                             "(default 1 = serial in-process)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed run cache location "
                             "(default .hrmc-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the run cache")
    parser.add_argument("--refresh", action="store_true",
                        help="re-execute every run, overwriting cached "
                             "entries")
    parser.add_argument("--cache-stats", metavar="FILE", default=None,
                        help="write fleet/cache accounting as JSON")
    parser.add_argument("--job-timeout", type=float, default=900.0,
                        metavar="S", help="per-run wall-clock budget in "
                                          "seconds (default 900)")
    parser.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                        help="run one chaos transfer with a seed-random "
                             "fault plan and the invariant checker on")
    parser.add_argument("--fault-plan", metavar="FILE", default=None,
                        help="run one chaos transfer driven by a saved "
                             "FaultPlan JSON file")
    parser.add_argument("--receivers", type=int, default=3,
                        help="receiver count for --chaos-seed/--fault-plan")
    parser.add_argument("--nbytes", type=int, default=250_000,
                        help="transfer size for --chaos-seed/--fault-plan")
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="attach the observability layer to the "
                             "chaos run and write metric series, summary, "
                             "Perfetto trace, packet trace and causal "
                             "lineage into DIR")
    args = parser.parse_args(argv)

    if args.chaos_seed is not None or args.fault_plan:
        return _run_chaos(args)

    if args.list:
        rows = inventory_rows()
        wid = max(len(r[0]) for r in rows)
        wfig = max(len(r[1]) for r in rows)
        for exp_id, figure, bench in rows:
            print(f"{exp_id:<{wid}}  {figure:<{wfig}}  {bench}")
        return 0

    targets = list(EXPERIMENTS) if args.all else args.experiments
    if not targets:
        parser.print_usage()
        return 2
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        for exp_id in unknown:
            print(f"unknown experiment {exp_id!r}; "
                  f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    from repro.fleet import DEFAULT_CACHE_DIR, Fleet, FleetError
    cache_dir = None if args.no_cache else \
        (args.cache_dir or DEFAULT_CACHE_DIR)
    fleet = Fleet(workers=args.parallel, cache_dir=cache_dir,
                  refresh=args.refresh, timeout_s=args.job_timeout,
                  progress=sys.stderr.isatty())
    started = time.time()
    try:
        reports = run_experiments(targets, args.scale, fleet)
    except FleetError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 1
    finally:
        elapsed = time.time() - started
        print(fleet.stats.render(), file=sys.stderr)
        if args.cache_stats:
            stats = dict(fleet.stats.as_dict(), argv=targets,
                         parallel=args.parallel, scale=args.scale,
                         elapsed_s=round(elapsed, 3))
            try:
                with open(args.cache_stats, "w") as fh:
                    json.dump(stats, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            except OSError as exc:
                print(f"cannot write {args.cache_stats!r}: "
                      f"{exc.strerror or exc}", file=sys.stderr)

    # stdout carries only the deterministic report bodies: identical
    # for serial, parallel and warm-cache executions (CI byte-compares)
    for exp_id in targets:
        report = reports[exp_id]
        if args.json:
            print(json.dumps({
                "id": report.exp_id,
                "title": report.title,
                "tables": [{"title": t, "headers": h, "rows": r}
                           for t, h, r in report.tables],
                "notes": report.notes,
            }, sort_keys=True))
        else:
            print(report.render())
            print()
        print(f"[{exp_id} done]", file=sys.stderr)
    print(f"[{len(targets)} experiment(s) in {elapsed:.1f}s]",
          file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
