"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    hrmc-experiments --list
    hrmc-experiments fig10 fig13
    hrmc-experiments --all
    hrmc-experiments --all --scale full
    hrmc-experiments --chaos-seed 10
    hrmc-experiments --fault-plan plan.json --metrics-out out/
    hrmc-experiments report lan --receivers 5 --metrics-out out/

(or ``python -m repro.harness.cli``).  ``--chaos-seed``/``--fault-plan``
run one fault-injected transfer with the invariant checker attached and
print what happened (see :mod:`repro.faults`).  ``--metrics-out DIR``
additionally attaches the observability layer (:mod:`repro.obs`) and
writes its artifacts -- JSONL/CSV metric series, a text summary and a
Perfetto-loadable trace -- into ``DIR``.

The ``report`` subcommand runs one observed transfer of a canned
scenario (``lan``, ``wan`` or ``chaos``) and prints the observability
summary: metric series, packet-lifecycle latency, protocol phases and
the engine profile.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _run_chaos(args) -> int:
    """Run one fault-injected transfer and report what happened."""
    from repro.faults.plan import FaultPlan
    from repro.harness.experiments import chaos_config
    from repro.harness.runner import run_transfer
    from repro.workloads.scenarios import build_chaos, build_lan

    if args.fault_plan:
        try:
            plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load fault plan {args.fault_plan!r}: {exc}",
                  file=sys.stderr)
            return 2
        scenario = build_lan(args.receivers, 10e6, seed=plan.seed)
        scenario.fault_plan = plan
    else:
        scenario = build_chaos(args.receivers, 10e6, seed=args.chaos_seed,
                               horizon_us=1_000_000)
        plan = scenario.fault_plan
    print(plan.describe())
    obs = None
    if args.metrics_out:
        from repro.obs import Observability
        obs = Observability(profile=True)
    try:
        result = run_transfer(scenario, protocol="hrmc", nbytes=args.nbytes,
                              sndbuf=128 * 1024, cfg=chaos_config(),
                              invariants=True, max_sim_s=120, obs=obs)
    except ValueError as exc:  # e.g. plan targets a missing receiver
        print(f"cannot run fault plan: {exc}", file=sys.stderr)
        return 2
    if obs is not None:
        paths = obs.write_artifacts(args.metrics_out, prefix="chaos")
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    print(f"fault events: {result.fault_events}  "
          f"crashed: {result.crashed_receivers}  "
          f"restarted: {result.restarted_receivers}  "
          f"invariant checks: {result.invariant_checks}")
    for r in result.per_receiver:
        print(f"  {r.name}: bytes={r.bytes_done} verified={r.verified} "
              f"done={r.done}")
    for r in result.rejoin_results:
        print(f"  {r.name}: bytes={r.bytes_done} "
              f"resumed_at={r.resumed_at_offset} verified={r.verified}")
    ok = result.surviving_ok
    print("survivors ok" if ok else "FAILED: survivor did not complete")
    return 0 if ok else 1


def _run_report(argv) -> int:
    """``report`` subcommand: one observed transfer + obs summary."""
    from repro.harness.runner import run_transfer
    from repro.obs import Observability
    from repro.workloads.groups import expand_test_case
    from repro.workloads.scenarios import build_chaos, build_lan, build_wan

    parser = argparse.ArgumentParser(
        prog="hrmc-experiments report",
        description="Run one observed transfer and print the "
                    "observability report (metric series, packet "
                    "lifecycle latency, protocol phases, profile).")
    parser.add_argument("scenario", choices=("lan", "wan", "chaos"),
                        help="canned scenario to observe")
    parser.add_argument("--receivers", type=int, default=5)
    parser.add_argument("--nbytes", type=int, default=500_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--bandwidth", type=float, default=10.0,
                        metavar="MBPS", help="link bandwidth in Mbit/s")
    parser.add_argument("--protocol", default="hrmc",
                        help="protocol to run (default hrmc)")
    parser.add_argument("--wan-test", type=int, default=2, metavar="N",
                        help="characteristic-group test case for wan")
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="also write JSONL/CSV series, summary and "
                             "Perfetto trace into DIR")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the engine profiler")
    args = parser.parse_args(argv)

    bw = args.bandwidth * 1e6
    if args.scenario == "lan":
        scenario = build_lan(args.receivers, bw, seed=args.seed)
    elif args.scenario == "wan":
        specs = expand_test_case(args.wan_test, args.receivers)
        scenario = build_wan(specs, bw, seed=args.seed)
    else:
        scenario = build_chaos(args.receivers, bw, seed=args.seed,
                               horizon_us=1_000_000, allow_crash=False)

    obs = Observability(profile=not args.no_profile)
    kwargs = {}
    if args.scenario == "chaos":
        from repro.harness.experiments import chaos_config
        kwargs = {"cfg": chaos_config(), "invariants": True,
                  "sndbuf": 128 * 1024}
    result = run_transfer(scenario, nbytes=args.nbytes,
                          protocol=args.protocol, obs=obs,
                          max_sim_s=300, **kwargs)
    print(f"{args.scenario} x{args.receivers} {args.protocol} "
          f"{args.nbytes} bytes: ok={result.ok} "
          f"throughput={result.throughput_mbps:.2f} Mbit/s "
          f"duration={result.duration_us / 1e6:.3f} s\n")
    print(obs.summary())
    if args.metrics_out:
        paths = obs.write_artifacts(args.metrics_out,
                                    prefix=args.scenario)
        print()
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    return 0 if result.ok else 1


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "report":
        return _run_report(argv[1:])
    parser = argparse.ArgumentParser(
        prog="hrmc-experiments",
        description="Regenerate the tables and figures of the H-RMC "
                    "paper (SC '99) from the simulation.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--scale", choices=("quick", "full"), default=None,
                        help="quick = 1:5 scaled transfers (default); "
                             "full = paper-size 10/40 MB transfers")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    parser.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                        help="run one chaos transfer with a seed-random "
                             "fault plan and the invariant checker on")
    parser.add_argument("--fault-plan", metavar="FILE", default=None,
                        help="run one chaos transfer driven by a saved "
                             "FaultPlan JSON file")
    parser.add_argument("--receivers", type=int, default=3,
                        help="receiver count for --chaos-seed/--fault-plan")
    parser.add_argument("--nbytes", type=int, default=250_000,
                        help="transfer size for --chaos-seed/--fault-plan")
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="attach the observability layer to the "
                             "chaos run and write metric series, summary "
                             "and Perfetto trace into DIR")
    args = parser.parse_args(argv)

    if args.chaos_seed is not None or args.fault_plan:
        return _run_chaos(args)

    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    targets = list(EXPERIMENTS) if args.all else args.experiments
    if not targets:
        parser.print_usage()
        return 2

    status = 0
    for exp_id in targets:
        started = time.time()
        try:
            report = run_experiment(exp_id, args.scale)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            continue
        if args.json:
            print(json.dumps({
                "id": report.exp_id,
                "title": report.title,
                "tables": [{"title": t, "headers": h, "rows": r}
                           for t, h, r in report.tables],
                "notes": report.notes,
                "elapsed_s": round(time.time() - started, 2),
            }))
        else:
            print(report.render())
            print(f"[{exp_id} completed in {time.time() - started:.1f}s]\n")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
