"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    hrmc-experiments --list
    hrmc-experiments fig10 fig13
    hrmc-experiments --all
    hrmc-experiments --all --scale full
    hrmc-experiments --chaos-seed 10
    hrmc-experiments --fault-plan plan.json

(or ``python -m repro.harness.cli``).  ``--chaos-seed``/``--fault-plan``
run one fault-injected transfer with the invariant checker attached and
print what happened (see :mod:`repro.faults`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _run_chaos(args) -> int:
    """Run one fault-injected transfer and report what happened."""
    from repro.faults.plan import FaultPlan
    from repro.harness.experiments import chaos_config
    from repro.harness.runner import run_transfer
    from repro.workloads.scenarios import build_chaos, build_lan

    if args.fault_plan:
        try:
            plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load fault plan {args.fault_plan!r}: {exc}",
                  file=sys.stderr)
            return 2
        scenario = build_lan(args.receivers, 10e6, seed=plan.seed)
        scenario.fault_plan = plan
    else:
        scenario = build_chaos(args.receivers, 10e6, seed=args.chaos_seed,
                               horizon_us=1_000_000)
        plan = scenario.fault_plan
    print(plan.describe())
    try:
        result = run_transfer(scenario, protocol="hrmc", nbytes=args.nbytes,
                              sndbuf=128 * 1024, cfg=chaos_config(),
                              invariants=True, max_sim_s=120)
    except ValueError as exc:  # e.g. plan targets a missing receiver
        print(f"cannot run fault plan: {exc}", file=sys.stderr)
        return 2
    print(f"fault events: {result.fault_events}  "
          f"crashed: {result.crashed_receivers}  "
          f"restarted: {result.restarted_receivers}  "
          f"invariant checks: {result.invariant_checks}")
    for r in result.per_receiver:
        print(f"  {r.name}: bytes={r.bytes_done} verified={r.verified} "
              f"done={r.done}")
    for r in result.rejoin_results:
        print(f"  {r.name}: bytes={r.bytes_done} "
              f"resumed_at={r.resumed_at_offset} verified={r.verified}")
    ok = result.surviving_ok
    print("survivors ok" if ok else "FAILED: survivor did not complete")
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="hrmc-experiments",
        description="Regenerate the tables and figures of the H-RMC "
                    "paper (SC '99) from the simulation.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--scale", choices=("quick", "full"), default=None,
                        help="quick = 1:5 scaled transfers (default); "
                             "full = paper-size 10/40 MB transfers")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    parser.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                        help="run one chaos transfer with a seed-random "
                             "fault plan and the invariant checker on")
    parser.add_argument("--fault-plan", metavar="FILE", default=None,
                        help="run one chaos transfer driven by a saved "
                             "FaultPlan JSON file")
    parser.add_argument("--receivers", type=int, default=3,
                        help="receiver count for --chaos-seed/--fault-plan")
    parser.add_argument("--nbytes", type=int, default=250_000,
                        help="transfer size for --chaos-seed/--fault-plan")
    args = parser.parse_args(argv)

    if args.chaos_seed is not None or args.fault_plan:
        return _run_chaos(args)

    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    targets = list(EXPERIMENTS) if args.all else args.experiments
    if not targets:
        parser.print_usage()
        return 2

    status = 0
    for exp_id in targets:
        started = time.time()
        try:
            report = run_experiment(exp_id, args.scale)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            continue
        if args.json:
            print(json.dumps({
                "id": report.exp_id,
                "title": report.title,
                "tables": [{"title": t, "headers": h, "rows": r}
                           for t, h, r in report.tables],
                "notes": report.notes,
                "elapsed_s": round(time.time() - started, 2),
            }))
        else:
            print(report.render())
            print(f"[{exp_id} completed in {time.time() - started:.1f}s]\n")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
