"""Metrics collection and report formatting."""

from repro.stats.metrics import Counters, ReleaseTracker
from repro.stats.report import format_table

__all__ = ["Counters", "ReleaseTracker", "format_table"]
