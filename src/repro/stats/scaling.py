"""Cross-run sweep analytics for the protocol-health observatory.

One run's :func:`repro.obs.health.HealthMonitor.payload` says how a
single world behaved; a *sweep* over a grid (group sizes, loss rates)
says how the protocol *scales*.  This module turns a list of per-run
health payloads into:

* flat per-cell dicts (:func:`health_cell`) -- one row per grid cell,
  every interesting health metric a top-level number,
* log-log power-law fits (:func:`fit_power_law`) with fitted
  exponents -- feedback vs group size (the paper's §5.2 claim is an
  exponent near zero: NAK suppression keeps sender-visible feedback
  flat as groups grow) and repair traffic vs loss rate,
* direction-aware per-cell anomaly flags (:func:`flag_anomalies`)
  that reuse :func:`repro.stats.trajectory.compare` -- each cell is
  gated against the sweep median, with health-specific regression
  directions (an implosion-index *rise* regresses, a
  suppression-effectiveness *drop* regresses).

Everything is pure python over plain dicts: no numpy, no scenario
objects, so the fleet's cached summaries feed it directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.stats.trajectory import compare

__all__ = ["PowerLawFit", "CellAnomaly", "fit_power_law", "health_cell",
           "flag_anomalies", "sweep_fits", "sweep_report",
           "HEALTH_LOWER_IS_BETTER", "DEFAULT_ANOMALY_THRESHOLDS"]

#: health metrics where *growth* is the regression direction; everything
#: else (suppression effectiveness, throughput) regresses by dropping
HEALTH_LOWER_IS_BETTER = frozenset({
    "implosion_index", "feedback_at_sender", "naks_sent",
    "redundant_ratio", "retrans_bytes", "mean_lag_us", "worst_lag_us",
    "unresolved",
})

#: per-cell anomaly gates: tolerated fractional drift from the sweep
#: median before a cell is flagged (loose on lag -- it is long-tailed)
DEFAULT_ANOMALY_THRESHOLDS: dict[str, float] = {
    "effectiveness": 0.25,
    "implosion_index": 0.75,
    "redundant_ratio": 0.50,
    "worst_lag_us": 2.0,
}


@dataclass
class PowerLawFit:
    """``y ~ coefficient * x^exponent`` fitted by log-log least squares."""

    x_name: str
    y_name: str
    exponent: float
    coefficient: float
    r2: float
    n: int              # points used
    skipped: int = 0    # points dropped (non-positive / non-numeric)

    def predict(self, x: float) -> float:
        return self.coefficient * (x ** self.exponent)

    def describe(self) -> str:
        return (f"{self.y_name} ~ {self.coefficient:.3g} * "
                f"{self.x_name}^{self.exponent:.3f} "
                f"(r2={self.r2:.3f}, n={self.n})")

    def to_dict(self) -> dict:
        return {"x": self.x_name, "y": self.y_name,
                "exponent": round(self.exponent, 4),
                "coefficient": round(self.coefficient, 4),
                "r2": round(self.r2, 4), "n": self.n,
                "skipped": self.skipped}


@dataclass
class CellAnomaly:
    """One cell metric outside the sweep-median gate."""

    label: str
    metric: str
    value: float
    median: float
    threshold: float
    lower_is_better: bool

    @property
    def direction(self) -> str:
        return "high" if self.lower_is_better else "low"

    def describe(self) -> str:
        return (f"{self.label}: {self.metric}={self.value:g} "
                f"{self.direction} vs sweep median {self.median:g} "
                f"(gate {'+' if self.lower_is_better else '-'}"
                f"{self.threshold:.0%})")

    def to_dict(self) -> dict:
        return {"cell": self.label, "metric": self.metric,
                "value": self.value, "median": self.median,
                "threshold": self.threshold,
                "direction": self.direction}


def fit_power_law(points, *, x_name: str = "x",
                  y_name: str = "y") -> PowerLawFit | None:
    """Fit ``y = c * x^k`` over ``(x, y)`` pairs in log-log space.

    Non-positive or non-numeric points cannot be log-transformed and
    are dropped (counted in ``skipped``).  Returns ``None`` when fewer
    than two usable points with distinct ``x`` remain -- a fit over a
    single grid cell is noise, not a law.
    """
    usable, skipped = [], 0
    for x, y in points:
        if (isinstance(x, (int, float)) and isinstance(y, (int, float))
                and not isinstance(x, bool) and not isinstance(y, bool)
                and x > 0 and y > 0):
            usable.append((math.log(x), math.log(y)))
        else:
            skipped += 1
    if len(usable) < 2 or len({lx for lx, _ in usable}) < 2:
        return None
    n = len(usable)
    mean_lx = sum(lx for lx, _ in usable) / n
    mean_ly = sum(ly for _, ly in usable) / n
    var_lx = sum((lx - mean_lx) ** 2 for lx, _ in usable)
    cov = sum((lx - mean_lx) * (ly - mean_ly) for lx, ly in usable)
    exponent = cov / var_lx
    coefficient = math.exp(mean_ly - exponent * mean_lx)
    ss_tot = sum((ly - mean_ly) ** 2 for _, ly in usable)
    ss_res = sum((ly - (mean_ly + exponent * (lx - mean_lx))) ** 2
                 for lx, ly in usable)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(x_name, y_name, exponent, coefficient, r2, n,
                       skipped)


def health_cell(health: dict, *, label: str = "",
                group_size: int | None = None,
                loss_rate: float | None = None,
                throughput_bps: float | None = None) -> dict:
    """Flatten one run's health payload into a sweep-cell row.

    ``health`` is :meth:`HealthMonitor.payload` (possibly JSON
    round-tripped off the fleet cache).  The grid coordinates
    (``group_size``, ``loss_rate``) come from the spec, not the
    payload -- the payload's own ``group_size`` is the fallback.
    Missing sections become zeros so partial payloads still aggregate.
    """
    supp = health.get("suppression", {})
    imp = health.get("implosion", {})
    rep = health.get("repair", {})
    lag = health.get("lag", {})

    def num(section: dict, key: str) -> float:
        v = section.get(key, 0)
        return float(v) if isinstance(v, (int, float)) \
            and not isinstance(v, bool) else 0.0

    cell = {
        "label": label,
        "group_size": int(group_size if group_size is not None
                          else health.get("group_size", 0) or 0),
        "effectiveness": num(supp, "effectiveness"),
        "naks_sent": num(supp, "naks_sent"),
        "suppressed": (num(supp, "suppressed_timer")
                       + num(supp, "suppressed_peer")),
        "feedback_at_sender": num(imp, "feedback_at_sender"),
        "naks_at_sender": num(imp, "naks_at_sender"),
        "loss_events": num(imp, "loss_events"),
        "implosion_index": num(imp, "index"),
        "retrans_pkts": num(rep, "retrans_pkts"),
        "retrans_bytes": num(rep, "retrans_bytes"),
        "redundant_ratio": num(rep, "redundant_ratio"),
        "mean_lag_us": num(lag, "mean_us"),
        "worst_lag_us": num(lag, "worst_max_us"),
        "unresolved": num(lag, "unresolved"),
    }
    if loss_rate is not None:
        cell["loss_rate"] = float(loss_rate)
    if throughput_bps is not None:
        cell["throughput_mbps"] = round(float(throughput_bps) / 1e6, 3)
    return cell


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2


def flag_anomalies(cells: list[dict],
                   thresholds: dict[str, float] | None = None
                   ) -> list[CellAnomaly]:
    """Gate every cell against the sweep median, direction-aware.

    Reuses :func:`repro.stats.trajectory.compare` with the health
    direction set: the median row plays "old", each cell plays "new",
    and a cell regresses when it drifts past the metric's gate in its
    bad direction.  Needs three or more cells -- with fewer, every
    cell *is* the median neighbourhood.
    """
    thresholds = (DEFAULT_ANOMALY_THRESHOLDS if thresholds is None
                  else thresholds)
    if len(cells) < 3:
        return []
    median_doc: dict = {"bench": "sweep-median"}
    for metric in thresholds:
        values = [float(c[metric]) for c in cells
                  if isinstance(c.get(metric), (int, float))
                  and not isinstance(c.get(metric), bool)]
        if len(values) == len(cells):
            median_doc[metric] = _median(values)
    flags: list[CellAnomaly] = []
    for cell in cells:
        verdict = compare(median_doc, cell, thresholds,
                          lower_is_better=HEALTH_LOWER_IS_BETTER)
        for d in verdict.deltas:
            if d.regressed:
                flags.append(CellAnomaly(
                    cell.get("label", "?"), d.metric, d.new, d.old,
                    d.threshold, d.lower_is_better))
    return flags


def sweep_fits(cells: list[dict]) -> dict[str, PowerLawFit]:
    """The canonical scaling fits over a health sweep.

    * ``feedback_vs_group``: sender-visible feedback vs group size --
      the Figure-14 axis; H-RMC's suppression claim is an exponent
      well below 1 (linear growth = feedback implosion).
    * ``implosion_vs_group``: per-loss-event NAK count vs group size.
    * ``repair_vs_loss``: retransmitted bytes vs loss rate (only when
      the sweep varies loss).

    Fits that cannot be formed (single-valued axis, zero metrics) are
    simply absent from the result.
    """
    fits: dict[str, PowerLawFit] = {}
    fb = fit_power_law(
        [(c.get("group_size"), c.get("feedback_at_sender"))
         for c in cells],
        x_name="group_size", y_name="feedback_at_sender")
    if fb is not None:
        fits["feedback_vs_group"] = fb
    imp = fit_power_law(
        [(c.get("group_size"), c.get("implosion_index")) for c in cells],
        x_name="group_size", y_name="implosion_index")
    if imp is not None:
        fits["implosion_vs_group"] = imp
    rep = fit_power_law(
        [(c.get("loss_rate"), c.get("retrans_bytes")) for c in cells],
        x_name="loss_rate", y_name="retrans_bytes")
    if rep is not None:
        fits["repair_vs_loss"] = rep
    return fits


def sweep_report(cells: list[dict],
                 thresholds: dict[str, float] | None = None) -> dict:
    """Cells + fits + anomalies, JSON-safe -- the ``health sweep``
    payload the CLI prints and the HTML dashboard renders."""
    fits = sweep_fits(cells)
    anomalies = flag_anomalies(cells, thresholds)
    return {
        "cells": cells,
        "fits": {name: fit.to_dict() for name, fit in fits.items()},
        "anomalies": [a.to_dict() for a in anomalies],
    }
