"""Bench-trajectory comparison: did this PR regress the engine?

Point snapshots (``BENCH_*.json``) answer "how fast is it now";
:func:`compare` answers the question CI actually asks -- "is *new*
worse than *old* by more than a threshold" -- and
:func:`history_rows` reads the longitudinal ``BENCH_HISTORY.jsonl``
log that :func:`repro.stats.bench.write_bench_snapshot` appends to.

Comparison is metric-by-metric against fractional thresholds
(default: events/s within 15 %).  ``events_per_s`` falls back to the
pre-v2 ``engine_events_per_s`` spelling so v1 snapshots (committed
before the schema bump) remain comparable; throughput-like metrics
regress when the new value drops, cost-like metrics (``wall_s``,
``peak_rss_kb``) when it grows.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

__all__ = ["BenchComparison", "MetricDelta", "DEFAULT_THRESHOLDS",
           "compare", "load_bench", "metric_value", "history_rows",
           "collapse_history"]

#: metric -> accepted key spellings, newest first
METRIC_ALIASES: dict[str, tuple[str, ...]] = {
    "events_per_s": ("events_per_s", "engine_events_per_s"),
}

#: metrics where *growth* is the regression direction
LOWER_IS_BETTER = frozenset({"wall_s", "peak_rss_kb"})

#: the CI gate: events/s may not drop more than 15 %
DEFAULT_THRESHOLDS: dict[str, float] = {"events_per_s": 0.15}


def load_bench(path: str) -> dict:
    """Load one ``BENCH_*.json`` document; one-line errors on junk."""
    if not os.path.exists(path):
        raise ValueError(f"bench snapshot not found: {path}")
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable bench snapshot {path}: {exc}") from exc
    if not isinstance(doc, dict) or "bench" not in doc:
        raise ValueError(f"not a bench snapshot (no 'bench' key): {path}")
    return doc


def metric_value(doc: dict, metric: str) -> float | None:
    """Top-level metric lookup with alias fallback; None when absent
    or non-numeric."""
    for key in METRIC_ALIASES.get(metric, (metric,)):
        value = doc.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None


@dataclass
class MetricDelta:
    """One metric's old-vs-new verdict."""

    metric: str
    old: float
    new: float
    threshold: float
    regressed: bool
    # direction this metric regresses in (True: growth is bad); set by
    # compare() so rows() renders the direction it actually applied
    lower_is_better: bool = False

    @property
    def ratio(self) -> float:
        return self.new / self.old if self.old else float("inf")


@dataclass
class BenchComparison:
    """The verdict of :func:`compare`."""

    old_name: str
    new_name: str
    deltas: list[MetricDelta] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)  # metrics absent somewhere

    @property
    def regressed(self) -> bool:
        return any(d.regressed for d in self.deltas)

    @property
    def usable(self) -> bool:
        """At least one threshold metric was present in both documents."""
        return bool(self.deltas)

    def rows(self) -> list[list]:
        """``[metric, old, new, ratio, threshold, verdict]`` table rows."""
        out = []
        for d in self.deltas:
            direction = "-" if d.lower_is_better else "+"
            out.append([d.metric, round(d.old, 1), round(d.new, 1),
                        f"{d.ratio:.3f}",
                        f"{direction}{d.threshold:.0%}",
                        "REGRESSED" if d.regressed else "ok"])
        for metric in self.skipped:
            out.append([metric, "-", "-", "-", "-", "skipped"])
        return out


def compare(old, new, thresholds: dict[str, float] | None = None, *,
            lower_is_better: frozenset[str] | set[str] | None = None
            ) -> BenchComparison:
    """Compare two bench documents (dicts or paths) metric-by-metric.

    ``thresholds`` maps metric name to the tolerated fractional drift
    (default: ``events_per_s`` within 15 %).  A throughput metric
    regresses when ``new < old * (1 - threshold)``; a cost metric
    when ``new > old * (1 + threshold)``.  ``lower_is_better`` names
    the cost metrics (default :data:`LOWER_IS_BETTER`); callers with
    their own direction semantics -- the protocol-health sweep flags
    an implosion-index *rise* but a suppression-effectiveness *drop*
    -- pass their own set.  Metrics missing from either side are
    recorded as skipped, never silently ignored.
    """
    if isinstance(old, str):
        old = load_bench(old)
    if isinstance(new, str):
        new = load_bench(new)
    thresholds = thresholds if thresholds is not None else DEFAULT_THRESHOLDS
    cost_metrics = (LOWER_IS_BETTER if lower_is_better is None
                    else frozenset(lower_is_better))
    result = BenchComparison(old.get("bench", "?"), new.get("bench", "?"))
    for metric in thresholds:
        threshold = float(thresholds[metric])
        if threshold < 0:
            raise ValueError(f"negative threshold for {metric}")
        old_v = metric_value(old, metric)
        new_v = metric_value(new, metric)
        if old_v is None or new_v is None:
            result.skipped.append(metric)
            continue
        lower = metric in cost_metrics
        if lower:
            regressed = new_v > old_v * (1.0 + threshold)
        else:
            regressed = new_v < old_v * (1.0 - threshold)
        result.deltas.append(
            MetricDelta(metric, old_v, new_v, threshold, regressed,
                        lower_is_better=lower))
    return result


def history_rows(path: str) -> list[dict]:
    """Parse ``BENCH_HISTORY.jsonl`` (newest last); one-line errors."""
    if not os.path.exists(path):
        raise ValueError(f"bench history not found: {path}")
    rows = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad history row: {exc}") from exc
            if isinstance(row, dict):
                rows.append(row)
    return rows


def collapse_history(rows: list[dict]) -> list[dict]:
    """Collapse duplicate ``(bench, git_rev)`` rows, keeping the last
    occurrence of each (a regenerated bench supersedes the stale row).

    ``append_history`` now replaces on match, but histories written
    before that fix may carry duplicates; readers collapse them
    instead of double-plotting.  Rows without both keys are kept as-is
    in order.
    """
    latest: dict[tuple, int] = {}
    for i, row in enumerate(rows):
        bench, rev = row.get("bench"), row.get("git_rev")
        if bench is not None and rev is not None:
            latest[(bench, rev)] = i
    keep = set(latest.values())
    return [row for i, row in enumerate(rows)
            if row.get("bench") is None or row.get("git_rev") is None
            or i in keep]
