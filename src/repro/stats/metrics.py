"""Per-endpoint protocol counters and the release-information tracker.

The release tracker implements the paper's Figure 3 metric: the
percentage of buffer-release events at which the sender already holds
complete information (every member's next-expected sequence number at
or past the release boundary) without having to probe and wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["Counters", "ReleaseTracker"]


@dataclass
class Counters:
    """Protocol event counters; sender and receiver each own one."""

    # data path
    data_pkts_sent: int = 0
    data_bytes_sent: int = 0
    retrans_pkts: int = 0
    retrans_bytes: int = 0
    data_pkts_rcvd: int = 0
    data_bytes_rcvd: int = 0
    dup_pkts_rcvd: int = 0
    out_of_order_pkts: int = 0
    out_of_window_drops: int = 0
    bytes_delivered: int = 0
    # feedback
    naks_sent: int = 0
    naks_rcvd: int = 0
    nak_errs_sent: int = 0
    nak_errs_rcvd: int = 0
    rate_requests_sent: int = 0
    rate_requests_rcvd: int = 0
    urgent_requests_sent: int = 0
    urgent_requests_rcvd: int = 0
    updates_sent: int = 0
    updates_rcvd: int = 0
    probes_sent: int = 0
    probes_rcvd: int = 0
    keepalives_sent: int = 0
    keepalives_rcvd: int = 0
    # membership
    joins_sent: int = 0
    joins_rcvd: int = 0
    leaves_sent: int = 0
    leaves_rcvd: int = 0
    # errors / local events
    reliability_violations: int = 0   # RMC released data later NAKed
    member_timeouts: int = 0          # unresponsive members evicted
    fec_pkts_sent: int = 0
    fec_repairs: int = 0
    local_repairs_sent: int = 0
    local_repairs_used: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def add(self, other: "Counters") -> "Counters":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @property
    def feedback_total(self) -> int:
        """Total reverse traffic generated (per paper Figure 11/13)."""
        return (self.naks_sent + self.rate_requests_sent +
                self.updates_sent + self.joins_sent + self.leaves_sent)


@dataclass
class ReleaseTracker:
    """Figure-3 metric: completeness of receiver info at release time."""

    checks: int = 0
    complete: int = 0
    probes_triggered: int = 0
    stall_us: int = 0            # time release was blocked awaiting info
    history: list = field(default_factory=list, repr=False)

    def record(self, complete: bool) -> None:
        self.checks += 1
        if complete:
            self.complete += 1

    @property
    def percent_complete(self) -> float:
        if self.checks == 0:
            return 100.0
        return 100.0 * self.complete / self.checks
