"""Shared schema for the repo's ``BENCH_*.json`` snapshots.

Every per-PR benchmark (``BENCH_PR2.json`` engine snapshot,
``BENCH_PR3.json`` lineage overhead, ``BENCH_PR4.json`` fleet speedup,
``BENCH_PR7.json`` perf-observatory overhead, ...) wraps its payload
with :func:`write_bench_snapshot`, so all snapshots carry the same
envelope -- schema version, git revision, python version and host
information -- and stay comparable across PRs and machines.

Schema v2 adds the *trajectory*: every snapshot must carry a
top-level ``events_per_s`` (the repo's canonical throughput metric,
whatever else a bench measures), and every regeneration appends one
line to ``BENCH_HISTORY.jsonl`` beside the snapshot.  Point snapshots
say where a PR landed; the history says where the codebase has been --
the longitudinal record ROADMAP item 1's engine overhaul is gated
against (``hrmc perf history`` / ``hrmc perf compare``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time

__all__ = ["BENCH_SCHEMA_VERSION", "bench_environment",
           "write_bench_snapshot", "append_history", "measure_events_per_s",
           "PINNED_SCENARIO"]

#: bump when the envelope layout changes incompatibly
#: (v2: required top-level ``events_per_s`` + BENCH_HISTORY.jsonl append)
BENCH_SCHEMA_VERSION = 2

#: the repo's pinned measurement scenario (same as BENCH_PR2 since PR 2):
#: 2 receivers on 100 Mbps, 2 MB memory-to-memory, 512K buffers
PINNED_SCENARIO = {
    "kind": "lan", "receivers": 2, "seed": 7,
    "bandwidth_bps": 100e6, "nbytes": 2_000_000, "sndbuf": 512 * 1024,
}


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def bench_environment() -> dict:
    """The envelope every ``BENCH_*.json`` snapshot shares."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "host": platform.node() or "unknown",
    }


def append_history(history_path: str, name: str, events_per_s: float,
                   environment: dict | None = None,
                   extra: dict | None = None) -> dict:
    """Append one trajectory row to ``BENCH_HISTORY.jsonl``.

    Rows are single-line JSON, newest last, each carrying the canonical
    metric plus enough environment to judge comparability.  The wall
    date is recorded for the humans reading the log; nothing simulated
    depends on it.

    Re-running a bench at the same revision *replaces* the previous
    ``(bench, git_rev)`` row instead of appending a duplicate -- the
    history is one point per bench per revision, so rerunning the
    suite locally can't make the trajectory double-count.
    """
    environment = environment or bench_environment()
    row = {
        "bench": name,
        "events_per_s": round(float(events_per_s), 1),
        "git_rev": environment.get("git_rev", "unknown"),
        "python": environment.get("python", "unknown"),
        "host": environment.get("host", "unknown"),
        "cpus": environment.get("cpus", 1),
        "schema_version": BENCH_SCHEMA_VERSION,
        "date": time.strftime("%Y-%m-%d", time.gmtime()),
    }
    if extra:
        row.update(extra)
    kept: list[str] = []
    if os.path.exists(history_path):
        with open(history_path) as fh:
            for line in fh:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    prev = json.loads(stripped)
                except json.JSONDecodeError:
                    kept.append(stripped)     # keep junk lines verbatim
                    continue
                if (isinstance(prev, dict)
                        and prev.get("bench") == row["bench"]
                        and prev.get("git_rev") == row["git_rev"]):
                    continue                  # superseded by this run
                kept.append(stripped)
    kept.append(json.dumps(row, sort_keys=True))
    with open(history_path, "w") as fh:
        fh.write("\n".join(kept) + "\n")
    return row


def write_bench_snapshot(path: str, name: str, payload: dict, *,
                         events_per_s: float,
                         history_path: str | None = None,
                         history: bool = True) -> dict:
    """Write ``payload`` wrapped in the shared envelope; returns the
    full document (also pretty-printed to stdout by callers).

    ``events_per_s`` is mandatory in schema v2: whatever else a bench
    measures, it must report the canonical engine-throughput metric so
    every snapshot is a point on the same trajectory.  Unless
    ``history=False``, one row is appended to ``history_path``
    (default: ``BENCH_HISTORY.jsonl`` next to the snapshot).
    """
    env = bench_environment()
    doc = {
        "bench": name,
        "environment": env,
        "events_per_s": round(float(events_per_s), 1),
        **payload,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if history:
        if history_path is None:
            history_path = os.path.join(
                os.path.dirname(os.path.abspath(path)),
                "BENCH_HISTORY.jsonl")
        append_history(history_path, name, events_per_s, env)
    return doc


def measure_events_per_s(*, repeats: int = 1, nbytes: int | None = None,
                         receivers: int | None = None) -> dict:
    """Run the pinned measurement scenario bare (no observability) and
    return ``{"events_per_s", "sim_events", "wall_s", "scenario"}``.

    The calibration primitive behind ``hrmc perf compare --fresh`` and
    the CI gate: same scenario as ``BENCH_PR2.json``, best of
    ``repeats`` runs (the max events/s -- wall-clock noise only ever
    slows a run down).  Imports lazily so the stats layer stays cheap
    to import.
    """
    from time import perf_counter

    from repro.harness.runner import run_transfer
    from repro.workloads.scenarios import build_lan

    scenario = dict(PINNED_SCENARIO)
    if nbytes is not None:
        scenario["nbytes"] = int(nbytes)
    if receivers is not None:
        scenario["receivers"] = int(receivers)
    best = None
    for _ in range(max(1, int(repeats))):
        sc = build_lan(scenario["receivers"], scenario["bandwidth_bps"],
                       seed=scenario["seed"])
        t0 = perf_counter()
        res = run_transfer(sc, nbytes=scenario["nbytes"],
                           sndbuf=scenario["sndbuf"])
        wall_s = perf_counter() - t0
        if not res.ok:
            raise RuntimeError("pinned measurement scenario failed")
        eps = res.sim_events / wall_s
        if best is None or eps > best["events_per_s"]:
            best = {"events_per_s": round(eps, 1),
                    "sim_events": res.sim_events,
                    "wall_s": round(wall_s, 3)}
    assert best is not None
    best["scenario"] = scenario
    return best
