"""Shared schema for the repo's ``BENCH_*.json`` snapshots.

Every per-PR benchmark (``BENCH_PR2.json`` engine snapshot,
``BENCH_PR3.json`` lineage overhead, ``BENCH_PR4.json`` fleet speedup,
...) wraps its payload with :func:`write_bench_snapshot`, so all
snapshots carry the same envelope -- schema version, git revision,
python version and host information -- and stay comparable across PRs
and machines.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys

__all__ = ["BENCH_SCHEMA_VERSION", "bench_environment",
           "write_bench_snapshot"]

#: bump when the envelope layout changes incompatibly
BENCH_SCHEMA_VERSION = 1


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def bench_environment() -> dict:
    """The envelope every ``BENCH_*.json`` snapshot shares."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "host": platform.node() or "unknown",
    }


def write_bench_snapshot(path: str, name: str, payload: dict) -> dict:
    """Write ``payload`` wrapped in the shared envelope; returns the
    full document (also pretty-printed to stdout by callers)."""
    doc = {
        "bench": name,
        "environment": bench_environment(),
        **payload,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
