"""Plain-text table formatting for experiment output.

The harness prints each reproduced table/figure as an aligned text
table (the same rows/series the paper plots), so results are readable
in CI logs and diffable across runs.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned text table with a title rule."""
    str_rows = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, "=" * len(title), line(headers), rule]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
