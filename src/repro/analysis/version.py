"""The simlint rule-set version.

Kept in a leaf module with no imports so that anything may depend on it
without dragging in the analyzer (notably
:mod:`repro.fleet.fingerprint`, which mixes this constant into the
protocol-code fingerprint: a rule-set bump invalidates every cached
fleet result, because results that an older analyzer blessed may now be
produced by code the newer analyzer rejects).

Bump the version whenever a rule's observable behaviour changes -- a
new rule, a scope change, a fixed false negative.  Pure refactors of
the analyzer do *not* require a bump (the ``analysis`` package is
excluded from the fingerprint's file walk for exactly this reason).
"""

from __future__ import annotations

__all__ = ["RULESET_VERSION"]

#: bump on any observable rule-behaviour change (see module docstring)
#: simlint-2: R1 also flags tracemalloc/gc measurement calls, and the
#: wall-clock allowlist gained the repro.obs.perf boundary
RULESET_VERSION = "simlint-2"
