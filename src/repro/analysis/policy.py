"""Which rules apply where.

The scoping decisions live here, in one place, so the rule modules stay
pure detectors and a reviewer can audit the whole policy at a glance.

The mental model: *everything under* ``repro`` *is simulation path
unless it is explicitly carved out below*.  The carve-outs are the
boundary layers that legitimately talk to the host machine -- the CLI
harness (progress timing), the wall-clock side of the dual profiler,
the fleet executor (worker wall-clock timeouts) and the bench
envelope.  New carve-outs belong in this file, in a PR, with a reason
-- not scattered through the tree as suppressions.
"""

from __future__ import annotations

from repro.analysis.context import ModuleContext

__all__ = [
    "WALLCLOCK_ALLOWED", "RNG_ALLOWED", "GLOBAL_STATE_PACKAGES",
    "FORK_ALLOWED", "SIGNAL_HANDLER_ALLOWED", "ORDERING_PACKAGES",
    "wallclock_allowed", "rng_allowed", "global_state_scoped",
    "fork_allowed", "signal_handler_allowed", "ordering_scoped",
]

#: modules that may read the host clock: harness progress output, the
#: wall half of the dual profiler, the performance observatory (wall
#: attribution, stack sampling, tracemalloc/gc accounting), executor
#: job timeouts, bench envelope + trajectory
WALLCLOCK_ALLOWED = (
    "repro.harness",
    "repro.obs.profiler",
    "repro.obs.perf",
    "repro.fleet.executor",
    "repro.stats.bench",
)

#: the one module allowed to touch the stdlib ``random`` module: it is
#: where the seeded per-component substreams are minted
RNG_ALLOWED = ("repro.sim.rng",)

#: packages where module-global mutable state is banned outright (the
#: PR 4 packet-id-counter bug class: cross-run contamination inside one
#: worker process)
GLOBAL_STATE_PACKAGES = (
    "repro.sim", "repro.net", "repro.kernel", "repro.core",
)

#: packages where unordered-iteration hazards are checked (scheduling,
#: serialization and hashing paths)
ORDERING_PACKAGES = (
    "repro.sim", "repro.net", "repro.kernel", "repro.core",
    "repro.faults", "repro.trace", "repro.obs", "repro.stats",
    "repro.fleet", "repro.workloads", "repro.baselines", "repro.apps",
    "repro.analysis",
)

#: the only package that may reach fork/subprocess machinery at all
FORK_ALLOWED = ("repro.fleet", "repro.stats.bench")

#: the only module that may install signal handlers / arm timers
#: (per-job SIGALRM wall-clock timeouts around worker runs)
SIGNAL_HANDLER_ALLOWED = ("repro.fleet.worker",)


def wallclock_allowed(ctx: ModuleContext) -> bool:
    return ctx.in_package(*WALLCLOCK_ALLOWED)


def rng_allowed(ctx: ModuleContext) -> bool:
    return ctx.in_package(*RNG_ALLOWED)


def global_state_scoped(ctx: ModuleContext) -> bool:
    return ctx.in_package(*GLOBAL_STATE_PACKAGES)


def ordering_scoped(ctx: ModuleContext) -> bool:
    # the ordering rule also applies to code outside repro (fixtures,
    # scripts): nothing about it is repo-specific
    return ordering_default(ctx) or ctx.in_package(*ORDERING_PACKAGES)


def ordering_default(ctx: ModuleContext) -> bool:
    return not ctx.module.startswith("repro.")


def fork_allowed(ctx: ModuleContext) -> bool:
    return ctx.in_package(*FORK_ALLOWED)


def signal_handler_allowed(ctx: ModuleContext) -> bool:
    return ctx.in_package(*SIGNAL_HANDLER_ALLOWED)
