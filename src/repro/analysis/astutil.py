"""Small AST helpers shared by the rules.

The central piece is :class:`ImportMap`: rules match *what a name
resolves to*, not its surface spelling, so ``import time as t; t.time()``
and ``from time import time as now; now()`` are both caught.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["ImportMap", "dotted_name", "walk_scoped", "call_name",
           "is_generator_fn", "FunctionDefLike"]

FunctionDefLike = (ast.FunctionDef, ast.AsyncFunctionDef)


class ImportMap:
    """Maps local names to the fully-qualified things they import.

    ``import time as t``           ->  t: "time"
    ``from time import time``      ->  time: "time.time"
    ``from datetime import datetime as dt`` -> dt: "datetime.datetime"
    """

    def __init__(self, tree: ast.Module) -> None:
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.names[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: out of scope
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted name for a Name/Attribute expression,
        resolving the leading segment through the import table."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.names.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base

    def imports_module(self, module: str) -> list[tuple[str, str]]:
        """(local name, target) pairs whose target is ``module`` or
        lives under it."""
        out = []
        for local, target in sorted(self.names.items()):
            if target == module or target.startswith(module + "."):
                out.append((local, target))
        return out


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Attribute/Name chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    return dotted_name(node.func)


def is_generator_fn(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True if ``fn`` itself contains yield (ignoring nested defs)."""
    for node in walk_scoped(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def walk_scoped(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested function or
    class definitions (lambdas are descended: they share the frame's
    determinism obligations and cannot contain yield)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (*FunctionDefLike, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
