"""Text and JSON reporters over an :class:`AnalysisReport`.

Both formats are deterministic: findings arrive sorted from the runner
and the JSON document uses sorted keys, so two runs over the same tree
produce byte-identical reports (the CI artifact diff is meaningful).
"""

from __future__ import annotations

import json

from repro.analysis.runner import AnalysisReport
from repro.analysis.version import RULESET_VERSION

__all__ = ["render_text", "render_json"]


def render_text(report: AnalysisReport) -> str:
    out: list[str] = []
    for path, err in report.parse_errors:
        out.append(f"{path}: PARSE parse error: {err}")
    for finding in report.findings:
        out.append(finding.format_text())
    if report.stale_baseline:
        out.append("")
        out.append(f"stale baseline entries ({len(report.stale_baseline)}) "
                   f"-- the code is fixed; run --update-baseline to drop:")
        for key in report.stale_baseline:
            out.append(f"  {key}")
    out.append("")
    gate = len(report.findings) + len(report.parse_errors)
    summary = (f"simlint ({RULESET_VERSION}): {report.files_scanned} files, "
               f"{gate} finding(s)")
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    out.append(summary)
    return "\n".join(out) + "\n"


def render_json(report: AnalysisReport) -> str:
    doc = {
        "ruleset": RULESET_VERSION,
        "files_scanned": report.files_scanned,
        "findings": [f.as_dict() for f in report.findings],
        "baselined": [f.as_dict() for f in report.baselined],
        "suppressed": report.suppressed,
        "stale_baseline": report.stale_baseline,
        "parse_errors": [{"path": p, "error": e}
                         for p, e in report.parse_errors],
        "counts_by_rule": report.counts_by_rule(),
        "ok": report.ok,
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
