"""Pluggable rule registry.

A rule is a class with ``id``/``title``/``hint`` metadata, an
``applies_to(ctx)`` scope predicate (usually delegating to
:mod:`repro.analysis.policy`) and a ``check(ctx)`` generator of
findings.  Registration happens at import time via the
:func:`register` decorator; :mod:`repro.analysis.rules` imports every
rule module, so ``all_rules()`` is complete once that package loads.
"""

from __future__ import annotations

import ast
from typing import Iterator, Type

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

__all__ = ["Rule", "register", "all_rules", "rule_ids", "get_rule"]


class Rule:
    """Base class; subclasses override the class attributes and check()."""

    id: str = ""
    title: str = ""
    #: one-line fix guidance attached to every finding of this rule
    hint: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    # convenience for subclasses
    def found(self, ctx: ModuleContext, node: ast.AST,
              message: str) -> Finding:
        return ctx.finding(node, self.id, message, hint=self.hint)


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in stable rule-id order."""
    import repro.analysis.rules  # noqa: F401  (populates the registry)
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    import repro.analysis.rules  # noqa: F401
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401
    return _REGISTRY[rule_id]
