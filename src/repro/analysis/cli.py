"""``python -m repro.analysis`` -- the simlint command line.

Exit codes: 0 clean (baselined/suppressed findings don't gate), 1 new
findings or parse errors, 2 usage or environment errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.registry import all_rules
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import analyze_paths
from repro.analysis.version import RULESET_VERSION

__all__ = ["main"]

DEFAULT_BASELINE = "simlint.baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism & simulation-safety static "
                    "analysis for the H-RMC protocol stack")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to analyze "
                        "(default: src/repro)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help=f"baseline file (default: ./{DEFAULT_BASELINE} "
                        f"when it exists)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from current findings "
                        "and exit 0")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--ruleset-version", action="store_true",
                   help="print the rule-set version and exit")
    return p


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.ruleset_version:
        print(RULESET_VERSION)
        return 0
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
            print(f"      fix: {rule.hint}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"simlint: no such path: {p}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline_path(args)
    baseline = None
    if baseline_path is not None and baseline_path.exists() and \
            not args.update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"simlint: {exc}", file=sys.stderr)
            return 2
        if baseline.ruleset != RULESET_VERSION:
            print(f"simlint: baseline was written by "
                  f"{baseline.ruleset or 'an unknown ruleset'}, current "
                  f"is {RULESET_VERSION}; re-run --update-baseline",
                  file=sys.stderr)
            return 2

    report = analyze_paths(paths, baseline=baseline)

    if args.update_baseline:
        if baseline_path is None:
            print("simlint: --update-baseline needs --baseline FILE "
                  "(or run from the repo root)", file=sys.stderr)
            return 2
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"simlint: baseline {baseline_path} updated with "
              f"{len(report.findings)} finding(s)", file=sys.stderr)
        return 0

    render = render_json if args.format == "json" else render_text
    sys.stdout.write(render(report))
    return 0 if report.ok else 1


def _resolve_baseline_path(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path.cwd() / DEFAULT_BASELINE
    if default.exists() or args.update_baseline:
        return default
    return None
