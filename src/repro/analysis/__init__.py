"""simlint: determinism & simulation-safety static analysis.

An AST-based analyzer with a pluggable rule registry that enforces the
repo's core guarantee -- byte-identical, cross-run-deterministic
simulation -- as code, not reviewer folklore.  The rule catalog
(``python -m repro.analysis --list-rules``):

* **R1** no wall-clock reads on the simulation path
* **R2** all randomness flows through ``repro.sim.rng``
* **R3** no module-global mutable state in protocol packages
* **R4** no unordered iteration into order-sensitive paths
* **R5** ``id()``/``hash()`` values must not escape the process
* **R6** generator-process discipline (scheduled, never called bare;
  yields only sim awaitables)
* **R7** fork/signal machinery confined to ``repro.fleet``

See DESIGN.md §5f for the catalog rationale and the mapping onto the
kernel-fault taxonomy of *Faults in Linux 2.6* (Palix et al.).
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.findings import Finding, baseline_key
from repro.analysis.registry import Rule, all_rules, get_rule, rule_ids
from repro.analysis.runner import (AnalysisReport, analyze_paths,
                                   analyze_source)
from repro.analysis.version import RULESET_VERSION

__all__ = [
    "AnalysisReport", "Baseline", "BaselineError", "Finding", "Rule",
    "RULESET_VERSION", "all_rules", "analyze_paths", "analyze_source",
    "baseline_key", "get_rule", "rule_ids",
]
