"""Per-module analysis context: source, AST, module name, suppressions.

Suppression syntax (checked, not free-form):

.. code-block:: python

    self._hooked.add(id(sender))   # simlint: ok[R5] identity key, in-memory only

``ok[R5,R3]`` suppresses several rules on one line.  The reason text is
mandatory -- a suppression without one is itself reported (rule ``SUP``)
so silencing the analyzer always leaves a written justification behind.
A suppression on a line that holds *only* the comment applies to the
next source line (for statements too long to share a line with their
justification).

A fixture or vendored file may pin the module identity the policy layer
sees with a directive comment near the top of the file::

    # simlint: module=repro.net.some_module
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["ModuleContext", "SuppressionError", "module_name_for_path"]

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ok\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*?)\s*$")
_DIRECTIVE_RE = re.compile(r"#\s*simlint:\s*module=(?P<module>[A-Za-z0-9_.]+)")
_RULE_ID_RE = re.compile(r"^(R\d+|SUP)$")
#: any simlint marker, used to catch misspelled directives
_MARKER_RE = re.compile(r"#\s*simlint:")


class SuppressionError(ValueError):
    """A malformed ``# simlint:`` comment (bad rule id, missing reason)."""


@dataclass
class Suppression:
    line: int           # line the suppression applies to
    comment_line: int   # line the comment itself is on
    rules: frozenset[str]
    reason: str
    used: bool = False


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: malformed simlint comments, reported as rule ``SUP`` findings
    marker_errors: list[Finding] = field(default_factory=list)
    #: findings silenced by per-line suppressions (set by the runner)
    suppressed_count: int = 0

    @classmethod
    def from_source(cls, source: str, path: str,
                    module: str | None = None) -> "ModuleContext":
        """Parse ``source``; ``module`` overrides path-derived naming
        (itself overridden by an in-file ``module=`` directive)."""
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        directive = _find_directive(lines)
        if directive is not None:
            module = directive
        elif module is None:
            module = module_name_for_path(Path(path))
        ctx = cls(path=path, module=module, source=source, tree=tree,
                  lines=lines)
        _collect_suppressions(ctx)
        return ctx

    @classmethod
    def from_file(cls, path: Path, module: str | None = None) -> "ModuleContext":
        return cls.from_source(path.read_text(encoding="utf-8"), str(path),
                               module=module)

    # -- helpers for rules ------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, node: ast.AST, rule: str, message: str,
                hint: str = "") -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(path=self.path, line=line, col=col, rule=rule,
                       message=message, hint=hint,
                       line_text=self.line_text(line))

    def in_package(self, *packages: str) -> bool:
        """True if the module lives under any of the dotted prefixes."""
        for pkg in packages:
            if self.module == pkg or self.module.startswith(pkg + "."):
                return True
        return False

    def suppressed(self, finding: Finding) -> bool:
        supp = self.suppressions.get(finding.line)
        if supp is not None and finding.rule in supp.rules:
            supp.used = True
            return True
        return False


def module_name_for_path(path: Path) -> str:
    """Dotted module name derived from package structure on disk.

    Walks up through directories containing ``__init__.py`` -- e.g.
    ``src/repro/net/packet.py`` becomes ``repro.net.packet``.  A file
    outside any package is just its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _comments(source: str) -> list[tuple[int, int, str]]:
    """(line, col, text) for every comment token.  Tokenizing -- rather
    than scanning raw lines -- keeps string literals that merely *talk*
    about simlint markers from being parsed as markers."""
    out: list[tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the AST parse already succeeded; partial comments are fine
    return out


def _find_directive(lines: list[str]) -> str | None:
    # only honoured in the first 10 lines, like coding: cookies
    source = "\n".join(lines[:10])
    for _, _, text in _comments(source):
        m = _DIRECTIVE_RE.search(text)
        if m:
            return m.group("module")
    return None


def _collect_suppressions(ctx: ModuleContext) -> None:
    for lineno, col, raw in _comments(ctx.source):
        if "simlint" not in raw:
            continue
        m = _SUPPRESS_RE.search(raw)
        if m is None:
            if _MARKER_RE.search(raw) and _DIRECTIVE_RE.search(raw) is None:
                ctx.marker_errors.append(Finding(
                    path=ctx.path, line=lineno, col=col + 1,
                    rule="SUP",
                    message="malformed simlint comment (expected "
                            "'# simlint: ok[RULE] reason' or "
                            "'# simlint: module=NAME')",
                    hint="fix the marker or delete it; simlint refuses "
                         "to guess at intent",
                    line_text=ctx.line_text(lineno)))
            continue
        rules = frozenset(
            r.strip() for r in m.group("rules").split(",") if r.strip())
        reason = m.group("reason")
        bad = sorted(r for r in rules if not _RULE_ID_RE.match(r))
        problem = None
        if not rules:
            problem = "suppression lists no rule ids"
        elif bad:
            problem = f"unknown rule id(s) {', '.join(bad)}"
        elif not reason:
            problem = "suppression has no reason text"
        if problem is not None:
            ctx.marker_errors.append(Finding(
                path=ctx.path, line=lineno, col=col + 1,
                rule="SUP",
                message=f"bad suppression: {problem}",
                hint="write '# simlint: ok[R5] <why this is safe>'",
                line_text=ctx.line_text(lineno)))
            continue
        # a comment-only line suppresses the next line
        target = lineno
        if ctx.line_text(lineno).startswith("#"):
            target = lineno + 1
        ctx.suppressions[target] = Suppression(
            line=target, comment_line=lineno, rules=rules, reason=reason)
