"""Drives the rules over files and folds in suppressions + baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules, rule_ids

__all__ = ["AnalysisReport", "analyze_paths", "analyze_source",
           "iter_python_files"]


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    #: findings that gate (not suppressed, not baselined), sorted
    findings: list[Finding] = field(default_factory=list)
    #: findings absorbed by the committed baseline
    baselined: list[Finding] = field(default_factory=list)
    #: count of findings silenced by per-line suppressions
    suppressed: int = 0
    #: baseline entries whose code got fixed -- removable
    stale_baseline: list[str] = field(default_factory=list)
    files_scanned: int = 0
    #: files that failed to parse, as (path, error) -- these gate too
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list
    (sorted by posix-style path string: stable across machines)."""
    seen: dict[str, Path] = {}
    for p in paths:
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen[f.as_posix()] = f
        elif p.suffix == ".py":
            seen[p.as_posix()] = p
    return [seen[k] for k in sorted(seen)]


def analyze_source(source: str, path: str = "<string>",
                   module: str | None = None) -> list[Finding]:
    """Analyze one module from text; returns gating findings (after
    per-line suppressions, no baseline).  The primary test entry point
    and the engine behind per-file analysis."""
    ctx = ModuleContext.from_source(source, path, module=module)
    return _run_rules(ctx)


def analyze_paths(paths: list[Path],
                  baseline: Baseline | None = None) -> AnalysisReport:
    report = AnalysisReport()
    known = set(rule_ids()) | {"SUP"}
    for path in iter_python_files(paths):
        report.files_scanned += 1
        try:
            ctx = ModuleContext.from_source(
                path.read_text(encoding="utf-8"), path.as_posix())
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            report.parse_errors.append((path.as_posix(), str(exc)))
            continue
        raw = _run_rules(ctx, known_ids=known)
        report.suppressed += ctx.suppressed_count
        for finding in raw:
            if baseline is not None and baseline.absorbs(finding):
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = baseline.stale_keys()
    report.findings.sort()
    report.baselined.sort()
    return report


def _run_rules(ctx: ModuleContext,
               known_ids: set[str] | None = None) -> list[Finding]:
    if known_ids is None:
        known_ids = set(rule_ids()) | {"SUP"}
    findings: list[Finding] = list(ctx.marker_errors)
    for supp in ctx.suppressions.values():
        unknown = sorted(supp.rules - known_ids)
        if unknown:
            findings.append(Finding(
                path=ctx.path, line=supp.comment_line, col=1, rule="SUP",
                message=f"suppression names unknown rule(s) "
                        f"{', '.join(unknown)}",
                hint=f"known rules: {', '.join(sorted(known_ids))}",
                line_text=ctx.line_text(supp.comment_line)))
    for rule in all_rules():
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressed(finding):
                ctx.suppressed_count += 1
                continue
            findings.append(finding)
    findings.sort()
    return findings
