"""Finding model shared by every simlint rule and reporter."""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field, replace

__all__ = ["Finding", "baseline_key"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orders by ``(path, line, col, rule)`` so every reporter and the
    baseline file see the same deterministic sequence regardless of
    rule-execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = field(compare=False, default="")
    #: source text of the offending line (stripped); carried so the
    #: baseline can match findings by content rather than line number
    line_text: str = field(compare=False, default="")

    def format_text(self) -> str:
        out = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }

    def relocate(self, path: str) -> "Finding":
        return replace(self, path=path)


def baseline_key(finding: Finding) -> str:
    """Content-addressed key for baseline matching.

    Uses the *text* of the offending line, not its number, so pure
    line-shifting edits (a docstring grows above the finding) neither
    break the match nor let a finding escape the baseline.
    """
    path = posixpath.normpath(finding.path.replace("\\", "/"))
    return f"{finding.rule}|{path}|{finding.line_text}"
