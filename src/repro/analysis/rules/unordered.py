"""R4: unordered iteration feeding ordered consumers.

Python ``set`` iteration order depends on insertion history and -- for
``str`` elements -- on ``PYTHONHASHSEED``; directory listings depend on
the filesystem.  Either one flowing into scheduling, serialization or
hashing makes two identical runs diverge.  (Plain ``dict`` iteration is
*not* flagged: insertion order is a language guarantee since 3.7, and
the codebase leans on it.)

Detected, per function scope:

* iterating a set display / ``set(...)`` / ``frozenset(...)`` result,
  directly or through a simple local variable, without ``sorted()``;
* passing such a value to an order-materialising callable
  (``list``/``tuple``/``join``/``enumerate``);
* iterating ``os.listdir``/``os.scandir``/``glob.glob``/
  ``Path.iterdir``/``.glob``/``.rglob`` results without ``sorted()``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import policy
from repro.analysis.astutil import (FunctionDefLike, ImportMap, dotted_name,
                                    walk_scoped)
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

_FS_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob",
                       "glob.iglob"})
_FS_METHODS = frozenset({"iterdir", "glob", "rglob"})
_MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})
#: callables whose result does not depend on argument order -- a
#: comprehension fed straight into one of these is safe
_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set",
    "frozenset", "dict", "collections.Counter",
})


@register
class UnorderedIterationRule(Rule):
    id = "R4"
    title = "unordered iteration in an order-sensitive path"
    hint = ("wrap the iterable in sorted(...) with a deterministic key "
            "(sets and directory listings have no stable order across "
            "runs/machines)")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return policy.ordering_scoped(ctx)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(n for n in ast.walk(ctx.tree)
                      if isinstance(n, FunctionDefLike))
        for scope in scopes:
            yield from self._check_scope(ctx, imports, scope)

    # -- one lexical scope at a time --------------------------------------

    def _check_scope(self, ctx: ModuleContext, imports: ImportMap,
                     scope: ast.AST) -> Iterator[Finding]:
        set_vars = self._collect_set_vars(scope)
        exempt = self._order_insensitive_comprehensions(scope)
        for node in walk_scoped(scope):
            for iter_expr, what in self._iteration_sites(node):
                if any(iter_expr is e for e in exempt):
                    continue
                why = self._unordered(imports, iter_expr, set_vars)
                if why is not None:
                    yield self.found(
                        ctx, iter_expr,
                        f"{what} over {why} has no stable order")

    def _order_insensitive_comprehensions(self, scope: ast.AST) -> \
            list[ast.expr]:
        """Iter expressions of comprehensions passed *directly* to an
        order-insensitive callable (``sorted(x for x in s)`` re-imposes
        order; the inner set walk is harmless)."""
        out: list[ast.expr] = []
        for node in walk_scoped(scope):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name not in _ORDER_INSENSITIVE:
                continue
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                    ast.SetComp, ast.DictComp)):
                    out.extend(gen.iter for gen in arg.generators)
                else:
                    out.append(arg)
        return out

    def _collect_set_vars(self, scope: ast.AST) -> set[str]:
        """Local names assigned a set value somewhere in this scope
        (single assignment target, no reassignment tracking -- simple
        on purpose; a name ever holding a set is treated as one)."""
        out: set[str] = set()
        for node in walk_scoped(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                if self._is_set_expr(node.value):
                    out.add(node.targets[0].id)
        return out

    def _iteration_sites(self, node: ast.AST) -> \
            Iterator[tuple[ast.expr, str]]:
        if isinstance(node, ast.For):
            yield node.iter, "for-loop"
        elif isinstance(node, ast.comprehension):
            yield node.iter, "comprehension"
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _MATERIALIZERS and node.args:
                yield node.args[0], f"{name}(...)"
            elif isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "join" and node.args:
                yield node.args[0], "str.join"
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("min", "max") and \
                    len(node.args) == 1:
                # min/max of a set is order-independent -- fine
                return

    def _unordered(self, imports: ImportMap, expr: ast.expr,
                   set_vars: set[str]) -> str | None:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set display"
        if isinstance(expr, ast.Name) and expr.id in set_vars:
            return f"set variable '{expr.id}'"
        if isinstance(expr, ast.Call):
            name = imports.resolve(expr.func) or dotted_name(expr.func)
            if name in ("set", "frozenset"):
                return f"{name}(...)"
            if name in _FS_CALLS:
                return f"{name}(...) (filesystem order)"
            if isinstance(expr.func, ast.Attribute) and \
                    expr.func.attr in _FS_METHODS:
                return f".{expr.func.attr}(...) (filesystem order)"
        return None

    def _is_set_expr(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            return name in ("set", "frozenset")
        return False
