"""R7: fork/signal machinery stays inside ``repro.fleet``.

Signal handlers are process-global: one installed from protocol code
would fire inside whichever run the worker happens to be executing.
Fork/subprocess reachability outside the fleet likewise breaks the
"a worker computes a pure function of its RunSpec" contract that the
content-addressed cache depends on.  Policy: ``os.fork``/``multi-
processing``/``subprocess`` only under ``repro.fleet`` (plus the bench
envelope's ``git rev-parse``); handler installation (``signal.signal``,
``setitimer``, ``alarm``) only in ``repro.fleet.worker``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import policy
from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

_FORK_CALLS = frozenset({
    "os.fork", "os.forkpty", "os.kill", "os.waitpid", "os.wait",
    "os.system", "os.popen", "os.execv", "os.execve", "os.spawnv",
})
_FORK_MODULES = ("multiprocessing", "subprocess", "concurrent.futures",
                 "signal")
_HANDLER_CALLS = frozenset({
    "signal.signal", "signal.setitimer", "signal.alarm",
    "signal.sigaction", "signal.pthread_kill", "signal.raise_signal",
})


@register
class ForkSignalRule(Rule):
    id = "R7"
    title = "fork/signal machinery outside repro.fleet"
    hint = ("process management belongs to the fleet layer "
            "(repro.fleet.worker for handlers); protocol and model "
            "code must stay fork- and signal-free")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        fork_ok = policy.fork_allowed(ctx)
        handler_ok = policy.signal_handler_allowed(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)) and \
                    not fork_ok:
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                resolved = imports.resolve(node.func) or \
                    dotted_name(node.func)
                if resolved in _FORK_CALLS and not fork_ok:
                    yield self.found(
                        ctx, node,
                        f"'{resolved}(...)' outside repro.fleet")
                elif resolved in _HANDLER_CALLS and not handler_ok:
                    yield self.found(
                        ctx, node,
                        f"'{resolved}(...)' installs process-global "
                        f"signal state outside repro.fleet.worker")

    def _check_import(self, ctx: ModuleContext,
                      node: ast.Import | ast.ImportFrom) -> \
            Iterator[Finding]:
        if isinstance(node, ast.Import):
            modules = [a.name for a in node.names]
        else:
            if node.level or node.module is None:
                return
            modules = [node.module]
        for mod in modules:
            if any(mod == m or mod.startswith(m + ".")
                   for m in _FORK_MODULES):
                yield self.found(
                    ctx, node,
                    f"import of '{mod}' (fork/subprocess reachability) "
                    f"outside repro.fleet")
