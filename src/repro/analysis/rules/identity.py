"""R5: ``id()`` / ``hash()`` values must not escape the process.

``id()`` is an address: unique only for the lifetime of one object in
one process, different on every run.  Builtin ``hash()`` of a ``str``
depends on ``PYTHONHASHSEED``.  Either one reaching serialized output,
a content hash, or a cache key poisons cross-run comparison -- and both
are invisible in review because the *values* look plausible.

The rule flags every ``id(...)``/``hash(...)`` call on the simulation
path.  Legitimate in-memory uses (identity-keyed lookaside tables that
never serialize) carry a per-line suppression whose reason documents
exactly that confinement -- which is the audit trail we want.
Stable-hash helpers (``hashlib.*``) never match.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register


@register
class IdentityEscapeRule(Rule):
    id = "R5"
    title = "id()/hash() value may escape into output"
    hint = ("derive a stable name (address, sock.name, sequence "
            "number) instead; if the value provably never leaves "
            "process memory, suppress with the confinement as reason")

    def applies_to(self, ctx: ModuleContext) -> bool:
        # applies everywhere; __hash__ implementations are exempted
        # structurally below
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        exempt = self._hash_dunder_spans(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Name) and
                    node.func.id in ("id", "hash")):
                continue
            if any(lo <= node.lineno <= hi for lo, hi in exempt):
                continue
            fn = node.func.id
            why = ("an address" if fn == "id"
                   else "PYTHONHASHSEED-dependent for strings")
            yield self.found(
                ctx, node,
                f"'{fn}(...)' is process-local ({why}); it must never "
                f"reach serialized or content-hashed output")

    def _hash_dunder_spans(self, tree: ast.Module) -> \
            list[tuple[int, int]]:
        """Line spans of ``__hash__`` methods: calling ``hash()`` there
        (delegating to a field tuple) is the normal idiom."""
        spans = []
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and \
                    node.name == "__hash__":
                end = getattr(node, "end_lineno", node.lineno)
                spans.append((node.lineno, end))
        return spans
