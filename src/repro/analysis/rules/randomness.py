"""R2: all randomness flows through ``repro.sim.rng``.

The stdlib's module-level ``random`` functions share one hidden global
stream: any new call site perturbs every later draw, destroying paired
A/B comparisons, and an unseeded ``random.Random()`` seeds from the OS.
``repro.sim.rng.substream(master_seed, name)`` gives each component an
independent, stably-seeded stream instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import policy
from repro.analysis.astutil import ImportMap, call_name
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register


@register
class RandomnessRule(Rule):
    id = "R2"
    title = "global / unseeded randomness"
    hint = ("draw from repro.sim.rng.substream(master_seed, component) "
            "-- per-component seeded streams keep A/B runs paired")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not policy.rng_allowed(ctx)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        # the import itself is the finding for stdlib `random`: there is
        # no sanctioned direct use outside repro.sim.rng
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield self.found(
                            ctx, node,
                            "stdlib 'random' imported outside "
                            "repro.sim.rng")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self.found(
                        ctx, node,
                        "stdlib 'random' imported outside repro.sim.rng")
                elif node.module in ("numpy", "numpy.random") and \
                        not node.level:
                    for alias in node.names:
                        target = f"{node.module}.{alias.name}"
                        if target.startswith("numpy.random"):
                            yield self.found(
                                ctx, node,
                                "numpy global RNG imported; its state "
                                "is process-wide")
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, imports, node)
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load):
                resolved = imports.resolve(node)
                if resolved is not None and \
                        resolved.startswith("numpy.random."):
                    yield self.found(
                        ctx, node,
                        f"'{resolved}' uses numpy's process-global RNG")

    def _check_call(self, ctx: ModuleContext, imports: ImportMap,
                    node: ast.Call) -> Iterator[Finding]:
        name = call_name(node)
        if name is None:
            return
        resolved = imports.resolve(node.func) or name
        if resolved == "random.Random" and not node.args and \
                not node.keywords:
            yield self.found(
                ctx, node,
                "unseeded random.Random() seeds from the OS")
        elif resolved in ("random.seed", "numpy.random.seed"):
            yield self.found(
                ctx, node,
                f"'{resolved}' reseeds a process-global stream")
