"""R3: no module-global mutable state in protocol packages.

The PR 4 bug class: a module-level packet-id counter survived from one
run to the next inside a fleet worker process, so the packet stream --
and therefore the content-addressed cache key's *value* -- depended on
which runs the worker had executed before.  All per-run state must hang
off an object created per run (usually the ``Simulator``).

Two detectors:

* a module-level binding of an obviously mutable value (list/dict/set
  displays and comprehensions, ``list()``/``dict()``/``set()``/
  ``defaultdict()``/``deque()``/``Counter()``/``itertools.count()``/
  ``bytearray()`` calls) to a non-dunder name;
* any ``global`` statement in a function body -- rebinding a module
  name at runtime is the counter pattern itself.

``__all__``-style dunders are exempt; tuples and ``frozenset`` never
match (immutable is fine: that is the fix, not the bug).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import policy
from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict", "itertools.count",
})

_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)


@register
class GlobalStateRule(Rule):
    id = "R3"
    title = "module-global mutable state in a protocol package"
    hint = ("hang per-run state off an object created per run (e.g. "
            "the Simulator: sim.new_packet_id()); module globals leak "
            "state between runs inside one worker process")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return policy.global_state_scoped(ctx)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for stmt in ctx.tree.body:
            yield from self._check_module_binding(ctx, imports, stmt)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                names = ", ".join(node.names)
                yield self.found(
                    ctx, node,
                    f"'global {names}' rebinds module state at runtime "
                    f"(the PR 4 packet-id-counter pattern)")

    def _check_module_binding(self, ctx: ModuleContext, imports: ImportMap,
                              stmt: ast.stmt) -> Iterator[Finding]:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return
        names = [t.id for t in targets
                 if isinstance(t, ast.Name) and not _is_dunder(t.id)]
        if not names:
            return
        why = self._mutable_value(imports, value)
        if why is not None:
            yield self.found(
                ctx, stmt,
                f"module-global '{', '.join(names)}' binds mutable "
                f"{why} at import time")

    def _mutable_value(self, imports: ImportMap,
                       value: ast.expr) -> str | None:
        if isinstance(value, _MUTABLE_DISPLAYS):
            return type(value).__name__.lower().replace("comp",
                                                        " comprehension")
        if isinstance(value, ast.Call):
            name = imports.resolve(value.func) or dotted_name(value.func)
            if name in _MUTABLE_CALLS:
                return f"{name}(...)"
        return None


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")
