"""R6: generator-process discipline.

Sim processes are generator functions driven by
:class:`repro.sim.process.Process`.  Two bug shapes:

* **bare call** -- ``receiver_app(sock, n)`` as a statement creates the
  generator and silently discards it; the process never runs.  Must be
  ``Process(sim, receiver_app(...))`` or ``yield from receiver_app(...)``.
* **wrong awaitable** -- a process may ``yield`` only sim awaitables
  (``Delay``, a ``SimEvent``); yielding a constant or a wall-time call
  like ``time.sleep(...)`` either kills the process with a TypeError at
  runtime or -- worse -- blocks the whole engine on the host clock.

A function counts as a *process generator* when it is a generator and
either yields a ``Delay``/``SimEvent`` constructor call somewhere or is
named like one (``*_app``, ``*_proc``, ``*_process``).  The yield
checks look only at those, so unrelated utility generators (trace
iterators etc.) are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import (ImportMap, dotted_name,
                                    is_generator_fn, walk_scoped)
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules.wallclock import WALLCLOCK_CALLS

_AWAITABLE_CTORS = frozenset({"Delay", "SimEvent"})
_PROCESS_NAME_SUFFIXES = ("_app", "_proc", "_process")
_BLOCKING_CALLS = frozenset({"time.sleep"}) | WALLCLOCK_CALLS


@register
class ProcessDisciplineRule(Rule):
    id = "R6"
    title = "generator-process discipline violation"
    hint = ("schedule process generators via Process(sim, fn(...)) or "
            "compose with 'yield from'; inside one, yield only Delay/"
            "SimEvent awaitables")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        gen_fns = {node.name: node for node in ast.walk(ctx.tree)
                   if isinstance(node, ast.FunctionDef)
                   and is_generator_fn(node)}
        yield from self._check_bare_calls(ctx, gen_fns)
        for fn in gen_fns.values():
            if self._is_process_generator(fn):
                yield from self._check_yields(ctx, imports, fn)

    # -- bare calls -------------------------------------------------------

    def _check_bare_calls(self, ctx: ModuleContext,
                          gen_fns: dict[str, ast.FunctionDef]) -> \
            Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Expr) and
                    isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            if isinstance(func, ast.Name) and func.id in gen_fns:
                yield self.found(
                    ctx, node,
                    f"generator '{func.id}' called bare: the call "
                    f"builds a generator and discards it, so the "
                    f"process never runs")

    # -- yield discipline -------------------------------------------------

    def _is_process_generator(self, fn: ast.FunctionDef) -> bool:
        if fn.name.endswith(_PROCESS_NAME_SUFFIXES):
            return True
        for node in walk_scoped(fn):
            if isinstance(node, ast.Yield) and \
                    isinstance(node.value, ast.Call):
                name = dotted_name(node.value.func)
                if name in _AWAITABLE_CTORS:
                    return True
        return False

    def _check_yields(self, ctx: ModuleContext, imports: ImportMap,
                      fn: ast.FunctionDef) -> Iterator[Finding]:
        for node in walk_scoped(fn):
            if isinstance(node, ast.YieldFrom):
                yield from self._check_blocking(ctx, imports, node.value,
                                                "yield from")
                continue
            if not isinstance(node, ast.Yield):
                continue
            value = node.value
            if value is None:
                yield self.found(
                    ctx, node,
                    f"bare 'yield' in process generator '{fn.name}' "
                    f"yields None, which the engine rejects")
            elif isinstance(value, ast.Constant):
                yield self.found(
                    ctx, node,
                    f"process generator '{fn.name}' yields constant "
                    f"{value.value!r}; only Delay/SimEvent awaitables "
                    f"are schedulable")
            elif isinstance(value, ast.Call):
                yield from self._check_blocking(ctx, imports, value,
                                                "yield")

    def _check_blocking(self, ctx: ModuleContext, imports: ImportMap,
                        value: ast.expr, how: str) -> Iterator[Finding]:
        if not isinstance(value, ast.Call):
            return
        resolved = imports.resolve(value.func) or dotted_name(value.func)
        if resolved in _BLOCKING_CALLS:
            yield self.found(
                ctx, value,
                f"'{how} {resolved}(...)' blocks on the host, not "
                f"simulated time; use Delay(us)")
