"""R1: no wall-clock reads on the simulation path.

Simulated time comes from ``Simulator.now()``; a host-clock read in
protocol or model code makes behaviour depend on the machine's load and
breaks byte-identical replay.  The harness/profiler/executor/bench
carve-outs live in :mod:`repro.analysis.policy`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import policy
from repro.analysis.astutil import ImportMap
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: fully-qualified callables that read the host clock -- including the
#: process-level measurement machinery (tracemalloc, gc control): heap
#: and collector state vary with the hosting machine exactly like a
#: clock read, so they are fenced to the same boundary modules (the
#: perf observatory, repro.obs.perf)
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "tracemalloc.start", "tracemalloc.stop",
    "tracemalloc.take_snapshot", "tracemalloc.get_traced_memory",
    "tracemalloc.reset_peak", "tracemalloc.is_tracing",
    "gc.collect", "gc.enable", "gc.disable", "gc.freeze",
    "gc.set_threshold", "gc.set_debug",
})


@register
class WallClockRule(Rule):
    id = "R1"
    title = "wall-clock read on the simulation path"
    hint = ("use the simulator's clock (sim.now()) or move the code "
            "behind a policy carve-out (repro.analysis.policy."
            "WALLCLOCK_ALLOWED) if it is genuinely harness-side")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not policy.wallclock_allowed(ctx)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if isinstance(node.ctx if hasattr(node, "ctx") else None,
                          (ast.Store, ast.Del)):
                continue
            resolved = imports.resolve(node)
            if resolved in WALLCLOCK_CALLS:
                # report the outermost matching expression only: for
                # `time.time` the Name node `time` also resolves, but
                # to "time" which is not in the set, so no double fire
                yield self.found(
                    ctx, node,
                    f"wall-clock read '{resolved}' in simulation-path "
                    f"module {ctx.module}")
