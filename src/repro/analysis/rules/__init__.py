"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (forksignal, globalstate, identity,
                                  processes, randomness, unordered,
                                  wallclock)

__all__ = ["forksignal", "globalstate", "identity", "processes",
           "randomness", "unordered", "wallclock"]
