"""Committed-baseline support: legacy findings don't block, new ones do.

The baseline is canonical JSON (sorted keys, two-space indent, one
trailing newline) mapping content-addressed finding keys -- rule id,
path and offending line *text*, see
:func:`repro.analysis.findings.baseline_key` -- to occurrence counts.
``--update-baseline`` regenerates it; writing the same findings twice
produces byte-identical files, so baseline diffs in review are always
real changes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding, baseline_key
from repro.analysis.version import RULESET_VERSION

__all__ = ["Baseline", "BaselineError"]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Unreadable or structurally invalid baseline file."""


class Baseline:
    def __init__(self, counts: dict[str, int] | None = None,
                 ruleset: str = RULESET_VERSION) -> None:
        self.counts: dict[str, int] = dict(counts or {})
        self.ruleset = ruleset
        self._remaining = dict(self.counts)

    # -- IO ----------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") \
                from exc
        if not isinstance(data, dict) or \
                data.get("format") != _FORMAT_VERSION or \
                not isinstance(data.get("findings"), dict):
            raise BaselineError(
                f"baseline {path} is not a simlint baseline "
                f"(format {_FORMAT_VERSION})")
        counts = {}
        for key, n in data["findings"].items():
            if not isinstance(key, str) or not isinstance(n, int) or n < 1:
                raise BaselineError(
                    f"baseline {path}: bad entry {key!r}: {n!r}")
            counts[key] = n
        return cls(counts, ruleset=str(data.get("ruleset", "")))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        for f in findings:
            key = baseline_key(f)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    def dump(self) -> str:
        doc = {
            "format": _FORMAT_VERSION,
            "ruleset": RULESET_VERSION,
            "findings": {k: self.counts[k] for k in sorted(self.counts)},
        }
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def save(self, path: Path) -> None:
        path.write_text(self.dump(), encoding="utf-8")

    # -- matching ----------------------------------------------------------

    def absorbs(self, finding: Finding) -> bool:
        """True (and consumes one occurrence) if the finding is known."""
        key = baseline_key(finding)
        left = self._remaining.get(key, 0)
        if left > 0:
            self._remaining[key] = left - 1
            return True
        return False

    def stale_keys(self) -> list[str]:
        """Baseline entries no current finding consumed: the code got
        fixed, the entry is removable."""
        return sorted(k for k, n in self._remaining.items() if n > 0)
