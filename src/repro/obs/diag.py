"""Root-cause diagnosis over the causal DAG.

:class:`Diagnoser` answers the questions a protocol engineer actually
asks when a run misbehaves:

* :meth:`~Diagnoser.why` -- why did byte ``seq`` need recovery?  Walks
  backwards from the losses and the final delivery to the originating
  drop, fault-plan action or timer.
* :meth:`~Diagnoser.explain_worst` -- which recovery episodes cost the
  most, and what chain of events produced each?
* :meth:`~Diagnoser.why_stalled` -- the run stopped making progress:
  what was the frontier of pending events, and what lineage led there?

:class:`Watchdog` supplies the last answer *mid-run*: it rides the
observability scrape loop (it is deliberately passive -- a
self-scheduling watchdog and the pending-gated scrape loop would keep
each other alive forever) and compares a progress signature (receiver
``rcv_nxt`` values + sender ``snd_nxt``) between scrapes.  When the
signature freezes for ``stall_after_us`` of simulated time while events
are still being processed, it snapshots the frontier of pending engine
events -- callback site, due time, and the causal chain that scheduled
each -- which is exactly the state one wants when debugging a livelock
(events fire forever, nothing advances) or a stall (a timer chain keeps
the run alive without making progress).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.causal import CauseNode, LineageRecorder
from repro.obs.profiler import site_of

__all__ = ["Diagnoser", "Watchdog", "WhyReport", "StallReport",
           "format_chain"]


def format_chain(chain: list[CauseNode], truncated: bool) -> list[str]:
    """Render a backward walk, collapsing runs of identical periodic
    nodes (e.g. 14 consecutive ``timeout:transmit`` re-arms) into one
    line -- the repetition carries no diagnostic information."""
    lines: list[str] = []
    i = 0
    while i < len(chain):
        node = chain[i]
        j = i
        while (j + 1 < len(chain)
               and chain[j + 1].kind == node.kind
               and chain[j + 1].what == node.what
               and chain[j + 1].host == node.host):
            j += 1
        line = f"t={node.t_us:>10}  {node.label()}"
        if j > i:
            line += f"  (x{j - i + 1}, back to t={chain[j].t_us})"
        lines.append(line)
        i = j + 1
    if truncated:
        lines.append("          ... (lineage truncated: ring-pruned or "
                     "depth limit)")
    return lines


@dataclass
class WhyReport:
    """The answer to ``why(seq)``: every recorded loss of that byte
    range (with the fault action to blame, when one was armed) and the
    causal chain of its eventual recovery."""

    seq: int
    found: bool
    losses: list[tuple[CauseNode, Optional[CauseNode]]] \
        = field(default_factory=list)      # (drop node, blamed fault)
    deliveries: list[CauseNode] = field(default_factory=list)
    chains: list[tuple[str, list[str]]] = field(default_factory=list)
    note: str = ""

    def render(self) -> str:
        out = [f"why seq={self.seq}:"]
        if not self.found:
            out.append(f"  {self.note or 'no event covering this byte'}")
            return "\n".join(out)
        if self.losses:
            out.append(f"  lost {len(self.losses)} time(s):")
            for drop, fault in self.losses:
                line = f"    t={drop.t_us:>10}  {drop.label()}"
                if fault is not None:
                    line += f"  <- blamed on {fault.label()}"
                out.append(line)
        elif any(d.tries > 1 and any(e.tries <= 1 and e.host == d.host
                                     for e in self.deliveries)
                 for d in self.deliveries):
            out.append("  no drop of this byte recorded: the first copy "
                       "arrived, but a NAK range spanning a neighbouring "
                       "loss re-requested it")
        else:
            out.append("  no loss recorded (delivered first try, or the "
                       "drop happened before lineage attached)")
        for title, lines in self.chains:
            out.append(f"  {title}:")
            out.extend(f"    {ln}" for ln in lines)
        if self.note:
            out.append(f"  note: {self.note}")
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

    def root(self) -> Optional[CauseNode]:
        """The originating event: the blamed fault of the first loss if
        one exists, else the first loss itself."""
        if not self.losses:
            return None
        drop, fault = self.losses[0]
        return fault if fault is not None else drop


@dataclass
class StallReport:
    """Snapshot taken when simulated progress froze mid-run."""

    detected_at_us: int
    frozen_since_us: int
    signature: tuple
    pending_events: int
    frontier: list[tuple[int, str, list[str]]] \
        = field(default_factory=list)   # (due_us, callback site, chain)

    @property
    def stalled_for_us(self) -> int:
        return self.detected_at_us - self.frozen_since_us

    def render(self) -> str:
        out = [f"stall detected at t={self.detected_at_us}: no transport "
               f"progress since t={self.frozen_since_us} "
               f"({self.stalled_for_us} us) with "
               f"{self.pending_events} event(s) pending"]
        out.append("  frontier of pending events:")
        for due, site, chain in self.frontier:
            out.append(f"    due t={due:>10}  {site}")
            out.extend(f"      {ln}" for ln in chain)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class Watchdog:
    """Simulated-time stall/livelock detector (see module docstring).

    ``progress_fn`` returns a comparable signature of transport
    progress; :meth:`check` is called from the observability scrape
    tick.  One report is produced per stall episode (re-arming only
    after progress resumes).
    """

    def __init__(self, sim, progress_fn: Callable[[], tuple], *,
                 stall_after_us: int = 2_000_000, frontier_limit: int = 12):
        self._sim = sim
        self._progress_fn = progress_fn
        self.stall_after_us = int(stall_after_us)
        self.frontier_limit = int(frontier_limit)
        self._last_sig: Optional[tuple] = None
        self._frozen_since = 0
        self._tripped = False
        self.reports: list[StallReport] = []

    def check(self, now_us: int) -> Optional[StallReport]:
        sig = self._progress_fn()
        if sig != self._last_sig:
            self._last_sig = sig
            self._frozen_since = now_us
            self._tripped = False
            return None
        if (not self._tripped
                and now_us - self._frozen_since >= self.stall_after_us
                and self._sim.pending() > 0):
            self._tripped = True
            report = self._snapshot(now_us, sig)
            self.reports.append(report)
            return report
        return None

    def _snapshot(self, now_us: int, sig: tuple) -> StallReport:
        lineage = self._sim.lineage
        frontier: list[tuple[int, str, list[str]]] = []
        for entry in self._sim.pending_entries(self.frontier_limit):
            chain_lines: list[str] = []
            if lineage is not None and entry.cause:
                chain, trunc = lineage.chain(entry.cause)
                chain_lines = format_chain(chain, trunc)
            frontier.append((entry.time, site_of(entry.callback),
                             chain_lines))
        return StallReport(now_us, self._frozen_since, sig,
                           self._sim.pending(), frontier)


class Diagnoser:
    """Query layer over a run's :class:`LineageRecorder`."""

    def __init__(self, lineage: LineageRecorder, *,
                 spans=None, watchdog: Optional[Watchdog] = None):
        self.lineage = lineage
        self.spans = spans
        self.watchdog = watchdog

    # -- why(seq) -------------------------------------------------------

    def why(self, seq: int, host: Optional[str] = None) -> WhyReport:
        """Explain the history of byte ``seq``: every recorded drop of a
        segment covering it (with the fault-plan action to blame when a
        fault armed the dropping component) and the causal chain of the
        final delivery at ``host`` (or the most-retried delivery
        anywhere, when ``host`` is None)."""
        lin = self.lineage
        report = WhyReport(seq=seq, found=False)

        for drop in lin.drops_covering(seq):
            # with a host filter, keep that host's drops plus fabric
            # drops (links/pipes/routers, whose names are not IPs) --
            # a correlated router loss hurts this receiver too
            if host is not None and drop.host != host and \
                    drop.host[:1].isdigit():
                continue
            fault = lin.node(drop.blame) if drop.blame else None
            report.losses.append((drop, fault))

        deliveries = lin.find(kind="rx", what="DATA", host=host,
                              covering=seq)
        report.deliveries = deliveries
        if not deliveries and not report.losses:
            report.note = ("no rx/drop event covers this byte (pruned, "
                           "never sent, or seq out of range)")
            return report
        report.found = True

        for drop, fault in report.losses:
            chain, trunc = lin.chain(drop)
            report.chains.append(
                (f"loss at t={drop.t_us} ({drop.what}@{drop.host})",
                 format_chain(chain, trunc)))

        if deliveries:
            final = max(deliveries, key=lambda n: (n.tries, n.t_us))
            chain, trunc = lin.chain(final)
            what = "recovery" if final.tries > 1 else "delivery"
            report.chains.append(
                (f"{what} at t={final.t_us} ({final.host})",
                 format_chain(chain, trunc)))
        elif report.losses:
            report.note = "never delivered (still lost at end of capture)"
        return report

    # -- explain_worst(k) ----------------------------------------------

    def explain_worst(self, k: int = 3) -> list[tuple[object, WhyReport]]:
        """The ``k`` longest NAK->repair recovery episodes (from the
        span collector) with the causal chain behind each.  Returns
        ``[(span, WhyReport), ...]`` slowest first."""
        if self.spans is None:
            return []
        recoveries = [s for s in self.spans.spans
                      if s.cat == "recovery" and s.end_us is not None]
        recoveries.sort(key=lambda s: s.dur_us, reverse=True)
        out = []
        for span in recoveries[:max(0, k)]:
            # recovery spans are named "repair@<range start>"
            try:
                seq = int(span.name.split("@", 1)[1])
            except (IndexError, ValueError):
                continue
            out.append((span, self.why(seq, host=span.host)))
        return out

    # -- why_stalled() --------------------------------------------------

    def why_stalled(self) -> Optional[StallReport]:
        """The most recent watchdog stall report, or ``None`` if the
        run never froze."""
        if self.watchdog is None or not self.watchdog.reports:
            return None
        return self.watchdog.reports[-1]
