"""The observability facade: wire metrics, spans and the profiler into
a scenario without perturbing it.

``Observability`` attaches three read-only instruments to a built
scenario:

* a **scrape process** that samples registered gauges (window
  occupancy, socket-buffer usage, repair-cache bytes, advertised rate,
  NAK/UPDATE/retransmission rates, engine queue depth, per-link
  utilisation) into time series every ``scrape_interval_us`` of
  simulated time,
* a **span collector** riding the packet tap as a raw listener
  (packet-lifecycle latency histograms and protocol-phase spans), and
* optionally the **engine profiler** (simulated-time and wall-clock
  attribution per callback site).

Zero-perturbation guarantee: every gauge is a pure read, the span
collector never copies or mutates segments, and the scrape events only
interleave with -- never reorder -- protocol events (engine FIFO order
among same-time events is preserved, and no RNG stream is consumed).
A run with observability attached therefore produces a byte-identical
packet trace and final counters to an unobserved run; the regression
test in ``tests/obs`` holds this line.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.core.seq import seq_sub
from repro.obs.export import (summary_text, write_chrome_trace,
                              write_series_csv, write_series_jsonl)
from repro.obs.metrics import LATENCY_BOUNDS_US, MetricsRegistry
from repro.obs.profiler import SimProfiler
from repro.obs.spans import SpanCollector

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.tracer import PacketTracer
    from repro.workloads.scenarios import Scenario

__all__ = ["Observability"]


class Observability:
    """One observed run: construct, pass to ``run_transfer(obs=...)``.

    Parameters
    ----------
    scrape_interval_us:
        Simulated time between gauge samples (default 50 ms -- five
        jiffies, fine enough to see rate-control dynamics without
        bloating dumps).
    profile:
        Attach the engine profiler (adds a few percent of wall-clock
        overhead; simulated behaviour is unaffected either way).
    latency_bounds:
        Histogram bucket edges for the packet-lifecycle spans.
    """

    def __init__(self, *, scrape_interval_us: int = 50_000,
                 profile: bool = False, lineage: bool = False,
                 lineage_max_nodes: int = 200_000,
                 stall_after_us: int = 2_000_000,
                 latency_bounds=LATENCY_BOUNDS_US, perf=None,
                 health: bool = False):
        if scrape_interval_us <= 0:
            raise ValueError("scrape_interval_us must be positive")
        self.scrape_interval_us = int(scrape_interval_us)
        self.registry = MetricsRegistry()
        # the protocol-health observatory (repro.obs.health): ledger
        # counters live in this registry so they ride every export
        self.health = None
        if health:
            from repro.obs.health import HealthMonitor
            self.health = HealthMonitor(self.registry)
        # the perf observatory (repro.obs.perf.PerfObservatory) brings
        # its own class-attributing profiler, superseding profile=True
        self.perf = perf
        self.profiler: Optional[SimProfiler] = \
            perf.profiler if perf is not None else (
                SimProfiler() if profile else None)
        self.spans: Optional[SpanCollector] = None
        self._latency_bounds = latency_bounds
        self._sim = None
        self.attached = False
        self.finalized_at_us: Optional[int] = None
        # causal lineage + diagnosis (repro.obs.causal / .diag): pure
        # bookkeeping riding the same attach, preserving the
        # zero-perturbation guarantee
        self._want_lineage = bool(lineage)
        self._lineage_max_nodes = int(lineage_max_nodes)
        self._stall_after_us = int(stall_after_us)
        self.lineage = None
        self.watchdog = None
        self.tracer = None

    # -- wiring ---------------------------------------------------------

    def attach(self, scenario: "Scenario", tracer: "PacketTracer", *,
               ssock=None, rsocks=()) -> "Observability":
        """Register gauges over the scenario's layers, hook the span
        collector onto the tracer and start the scrape loop.  Call
        after sockets exist and before the simulation runs (the harness
        does this when given ``obs=``)."""
        if self.attached:
            raise RuntimeError("Observability instance already attached")
        self.attached = True
        self._sim = sim = scenario.sim
        self.tracer = tracer
        reg = self.registry

        self.spans = SpanCollector(scenario.sender.addr,
                                   self._latency_bounds)
        tracer.add_raw_listener(self.spans.on_event)

        if self.health is not None:
            # hand the monitor to every H-RMC endpoint; the transport
            # forwards it to the lazily created sender/receiver role
            # (baseline transports have no ``health`` slot and are
            # simply not health-instrumented)
            endpoints = ([ssock] if ssock is not None else []) + list(rsocks)
            for sock in endpoints:
                t = getattr(sock, "transport", None)
                if t is not None and hasattr(t, "health"):
                    t.health = self.health

        if self._want_lineage:
            from repro.obs.causal import LineageRecorder
            from repro.obs.diag import Watchdog
            self.lineage = LineageRecorder(
                sim, max_nodes=self._lineage_max_nodes)
            sim.lineage = self.lineage
            self.watchdog = Watchdog(
                sim, self._progress_signature(ssock, list(rsocks)),
                stall_after_us=self._stall_after_us)

        # engine
        reg.gauge("engine.queue_depth", sim.pending)
        reg.rate_gauge("engine.events_per_s",
                       lambda: sim.events_processed)

        # sender endpoint (roles are created lazily at connect/join; a
        # gauge returning None simply skips the sample)
        if ssock is not None:
            t = ssock.transport
            reg.gauge("sender.sndbuf_used_bytes",
                      lambda: self._sock_bytes(t, "write_queue"))
            reg.gauge("sender.window_bytes", lambda: self._window_bytes(t))
            reg.gauge("sender.rate_adv_bps", lambda: self._rate_bps(t))
            reg.gauge("sender.members", lambda: self._members(t))
            stats = t.stats
            reg.rate_gauge("sender.naks_per_s", lambda: stats.naks_rcvd)
            reg.rate_gauge("sender.updates_per_s",
                           lambda: stats.updates_rcvd)
            reg.rate_gauge("sender.retrans_per_s",
                           lambda: stats.retrans_pkts)
            reg.rate_gauge("sender.data_bytes_per_s",
                           lambda: stats.data_bytes_sent)

        # receiver endpoints, aggregated (per-host series would explode
        # for the 100-receiver scaling scenarios)
        rsocks = list(rsocks)
        if rsocks:
            reg.gauge("recv.rcvbuf_used_bytes",
                      lambda: self._sum(rsocks, self._rcvbuf_used))
            reg.gauge("recv.repair_cache_bytes",
                      lambda: self._sum(rsocks, self._repair_cache))
            reg.gauge("recv.nak_ranges",
                      lambda: self._sum(rsocks, self._nak_ranges))

        # network fabric
        for name, medium in self._link_surfaces(scenario.network):
            bw = float(getattr(medium, "bandwidth_bps", 0.0) or
                       scenario.bandwidth_bps)
            reg.rate_gauge(f"link.{name}.util_pct",
                           (lambda m: lambda: m.bytes_carried)(medium),
                           unit="%", scale=800.0 / bw)
        reg.rate_gauge("net.drops_per_s",
                       lambda: sum(scenario.network.drop_summary()
                                   .values()))

        if self.profiler is not None:
            sim.profiler = self.profiler
        if self.perf is not None:
            self.perf.attach()

        self._tick()   # scrape t=0, then self-schedule
        return self

    def _tick(self) -> None:
        self.registry.scrape(self._sim.now)
        if self.perf is not None:
            # heap/GC sampling rides the scrape tick: no extra events
            self.perf.tick(self._sim.now, self.spans)
        if self.watchdog is not None:
            # passive mid-run stall detection: piggybacks on the scrape
            # tick instead of scheduling its own events (two
            # pending-gated loops would keep each other alive forever)
            self.watchdog.check(self._sim.now)
        # re-arm only while other work is scheduled: when the protocol
        # drains, the scrape loop stops instead of ticking to the run's
        # time horizon
        if self._sim.pending() > 0:
            self._sim.call_after(self.scrape_interval_us, self._tick)

    def finalize(self, now_us: int) -> None:
        """Final scrape and span close-out; the harness calls this when
        the simulation stops."""
        if self.finalized_at_us is not None:
            return
        self.finalized_at_us = now_us
        self.registry.scrape(now_us)
        if self.spans is not None:
            self.spans.finalize(now_us)
        if self.perf is not None:
            self.perf.finalize(now_us, self.spans)
        if self.health is not None:
            self.health.finalize(now_us)

    @staticmethod
    def _progress_signature(ssock, rsocks):
        """A pure-read signature of transport progress for the
        watchdog: the sender's next-to-send plus every receiver's
        next-expected sequence.  Frozen signature + pending events =
        the run is burning simulated time without moving data."""
        def signature() -> tuple:
            parts = []
            sender = getattr(getattr(ssock, "transport", None),
                             "sender", None)
            parts.append(getattr(sender, "snd_nxt", None))
            for sock in rsocks:
                receiver = getattr(getattr(sock, "transport", None),
                                   "receiver", None)
                parts.append(getattr(receiver, "rcv_nxt", None))
            return tuple(parts)
        return signature

    def diag(self):
        """A :class:`~repro.obs.diag.Diagnoser` over this run's causal
        DAG (requires ``lineage=True``)."""
        if self.lineage is None:
            raise RuntimeError("Observability(lineage=True) required "
                               "for diagnosis")
        from repro.obs.diag import Diagnoser
        return Diagnoser(self.lineage, spans=self.spans,
                         watchdog=self.watchdog)

    # -- gauge helpers (pure reads, defensive against role lifecycles) --

    @staticmethod
    def _sock_bytes(transport, queue: str) -> Optional[int]:
        sock = getattr(transport, "sock", None)
        q = getattr(sock, queue, None)
        return None if q is None else q.bytes

    @staticmethod
    def _window_bytes(transport) -> Optional[int]:
        sender = getattr(transport, "sender", None)
        if sender is not None:
            return seq_sub(sender.snd_nxt, sender.snd_wnd)
        if hasattr(transport, "snd_nxt") and hasattr(transport, "snd_una"):
            return seq_sub(transport.snd_nxt, transport.snd_una)
        if hasattr(transport, "snd_nxt") and hasattr(transport, "snd_wnd"):
            return seq_sub(transport.snd_nxt, transport.snd_wnd)
        return None

    @staticmethod
    def _rate_bps(transport) -> Optional[int]:
        sender = getattr(transport, "sender", None)
        rate = getattr(sender, "rate", None)
        return None if rate is None else rate.rate_bps

    @staticmethod
    def _members(transport) -> Optional[int]:
        sender = getattr(transport, "sender", None)
        members = getattr(sender, "members", None)
        return None if members is None else len(members)

    @staticmethod
    def _sum(socks, fn) -> Optional[float]:
        values = [v for v in (fn(s.transport) for s in socks)
                  if v is not None]
        return sum(values) if values else None

    @staticmethod
    def _rcvbuf_used(transport) -> Optional[int]:
        sock = getattr(transport, "sock", None)
        return None if sock is None else sock.receive_queue.bytes

    @staticmethod
    def _repair_cache(transport) -> Optional[int]:
        receiver = getattr(transport, "receiver", None)
        return getattr(receiver, "_repair_cache_bytes", None)

    @staticmethod
    def _nak_ranges(transport) -> Optional[int]:
        receiver = getattr(transport, "receiver", None)
        naks = getattr(receiver, "naks", None)
        return None if naks is None else len(naks)

    @staticmethod
    def _link_surfaces(network) -> list[tuple[str, object]]:
        """Media worth a utilisation series: the LAN segment, or the
        WAN's per-group downlinks (per-receiver tail pipes would bloat
        scaling runs)."""
        out: list[tuple[str, object]] = []
        link = getattr(network, "link", None)
        if link is not None:
            out.append((link.name, link))
        for pipe in getattr(network, "_group_down", {}).values():
            out.append((pipe.name, pipe))
        return out

    # -- views / export -------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Latest value of every series and counter (attached to
        :class:`~repro.faults.invariants.InvariantViolation`)."""
        snap = self.registry.snapshot()
        if self.spans is not None:
            for hist in self.spans.histograms():
                if hist.count:
                    snap[f"{hist.name}.p50"] = hist.quantile(0.5)
                    snap[f"{hist.name}.count"] = hist.count
        return snap

    def summary_tables(self) -> list[tuple[str, list, list]]:
        """(title, headers, rows) tables for harness reports."""
        tables = []
        rows = self.registry.summary_rows()
        if rows:
            tables.append(("observed metric series",
                           ["series", "samples", "min", "mean", "max",
                            "last"], rows))
        if self.spans is not None:
            hist_rows = [[h.name, h.count, round(h.mean, 0),
                          round(h.quantile(0.5), 0),
                          round(h.quantile(0.9), 0), round(h.max, 0)]
                         for h in self.spans.histograms() if h.count]
            if hist_rows:
                tables.append(("packet-lifecycle latency (us)",
                               ["histogram", "n", "mean", "p50", "p90",
                                "max"], hist_rows))
        if self.perf is not None:
            tables.extend(self.perf.summary_tables())
        if self.health is not None:
            tables.extend(self.health.summary_tables())
        return tables

    def summary(self) -> str:
        """The text timeline/summary (see :func:`repro.obs.export.summary_text`)."""
        return summary_text(self)

    def write_artifacts(self, outdir: str, *, prefix: str = "run",
                        html: bool = False) -> dict[str, str]:
        """Write every export into ``outdir``: JSONL + CSV series, the
        Perfetto trace and the text summary; with lineage enabled also
        the packet trace + causal DAG (the inputs ``hrmc diff`` and
        ``hrmc why`` align), and optionally the self-contained HTML
        report.  Returns name -> path."""
        os.makedirs(outdir, exist_ok=True)
        paths = {
            "series_jsonl": os.path.join(outdir, f"{prefix}.series.jsonl"),
            "series_csv": os.path.join(outdir, f"{prefix}.series.csv"),
            "perfetto": os.path.join(outdir, f"{prefix}.perfetto.json"),
            "summary": os.path.join(outdir, f"{prefix}.summary.txt"),
        }
        write_series_jsonl(self.registry, paths["series_jsonl"])
        write_series_csv(self.registry, paths["series_csv"])
        write_chrome_trace(self, paths["perfetto"])
        with open(paths["summary"], "w") as fh:
            fh.write(self.summary())
            fh.write("\n")
        if self.perf is not None and self.perf.sampler is not None:
            paths["collapsed"] = os.path.join(outdir,
                                              f"{prefix}.collapsed.txt")
            self.perf.write_collapsed(paths["collapsed"])
        if self.tracer is not None and self.lineage is not None:
            paths["trace"] = os.path.join(outdir, f"{prefix}.trace.jsonl")
            self.tracer.save(paths["trace"])
            paths["lineage"] = os.path.join(outdir,
                                            f"{prefix}.lineage.jsonl")
            self.lineage.save(paths["lineage"])
        if html:
            from repro.obs.html import write_report
            paths["html"] = os.path.join(outdir, f"{prefix}.report.html")
            write_report(paths["html"], self,
                         title=f"H-RMC run report: {prefix}",
                         diagnoser=self.diag() if self.lineage is not None
                         else None)
        return paths
