"""Self-contained HTML run report.

One file, no external assets, no JavaScript frameworks, no CDN: every
byte of the report -- styling, inline SVG sparklines of the gauge
series, the metrics tables, and the causal chains of the worst
recovery episodes -- is generated here from the run's observability
objects.  The output opens in any browser (including ``file://`` from
a CI artifact download) and diffs cleanly in version control because
the generation order is deterministic.
"""

from __future__ import annotations

import html as _html
from typing import Optional

__all__ = ["render_report", "write_report", "sparkline_svg",
           "render_sweep_report", "write_sweep_report"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 70em; color: #1a2733; }
h1 { border-bottom: 2px solid #2a6592; padding-bottom: .2em; }
h2 { color: #2a6592; margin-top: 1.6em; }
table { border-collapse: collapse; margin: .8em 0; font-size: .9em; }
th, td { border: 1px solid #c6d3dd; padding: .25em .6em;
         text-align: right; }
th { background: #eef3f7; }
td:first-child, th:first-child { text-align: left;
                                 font-family: monospace; }
svg.spark { vertical-align: middle; }
pre.chain { background: #f6f8fa; border: 1px solid #dde4ea;
            border-radius: 4px; padding: .7em; font-size: .85em;
            overflow-x: auto; }
p.meta { color: #5a6b7a; font-size: .85em; }
.stall { border-left: 4px solid #c0392b; padding-left: .8em; }
"""


def sparkline_svg(t_us: list, values: list, *, width: int = 220,
                  height: int = 36, color: str = "#2a6592") -> str:
    """An inline SVG polyline sparkline of one gauge series."""
    if len(values) < 2:
        return "<span>(not enough samples)</span>"
    t0, t1 = t_us[0], t_us[-1]
    vmin, vmax = min(values), max(values)
    tspan = (t1 - t0) or 1
    vspan = (vmax - vmin) or 1.0
    pts = []
    for t, v in zip(t_us, values):
        x = 2 + (width - 4) * (t - t0) / tspan
        y = 2 + (height - 4) * (1.0 - (v - vmin) / vspan)
        pts.append(f"{x:.1f},{y:.1f}")
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img">'
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{" ".join(pts)}"/></svg>')


def _esc(value) -> str:
    return _html.escape(str(value))


def _table(headers: list, rows: list) -> list[str]:
    out = ["<table>", "<tr>" + "".join(f"<th>{_esc(h)}</th>"
                                       for h in headers) + "</tr>"]
    for row in rows:
        out.append("<tr>" + "".join(f"<td>{_esc(c)}</td>"
                                    for c in row) + "</tr>")
    out.append("</table>")
    return out


def render_report(obs, *, title: str = "H-RMC run report",
                  diagnoser=None, worst_k: int = 3,
                  extra_meta: Optional[dict] = None) -> str:
    """Build the full HTML document for one observed run.

    ``obs`` is the run's :class:`~repro.obs.observer.Observability`;
    ``diagnoser`` (a :class:`~repro.obs.diag.Diagnoser`, optional)
    contributes the worst-recovery causal chains and any stall report.
    """
    out = ["<!DOCTYPE html>", '<html lang="en"><head>',
           '<meta charset="utf-8">',
           f"<title>{_esc(title)}</title>",
           f"<style>{_STYLE}</style>", "</head><body>",
           f"<h1>{_esc(title)}</h1>"]

    meta_bits = []
    if obs.finalized_at_us is not None:
        meta_bits.append(f"simulated end t={obs.finalized_at_us} us")
    meta_bits.append(f"{obs.registry.scrapes} scrapes")
    for key, value in (extra_meta or {}).items():
        meta_bits.append(f"{_esc(key)}={_esc(value)}")
    out.append(f'<p class="meta">{" · ".join(meta_bits)}</p>')

    # -- metrics tables (the PR-2 summary layer, verbatim) -------------
    for table_title, headers, rows in obs.summary_tables():
        out.append(f"<h2>{_esc(table_title)}</h2>")
        out.extend(_table(headers, rows))

    # -- gauge sparklines ----------------------------------------------
    spark_rows = []
    for name, series in obs.registry.series.items():
        if len(series) < 2:
            continue
        spark_rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td>{sparkline_svg(series.t_us, series.values)}</td>"
            f"<td>{series.values[-1]:.2f}{_esc(series.unit)}</td></tr>")
    if spark_rows:
        out.append("<h2>gauge series</h2>")
        out.append("<table><tr><th>series</th><th>sparkline</th>"
                   "<th>last</th></tr>")
        out.extend(spark_rows)
        out.append("</table>")

    # -- flamegraph (repro.obs.perf) -----------------------------------
    # the tax table and alloc tables already arrived via
    # obs.summary_tables(); the flamegraph needs its own inline SVG
    perf = getattr(obs, "perf", None)
    if perf is not None:
        svg = perf.flame_svg()
        if svg:
            sampler = perf.sampler
            out.append("<h2>flamegraph (deterministic event-count "
                       "sampling)</h2>")
            out.append(f'<p class="meta">{sampler.samples} sampled '
                       f"callbacks (every {sampler.sample_every}th "
                       f"event) · {len(sampler.stacks)} distinct "
                       "stacks · width = self-wall share</p>")
            out.append(svg)

    # -- causal diagnosis ----------------------------------------------
    if diagnoser is not None:
        worst = diagnoser.explain_worst(worst_k)
        if worst:
            out.append(f"<h2>slowest {len(worst)} recovery episodes "
                       "(causal chains)</h2>")
            for span, why in worst:
                out.append(f"<h3>{_esc(span.name)} @ {_esc(span.host)} "
                           f"&mdash; {span.dur_us} us</h3>")
                out.append(f'<pre class="chain">{_esc(why.render())}</pre>')
        stall = diagnoser.why_stalled()
        if stall is not None:
            out.append('<h2 class="stall">stall detected</h2>')
            out.append(f'<pre class="chain stall">'
                       f'{_esc(stall.render())}</pre>')
        stats = diagnoser.lineage.stats()
        out.append(f'<p class="meta">causal DAG: {stats["nodes"]} nodes '
                   f'({stats["pruned"]} pruned), '
                   f'{stats["drops_indexed"]} indexed drops</p>')

    out.append("</body></html>")
    return "\n".join(out)


def write_report(path: str, obs, **kwargs) -> str:
    """Render and write the report; returns ``path``."""
    with open(path, "w") as fh:
        fh.write(render_report(obs, **kwargs))
        fh.write("\n")
    return path


# -- health-sweep dashboard ---------------------------------------------

#: cell columns in display order; absent keys are skipped per sweep
_SWEEP_COLUMNS = (
    "label", "group_size", "loss_rate", "throughput_mbps",
    "effectiveness", "naks_sent", "suppressed", "feedback_at_sender",
    "implosion_index", "redundant_ratio", "retrans_bytes",
    "mean_lag_us", "worst_lag_us", "unresolved",
)


def render_sweep_report(report: dict, *,
                        title: str = "H-RMC health sweep") -> str:
    """Self-contained HTML dashboard for one ``health sweep``.

    ``report`` is :func:`repro.stats.scaling.sweep_report`: per-cell
    health tables, fitted scaling laws with sparklines of the metric
    across the swept axis, and the anomaly flags.  Same constraints
    as :func:`render_report` -- one file, zero external assets,
    deterministic generation order.
    """
    cells = report.get("cells", [])
    fits = report.get("fits", {})
    anomalies = report.get("anomalies", [])

    out = ["<!DOCTYPE html>", '<html lang="en"><head>',
           '<meta charset="utf-8">',
           f"<title>{_esc(title)}</title>",
           f"<style>{_STYLE}</style>", "</head><body>",
           f"<h1>{_esc(title)}</h1>",
           f'<p class="meta">{len(cells)} grid cells · '
           f'{len(fits)} scaling fits · '
           f'{len(anomalies)} anomaly flags</p>']

    # -- per-cell health table -----------------------------------------
    if cells:
        columns = [c for c in _SWEEP_COLUMNS
                   if any(c in cell for cell in cells)]
        rows = [[cell.get(c, "-") for c in columns] for cell in cells]
        out.append("<h2>per-cell protocol health</h2>")
        out.extend(_table(columns, rows))

    # -- scaling fits with sparklines ----------------------------------
    if fits:
        out.append("<h2>scaling-law fits (log-log least squares)</h2>")
        out.append("<table><tr><th>fit</th><th>law</th>"
                   "<th>exponent</th><th>r2</th><th>n</th>"
                   "<th>trend</th></tr>")
        for name in sorted(fits):
            fit = fits[name]
            x_name, y_name = fit.get("x", "x"), fit.get("y", "y")
            points = sorted(
                (cell[x_name], cell[y_name]) for cell in cells
                if isinstance(cell.get(x_name), (int, float))
                and isinstance(cell.get(y_name), (int, float)))
            spark = sparkline_svg([p[0] for p in points],
                                  [p[1] for p in points])
            law = (f"{y_name} ~ {fit.get('coefficient', 0):g} · "
                   f"{x_name}^{fit.get('exponent', 0):g}")
            out.append(
                f"<tr><td>{_esc(name)}</td><td>{_esc(law)}</td>"
                f"<td>{fit.get('exponent', 0):.3f}</td>"
                f"<td>{fit.get('r2', 0):.3f}</td>"
                f"<td>{fit.get('n', 0)}</td><td>{spark}</td></tr>")
        out.append("</table>")

    # -- anomaly flags -------------------------------------------------
    if anomalies:
        out.append('<h2 class="stall">per-cell anomalies '
                   "(vs sweep median)</h2>")
        out.extend(_table(
            ["cell", "metric", "value", "median", "gate", "direction"],
            [[a.get("cell", "?"), a.get("metric", "?"),
              a.get("value", "?"), a.get("median", "?"),
              f"{a.get('threshold', 0):.0%}", a.get("direction", "?")]
             for a in anomalies]))
    else:
        out.append('<p class="meta">no per-cell anomalies: every cell '
                   "within the sweep-median gates</p>")

    out.append("</body></html>")
    return "\n".join(out)


def write_sweep_report(path: str, report: dict, **kwargs) -> str:
    """Render and write the sweep dashboard; returns ``path``."""
    with open(path, "w") as fh:
        fh.write(render_sweep_report(report, **kwargs))
        fh.write("\n")
    return path
