"""Causal lineage: a per-run DAG of *semantic* events and their causes.

Every interesting thing that happens in a run -- a segment leaving or
reaching a host, a protocol timer firing, a fault action executing, a
packet being dropped, a gap being detected -- becomes a
:class:`CauseNode` with an edge to the event that caused it.  The
engine does the heavy lifting: while an event executes, any event it
schedules inherits the executing event's nearest *labelled* ancestor
(``LineageRecorder.current``), so causality flows through arbitrarily
long chains of unlabelled bookkeeping callbacks (CPU charging, NIC
rings, medium propagation) without instrumenting each of them.

Two refinements keep the edges exact where FIFO hardware would smear
them:

* packets carry their tx node id (``NetPacket.cause``), so an rx/drop
  node is parented to *its own* transmission even when the NIC ring
  serviced it during another packet's completion context, and
* sender segments carry a pending cause (``SKBuff.cause``) stamped when
  a NAK queues the retransmission, so the eventual retransmit is
  parented to the NAK that asked for it, not to the transmit-timer tick
  that happened to serve the queue.

Fault actions additionally leave their node id on the component they
poison (``nic.fault_cause``, ``link.fault_cause``), and every drop that
the poisoned component performs carries that id as a ``blame`` edge --
this is what lets ``why(seq)`` walk from a recovered byte all the way
back to ``fault:nic_burst_drop(plan[2])``.

Memory is bounded: the node store is a ring pruned oldest-first once
``max_nodes`` is exceeded, except that *fault* nodes (lineage roots
referenced by live component state via ``fault_cause``/``blame``) are
pinned.  A backward walk that steps off the pruned edge reports the
truncation instead of fabricating a root.

Everything here is pure bookkeeping: no randomness is drawn, no
simulator events are scheduled, no segment is copied or mutated, so a
lineage-enabled run is byte-identical (packet trace and counters) to a
bare run -- the zero-perturbation regression in ``tests/obs`` covers
this configuration too.
"""

from __future__ import annotations

import json
from collections import OrderedDict, deque
from typing import Optional

__all__ = ["CauseNode", "LineageRecorder", "load_lineage", "walk_chain"]


def walk_chain(nodes, start, max_depth: int = 64):
    """Walk ``parent`` edges from ``start`` (a node or an eid) toward
    the root through any eid->node mapping (a live recorder's store or
    a loaded lineage file).  Returns ``(chain, truncated)``,
    effect-first; ``truncated`` means a pruned parent or the depth
    limit stopped the walk."""
    node = start if isinstance(start, CauseNode) else nodes.get(start)
    out: "list[CauseNode]" = []
    seen: "set[int]" = set()
    truncated = False
    while node is not None:
        if node.eid in seen or len(out) >= max_depth:
            truncated = True
            break
        seen.add(node.eid)
        out.append(node)
        if node.parent == 0:
            break
        nxt = nodes.get(node.parent)
        if nxt is None:
            truncated = True
            break
        node = nxt
    return out, truncated

#: node kinds that survive ring pruning (lineage roots that live
#: component state may still reference through ``fault_cause``/``blame``)
_PINNED_KINDS = frozenset({"fault"})


class CauseNode:
    """One semantic event in the causal DAG.

    ``parent`` is the scheduling/semantic cause (0 = root); ``blame``
    is an optional second edge to the fault action responsible (drops
    performed by a poisoned component).  ``seq``/``end`` describe the
    byte range the event concerns (-1 when not applicable).
    """

    __slots__ = ("eid", "parent", "blame", "t_us", "kind", "host",
                 "what", "seq", "end", "tries", "detail")

    def __init__(self, eid: int, parent: int, blame: int, t_us: int,
                 kind: str, host: str, what: str, seq: int, end: int,
                 tries: int, detail: str):
        self.eid = eid
        self.parent = parent
        self.blame = blame
        self.t_us = t_us
        self.kind = kind
        self.host = host
        self.what = what
        self.seq = seq
        self.end = end
        self.tries = tries
        self.detail = detail

    # -- presentation ---------------------------------------------------

    def label(self) -> str:
        """Human-readable one-liner, e.g. ``tx:NAK(51200+1424)@10.0.0.2``."""
        if self.seq >= 0 and self.end > self.seq:
            rng = f"({self.seq}+{self.end - self.seq})"
        elif self.seq >= 0:
            rng = f"({self.seq})"
        else:
            rng = ""
        tries = f"#{self.tries}" if self.tries > 1 else ""
        at = f"@{self.host}" if self.host else ""
        detail = f" [{self.detail}]" if self.detail else ""
        return f"{self.kind}:{self.what}{rng}{tries}{at}{detail}"

    def covers(self, seq: int) -> bool:
        """Whether this node's byte range contains ``seq``."""
        return self.seq >= 0 and self.seq <= seq < max(self.end, self.seq + 1)

    def as_record(self) -> dict:
        return {"eid": self.eid, "parent": self.parent,
                "blame": self.blame, "t_us": self.t_us,
                "kind": self.kind, "host": self.host, "what": self.what,
                "seq": self.seq, "end": self.end, "tries": self.tries,
                "detail": self.detail}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CauseNode({self.eid} <- {self.parent}: {self.label()})"


class LineageRecorder:
    """Builds the causal DAG; attach as ``Simulator.lineage``.

    The engine reads and writes :attr:`current` (the node id of the
    nearest labelled ancestor of the executing callback); components
    call :meth:`emit` / :meth:`emit_packet` / :meth:`emit_drop` at the
    semantic instants they own.  All methods are no-allocating no-ops
    in the common guard pattern ``lin = sim.lineage; if lin is not
    None: ...`` -- a bare run pays one attribute read per call site.
    """

    def __init__(self, sim, *, max_nodes: int = 200_000,
                 max_drops: int = 20_000):
        if max_nodes < 1024:
            raise ValueError("max_nodes too small to be useful")
        self._sim = sim
        self.max_nodes = int(max_nodes)
        self.nodes: "OrderedDict[int, CauseNode]" = OrderedDict()
        #: drop nodes for DATA segments, kept separately so ``why`` can
        #: find the loss for a byte range even after ring pruning
        self.drops: "deque[CauseNode]" = deque(maxlen=max_drops)
        self.current = 0          # nearest labelled ancestor of executing event
        self.pruned = 0           # nodes evicted by the ring bound
        self._next_eid = 1

    # -- emission -------------------------------------------------------

    def emit(self, kind: str, host: str = "", what: str = "", *,
             seq: int = -1, end: int = -1, tries: int = 0,
             parent: Optional[int] = None, blame: int = 0,
             detail: str = "", advance: bool = True) -> int:
        """Record one semantic event; returns its node id.

        ``parent=None`` links to the currently executing event's
        lineage; pass an explicit id to override (packet delivery uses
        the packet's tx node).  ``advance=True`` makes this node the
        lineage of everything the current callback schedules next.
        """
        eid = self._next_eid
        self._next_eid = eid + 1
        node = CauseNode(eid, self.current if parent is None else parent,
                         blame, self._sim.now, kind, host, what,
                         seq, end, tries, detail)
        self.nodes[eid] = node
        if advance:
            self.current = eid
        if len(self.nodes) > self.max_nodes:
            self._prune()
        return eid

    def emit_packet(self, direction: str, host: str, skb, *,
                    parent: Optional[int] = None,
                    advance: bool = True) -> int:
        """Record a segment leaving (``tx``) or reaching (``rx``) a host."""
        length = skb.length if skb.length > 0 else 0
        return self.emit(direction, host, _ptype_name(skb.ptype),
                         seq=skb.seq, end=skb.seq + length,
                         tries=skb.tries, parent=parent, advance=advance)

    def emit_drop(self, why: str, host: str, skb, *,
                  parent: Optional[int] = None, blame: int = 0,
                  detail: str = "") -> int:
        """Record a dropped segment.  DATA drops are additionally kept
        in the loss index so ``why(seq)`` can find them later."""
        length = skb.length if skb.length > 0 else 0
        eid = self.emit("drop", host, why, seq=skb.seq,
                        end=skb.seq + length, tries=skb.tries,
                        parent=parent, blame=blame, detail=detail,
                        advance=False)
        if int(skb.ptype) == 1:  # PacketType.DATA, without the import cycle
            self.drops.append(self.nodes[eid])
        return eid

    # -- pruning --------------------------------------------------------

    def _prune(self) -> None:
        """Evict the oldest unpinned quarter of the store.  Fault nodes
        stay (live component state references them); walks that step
        onto an evicted id report the truncation."""
        target = self.max_nodes - self.max_nodes // 4
        survivors: "OrderedDict[int, CauseNode]" = OrderedDict()
        evictable = len(self.nodes) - target
        for eid, node in self.nodes.items():
            if evictable > 0 and node.kind not in _PINNED_KINDS:
                evictable -= 1
                self.pruned += 1
                continue
            survivors[eid] = node
        self.nodes = survivors

    # -- queries --------------------------------------------------------

    def node(self, eid: int) -> Optional[CauseNode]:
        return self.nodes.get(eid)

    def chain(self, start: "int | CauseNode",
              max_depth: int = 64) -> tuple[list[CauseNode], bool]:
        """Walk ``parent`` edges from ``start`` toward the root.

        Returns ``(nodes, truncated)`` ordered effect-first;
        ``truncated`` is True when the walk stepped onto a pruned node
        or hit ``max_depth``.
        """
        return walk_chain(self.nodes, start, max_depth)

    def find(self, *, kind: Optional[str] = None,
             what: Optional[str] = None, host: Optional[str] = None,
             covering: Optional[int] = None) -> list[CauseNode]:
        """All stored nodes matching the given filters, oldest first."""
        out = []
        for node in self.nodes.values():
            if kind is not None and node.kind != kind:
                continue
            if what is not None and node.what != what:
                continue
            if host is not None and node.host != host:
                continue
            if covering is not None and not node.covers(covering):
                continue
            out.append(node)
        return out

    def drops_covering(self, seq: int) -> list[CauseNode]:
        """Loss-index lookup: every recorded DATA drop containing ``seq``."""
        return [n for n in self.drops if n.covers(seq)]

    def stats(self) -> dict:
        return {"nodes": len(self.nodes), "pruned": self.pruned,
                "drops_indexed": len(self.drops),
                "next_eid": self._next_eid}

    # -- persistence ----------------------------------------------------

    def save(self, path: str) -> int:
        """Write the DAG as JSON lines (a ``_meta`` header, then nodes
        in id order).  Deterministic: identical seed + plan produce a
        byte-identical file.  Returns the node count."""
        with open(path, "w") as fh:
            fh.write(json.dumps({"_meta": self.stats()},
                                separators=(",", ":")))
            fh.write("\n")
            for node in self.nodes.values():
                fh.write(json.dumps(node.as_record(),
                                    separators=(",", ":")))
                fh.write("\n")
        return len(self.nodes)


def load_lineage(path: str) -> tuple[dict[int, CauseNode], dict]:
    """Read a saved lineage file; returns ``(eid -> node, meta)``.

    Raises ``ValueError`` for structurally corrupt files so callers can
    turn it into a one-line CLI error instead of a traceback.
    """
    nodes: dict[int, CauseNode] = {}
    meta: dict = {}
    fields = ("eid", "parent", "blame", "t_us", "kind", "host", "what",
              "seq", "end", "tries", "detail")
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if "_meta" in record:
                    meta = record["_meta"]
                    continue
                node = CauseNode(*(record[f] for f in fields))
                nodes[node.eid] = node
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"corrupt lineage file {path!r}: {exc}") from None
    return nodes, meta


def _ptype_name(ptype: int) -> str:
    """Packet-type name without importing repro.core (avoids a cycle
    for the engine-adjacent layers that emit packet nodes)."""
    return _PTYPE_NAMES.get(int(ptype), f"type{int(ptype)}")


_PTYPE_NAMES = {
    1: "DATA", 2: "NAK", 3: "NAK_ERR", 4: "JOIN", 5: "JOIN_RESPONSE",
    6: "LEAVE", 7: "LEAVE_RESPONSE", 8: "CONTROL", 9: "KEEPALIVE",
    10: "UPDATE", 11: "PROBE",
}
