"""Deterministic metrics primitives: counters, gauges, histograms and
time series.

Everything here is pure bookkeeping driven by *simulated* time -- no
wall clocks, no allocation-order iteration, no randomness -- so two
runs of the same seeded scenario produce bit-identical metric dumps.
Gauges are callables sampled by a scrape (see
:class:`~repro.obs.observer.Observability`); a gauge returning ``None``
skips that sample (e.g. a sender role that has not been created yet).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.sim.engine import US_PER_SEC

__all__ = ["Counter", "Histogram", "TimeSeries", "MetricsRegistry",
           "LATENCY_BOUNDS_US"]

#: default histogram buckets for latency-flavoured metrics (microseconds,
#: roughly geometric from one jiffy-ish delay to multi-second stalls)
LATENCY_BOUNDS_US = (100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000,
                     50_000, 100_000, 250_000, 500_000, 1_000_000,
                     2_500_000, 5_000_000)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """A fixed-bucket histogram (cumulative-style bucket bounds).

    ``bounds`` are the inclusive upper edges of the first
    ``len(bounds)`` buckets; one overflow bucket catches everything
    beyond the last bound.  Fixed buckets keep observation O(log n) and
    make exports trivially mergeable/diffable across runs.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str, bounds: Iterable[float] = LATENCY_BOUNDS_US):
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"{name}: bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile from the buckets.
        The overflow bucket reports the observed maximum."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                if i < len(self.bounds):
                    return self.bounds[i]
                return float(self.max)
        return float(self.max)

    def summary(self) -> dict:
        """Compact JSON-safe digest -- the shape carried in
        protocol-health payloads across the fleet worker boundary."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "max": 0.0}
        return {"count": self.count, "mean": round(self.mean, 1),
                "p50": round(self.quantile(0.5), 1),
                "p90": round(self.quantile(0.9), 1),
                "max": float(self.max)}

    def bucket_rows(self) -> list[tuple[str, int]]:
        """(upper-edge label, count) per non-empty-prefix bucket."""
        rows = [(f"<= {int(b)}", c)
                for b, c in zip(self.bounds, self.counts)]
        rows.append((f"> {int(self.bounds[-1])}", self.counts[-1]))
        return rows

    def render(self, width: int = 40) -> str:
        """Terminal bar chart of the bucket distribution."""
        peak = max(self.counts) or 1
        lines = [f"{self.name}: n={self.count} mean={self.mean:.0f} "
                 f"p50={self.quantile(0.5):.0f} p90={self.quantile(0.9):.0f} "
                 f"max={self.max if self.max is not None else 0:.0f}"]
        for label, c in self.bucket_rows():
            bar = "#" * round(width * c / peak)
            lines.append(f"  {label:>12} {c:>8} {bar}")
        return "\n".join(lines)


class TimeSeries:
    """A (t_us, value) series filled by scrapes or manual appends."""

    __slots__ = ("name", "unit", "t_us", "values")

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.t_us: list[int] = []
        self.values: list[float] = []

    def append(self, t_us: int, value: float) -> None:
        self.t_us.append(int(t_us))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.t_us)

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def samples(self):
        return zip(self.t_us, self.values)


@dataclass
class _Gauge:
    name: str
    fn: Callable[[], Optional[float]]
    rate: bool            # sample (delta value)/(delta t) instead of value
    scale: float
    prev_value: Optional[float] = None
    prev_t_us: Optional[int] = None


class MetricsRegistry:
    """Namespace of counters, histograms, gauges and their series.

    Registration order is preserved everywhere (exports iterate dicts,
    which are insertion-ordered), keeping dumps deterministic.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series: dict[str, TimeSeries] = {}
        self._gauges: list[_Gauge] = []
        self.scrapes = 0

    # -- registration ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def histogram(self, name: str,
                  bounds: Iterable[float] = LATENCY_BOUNDS_US) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, bounds)
        return self.histograms[name]

    def timeseries(self, name: str, unit: str = "") -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name, unit)
        return self.series[name]

    def gauge(self, name: str, fn: Callable[[], Optional[float]], *,
              unit: str = "", scale: float = 1.0) -> None:
        """Sample ``fn()`` at every scrape into the series ``name``."""
        self.timeseries(name, unit)
        self._gauges.append(_Gauge(name, fn, rate=False, scale=scale))

    def rate_gauge(self, name: str, fn: Callable[[], Optional[float]], *,
                   unit: str = "/s", scale: float = 1.0) -> None:
        """Sample the per-second rate of change of ``fn()`` (which must
        be monotone, e.g. a protocol counter) at every scrape."""
        self.timeseries(name, unit)
        self._gauges.append(_Gauge(name, fn, rate=True, scale=scale))

    # -- scraping -------------------------------------------------------

    def scrape(self, now_us: int) -> None:
        """Sample every gauge at simulated time ``now_us``."""
        self.scrapes += 1
        for g in self._gauges:
            value = g.fn()
            if value is None:
                continue
            value = float(value)
            if g.rate:
                if g.prev_t_us is not None and now_us > g.prev_t_us:
                    dt_s = (now_us - g.prev_t_us) / US_PER_SEC
                    rate = (value - g.prev_value) / dt_s
                    self.series[g.name].append(now_us, rate * g.scale)
                g.prev_value = value
                g.prev_t_us = now_us
            else:
                self.series[g.name].append(now_us, value * g.scale)

    # -- views ----------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Most recent sample of every series plus every counter --
        the state attached to :class:`InvariantViolation` messages."""
        out: dict[str, float] = {}
        for name, series in self.series.items():
            if series.values:
                out[name] = series.values[-1]
        for name, counter in self.counters.items():
            out[name] = counter.value
        return out

    def summary_rows(self) -> list[list]:
        """(series, samples, min, mean, max, last) per non-empty series."""
        rows = []
        for name, s in self.series.items():
            if not s.values:
                continue
            rows.append([name, len(s.values),
                         round(min(s.values), 2),
                         round(sum(s.values) / len(s.values), 2),
                         round(max(s.values), 2),
                         round(s.values[-1], 2)])
        return rows
