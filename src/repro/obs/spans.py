"""Packet-lifecycle and protocol-phase spans.

The :class:`SpanCollector` rides the packet tap as a *raw* listener
(it sees the :class:`~repro.trace.tracer.TraceEvent` and the live
``SKBuff``) and stitches per-packet timelines out of three observable
instants:

* ``t_enqueue`` -- the sender's tx tap fires when ``ip_send`` accepts
  the segment (before CPU + device queueing),
* ``t_wire`` -- the NIC stamps ``skb.last_sent_us`` when the last bit
  leaves the card,
* ``t_rx`` -- a receiver's rx tap fires after interrupt + IP + protocol
  processing delivered the packet to the transport.

From those it fills three histograms (one-way latency, sender-side
queueing delay, NAK-to-repair recovery latency) and emits protocol-phase
spans per host (join handshake, steady-state transfer, recovery bursts,
close) plus one span per recovered NAK range.  Everything is
observational: segments are never copied or mutated, and no simulator
events are scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.types import FIN, PacketType
from repro.obs.metrics import Histogram, LATENCY_BOUNDS_US

__all__ = ["Span", "SpanCollector"]

_DATA = int(PacketType.DATA)
_NAK = int(PacketType.NAK)
_NAK_ERR = int(PacketType.NAK_ERR)
_JOIN = int(PacketType.JOIN)
_JOIN_RESPONSE = int(PacketType.JOIN_RESPONSE)
_LEAVE = int(PacketType.LEAVE)
_UPDATE = int(PacketType.UPDATE)


@dataclass
class Span:
    """One named interval on a host's timeline."""

    name: str
    cat: str            # "phase" | "recovery"
    host: str
    start_us: int
    end_us: Optional[int] = None

    @property
    def dur_us(self) -> int:
        return (self.end_us - self.start_us) if self.end_us is not None else 0


@dataclass
class _Mark:
    """A notable instant, exported as a Perfetto instant event."""

    name: str
    host: str
    t_us: int


class SpanCollector:
    """Stitch spans and latency histograms from tap events."""

    #: outstanding (seq, tries) -> enqueue-time entries kept for latency
    #: matching; bounded so a pathological run cannot grow without limit
    TX_CAP = 4096
    #: cap on exported instant marks (retransmissions, NAKs, UPDATEs)
    MARK_CAP = 20_000

    def __init__(self, sender_addr: str,
                 latency_bounds=LATENCY_BOUNDS_US):
        self.sender_addr = sender_addr
        self.one_way_us = Histogram("span.one_way_us", latency_bounds)
        self.queueing_us = Histogram("span.queueing_us", latency_bounds)
        self.recovery_us = Histogram("span.recovery_us", latency_bounds)
        self.spans: list[Span] = []
        self.marks: list[_Mark] = []
        self.events_seen = 0
        self.last_event_us = 0
        self._tx: dict[tuple[int, int], int] = {}   # (seq, tries) -> t_us
        self._pending_naks: dict[str, dict[int, tuple[int, int]]] = {}
        self._bursts: dict[str, Span] = {}          # open recovery bursts
        self._join: dict[str, Span] = {}            # open join spans
        self._transfer: dict[str, Span] = {}        # open steady-state spans
        self._close: dict[str, Span] = {}           # open close spans

    # -- tap pump -------------------------------------------------------

    def on_event(self, ev, skb) -> None:
        """Raw tracer listener: ``ev`` is the TraceEvent, ``skb`` the
        live segment (read-only here)."""
        self.events_seen += 1
        self.last_event_us = ev.t_us
        if ev.direction == "tx":
            self._on_tx(ev, skb)
        else:
            self._on_rx(ev, skb)

    def _on_tx(self, ev, skb) -> None:
        if ev.ptype == _DATA:
            if ev.host == self.sender_addr:
                if len(self._tx) >= self.TX_CAP:
                    # evict the oldest outstanding entry (insertion order)
                    self._tx.pop(next(iter(self._tx)))
                self._tx[(ev.seq, ev.tries)] = ev.t_us
                if ev.tries > 1:
                    self._mark("retransmit", ev.host, ev.t_us)
        elif ev.ptype == _NAK:
            self._mark("nak", ev.host, ev.t_us)
            pending = self._pending_naks.setdefault(ev.host, {})
            if ev.seq not in pending:
                pending[ev.seq] = (ev.t_us, ev.seq + ev.length)
            if ev.host not in self._bursts:
                burst = Span("recovery-burst", "phase", ev.host, ev.t_us)
                self._bursts[ev.host] = burst
                self.spans.append(burst)
        elif ev.ptype == _UPDATE:
            self._mark("update", ev.host, ev.t_us)
        elif ev.ptype == _JOIN:
            if ev.host not in self._join:
                span = Span("join", "phase", ev.host, ev.t_us)
                self._join[ev.host] = span
                self.spans.append(span)
        elif ev.ptype == _LEAVE:
            close = self._close.get(ev.host)
            if close is not None and close.end_us is None:
                close.end_us = ev.t_us

    def _on_rx(self, ev, skb) -> None:
        host = ev.host
        if ev.ptype == _DATA:
            join = self._join.get(host)
            if join is not None and join.end_us is None:
                join.end_us = ev.t_us
            if host not in self._transfer:
                span = Span("transfer", "phase", host, ev.t_us)
                self._transfer[host] = span
                self.spans.append(span)
            else:
                self._transfer[host].end_us = ev.t_us
            self._observe_latency(ev, skb)
            self._resolve_naks(host, ev.t_us, ev.seq, ev.seq + ev.length,
                               recovered=True)
            if ev.flags & FIN and host not in self._close:
                span = Span("close", "phase", host, ev.t_us)
                self._close[host] = span
                self.spans.append(span)
        elif ev.ptype == _JOIN_RESPONSE:
            join = self._join.get(host)
            if join is not None and join.end_us is None:
                join.end_us = ev.t_us
        elif ev.ptype == _NAK_ERR:
            # the sender refused everything below its window edge: those
            # ranges will never be repaired -- close them unrecovered
            self._resolve_naks(host, ev.t_us, 0, ev.seq, recovered=False,
                               below=True)

    # -- latency stitching ----------------------------------------------

    def _observe_latency(self, ev, skb) -> None:
        t_tx = self._tx.get((ev.seq, ev.tries))
        if t_tx is None or ev.t_us < t_tx:
            return
        self.one_way_us.observe(ev.t_us - t_tx)
        t_wire = getattr(skb, "last_sent_us", -1)
        if t_tx <= t_wire <= ev.t_us:
            self.queueing_us.observe(t_wire - t_tx)

    def _resolve_naks(self, host: str, now_us: int, seq: int, end: int,
                      *, recovered: bool, below: bool = False) -> None:
        pending = self._pending_naks.get(host)
        if not pending:
            return
        done = [start for start in pending
                if (start < end if below else seq <= start < end)]
        for start in done:
            t_nak, _range_end = pending.pop(start)
            if recovered and now_us >= t_nak:
                self.recovery_us.observe(now_us - t_nak)
                self.spans.append(
                    Span(f"repair@{start}", "recovery", host, t_nak, now_us))
        if done and not pending:
            burst = self._bursts.pop(host, None)
            if burst is not None:
                burst.end_us = now_us

    def _mark(self, name: str, host: str, t_us: int) -> None:
        if len(self.marks) < self.MARK_CAP:
            self.marks.append(_Mark(name, host, t_us))

    # -- lifecycle ------------------------------------------------------

    def finalize(self, now_us: int) -> None:
        """Close every still-open span at end of run.  Spans are tap
        phenomena, so the close-out instant is the last tap event, not
        ``now_us`` -- ``run(until=...)`` advances the clock to the time
        horizon even when traffic drained long before it."""
        end = min(now_us, self.last_event_us) if self.last_event_us \
            else now_us
        for span in self.spans:
            if span.end_us is None:
                span.end_us = max(end, span.start_us)

    def histograms(self) -> list[Histogram]:
        return [self.one_way_us, self.queueing_us, self.recovery_us]

    def recovery_by_host(self) -> list[tuple[str, int, int, int]]:
        """Per-host recovery-span aggregation: (host, episodes,
        total_us, max_us), sorted by host.  The span-derived
        cross-check of the health observatory's gap-fill lag ledger:
        spans measure NAK-send -> repair-arrival on the wire, the
        ledger measures gap-open -> gap-fill in the reassembly state."""
        agg: dict[str, list[int]] = {}
        for span in self.spans:
            if span.cat != "recovery" or span.end_us is None:
                continue
            entry = agg.get(span.host)
            if entry is None:
                agg[span.host] = [1, span.dur_us, span.dur_us]
            else:
                entry[0] += 1
                entry[1] += span.dur_us
                if span.dur_us > entry[2]:
                    entry[2] = span.dur_us
        return [(host, e[0], e[1], e[2])
                for host, e in sorted(agg.items())]

    def current_phase(self) -> str:
        """Coarse aggregate protocol phase right now, for attributing
        point-in-time samples (the perf observatory's heap snapshots).
        Recovery wins while any burst is open; otherwise the run is in
        close once any receiver saw FIN, in transfer once data flows,
        in join while handshakes are outstanding, else idle."""
        for span in self._bursts.values():
            if span.end_us is None:
                return "recovery"
        if self._close:
            return "close"
        if self._transfer:
            return "transfer"
        if self._join:
            return "join"
        return "idle"
