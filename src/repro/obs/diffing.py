"""Run-divergence diffing: align two runs, find where they first split.

"Seed 7 is slower than seed 6" is not an answer; *which packet went a
different way, and why* is.  :func:`diff_runs` loads the packet traces
(and, when present, the causal lineages) two runs wrote into their
artifact directories, aligns the event streams, and reports the first
**causally significant** divergence: the first position where the
structural identity of an event -- ``(host, direction, type, seq,
length, tries, flags)`` -- differs.  Pure timing drift (same event
sequence, shifted clocks) is tracked separately and reported as such,
because two runs that do the same things at slightly different times
have not diverged causally.

The alignment is positional rather than an edit-distance match: runs
under comparison share a harness and differ in one variable (seed,
plan, code version), so their prefixes are identical up to the first
causal split -- and everything after that point is downstream of it,
which is precisely why only the *first* divergence is worth a detailed
report (with each side's lineage chain, when lineage files exist).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.causal import load_lineage, walk_chain
from repro.obs.diag import format_chain
from repro.trace.tracer import TraceEvent, load_trace, trace_meta

__all__ = ["RunArtifacts", "DiffResult", "load_run", "diff_runs"]


#: structural identity of a trace event -- everything except its time
def _key(ev: TraceEvent) -> tuple:
    return (ev.host, ev.direction, ev.ptype, ev.seq, ev.length,
            ev.tries, ev.flags)


@dataclass
class RunArtifacts:
    """One run's loaded artifacts (see :func:`load_run`)."""

    path: str
    trace: list[TraceEvent]
    trace_truncated: bool = False
    lineage: dict = field(default_factory=dict)   # eid -> CauseNode
    lineage_meta: dict = field(default_factory=dict)

    def describe(self) -> str:
        bits = [f"{len(self.trace)} events"]
        if self.trace_truncated:
            bits.append("trace truncated")
        if self.lineage:
            bits.append(f"{len(self.lineage)} lineage nodes")
        return f"{self.path} ({', '.join(bits)})"


@dataclass
class DiffResult:
    """Outcome of aligning two runs."""

    run_a: RunArtifacts
    run_b: RunArtifacts
    divergence_index: Optional[int] = None    # position of first split
    event_a: Optional[TraceEvent] = None      # None = side exhausted
    event_b: Optional[TraceEvent] = None
    lineage_a: list[str] = field(default_factory=list)
    lineage_b: list[str] = field(default_factory=list)
    common_prefix: int = 0
    max_time_drift_us: int = 0
    first_drift_index: Optional[int] = None

    @property
    def diverged(self) -> bool:
        return self.divergence_index is not None

    def render(self) -> str:
        out = [f"runA: {self.run_a.describe()}",
               f"runB: {self.run_b.describe()}"]
        if not self.diverged:
            out.append(f"no causal divergence: {self.common_prefix} "
                       f"events align")
            if self.max_time_drift_us:
                out.append(f"timing drift only: first at event "
                           f"#{self.first_drift_index}, max "
                           f"{self.max_time_drift_us} us")
            else:
                out.append("traces are identical (timing included)")
            return "\n".join(out)
        out.append(f"first causal divergence at event "
                   f"#{self.divergence_index} "
                   f"(after {self.common_prefix} aligned events):")
        out.append(f"  A: {_fmt_event(self.event_a)}")
        if self.lineage_a:
            out.extend(f"     {ln}" for ln in self.lineage_a)
        out.append(f"  B: {_fmt_event(self.event_b)}")
        if self.lineage_b:
            out.extend(f"     {ln}" for ln in self.lineage_b)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt_event(ev: Optional[TraceEvent]) -> str:
    if ev is None:
        return "<run ended: no more events on this side>"
    return (f"t={ev.t_us} {ev.direction} {ev.type_name} seq={ev.seq} "
            f"len={ev.length} tries={ev.tries} @ {ev.host}")


def load_run(path: str) -> RunArtifacts:
    """Load a run directory (or a bare ``*.trace.jsonl`` file).

    A run directory is whatever ``--metrics-out`` produced: it must
    contain one ``*.trace.jsonl``; ``*.lineage.jsonl`` is optional and
    enables per-side lineage in the divergence report.  Raises
    ``ValueError`` with a one-line reason for anything unusable.
    """
    if os.path.isfile(path):
        trace_path, lineage_path = path, None
        base = path[:-len(".trace.jsonl")] if \
            path.endswith(".trace.jsonl") else None
        if base and os.path.isfile(base + ".lineage.jsonl"):
            lineage_path = base + ".lineage.jsonl"
    elif os.path.isdir(path):
        traces = sorted(f for f in os.listdir(path)
                        if f.endswith(".trace.jsonl"))
        if not traces:
            raise ValueError(f"no *.trace.jsonl in {path!r} -- was the "
                             "run made with --metrics-out?")
        trace_path = os.path.join(path, traces[0])
        lineage_path = trace_path[:-len(".trace.jsonl")] + ".lineage.jsonl"
        if not os.path.isfile(lineage_path):
            lineage_path = None
    else:
        raise ValueError(f"run {path!r} not found")

    try:
        trace = load_trace(trace_path)
        meta = trace_meta(trace_path)
    except Exception as exc:
        raise ValueError(f"corrupt trace file {trace_path!r}: {exc}") \
            from None
    run = RunArtifacts(path=path, trace=trace,
                       trace_truncated=bool(meta and meta.get("truncated")))
    if lineage_path is not None:
        run.lineage, run.lineage_meta = load_lineage(lineage_path)
    return run


def diff_runs(a: "RunArtifacts | str", b: "RunArtifacts | str",
              *, max_drift_report: bool = True) -> DiffResult:
    """Align two runs and locate their first causal divergence."""
    run_a = a if isinstance(a, RunArtifacts) else load_run(a)
    run_b = b if isinstance(b, RunArtifacts) else load_run(b)
    result = DiffResult(run_a, run_b)

    n = min(len(run_a.trace), len(run_b.trace))
    for i in range(n):
        ev_a, ev_b = run_a.trace[i], run_b.trace[i]
        if _key(ev_a) != _key(ev_b):
            _fill_divergence(result, i, ev_a, ev_b)
            return result
        if ev_a.t_us != ev_b.t_us:
            drift = abs(ev_a.t_us - ev_b.t_us)
            if result.first_drift_index is None:
                result.first_drift_index = i
            if drift > result.max_time_drift_us:
                result.max_time_drift_us = drift
    result.common_prefix = n
    if len(run_a.trace) != len(run_b.trace):
        # one run kept going after the other finished: that tail *is*
        # the divergence (e.g. extra recovery rounds under a worse seed)
        ev_a = run_a.trace[n] if len(run_a.trace) > n else None
        ev_b = run_b.trace[n] if len(run_b.trace) > n else None
        _fill_divergence(result, n, ev_a, ev_b)
    return result


def _fill_divergence(result: DiffResult, i: int,
                     ev_a: Optional[TraceEvent],
                     ev_b: Optional[TraceEvent]) -> None:
    result.divergence_index = i
    result.common_prefix = i
    result.event_a = ev_a
    result.event_b = ev_b
    result.lineage_a = _lineage_of(result.run_a, ev_a)
    result.lineage_b = _lineage_of(result.run_b, ev_b)


def _lineage_of(run: RunArtifacts, ev: Optional[TraceEvent]) -> list[str]:
    """The causal chain behind a trace event, matched against the run's
    saved lineage by structural identity (kind/host/seq/tries) at the
    nearest time."""
    if ev is None or not run.lineage:
        return []
    best = None
    for node in run.lineage.values():
        if (node.kind == ev.direction and node.host == ev.host
                and node.seq == ev.seq and node.tries == ev.tries):
            if best is None or \
                    abs(node.t_us - ev.t_us) < abs(best.t_us - ev.t_us):
                best = node
    if best is None:
        return []
    chain, truncated = walk_chain(run.lineage, best)
    return format_chain(chain, truncated)
