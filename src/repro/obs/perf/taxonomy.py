"""Stable event-class taxonomy for engine callbacks.

The tax table of the performance observatory attributes every executed
engine callback to one of a small, *stable* set of event classes -- the
vocabulary in which ROADMAP item 1 (the engine hot-path overhaul) makes
its scheduler decisions.  Classes must not churn between PRs or the
bench trajectory stops being comparable, so they live here as a frozen
tuple:

``jiffy-timer``
    Periodic protocol ticks driven off the 10 ms jiffy machinery
    (transmit, update, keepalive, liveness, polling rounds).  The
    dominant class in steady state and the candidate for a timing-wheel
    scheduler.
``nak-repair-timer``
    Loss-recovery timers and repair emission (NAK backoff, RTO,
    retransmission ticks, repair subcasts).
``nic-tx`` / ``nic-rx``
    Device-model work: transmit-ring completions and host-side
    transmit CPU on the way down; RX-ring enqueue/drain/protocol
    delivery on the way up.
``link``
    Medium propagation: the per-receiver fan-out events a broadcast
    schedules, plus router/pipe store-and-forward hops.
``process-wake``
    :class:`~repro.sim.process.SimEvent` wake-ups (blocked process
    rendezvous).
``app``
    Application generator resumes (file-transfer sender/receiver
    loops, disk model).
``fleet-harness``
    Everything the harness itself schedules around a run: fault
    injection, observability scrape ticks, watchdogs.
``other``
    Anything the registry and the inference fallback cannot place.
    The observatory reports coverage = 1 - other/total; the acceptance
    bar is >= 95 %.

Classification has three layers, cheapest first:

1. **Registration at timer creation** -- :class:`~repro.sim.timer.Timer`
   accepts ``event_class=`` and protocol modules pass it explicitly;
   the profiler reads it straight off the timer instance.
2. **Registration by callback** -- :func:`register_site` maps a
   function object to a class; this module registers the engine-adjacent
   callbacks of the NIC, link, router, host, process and harness layers.
3. **Callsite inference** -- :func:`infer` pattern-matches the
   callback's module/qualname so third-party or future callbacks
   degrade to a sensible class instead of ``other``.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["EVENT_CLASSES", "classify", "infer", "register_site",
           "timer_class", "TIMER_CLASSES"]

#: the frozen vocabulary of the tax table (order = report order)
EVENT_CLASSES = (
    "jiffy-timer", "nak-repair-timer", "nic-tx", "nic-rx", "link",
    "process-wake", "app", "fleet-harness", "other",
)

#: timer-name fallback for timers created without ``event_class=``
TIMER_CLASSES = {
    "transmit": "jiffy-timer",
    "update": "jiffy-timer",
    "keepalive": "jiffy-timer",
    "liveness": "jiffy-timer",
    "poll": "jiffy-timer",
    "poll-tx": "jiffy-timer",
    "ack-tx": "jiffy-timer",
    "tcp-tx": "jiffy-timer",
    "linger": "jiffy-timer",
    "leave-timeout": "jiffy-timer",
    "nak": "nak-repair-timer",
    "retrans": "nak-repair-timer",
    "join-retry": "nak-repair-timer",
    "rto": "nak-repair-timer",
    "ack-rto": "nak-repair-timer",
    "tcp-rto": "nak-repair-timer",
}

#: function object -> event class (layer 2)
_REGISTRY: dict[object, str] = {}


def _underlying(func: Callable) -> object:
    return getattr(func, "__func__", func)


def register_site(func: Callable, event_class: str) -> None:
    """Register ``func`` (a plain function or an unbound method) as
    belonging to ``event_class``.  The registration API for callbacks
    that are not timers; modules may call this for their own callbacks."""
    if event_class not in EVENT_CLASSES:
        raise ValueError(f"unknown event class {event_class!r}; "
                         f"known: {', '.join(EVENT_CLASSES)}")
    _REGISTRY[_underlying(func)] = event_class


def timer_class(name: str) -> str:
    """Event class of a :class:`~repro.sim.timer.Timer` by its name
    (fallback for timers armed without an explicit ``event_class=``)."""
    return TIMER_CLASSES.get(name, "jiffy-timer")


#: (module prefix, qualname substring or "", class) -- first match wins
_INFER_RULES = (
    ("repro.net.nic", "_tx", "nic-tx"),
    ("repro.net.nic", "medium_deliver", "link"),
    ("repro.net.nic", "", "nic-rx"),
    ("repro.net.link", "", "link"),
    ("repro.net.router", "", "link"),
    ("repro.kernel.host", "_xmit", "nic-tx"),
    ("repro.kernel.host", "", "nic-rx"),
    ("repro.sim.process", "Process.", "app"),
    ("repro.sim.process", "", "process-wake"),
    ("repro.apps", "", "app"),
    ("repro.core.receiver", "_emit_repairs", "nak-repair-timer"),
    ("repro.obs", "", "fleet-harness"),
    ("repro.faults", "", "fleet-harness"),
    ("repro.harness", "", "fleet-harness"),
    ("repro.fleet", "", "fleet-harness"),
)


def infer(module: str, qualname: str) -> str:
    """Layer-3 fallback: place a callback by its defining module and
    qualified name.  Returns ``"other"`` when nothing matches."""
    for prefix, fragment, event_class in _INFER_RULES:
        if module == prefix or module.startswith(prefix + "."):
            if not fragment or fragment in qualname:
                return event_class
    return "other"


# -- layer-2 registrations for the engine-adjacent callbacks ------------
# (imports are top-down: obs.perf may depend on sim/net/kernel, never
# the other way around)

def _register_builtin_sites() -> None:
    from repro.kernel.host import Host
    from repro.net.nic import NetworkInterface
    from repro.sim.process import Process, SimEvent

    register_site(NetworkInterface._tx_done, "nic-tx")
    register_site(Host._xmit, "nic-tx")
    register_site(NetworkInterface.medium_deliver, "link")
    register_site(NetworkInterface._rx_enqueue, "nic-rx")
    register_site(NetworkInterface._rx_process, "nic-rx")
    register_site(NetworkInterface._rx_done, "nic-rx")
    register_site(Process._resume, "app")
    register_site(SimEvent.fire, "process-wake")


_register_builtin_sites()


def classify(callback: Callable) -> str:
    """Classify one engine callback (slow path; the profiler memoizes).

    Order: the owning object's ``event_class`` attribute (layer 1,
    timers), then the per-timer-name fallback, then the function
    registry (layer 2), then module/qualname inference (layer 3)."""
    fn = _underlying(callback)
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        event_class = getattr(owner, "event_class", "")
        if event_class:
            return event_class
        if fn is _TIMER_FIRE:
            event_class = timer_class(owner.name)
            # memoize on the timer: later fires hit the attribute path
            owner.event_class = event_class
            return event_class
    registered = _REGISTRY.get(fn)
    if registered is not None:
        return registered
    return infer(getattr(fn, "__module__", "") or "",
                 getattr(fn, "__qualname__", "") or "")


# resolved late so the Timer import sits with its use
from repro.sim.timer import Timer as _Timer  # noqa: E402

_TIMER_FIRE = _Timer._fire
