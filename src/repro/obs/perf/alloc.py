"""Allocation and GC-pause tracking (strictly opt-in).

``tracemalloc`` costs real memory and slows every allocation while
tracing, so this tracker only ever exists when the user passes
``--alloc`` (or ``PerfObservatory(alloc=True)``); a disabled run makes
no tracemalloc or gc call at all -- the zero-perturbation tests pin
that down.

When enabled the tracker:

* samples ``tracemalloc.get_traced_memory()`` on every observability
  scrape tick, attributing current/peak heap bytes to the run's
  *protocol phase* (join / transfer / recovery / close, from the PR 2
  span collector) with per-phase peaks isolated via ``reset_peak``;
* counts collector runs and sums collection pause wall time per phase
  through ``gc.callbacks``;
* on stop, diffs a final snapshot against the attach-time baseline and
  keeps the top allocation sites by net growth.

Heap numbers are *measurement artifacts, not simulation state*: they
never feed back into the run (simlint's R1 boundary keeps tracemalloc
and gc calls fenced inside ``repro.obs.perf``).
"""

from __future__ import annotations

import gc
import tracemalloc
from time import perf_counter_ns

__all__ = ["AllocTracker", "PhaseAlloc"]


class PhaseAlloc:
    """Per-phase aggregate of heap samples and GC activity."""

    __slots__ = ("samples", "last_current", "max_current", "max_peak",
                 "gc_collections", "gc_collected", "gc_pause_ns")

    def __init__(self) -> None:
        self.samples = 0
        self.last_current = 0
        self.max_current = 0
        self.max_peak = 0
        self.gc_collections = 0
        self.gc_collected = 0
        self.gc_pause_ns = 0


class AllocTracker:
    """tracemalloc + gc accounting for one observed run."""

    def __init__(self, top_sites: int = 10):
        self.top_sites = int(top_sites)
        self.phases: dict[str, PhaseAlloc] = {}
        self.phase_order: list[str] = []
        self.growth_sites: list[tuple[str, int, int]] = []  # (site, bytes, blocks)
        self.total_gc_collections = 0
        self.total_gc_pause_ns = 0
        self._phase = ""
        self._baseline = None
        self._owns_tracing = False
        self._running = False
        self._gc_t0 = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._owns_tracing = not tracemalloc.is_tracing()
        if self._owns_tracing:
            tracemalloc.start()
        self._baseline = tracemalloc.take_snapshot()
        tracemalloc.reset_peak()
        gc.callbacks.append(self._gc_hook)

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        try:
            gc.callbacks.remove(self._gc_hook)
        except ValueError:
            pass
        end = tracemalloc.take_snapshot()
        if self._owns_tracing:
            tracemalloc.stop()
        diffs = end.compare_to(self._baseline, "lineno")
        self._baseline = None
        top = sorted(diffs, key=lambda d: (-d.size_diff, str(d.traceback)))
        sites = []
        for stat in top[: self.top_sites]:
            frame = stat.traceback[0]
            name = frame.filename.replace("\\", "/")
            if "/src/" in name:
                name = name.split("/src/")[-1]
            else:
                name = "/".join(name.rsplit("/", 2)[-2:])
            sites.append((f"{name}:{frame.lineno}",
                          stat.size_diff, stat.count_diff))
        self.growth_sites = sites

    # -- sampling --------------------------------------------------------

    def _phase_stats(self, phase: str) -> PhaseAlloc:
        stats = self.phases.get(phase)
        if stats is None:
            stats = self.phases[phase] = PhaseAlloc()
            self.phase_order.append(phase)
        return stats

    def sample(self, now_us: int, phase: str) -> None:
        """Record one heap sample, attributed to ``phase`` (called from
        the observability scrape tick)."""
        if not self._running:
            return
        if phase != self._phase:
            # per-phase peaks: a new phase starts with a fresh peak mark
            tracemalloc.reset_peak()
            self._phase = phase
        current, peak = tracemalloc.get_traced_memory()
        stats = self._phase_stats(phase)
        stats.samples += 1
        stats.last_current = current
        if current > stats.max_current:
            stats.max_current = current
        if peak > stats.max_peak:
            stats.max_peak = peak

    def _gc_hook(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_t0 = perf_counter_ns()
            return
        pause = perf_counter_ns() - self._gc_t0
        stats = self._phase_stats(self._phase or "idle")
        stats.gc_collections += 1
        stats.gc_collected += int(info.get("collected", 0))
        stats.gc_pause_ns += pause
        self.total_gc_collections += 1
        self.total_gc_pause_ns += pause

    # -- views -----------------------------------------------------------

    def phase_rows(self) -> list[list]:
        """``[phase, samples, max_current_kb, max_peak_kb, gc_runs,
        gc_pause_ms]`` in first-seen phase order."""
        rows = []
        for phase in self.phase_order:
            s = self.phases[phase]
            rows.append([phase, s.samples,
                         round(s.max_current / 1024, 1),
                         round(s.max_peak / 1024, 1),
                         s.gc_collections,
                         round(s.gc_pause_ns / 1e6, 2)])
        return rows

    def growth_rows(self) -> list[list]:
        """Top net-growth allocation sites: ``[site, kb, blocks]``."""
        return [[site, round(nbytes / 1024, 1), blocks]
                for site, nbytes, blocks in self.growth_sites]

    def payload(self) -> dict:
        """JSON-safe summary for bench snapshots / fleet summaries."""
        return {
            "gc_collections": self.total_gc_collections,
            "gc_pause_ms": round(self.total_gc_pause_ns / 1e6, 2),
            "phases": {
                phase: {"max_current": s.max_current, "max_peak": s.max_peak,
                        "samples": s.samples,
                        "gc_collections": s.gc_collections}
                for phase, s in sorted(self.phases.items())
            },
            "top_growth": [
                {"site": site, "bytes": nbytes, "blocks": blocks}
                for site, nbytes, blocks in self.growth_sites
            ],
        }
