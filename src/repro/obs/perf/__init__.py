"""Hot-path performance observatory (``repro.obs.perf``).

The measurement side of ROADMAP item 1: before the engine hot path can
be rebuilt ~5x faster, someone has to say *where* the current ~55-75k
events/s budget goes.  This package layers three instruments on the
existing ``Simulator.profiler`` hook:

* **event-class tax table** -- every executed callback attributed to a
  stable taxonomy (:mod:`~repro.obs.perf.taxonomy`), reported as
  events/s and self-wall share per class;
* **deterministic flamegraphs** -- every Nth event traced to a
  collapsed-stack profile (:mod:`~repro.obs.perf.flame`), rendered
  into the self-contained HTML report;
* **allocation & GC tracking** -- tracemalloc phase snapshots and
  gc-pause counters (:mod:`~repro.obs.perf.alloc`), strictly opt-in.

Everything hangs off :class:`PerfObservatory`, which plugs into
:class:`~repro.obs.observer.Observability` via its ``perf=`` argument::

    perf = PerfObservatory(sample_every=16, alloc=True)
    obs = Observability(perf=perf)
    res = run_transfer(build_lan(...), obs=obs)
    print(tabulate(perf.tax_rows()))
    perf.write_collapsed("lan.collapsed.txt")

Wall-clock reads (``perf_counter_ns``, tracemalloc, gc) are measurement
artifacts that never feed back into simulated behaviour; simlint's R1
rule fences them inside this package.  When no observatory is attached
the hot path pays nothing: ``Simulator.profiler`` stays ``None`` and no
perf object exists (the disabled-path tests assert byte-identical
traces and a zero tracemalloc diff).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.perf.alloc import AllocTracker
from repro.obs.perf.flame import StackSampler, flamegraph_svg
from repro.obs.perf.profiler import PerfProfiler
from repro.obs.perf.taxonomy import (EVENT_CLASSES, classify, register_site,
                                     timer_class)

__all__ = ["PerfObservatory", "PerfProfiler", "StackSampler",
           "AllocTracker", "EVENT_CLASSES", "classify", "register_site",
           "timer_class", "flamegraph_svg"]


class PerfObservatory:
    """One run's performance instruments, bundled for ``Observability``.

    Parameters
    ----------
    sample_every:
        Trace every Nth executed engine event into the flamegraph
        (0 disables stack sampling entirely).
    alloc:
        Enable tracemalloc/gc tracking (heavy; off by default).
    top_sites:
        Allocation-growth sites to keep in the alloc report.
    """

    def __init__(self, *, sample_every: int = 16, alloc: bool = False,
                 top_sites: int = 10):
        sampler = StackSampler(sample_every) if sample_every > 0 else None
        self.profiler = PerfProfiler(sampler=sampler)
        self.alloc: Optional[AllocTracker] = \
            AllocTracker(top_sites) if alloc else None
        self.attached = False

    # -- lifecycle hooks (driven by Observability) -----------------------

    def attach(self) -> None:
        self.attached = True
        if self.alloc is not None:
            self.alloc.start()

    def tick(self, now_us: int, spans) -> None:
        """Scrape-tick hook: heap samples ride the observability scrape
        so the tracker adds no events of its own."""
        if self.alloc is not None:
            phase = spans.current_phase() if spans is not None else "idle"
            self.alloc.sample(now_us, phase)

    def finalize(self, now_us: int, spans) -> None:
        if self.alloc is not None:
            phase = spans.current_phase() if spans is not None else "idle"
            self.alloc.sample(now_us, phase)
            self.alloc.stop()

    # -- views -----------------------------------------------------------

    @property
    def sampler(self) -> Optional[StackSampler]:
        return self.profiler.sampler

    def coverage(self) -> float:
        return self.profiler.coverage()

    def tax_rows(self) -> list[list]:
        return self.profiler.tax_rows()

    def summary_tables(self) -> list[tuple[str, list, list]]:
        """(title, headers, rows) tables for harness reports, matching
        ``Observability.summary_tables`` shape."""
        tables = []
        rows = self.tax_rows()
        if rows:
            tables.append((
                f"event-class tax table (coverage "
                f"{100.0 * self.coverage():.1f}%)",
                ["class", "events", "ev%", "wall_ms", "wall%",
                 "avg_us", "sim_ms"], rows))
        if self.alloc is not None:
            phase_rows = self.alloc.phase_rows()
            if phase_rows:
                tables.append(("heap by phase",
                               ["phase", "samples", "max_cur_kb",
                                "max_peak_kb", "gc_runs", "gc_pause_ms"],
                               phase_rows))
            growth_rows = self.alloc.growth_rows()
            if growth_rows:
                tables.append(("top allocation growth",
                               ["site", "kb", "blocks"], growth_rows))
        return tables

    def collapsed_lines(self) -> list[str]:
        sampler = self.profiler.sampler
        return sampler.collapsed_lines() if sampler is not None else []

    def write_collapsed(self, path) -> None:
        sampler = self.profiler.sampler
        if sampler is None:
            raise RuntimeError("stack sampling disabled (sample_every=0)")
        sampler.write_collapsed(path)

    def flame_svg(self, width: int = 1000) -> str:
        sampler = self.profiler.sampler
        if sampler is None or not sampler.stacks:
            return ""
        return flamegraph_svg(sampler.stacks, width=width)

    def bench_payload(self) -> dict:
        """JSON-safe block for bench snapshots / fleet summaries."""
        payload = {
            "events": self.profiler.events,
            "coverage": round(self.coverage(), 4),
            "classes": self.profiler.class_payload(),
        }
        sampler = self.profiler.sampler
        if sampler is not None:
            payload["flame_samples"] = sampler.samples
            payload["flame_stacks"] = len(sampler.stacks)
        if self.alloc is not None:
            payload["alloc"] = self.alloc.payload()
        return payload
