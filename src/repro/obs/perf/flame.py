"""Deterministic stack sampling and flamegraph export.

Classic profilers sample on a wall-clock alarm, which makes every run's
sample set different.  The observatory instead samples on the engine's
*event counter*: :class:`~repro.obs.perf.profiler.PerfProfiler` hands
every Nth executed callback to :meth:`StackSampler.run`, which traces
the callback's full Python call tree with :func:`sys.setprofile` and
charges self-wall time to each stack.  Because N counts simulated
events, the *set of sampled callbacks* is identical across repeated
runs of the same scenario -- only the nanosecond weights vary with
machine noise -- so flamegraphs are comparable run-to-run and the
collapsed output diffable.

Stacks are rooted ``engine;<event-class>;<site>;...frames`` so the
flamegraph's first level is the tax table and each class unfolds into
the code that bills it.  Export is the standard collapsed format
(``semicolon;separated;stack <weight>``, one line per stack, weight in
microseconds) consumable by external flamegraph tooling, plus a
self-contained SVG renderer for the HTML report.
"""

from __future__ import annotations

import gc
import sys
from time import perf_counter_ns
from typing import Callable
from zlib import crc32

__all__ = ["StackSampler", "flamegraph_svg"]


def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "") or ""
    qualname = getattr(code, "co_qualname", None) or code.co_name
    leaf = module.rsplit(".", 1)[-1]
    return f"{leaf}.{qualname}" if leaf else qualname


class StackSampler:
    """Event-count-triggered call-tree sampler.

    ``sample_every=N`` samples callbacks 0, N, 2N, ... of the engine's
    execution sequence.  Each sampled callback runs under a profile
    hook that attributes self-wall nanoseconds to the live stack at
    every call/return transition, accumulated into
    ``stacks[(root, class, site, *frames)] -> ns``.
    """

    def __init__(self, sample_every: int = 16, max_stacks: int = 50_000):
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.sample_every = int(sample_every)
        self.max_stacks = int(max_stacks)
        self.stacks: dict[tuple, int] = {}
        self.samples = 0
        self.dropped_ns = 0      # charge lost to the max_stacks cap

    def _charge(self, base: tuple, frames: list, ns: int) -> None:
        # zero-ns deltas (clock granularity) still record the key: the
        # *set* of stacks must depend only on the sampled event set,
        # never on how the wall clock quantized a fast transition
        key = base + tuple(frames)
        have = self.stacks.get(key)
        if have is not None:
            self.stacks[key] = have + ns
        elif len(self.stacks) < self.max_stacks:
            self.stacks[key] = ns
        else:
            self.dropped_ns += ns

    def run(self, event_class: str, site: str,
            callback: Callable, args: tuple) -> None:
        """Execute ``callback(*args)`` with stack attribution."""
        base = ("engine", event_class, site)
        frames: list[str] = []
        charge = self._charge
        prev = perf_counter_ns()

        def hook(frame, event, arg):
            nonlocal prev
            now = perf_counter_ns()
            charge(base, frames, now - prev)
            if event == "call":
                frames.append(_frame_label(frame))
            elif event == "return" and frames:
                frames.pop()
            # c_call / c_return / c_exception: billed to the live stack
            prev = perf_counter_ns()

        # defer automatic GC for the duration of the sample: a cycle
        # landing mid-callback would run any registered gc.callbacks
        # (hypothesis installs one process-wide) whose Python frames
        # leak into the stack keys at a wall-clock-dependent point,
        # breaking the run-to-run key-set guarantee above -- and the
        # pause itself would be billed to whatever frame it interrupted
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        self.samples += 1
        sys.setprofile(hook)
        try:
            callback(*args)
        finally:
            sys.setprofile(None)
            charge(base, frames, perf_counter_ns() - prev)
            if gc_was_enabled:
                gc.enable()

    # -- export ----------------------------------------------------------

    def collapsed_lines(self) -> list[str]:
        """Collapsed-stack lines (sorted, hence deterministic given a
        deterministic sample set), weights in whole microseconds."""
        lines = []
        for key in sorted(self.stacks):
            weight_us = max(1, self.stacks[key] // 1000)
            lines.append(";".join(key) + f" {weight_us}")
        return lines

    def write_collapsed(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.collapsed_lines():
                fh.write(line + "\n")


# -- SVG flamegraph ------------------------------------------------------

_CLASS_HUES = {
    "jiffy-timer": 28, "nak-repair-timer": 0, "nic-tx": 204, "nic-rx": 174,
    "link": 262, "process-wake": 96, "app": 130, "fleet-harness": 52,
    "other": 0,
}


def _fill(label: str, event_class: str) -> str:
    hue = _CLASS_HUES.get(event_class, 210)
    light = 52 + crc32(label.encode()) % 18   # stable per-frame variation
    sat = 60 if event_class != "other" else 0
    return f"hsl({hue},{sat}%,{light}%)"


class _Node:
    __slots__ = ("label", "total", "children")

    def __init__(self, label: str):
        self.label = label
        self.total = 0
        self.children: dict[str, _Node] = {}


def _build_tree(stacks: dict[tuple, int]) -> _Node:
    root = _Node("engine")
    for key in sorted(stacks):
        ns = stacks[key]
        root.total += ns
        node = root
        for label in key[1:]:    # key[0] is the shared "engine" root
            child = node.children.get(label)
            if child is None:
                child = node.children[label] = _Node(label)
            node = child
            node.total += ns
    return root


def flamegraph_svg(stacks: dict[tuple, int], *, width: int = 1000,
                   row_h: int = 17) -> str:
    """Render sampled stacks as a self-contained SVG flamegraph.

    Purely deterministic: sibling frames are laid out in sorted label
    order, colors derive from a CRC of the label, and no external
    assets or scripts are referenced.
    """
    root = _build_tree(stacks)
    if root.total <= 0:
        return "<svg xmlns='http://www.w3.org/2000/svg' width='10' height='10'/>"

    def depth_of(node: _Node) -> int:
        if not node.children:
            return 1
        return 1 + max(depth_of(c) for c in node.children.values())

    height = depth_of(root) * row_h + 4
    scale = width / root.total
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' font-family='monospace' font-size='11'>",
    ]

    def emit(node: _Node, x: float, depth: int, event_class: str) -> None:
        w = node.total * scale
        if w < 0.4:
            return
        y = height - (depth + 1) * row_h - 2
        pct = 100.0 * node.total / root.total
        label = node.label
        fill = _fill(label, event_class)
        parts.append(
            f"<g><title>{label} ({node.total // 1000} us, {pct:.1f}%)</title>"
            f"<rect x='{x:.1f}' y='{y}' width='{max(w - 0.5, 0.1):.1f}' "
            f"height='{row_h - 1}' fill='{fill}' rx='1'/>"
        )
        if w > 45:
            text = label if len(label) * 6.2 < w else label[:max(1, int(w / 6.2)) - 1] + "…"
            parts.append(f"<text x='{x + 3:.1f}' y='{y + row_h - 5}'>{text}</text>")
        parts.append("</g>")
        cx = x
        for child_label in sorted(node.children):
            child = node.children[child_label]
            # the class level sits directly under the root
            emit(child, cx, depth + 1,
                 child_label if depth == 0 else event_class)
            cx += child.total * scale

    emit(root, 0.0, 0, "other")
    parts.append("</svg>")
    return "".join(parts)
