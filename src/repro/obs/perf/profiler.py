"""Event-class engine profiler.

:class:`PerfProfiler` extends the flat per-site
:class:`~repro.obs.profiler.SimProfiler` with the observatory's three
jobs:

* aggregate the same two clocks (virtual advance, callback wall time)
  per **event class** (see :mod:`repro.obs.perf.taxonomy`) and render
  the "tax table" -- events/s and self-wall share per class;
* memoize classification and site labels by underlying function object
  so the per-event overhead is two dict probes (bound methods are
  recreated per schedule, so caching by callback identity would never
  hit -- the cache key is ``callback.__func__``);
* hand every Nth executed callback to a
  :class:`~repro.obs.perf.flame.StackSampler` -- sampling is keyed to
  the deterministic event counter, never to wall time, so the set of
  sampled callbacks is identical across runs of the same scenario.

The profiler only exists when the observatory is enabled; a disabled
run never constructs one (``Simulator.profiler`` stays ``None`` and the
engine takes the bare path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable, Optional

from repro.obs.perf.flame import StackSampler
from repro.obs.perf.taxonomy import EVENT_CLASSES, classify
from repro.obs.profiler import SimProfiler, SiteStats, site_of

__all__ = ["PerfProfiler"]


@dataclass
class PerfProfiler(SimProfiler):
    """Engine profiler with event-class attribution and stack sampling."""

    classes: dict[str, SiteStats] = field(default_factory=dict)
    sampler: Optional[StackSampler] = None
    _fn_site: dict = field(default_factory=dict, repr=False)
    _fn_class: dict = field(default_factory=dict, repr=False)

    def execute(self, callback: Callable, args: tuple, sim_dt_us: int) -> None:
        fn = getattr(callback, "__func__", callback)
        site = self._fn_site.get(fn)
        if site is None:
            site = self._fn_site[fn] = site_of(callback)
        owner = getattr(callback, "__self__", None)
        event_class = (getattr(owner, "event_class", "")
                       if owner is not None else "")
        if not event_class:
            event_class = self._fn_class.get(fn, "")
            if not event_class:
                # classify() memoizes timers on the timer instance; only
                # owner-independent results are safe to cache per function
                event_class = classify(callback)
                if owner is None or not getattr(owner, "event_class", ""):
                    self._fn_class[fn] = event_class
        sstats = self.sites.get(site)
        if sstats is None:
            sstats = self.sites[site] = SiteStats()
        cstats = self.classes.get(event_class)
        if cstats is None:
            cstats = self.classes[event_class] = SiteStats()
        sampler = self.sampler
        t0 = perf_counter_ns()
        try:
            if sampler is not None and self.events % sampler.sample_every == 0:
                sampler.run(event_class, site, callback, args)
            else:
                callback(*args)
        finally:
            wall = perf_counter_ns() - t0
            sstats.events += 1
            sstats.sim_us += sim_dt_us
            sstats.wall_ns += wall
            cstats.events += 1
            cstats.sim_us += sim_dt_us
            cstats.wall_ns += wall
            self.events += 1
            self.wall_ns_total += wall

    # -- views ----------------------------------------------------------

    def coverage(self) -> float:
        """Fraction of executed callbacks attributed to a named class
        (1 - other/total); the acceptance bar is >= 0.95."""
        if self.events <= 0:
            return 1.0
        other = self.classes.get("other")
        return 1.0 - (other.events if other is not None else 0) / self.events

    def tax_rows(self) -> list[list]:
        """The tax table: one row per observed event class, in taxonomy
        order, ``[class, events, event_share, wall_ms, wall_share,
        avg_us, sim_ms]``."""
        total_events = self.events or 1
        total_wall = self.wall_ns_total or 1
        rows = []
        known = [c for c in EVENT_CLASSES if c in self.classes]
        extra = sorted(c for c in self.classes if c not in EVENT_CLASSES)
        for name in known + extra:
            s = self.classes[name]
            rows.append([
                name, s.events,
                f"{100.0 * s.events / total_events:.1f}%",
                round(s.wall_ns / 1e6, 2),
                f"{100.0 * s.wall_ns / total_wall:.1f}%",
                round(s.wall_ns / 1e3 / (s.events or 1), 2),
                round(s.sim_us / 1000, 1),
            ])
        return rows

    def class_payload(self) -> dict:
        """JSON-safe per-class summary for bench snapshots."""
        out = {}
        for name, s in sorted(self.classes.items()):
            out[name] = {"events": s.events, "wall_ns": s.wall_ns,
                         "sim_us": s.sim_us}
        return out
