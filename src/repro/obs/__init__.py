"""Unified observability layer.

``repro.obs`` instruments a scenario without perturbing it:

* :mod:`repro.obs.metrics` -- deterministic counters, gauges, fixed-
  bucket histograms and time series, sampled on simulated time,
* :mod:`repro.obs.spans` -- packet-lifecycle latency histograms and
  protocol-phase spans stitched from the packet tap,
* :mod:`repro.obs.profiler` -- simulated-time and wall-clock
  attribution per engine callback site,
* :mod:`repro.obs.causal` -- the per-run causal lineage DAG (who
  caused what, from fault action to repaired byte),
* :mod:`repro.obs.diag` -- root-cause queries over the DAG
  (``why(seq)``, ``explain_worst``, stall watchdog),
* :mod:`repro.obs.diffing` -- run-divergence alignment (first causally
  significant split between two runs),
* :mod:`repro.obs.html` -- dependency-free self-contained HTML report,
* :mod:`repro.obs.export` -- JSONL/CSV series dumps, text summaries
  and Chrome Trace Event Format JSON for Perfetto,
* :mod:`repro.obs.observer` -- the :class:`Observability` facade that
  wires the above into ``run_transfer(obs=...)``.
"""

from repro.obs.causal import (CauseNode, LineageRecorder, load_lineage,
                              walk_chain)
from repro.obs.diag import (Diagnoser, StallReport, Watchdog, WhyReport,
                            format_chain)
from repro.obs.diffing import DiffResult, RunArtifacts, diff_runs, load_run
from repro.obs.export import (chrome_trace, summary_text,
                              write_chrome_trace, write_series_csv,
                              write_series_jsonl)
from repro.obs.html import render_report, sparkline_svg, write_report
from repro.obs.metrics import (LATENCY_BOUNDS_US, Counter, Histogram,
                               MetricsRegistry, TimeSeries)
from repro.obs.observer import Observability
from repro.obs.profiler import SimProfiler, SiteStats, site_of
from repro.obs.spans import Span, SpanCollector

__all__ = [
    "Observability",
    "MetricsRegistry", "Counter", "Histogram", "TimeSeries",
    "LATENCY_BOUNDS_US",
    "Span", "SpanCollector",
    "SimProfiler", "SiteStats", "site_of",
    "CauseNode", "LineageRecorder", "load_lineage", "walk_chain",
    "Diagnoser", "Watchdog", "WhyReport", "StallReport", "format_chain",
    "DiffResult", "RunArtifacts", "diff_runs", "load_run",
    "render_report", "sparkline_svg", "write_report",
    "chrome_trace", "summary_text", "write_chrome_trace",
    "write_series_csv", "write_series_jsonl",
]
