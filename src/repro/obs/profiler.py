"""Dual profiler for the discrete-event engine.

Attached as ``Simulator.profiler``, the engine routes every callback
through :meth:`SimProfiler.execute`, which attributes two clocks per
callback *site* (module-qualified function name):

* **simulated time** -- how far the virtual clock advanced to reach
  each firing (which activities the simulation spends its virtual time
  waiting on), and
* **wall time** -- how long the Python callback actually ran (where
  the simulator burns real CPU), plus the engine's overall events/sec.

Attribution is exact: cancelled entries never reach ``execute`` and
heap compaction only touches entries that will never fire, so per-site
event counts equal the number of callbacks actually executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable

__all__ = ["SimProfiler", "SiteStats", "site_of"]


def site_of(callback: Callable) -> str:
    """Stable label for a callback site, e.g. ``nic.NetworkInterface._tx_done``."""
    fn = getattr(callback, "__func__", callback)
    module = getattr(fn, "__module__", "") or ""
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    # drop the common package prefix; keep the leaf module for context
    module = module.rsplit(".", 1)[-1]
    return f"{module}.{qualname}" if module else qualname


@dataclass
class SiteStats:
    """Per-callback-site attribution."""

    events: int = 0
    sim_us: int = 0      # virtual-clock advance attributed to this site
    wall_ns: int = 0     # real time spent inside the callback


@dataclass
class SimProfiler:
    """Engine profiler; assign to ``Simulator.profiler`` before running."""

    sites: dict[str, SiteStats] = field(default_factory=dict)
    events: int = 0
    wall_ns_total: int = 0
    # site labels memoized by the underlying function object: bound
    # methods are recreated per schedule, so caching by callback
    # identity would never hit, but ``__func__`` is stable
    _site_by_fn: dict = field(default_factory=dict, repr=False)

    def execute(self, callback: Callable, args: tuple, sim_dt_us: int) -> None:
        """Run ``callback(*args)`` under the profiler (called by the
        engine for every non-cancelled entry)."""
        fn = getattr(callback, "__func__", callback)
        label = self._site_by_fn.get(fn)
        if label is None:
            label = self._site_by_fn[fn] = site_of(callback)
        stats = self.sites.get(label)
        if stats is None:
            stats = self.sites[label] = SiteStats()
        t0 = perf_counter_ns()
        try:
            callback(*args)
        finally:
            wall = perf_counter_ns() - t0
            stats.events += 1
            stats.sim_us += sim_dt_us
            stats.wall_ns += wall
            self.events += 1
            self.wall_ns_total += wall

    # -- views ----------------------------------------------------------

    def events_per_sec(self) -> float:
        """Engine throughput: callbacks executed per wall-clock second
        of callback time (the engine's own loop overhead excluded)."""
        if self.wall_ns_total <= 0:
            return 0.0
        return self.events * 1e9 / self.wall_ns_total

    def top(self, n: int = 10, key: str = "wall") -> list[list]:
        """``n`` hottest sites as table rows
        ``[site, events, sim_ms, wall_ms, wall_share]``."""
        if key not in ("wall", "sim", "events"):
            raise ValueError(f"unknown sort key {key!r}")
        idx = {"events": lambda s: s.events, "sim": lambda s: s.sim_us,
               "wall": lambda s: s.wall_ns}[key]
        ranked = sorted(self.sites.items(),
                        key=lambda kv: (-idx(kv[1]), kv[0]))
        total_wall = self.wall_ns_total or 1
        return [[site, s.events, round(s.sim_us / 1000, 1),
                 round(s.wall_ns / 1e6, 2),
                 f"{100.0 * s.wall_ns / total_wall:.1f}%"]
                for site, s in ranked[:n]]
