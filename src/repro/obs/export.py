"""Exporters for the observability layer.

Three formats, all deterministic for a fixed seed:

* **JSONL / CSV** -- one record per time-series sample (plus counter
  and histogram records in the JSONL), for offline plotting and
  diffing across runs,
* **text summary** -- aligned tables appended to harness reports,
* **Chrome Trace Event Format JSON** -- protocol-phase and recovery
  spans as duration events, metric series as counter tracks and
  notable packets as instants; the file loads directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.

Chrome trace timestamps are microseconds, which is exactly the
simulator's clock, so simulated time maps 1:1 onto the trace viewer's
timeline.
"""

from __future__ import annotations

import csv
import json
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.stats.report import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.observer import Observability

__all__ = ["write_series_jsonl", "write_series_csv", "chrome_trace",
           "write_chrome_trace", "summary_text"]


def write_series_jsonl(registry: MetricsRegistry, path: str) -> int:
    """Dump every series sample, counter and histogram as JSON lines;
    returns the number of records written."""
    n = 0
    with open(path, "w") as fh:
        def emit(record: dict) -> None:
            nonlocal n
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")
            n += 1

        for name, series in registry.series.items():
            for t_us, value in series.samples():
                emit({"kind": "sample", "series": name,
                      "unit": series.unit, "t_us": t_us,
                      "value": round(value, 6)})
        for name, counter in registry.counters.items():
            emit({"kind": "counter", "name": name, "value": counter.value})
        for name, hist in registry.histograms.items():
            emit({"kind": "histogram", "name": name, "count": hist.count,
                  "sum": round(hist.total, 3), "min": hist.min,
                  "max": hist.max,
                  "buckets": [[b, c] for b, c in
                              zip(hist.bounds, hist.counts)] +
                             [[None, hist.counts[-1]]]})
    return n


def write_series_csv(registry: MetricsRegistry, path: str) -> int:
    """Dump the time series as ``series,unit,t_us,value`` rows."""
    n = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "unit", "t_us", "value"])
        for name, series in registry.series.items():
            for t_us, value in series.samples():
                writer.writerow([name, series.unit, t_us,
                                 round(value, 6)])
                n += 1
    return n


# -- Chrome Trace Event Format (Perfetto) -------------------------------

def chrome_trace(obs: "Observability") -> dict:
    """Build the Chrome Trace Event Format document for a run."""
    events: list[dict] = []
    spans = obs.spans
    hosts = sorted({s.host for s in spans.spans} |
                   {m.host for m in spans.marks}) if spans else []
    tids = {host: i + 1 for i, host in enumerate(hosts)}

    events.append({"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
                   "args": {"name": "h-rmc simulation"}})
    events.append({"ph": "M", "pid": 0, "tid": 0, "name": "thread_name",
                   "args": {"name": "metrics"}})
    for host, tid in tids.items():
        events.append({"ph": "M", "pid": 0, "tid": tid,
                       "name": "thread_name", "args": {"name": host}})

    if spans is not None:
        for span in spans.spans:
            if span.end_us is None:
                continue
            events.append({"ph": "X", "pid": 0,
                           "tid": tids.get(span.host, 0),
                           "name": span.name, "cat": span.cat,
                           "ts": span.start_us,
                           "dur": max(span.dur_us, 1)})
        for mark in spans.marks:
            events.append({"ph": "i", "s": "t", "pid": 0,
                           "tid": tids.get(mark.host, 0),
                           "name": mark.name, "cat": "packet",
                           "ts": mark.t_us})

    for name, series in obs.registry.series.items():
        short = name.rsplit(".", 1)[-1]
        for t_us, value in series.samples():
            events.append({"ph": "C", "pid": 0, "name": name,
                           "ts": t_us, "args": {short: round(value, 4)}})

    events.sort(key=lambda e: (e.get("ts", -1), e.get("pid", 0),
                               e.get("tid", 0), e["name"]))
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"source": "repro.obs",
                          "clock": "simulated microseconds"}}


def write_chrome_trace(obs: "Observability", path: str) -> int:
    """Write the Perfetto-loadable trace; returns the event count."""
    doc = chrome_trace(obs)
    with open(path, "w") as fh:
        json.dump(doc, fh, separators=(",", ":"))
    return len(doc["traceEvents"])


# -- text summary -------------------------------------------------------

def summary_text(obs: "Observability") -> str:
    """Aligned text tables of the run's observability data, suitable
    for appending to a harness report or CI log."""
    parts: list[str] = []
    rows = obs.registry.summary_rows()
    if rows:
        parts.append(format_table(
            "metric series (simulated-time scrape)",
            ["series", "samples", "min", "mean", "max", "last"], rows))

    if obs.spans is not None:
        hist_rows = []
        for hist in obs.spans.histograms():
            if hist.count:
                hist_rows.append([hist.name, hist.count,
                                  round(hist.mean, 0),
                                  round(hist.quantile(0.5), 0),
                                  round(hist.quantile(0.9), 0),
                                  round(hist.max, 0)])
        if hist_rows:
            parts.append(format_table(
                "packet-lifecycle latency (us)",
                ["histogram", "n", "mean", "p50", "p90", "max"],
                hist_rows))
        phase_rows = [[s.host, s.name, s.start_us, s.end_us,
                       round(s.dur_us / 1000, 1)]
                      for s in obs.spans.spans if s.cat == "phase"]
        if phase_rows:
            parts.append(format_table(
                "protocol phases",
                ["host", "phase", "start_us", "end_us", "dur_ms"],
                phase_rows[:40]))

    if obs.profiler is not None and obs.profiler.events:
        parts.append(format_table(
            "profiler: hottest callback sites",
            ["site", "events", "sim_ms", "wall_ms", "wall%"],
            obs.profiler.top(10)))
        parts.append(f"engine: {obs.profiler.events} events, "
                     f"{obs.profiler.events_per_sec():,.0f} events/s "
                     f"(wall) inside callbacks")

    return "\n\n".join(parts) if parts else "(no observability data)"
