"""Protocol-health observatory (``repro.obs.health``).

First-class protocol-semantic measurements over an H-RMC run, riding
the same zero-perturbation hook pattern as causal lineage
(``sim.lineage``) and the sender's ``release_hook``: every instrumented
site reads its ``health`` attribute once and skips in a single ``is
None`` test when health accounting is off, so a health-on run produces
a byte-identical packet trace (the regression test in ``tests/obs``
holds this line).

Four measurement families, chosen so the paper's evaluation quantities
(Fig. 11 feedback traffic, Fig. 14 group-size sweep, the section 5.2
flat-feedback claim) and the "SRM at 30" scaling lessons become
directly comparable across runs:

* **NAK-suppression ledger** -- every re-NAK opportunity at a NAK-
  manager tick is accounted to exactly one outcome: *sent*,
  *suppressed-by-timer* (the local suppression interval withheld it)
  or *suppressed-by-peer* (a peer's multicast repair made the pending
  NAK moot); duplicate data arrivals are the ledger's error term.
* **Feedback-implosion index** -- NAKs arriving at the sender per
  rate-cut loss event.  Suppression working means this stays flat as
  the group grows; it blowing up with group size is the implosion
  failure mode SRM's scaling post-mortem warns about.
* **Repair economics** -- requested vs useful vs redundant
  retransmissions, redundant repair bytes on the wire, repair-cache
  pressure (hits / misses / evictions / overwrite-skips), peer-repair
  suppression, and sender-side deflection of duplicate requests.
* **Recovery lag** -- per-receiver gap-open -> gap-fill latency
  (histogram + per-host aggregates), the worst receiver, and
  abandoned (NAK_ERR) / unresolved gaps.

Wiring: the harness sets ``transport.health`` on the H-RMC endpoints
before the simulation runs; the transport forwards the monitor to the
lazily created sender/receiver roles (``bind_sender`` /
``bind_receiver``), which install per-role probes on the role, its
``NakList`` and its ``UpdatePolicy``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.seq import seq_gt, seq_lt
from repro.obs.metrics import Counter, Histogram

__all__ = ["HealthMonitor", "ReceiverHealthProbe"]

#: recovery-lag bucket edges (us): gap detected -> gap filled spans a
#: couple of RTTs on a healthy path and whole back-off cycles on a sick
#: one, so the buckets run wider than the packet-lifecycle bounds
LAG_BOUNDS_US = (1_000, 5_000, 10_000, 25_000, 50_000, 100_000,
                 250_000, 500_000, 1_000_000, 2_000_000, 5_000_000)

#: every ledger cell the monitor keeps, in fixed registration order so
#: exports stay deterministic
_COUNTER_KEYS = (
    "gap_opened", "gap_bytes", "gap_filled", "gap_abandoned",
    "nak_sent", "nak_resent", "nak_suppressed_timer",
    "nak_suppressed_peer",
    "dup_data", "repair_useful", "repair_redundant",
    "repair_redundant_bytes",
    "cache_insert", "cache_evict", "cache_overwrite", "cache_hit",
    "cache_miss", "repair_suppressed",
    "sender_naks_rcvd", "sender_nak_errs", "sender_loss_events",
    "repair_deflected",
    "update_up", "update_down",
)


class ReceiverHealthProbe:
    """Per-receiver hook target, shared by the receiver role, its
    ``NakList`` and its ``UpdatePolicy``.  Holds the host address and a
    sim reference so gap-fill instants can be timestamped from inside
    ``NakList`` (which itself has no clock)."""

    __slots__ = ("mon", "addr", "sim", "abandoning")

    def __init__(self, mon: "HealthMonitor", addr: str, sim):
        self.mon = mon
        self.addr = addr
        self.sim = sim
        #: set by the receiver around the NAK_ERR ``fill_below`` so the
        #: removed ranges count as abandoned, not recovered
        self.abandoning = False

    # -- NakList hooks --------------------------------------------------

    def on_gaps_opened(self, fresh) -> None:
        c = self.mon.c
        c["gap_opened"].inc(len(fresh))
        c["gap_bytes"].inc(sum(r.length for r in fresh))

    def on_gap_removed(self, rng) -> None:
        if self.abandoning:
            self.mon.c["gap_abandoned"].inc()
            return
        self.mon.c["gap_filled"].inc()
        self.mon.observe_lag(self.addr, self.sim.now - rng.created_us)

    # -- NAK-manager hooks ----------------------------------------------

    def on_nak_tick(self, pending: int, due: int) -> None:
        if pending > due:
            self.mon.c["nak_suppressed_timer"].inc(pending - due)

    def on_nak_sent(self, rng) -> None:
        c = self.mon.c
        c["nak_sent"].inc()
        if rng.tries > 1:   # mark_sent already ran: tries==1 is a first send
            c["nak_resent"].inc()

    def on_peer_repair(self, naks, start: int, end: int) -> None:
        """A peer's multicast repair arrived covering [start, end):
        every pending NAK range it overlaps was resolved by the peer
        instead of by our own re-NAK reaching the sender."""
        overlapped = 0
        for rng in naks:
            if seq_lt(rng.start, end) and seq_gt(rng.end, start):
                overlapped += 1
        if overlapped:
            self.mon.c["nak_suppressed_peer"].inc(overlapped)

    # -- data-path hooks -------------------------------------------------

    def on_duplicate_data(self, skb, peer_repair: bool) -> None:
        c = self.mon.c
        c["dup_data"].inc()
        if skb.tries > 1 or peer_repair:
            c["repair_redundant"].inc()
            c["repair_redundant_bytes"].inc(skb.length)

    def on_repair_useful(self, skb) -> None:
        self.mon.c["repair_useful"].inc()

    # -- repair-cache hooks ----------------------------------------------

    def on_cache_insert(self) -> None:
        self.mon.c["cache_insert"].inc()

    def on_cache_evict(self) -> None:
        self.mon.c["cache_evict"].inc()

    def on_cache_overwrite(self) -> None:
        self.mon.c["cache_overwrite"].inc()

    def on_cache_hit(self, chunks: int) -> None:
        self.mon.c["cache_hit"].inc(chunks)

    def on_cache_miss(self) -> None:
        self.mon.c["cache_miss"].inc()

    def on_repair_suppressed(self) -> None:
        self.mon.c["repair_suppressed"].inc()

    # -- update-policy hook ----------------------------------------------

    def on_update_adjust(self, delta: int) -> None:
        self.mon.c["update_up" if delta > 0 else "update_down"].inc()


class HealthMonitor:
    """One run's protocol-health ledger.

    Doubles as the sender-side probe (the sender's hook sites call the
    monitor directly); receivers get a :class:`ReceiverHealthProbe`
    each.  With a :class:`~repro.obs.metrics.MetricsRegistry` supplied,
    the ledger counters live in the registry (``health.*``) and ride
    every existing export; standalone, they are plain counters.
    """

    def __init__(self, registry=None):
        self.c: dict[str, Counter] = {}
        for key in _COUNTER_KEYS:
            name = f"health.{key}"
            self.c[key] = (registry.counter(name) if registry is not None
                           else Counter(name))
        self.lag_hist = (registry.histogram("health.recovery_lag_us",
                                            LAG_BOUNDS_US)
                         if registry is not None
                         else Histogram("health.recovery_lag_us",
                                        LAG_BOUNDS_US))
        #: host -> [filled, total_lag_us, max_lag_us]
        self._lag_by_host: dict[str, list] = {}
        self._sender = None
        self._receivers: list = []
        self.finalized_at_us: Optional[int] = None

    # -- wiring (called by HRMCTransport when roles come up) -------------

    def bind_sender(self, sender) -> None:
        self._sender = sender
        sender.health = self

    def bind_receiver(self, receiver) -> None:
        probe = ReceiverHealthProbe(self, receiver.host.addr,
                                    receiver.sim)
        receiver.health = probe
        receiver.naks.health = probe
        receiver.update.health = probe
        self._receivers.append(receiver)

    # -- sender-side hooks ------------------------------------------------

    def on_nak_rcvd(self) -> None:
        self.c["sender_naks_rcvd"].inc()

    def on_nak_err(self) -> None:
        self.c["sender_nak_errs"].inc()

    def on_loss_event(self) -> None:
        self.c["sender_loss_events"].inc()

    def on_repair_deflected(self) -> None:
        self.c["repair_deflected"].inc()

    # -- lag accounting ---------------------------------------------------

    def observe_lag(self, addr: str, lag_us: int) -> None:
        self.lag_hist.observe(lag_us)
        agg = self._lag_by_host.get(addr)
        if agg is None:
            self._lag_by_host[addr] = [1, lag_us, lag_us]
        else:
            agg[0] += 1
            agg[1] += lag_us
            if lag_us > agg[2]:
                agg[2] = lag_us

    # -- views -------------------------------------------------------------

    @property
    def group_size(self) -> int:
        return len(self._receivers)

    def finalize(self, now_us: int) -> None:
        if self.finalized_at_us is None:
            self.finalized_at_us = now_us

    def unresolved_gaps(self) -> int:
        return sum(len(r.naks) for r in self._receivers)

    @staticmethod
    def suppression_effectiveness(sent: int, timer: int, peer: int) -> float:
        opportunities = sent + timer + peer
        return (timer + peer) / opportunities if opportunities else 0.0

    def payload(self) -> dict:
        """The compact JSON-safe health document: what crosses the
        fleet worker boundary and what ``health report --json`` and the
        sweep analytics consume."""
        v = {k: c.value for k, c in self.c.items()}
        eff = self.suppression_effectiveness(
            v["nak_sent"], v["nak_suppressed_timer"],
            v["nak_suppressed_peer"])
        losses = v["sender_loss_events"]
        useful, redundant = v["repair_useful"], v["repair_redundant"]
        sstats = self._sender.stats if self._sender is not None else None
        feedback = (sstats.naks_rcvd + sstats.updates_rcvd +
                    sstats.rate_requests_rcvd +
                    sstats.urgent_requests_rcvd
                    if sstats is not None else 0)
        per_host = [
            {"host": host, "filled": agg[0],
             "mean_us": round(agg[1] / agg[0], 1), "max_us": agg[2]}
            for host, agg in sorted(self._lag_by_host.items())]
        worst = max(per_host, key=lambda r: r["max_us"]) if per_host \
            else None
        h = self.lag_hist
        return {
            "group_size": self.group_size,
            "suppression": {
                "gaps_opened": v["gap_opened"],
                "gap_bytes": v["gap_bytes"],
                "naks_sent": v["nak_sent"],
                "naks_resent": v["nak_resent"],
                "suppressed_timer": v["nak_suppressed_timer"],
                "suppressed_peer": v["nak_suppressed_peer"],
                "duplicate_data": v["dup_data"],
                "effectiveness": round(eff, 4),
            },
            "implosion": {
                "naks_at_sender": v["sender_naks_rcvd"],
                "loss_events": losses,
                "nak_errs": v["sender_nak_errs"],
                "feedback_at_sender": feedback,
                "index": round(v["sender_naks_rcvd"] / losses, 3)
                if losses else 0.0,
            },
            "repair": {
                "retrans_pkts": sstats.retrans_pkts if sstats else 0,
                "retrans_bytes": sstats.retrans_bytes if sstats else 0,
                "useful": useful,
                "redundant": redundant,
                "redundant_bytes": v["repair_redundant_bytes"],
                "redundant_ratio": round(
                    redundant / (useful + redundant), 4)
                if useful + redundant else 0.0,
                "deflected": v["repair_deflected"],
                "cache": {
                    "inserts": v["cache_insert"],
                    "evictions": v["cache_evict"],
                    "overwrite_skips": v["cache_overwrite"],
                    "hits": v["cache_hit"],
                    "misses": v["cache_miss"],
                    "peer_suppressed": v["repair_suppressed"],
                },
            },
            "lag": {
                "filled": v["gap_filled"],
                "abandoned": v["gap_abandoned"],
                "unresolved": self.unresolved_gaps(),
                "mean_us": round(h.mean, 1) if h.count else 0.0,
                "p50_us": round(h.quantile(0.5), 1) if h.count else 0.0,
                "p90_us": round(h.quantile(0.9), 1) if h.count else 0.0,
                "max_us": h.max if h.count else 0,
                "worst_host": worst["host"] if worst else None,
                "worst_max_us": worst["max_us"] if worst else 0,
                "per_host": per_host,
            },
            "update": {"ups": v["update_up"], "downs": v["update_down"]},
        }

    def summary_tables(self) -> list[tuple[str, list, list]]:
        """(title, headers, rows) tables in the harness-report shape."""
        doc = self.payload()
        sup, imp, rep = doc["suppression"], doc["implosion"], doc["repair"]
        ledger = [
            ["NAKs sent", sup["naks_sent"]],
            ["  of which re-sends", sup["naks_resent"]],
            ["suppressed by timer", sup["suppressed_timer"]],
            ["suppressed by peer repair", sup["suppressed_peer"]],
            ["duplicate data arrivals", sup["duplicate_data"]],
            ["suppression effectiveness",
             f"{sup['effectiveness']:.1%}"],
        ]
        econ = [
            ["NAKs at sender", imp["naks_at_sender"]],
            ["loss events (rate cuts)", imp["loss_events"]],
            ["implosion index (NAKs/loss event)", imp["index"]],
            ["feedback pkts at sender", imp["feedback_at_sender"]],
            ["retransmissions", rep["retrans_pkts"]],
            ["useful repairs", rep["useful"]],
            ["redundant repairs", rep["redundant"]],
            ["redundant repair bytes", rep["redundant_bytes"]],
            ["redundant-repair ratio", f"{rep['redundant_ratio']:.1%}"],
            ["requests deflected (in flight)", rep["deflected"]],
            ["cache hit/miss/evict",
             f"{rep['cache']['hits']}/{rep['cache']['misses']}"
             f"/{rep['cache']['evictions']}"],
        ]
        tables = [
            ("protocol health: NAK-suppression ledger",
             ["outcome", "count"], ledger),
            ("protocol health: implosion & repair economics",
             ["metric", "value"], econ),
        ]
        lag = doc["lag"]
        if lag["per_host"]:
            rows = [[r["host"], r["filled"], r["mean_us"], r["max_us"]]
                    for r in lag["per_host"]]
            rows.append(["(all)", lag["filled"], lag["mean_us"],
                         lag["max_us"]])
            tables.append(("protocol health: recovery lag (us)",
                           ["receiver", "filled", "mean", "max"], rows))
        return tables
