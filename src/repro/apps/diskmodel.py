"""A 1999-class disk model.

The paper's disk-to-disk tests read the file from local disk at the
sender and write it to local disk at each receiver, which "slowed the
application by I/O operations" and produced the noisy rate-request
behaviour of Figure 11(c,d).  The model charges each I/O a fixed
per-operation overhead plus bytes/bandwidth, with occasional slow
operations (seek storms, write-back stalls) drawn from the component's
own random stream.
"""

from __future__ import annotations

from repro.sim.engine import Simulator, US_PER_SEC
from repro.sim.process import Delay
from repro.sim.rng import substream

__all__ = ["DiskModel"]


class DiskModel:
    """Sequential-I/O disk with jitter.

    Parameters
    ----------
    bandwidth_bps:
        Sustained sequential transfer rate (default 4 MB/s, typical of
        late-90s IDE disks under filesystem overhead).
    per_op_us:
        Fixed overhead per read/write call.
    hiccup_prob / hiccup_us:
        Probability that an operation stalls (seek, write-back flush)
        and the extra delay when it does.
    """

    def __init__(self, sim: Simulator, *, bandwidth_bps: float = 32e6,
                 per_op_us: int = 2_000, hiccup_prob: float = 0.08,
                 hiccup_us: int = 30_000, seed: int = 0, name: str = "disk"):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.per_op_us = int(per_op_us)
        self.hiccup_prob = float(hiccup_prob)
        self.hiccup_us = int(hiccup_us)
        self._rng = substream(seed, f"disk:{name}")
        self.bytes_read = 0
        self.bytes_written = 0
        self.ops = 0
        self.hiccups = 0

    def _op_delay(self, nbytes: int) -> int:
        delay = self.per_op_us + round(nbytes * 8 * US_PER_SEC /
                                       self.bandwidth_bps)
        self.ops += 1
        if self._rng.random() < self.hiccup_prob:
            self.hiccups += 1
            delay += self.hiccup_us
        return delay

    def read(self, nbytes: int):
        """``yield from disk.read(n)`` inside an application process."""
        self.bytes_read += nbytes
        yield Delay(self._op_delay(nbytes))
        return nbytes

    def write(self, nbytes: int):
        """``yield from disk.write(n)`` inside an application process."""
        self.bytes_written += nbytes
        yield Delay(self._op_delay(nbytes))
        return nbytes
