"""Application models: file transfer (memory or disk backed)."""

from repro.apps.diskmodel import DiskModel
from repro.apps.filetransfer import sender_app, receiver_app, AppResult

__all__ = ["DiskModel", "sender_app", "receiver_app", "AppResult"]
