"""File-transfer applications (the paper's workload).

Two application processes mirror the experimental methodology:

* :func:`sender_app` -- binds, connects to the multicast endpoint, and
  streams ``nbytes`` of the canonical pattern; in disk mode every chunk
  is first read from the disk model.
* :func:`receiver_app` -- joins the group and reads until end of
  stream; in disk mode every chunk is written to the disk model.  The
  received stream is verified against the pattern (cheap offset checks
  on the payload descriptors by default; full byte comparison on
  demand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.diskmodel import DiskModel
from repro.kernel.payload import PatternPayload, pattern_bytes
from repro.kernel.socket_api import Socket

__all__ = ["AppResult", "sender_app", "receiver_app"]

DEFAULT_CHUNK = 64 * 1024


@dataclass
class AppResult:
    """Filled in by the application processes as they finish."""

    name: str = ""
    bytes_done: int = 0
    data_done_at_us: int = -1    # all payload bytes delivered (pre-close)
    finished_at_us: int = -1     # close handshake complete
    verified: bool = True
    errors: list = field(default_factory=list)
    resumed_at_offset: int = -1  # rejoin: first delivered stream offset

    @property
    def done(self) -> bool:
        return self.finished_at_us >= 0


def sender_app(sock: Socket, nbytes: int, *, sport: int, group: str,
               port: int, result: AppResult,
               disk: Optional[DiskModel] = None,
               chunk: int = DEFAULT_CHUNK):
    """Generator process: stream ``nbytes`` to the group and close."""
    sim = sock.host.sim
    sock.bind(sport)
    sock.connect(group, port)
    offset = 0
    while offset < nbytes:
        step = min(chunk, nbytes - offset)
        if disk is not None:
            yield from disk.read(step)
        yield from sock.send(PatternPayload(offset, step))
        offset += step
    yield from sock.close()
    result.bytes_done = offset
    result.finished_at_us = sim.now
    return result


def receiver_app(sock: Socket, *, group: str, port: int, result: AppResult,
                 disk: Optional[DiskModel] = None,
                 chunk: int = DEFAULT_CHUNK, verify: str = "offsets",
                 resume: bool = False):
    """Generator process: join, read to EOF (verifying), and close.

    ``verify`` is ``"offsets"`` (check payload descriptors are the
    expected contiguous pattern slices -- zero-copy), ``"bytes"``
    (materialize and compare against the pattern), or ``"none"``.

    With ``resume=True`` (a receiver rejoining mid-stream, e.g. after a
    crash) verification locks onto the offset of the first delivered
    payload instead of expecting the stream to start at 0.
    """
    sim = sock.host.sim
    sock.join(group, port)
    expected_offset: Optional[int] = None if resume else 0
    while True:
        payloads = yield from sock.recv_payloads(chunk)
        if not payloads:
            break
        got = sum(p.length for p in payloads)
        if expected_offset is None:
            first = payloads[0]
            expected_offset = (first.offset
                               if isinstance(first, PatternPayload) else 0)
            result.resumed_at_offset = expected_offset
        if verify == "offsets":
            for p in payloads:
                if isinstance(p, PatternPayload):
                    if p.offset != expected_offset:
                        result.verified = False
                        result.errors.append(
                            f"offset {p.offset} != expected "
                            f"{expected_offset}")
                elif verify != "none":
                    data = p.tobytes()
                    if data != pattern_bytes(expected_offset, p.length):
                        result.verified = False
                        result.errors.append(
                            f"bytes mismatch at {expected_offset}")
                expected_offset += p.length
        elif verify == "bytes":
            data = b"".join(p.tobytes() for p in payloads)
            if data != pattern_bytes(expected_offset, got):
                result.verified = False
                result.errors.append(f"bytes mismatch at {expected_offset}")
            expected_offset += got
        else:
            expected_offset += got
        result.bytes_done += got
        if disk is not None:
            yield from disk.write(got)
    result.data_done_at_us = sim.now
    # surface protocol-reported stream damage (RMC's NAK_ERR path)
    receiver = getattr(sock.transport, "receiver", None)
    if receiver is not None and getattr(receiver, "error", None):
        result.errors.append(receiver.error)
    yield from sock.close()
    result.finished_at_us = sim.now
    return result
