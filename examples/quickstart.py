#!/usr/bin/env python3
"""Quickstart: one sender, two receivers, one megabyte, one LAN.

Shows the whole public API surface in ~40 lines: build a scenario,
open H-RMC sockets, run application processes, inspect the result.

Run:  python examples/quickstart.py
"""

from repro.core import HRMCConfig, open_hrmc_socket
from repro.kernel.payload import PatternPayload, pattern_bytes
from repro.sim.process import Process
from repro.workloads.scenarios import build_lan

GROUP, DATA_PORT, SENDER_PORT = "224.1.0.1", 6000, 5000
NBYTES = 1_000_000


def main() -> None:
    # a 10 Mbps shared Ethernet with 1 sender + 2 receivers
    scenario = build_lan(n_receivers=2, bandwidth_bps=10e6, seed=42)
    sim = scenario.sim

    cfg = HRMCConfig(expected_receivers=2).with_rate_cap(10e6)
    ssock = open_hrmc_socket(scenario.sender, cfg, sndbuf=256 * 1024)
    rsocks = [open_hrmc_socket(h, cfg, rcvbuf=256 * 1024)
              for h in scenario.receivers]

    received: dict[int, bytes] = {}

    def receiver(i, sock):
        sock.join(GROUP, DATA_PORT)
        chunks = []
        while True:
            data = yield from sock.recv(65536)
            if not data:
                break
            chunks.append(data)
        received[i] = b"".join(chunks)
        yield from sock.close()

    done_at = {}

    def sender(sock):
        sock.bind(SENDER_PORT)
        sock.connect(GROUP, DATA_PORT)
        yield from sock.send(PatternPayload(0, NBYTES))
        yield from sock.close()   # blocks until every receiver has it all
        done_at["t"] = sim.now_seconds()
        print(f"sender done at t={done_at['t']:.3f}s")

    for i, rsock in enumerate(rsocks):
        Process(sim, receiver(i, rsock), name=f"receiver-{i}")
    Process(sim, sender(ssock), name="sender")

    sim.run(until=60_000_000)

    expected = pattern_bytes(0, NBYTES)
    for i in range(2):
        ok = received.get(i) == expected
        print(f"receiver {i}: {len(received.get(i, b''))} bytes, "
              f"intact={ok}")
    stats = ssock.transport.stats
    if "t" in done_at:
        print(f"throughput: {NBYTES * 8 / done_at['t'] / 1e6:.2f} Mbps "
              f"(whole session incl. reliable close)")
    print(f"feedback at sender: {stats.naks_rcvd} NAKs, "
          f"{stats.updates_rcvd} updates, {stats.probes_sent} probes sent")


if __name__ == "__main__":
    main()
