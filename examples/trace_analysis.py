#!/usr/bin/env python3
"""Protocol forensics: capture a lossy WAN transfer and dissect it.

Attaches a packet tracer (the simulated tcpdump) and the observability
layer to every host, runs a 2 % -loss wide-area transfer, and prints
what actually happened on the wire: the packet mix, retransmission
ratio, repair latency, terminal sparklines of goodput and stream
progress, and the NAK->repair recovery-latency histogram stitched from
the packet-lifecycle spans.

Run:  python examples/trace_analysis.py
"""

from repro.harness.runner import run_transfer
from repro.obs import Observability
from repro.stats.report import format_table
from repro.trace import (PacketTracer, feedback_latency, packet_summary,
                         sequence_progress, sparkline, throughput_timeline)
from repro.workloads.groups import GROUP_C
from repro.workloads.scenarios import build_wan

NBYTES = 1_000_000


def main() -> None:
    scenario = build_wan([GROUP_C] * 5, 10e6, seed=13)
    tracer = PacketTracer()
    obs = Observability()
    res = run_transfer(scenario, nbytes=NBYTES, sndbuf=512 * 1024,
                       max_sim_s=600, tracer=tracer, obs=obs)
    tracer.detach()

    print(f"transfer: {NBYTES / 1e6:g} MB to 5 WAN receivers "
          f"(2% loss) -> {res.throughput_mbps:.2f} Mbps, "
          f"reliable={res.ok}\n")

    meta = ({"truncated": True, "dropped": tracer.dropped,
             "ring": tracer.ring} if tracer.dropped else None)
    summary = packet_summary(tracer.events, meta)
    capture = summary.pop("_capture", None)
    if capture:
        print(f"NOTE: capture truncated -- {capture['dropped']} events "
              f"lost{' off the ring' if capture['ring'] else ''}; "
              "counts below are lower bounds\n")
    retrans = summary.pop("_retransmissions")
    rows = [(name, s["count"], s["bytes"])
            for name, s in sorted(summary.items())]
    print(format_table("Packets on the wire (all hosts, tx)",
                       ["type", "count", "bytes"], rows))
    print(f"\nretransmissions: {retrans['count']} packets "
          f"({retrans['ratio']:.1%} of DATA)")

    lat = feedback_latency(tracer.events, sender=scenario.sender.addr)
    if lat["samples"]:
        print(f"repair latency (NAK in -> retransmit out): "
              f"mean {lat['mean_us'] / 1000:.1f} ms, "
              f"max {lat['max_us'] / 1000:.1f} ms "
              f"over {lat['samples']} repairs")

    rcv = scenario.receivers[0].addr
    _, rate = throughput_timeline(tracer.events, host=rcv,
                                  bucket_us=200_000)
    print(f"\ngoodput at {rcv} (each char = 200 ms):")
    print("  " + sparkline(rate * 8 / 1e6))

    t, seqs = sequence_progress(tracer.events, rcv)
    print(f"stream progress at {rcv} (flat spots = recovery stalls):")
    print("  " + sparkline(seqs))

    # end-to-end recovery latency (NAK sent -> covering DATA delivered),
    # from the observability layer's packet-lifecycle spans -- a
    # receiver-side view that includes the round trip the sender-side
    # feedback_latency figure above cannot see
    recovery = obs.spans.recovery_us
    if recovery.count:
        print("\nrecovery latency, NAK out -> repair in "
              "(packet-lifecycle spans):")
        print(recovery.render())
        bursts = [s for s in obs.spans.spans if s.name == "recovery-burst"]
        if bursts:
            longest = max(bursts, key=lambda s: s.dur_us)
            print(f"\n{len(bursts)} recovery burst(s); longest "
                  f"{longest.dur_us / 1000:.1f} ms at {longest.host} "
                  f"(t={longest.start_us / 1000:.0f} ms)")


if __name__ == "__main__":
    main()
