#!/usr/bin/env python3
"""Bulk software distribution: the paper's motivating disk-to-disk
workload.

A build server pushes an 8 MB release image to a rack of machines that
write it to local disk.  Disk jitter at the receivers slows their
applications, the receive windows fill, and the rate-based flow control
visibly adapts -- exactly the Figure 11 dynamics.

Run:  python examples/software_distribution.py
"""

from repro.harness.runner import run_transfer
from repro.stats.report import format_table
from repro.workloads.scenarios import build_lan

IMAGE_BYTES = 8_000_000
MACHINES = 3


def main() -> None:
    rows = []
    for sndbuf_k in (64, 256, 1024):
        scenario = build_lan(MACHINES, 10e6, seed=7)
        res = run_transfer(scenario, nbytes=IMAGE_BYTES,
                           sndbuf=sndbuf_k * 1024, disk=True)
        stats = res.sender_stats
        rows.append([
            f"{sndbuf_k}K",
            round(res.throughput_mbps, 2),
            stats.rate_requests_rcvd + stats.urgent_requests_rcvd,
            stats.naks_rcvd,
            "yes" if res.ok else "NO",
        ])
    print(format_table(
        f"Distributing {IMAGE_BYTES / 1e6:g} MB to {MACHINES} machines "
        f"(disk-to-disk, 10 Mbps)",
        ["kernel buffer", "Mbps", "rate requests", "NAKs", "complete"],
        rows))
    print("\nBigger kernel buffers absorb receiver disk stalls: fewer "
          "rate requests,\nhigher throughput (paper Figures 10c/d, 11).")


if __name__ == "__main__":
    main()
