#!/usr/bin/env python3
"""Distance-education scenario: one source, receivers spread across
local, metropolitan and wide-area networks.

Reproduces a slice of the paper's simulation study (Figures 14-15):
receivers are placed into characteristic groups A (LAN-like), B
(MAN-like) and C (WAN-like), and the protocol adapts to the least
capable receiver in the mix.

Run:  python examples/wan_simulation.py
"""

from repro.harness.runner import run_transfer
from repro.stats.report import format_table
from repro.workloads.groups import TEST_CASES, expand_test_case
from repro.workloads.scenarios import build_wan

NBYTES = 1_000_000
RECEIVERS = 10


def main() -> None:
    rows = []
    for test in sorted(TEST_CASES):
        groups = expand_test_case(test, RECEIVERS)
        scenario = build_wan(groups, 10e6, seed=11)
        res = run_transfer(scenario, nbytes=NBYTES, sndbuf=512 * 1024)
        mix = " + ".join(f"{frac:.0%} {g.name}"
                         for g, frac in TEST_CASES[test])
        rows.append([
            f"Test {test}", mix,
            round(res.throughput_mbps, 2),
            res.sender_stats.naks_rcvd,
            round(res.release_complete_pct, 1),
            "yes" if res.ok else "NO",
        ])
    print(format_table(
        f"{NBYTES / 1e6:g} MB to {RECEIVERS} receivers, 10 Mbps backbone "
        f"(simulated WAN)",
        ["test", "receiver mix", "Mbps", "NAKs", "info %", "complete"],
        rows))
    print("\nThroughput orders Test 1 > 2 > 3, with mixed groups pinned "
          "near the\nslowest member -- H-RMC adapts to the least capable "
          "receiver (Fig. 15).")


if __name__ == "__main__":
    main()
