#!/usr/bin/env python3
"""Chaos testing: crash a receiver mid-transfer and watch it rejoin.

Builds a seed-random fault plan (seed 10 is known to crash receiver 2
at t=0.15s and restart it at t=0.34s), runs an H-RMC transfer with the
protocol-invariant checker attached, and narrates the recovery: the
survivors finish the full stream, while the rejoined receiver locks
onto the live stream mid-flight -- the prefix it missed was already
(correctly) released by the sender, which it learns via NAK_ERR.

Run:  python examples/chaos_recovery.py
"""

from repro.harness.experiments import chaos_config
from repro.harness.runner import run_transfer
from repro.workloads.scenarios import build_chaos

NBYTES = 250_000
SEED = 10


def main() -> None:
    scenario = build_chaos(3, 10e6, seed=SEED, horizon_us=1_000_000)
    print("fault plan (seed %d):" % SEED)
    for action in scenario.fault_plan.actions:
        print(f"  t={action.at_us / 1e6:.3f}s  {action.describe()}")

    res = run_transfer(scenario, nbytes=NBYTES, sndbuf=128 * 1024,
                       cfg=chaos_config(), invariants=True, max_sim_s=120)

    print(f"\n{res.fault_events} fault events fired; "
          f"{res.invariant_checks} invariant audits, all green")
    print(f"crashed: receivers {res.crashed_receivers}, "
          f"restarted: {res.restarted_receivers}\n")

    for i, r in enumerate(res.per_receiver):
        state = "completed" if r.done else "crashed mid-transfer"
        print(f"  rcv{i}: {r.bytes_done:>7} bytes, verified={r.verified} "
              f"({state})")
    for r in res.rejoin_results:
        print(f"  {r.name}: {r.bytes_done:>7} bytes, "
              f"resumed at offset {r.resumed_at_offset}, "
              f"verified={r.verified}")
        print(f"      -> prefix+suffix = "
              f"{r.resumed_at_offset + r.bytes_done} of {NBYTES} "
              f"(the gap was released before the rejoin; "
              f"NAK_ERR reported it)")

    print("\nsurvivors delivered the full verified stream:",
          res.surviving_ok)


if __name__ == "__main__":
    main()
