#!/usr/bin/env python3
"""Compare H-RMC against the three classic reliable-multicast families
and a TCP-like unicast reference, on identical hardware.

This is the paper's section-1 taxonomy made runnable: ACK-based
(feedback implosion), NAK-based (RMC: lean but unguaranteed),
polling-based (sender-controlled feedback, slow recovery), H-RMC (the
hybrid), and n sequential TCP-like streams.

Run:  python examples/protocol_comparison.py
"""

from repro.harness.runner import PROTOCOLS, run_transfer
from repro.stats.report import format_table
from repro.workloads.scenarios import build_lan

NBYTES = 2_000_000
RECEIVERS = 3


def main() -> None:
    rows = []
    for proto in PROTOCOLS:
        scenario = build_lan(RECEIVERS, 10e6, seed=5)
        res = run_transfer(scenario, nbytes=NBYTES, protocol=proto,
                           sndbuf=256 * 1024)
        rows.append([
            proto,
            round(res.throughput_mbps, 2),
            res.feedback_total,
            res.sender_stats.retrans_pkts,
            round(res.release_complete_pct, 1) if proto in ("hrmc", "rmc")
            else "-",
            "yes" if res.ok else "NO",
        ])
    print(format_table(
        f"{NBYTES / 1e6:g} MB to {RECEIVERS} receivers on a 10 Mbps LAN",
        ["protocol", "Mbps", "feedback pkts", "retrans", "info %",
         "reliable"], rows))
    print("\nH-RMC matches RMC/ACK throughput with two orders of "
          "magnitude less\nfeedback than ACK-based, while (unlike RMC) "
          "guaranteeing delivery;\nthe TCP-like reference pays the "
          "n-unicast penalty (paper section 6).")


if __name__ == "__main__":
    main()
