"""Unit tests for topology builders."""

import pytest

from repro.net.packet import NetPacket
from repro.net.topology import EthernetLanTopology, GroupSpec, WanTreeTopology
from repro.sim.engine import Simulator

GROUP_A = GroupSpec("A", delay_us=2_000, loss_rate=0.00005)
GROUP_C = GroupSpec("C", delay_us=100_000, loss_rate=0.02)


class FakeSeg:
    dport = 7
    length = 0


def mkpkt(src, dst, seg_bytes=1000):
    return NetPacket(src, dst, FakeSeg(), seg_bytes)


def test_groupspec_loss_split():
    g = GroupSpec("B", delay_us=20_000, loss_rate=0.005)
    assert g.router_loss == pytest.approx(0.0045)
    assert g.nic_loss == pytest.approx(0.0005)
    assert g.router_loss + g.nic_loss == pytest.approx(g.loss_rate)


def test_lan_topology_builds_and_delivers():
    sim = Simulator()
    lan = EthernetLanTopology(sim, 10e6)
    a = lan.make_nic("10.0.0.1")
    b = lan.make_nic("10.0.0.2")
    got = []
    b.rx_handler = lambda pkt: got.append(1)
    a.try_transmit(mkpkt(a.addr, b.addr))
    sim.run()
    assert got == [1]


def test_lan_duplicate_addr_rejected():
    sim = Simulator()
    lan = EthernetLanTopology(sim, 10e6)
    lan.make_nic("10.0.0.1")
    with pytest.raises(ValueError):
        lan.make_nic("10.0.0.1")


def test_wan_unicast_both_directions():
    sim = Simulator()
    wan = WanTreeTopology(sim, 10e6, seed=1)
    s = wan.add_sender("10.0.0.1")
    r = wan.add_receiver("10.1.0.1", GROUP_A)
    got = []
    r.rx_handler = lambda pkt: got.append("down")
    s.rx_handler = lambda pkt: got.append("up")
    s.try_transmit(mkpkt(s.addr, r.addr))
    sim.run()
    assert got == ["down"]
    r.try_transmit(mkpkt(r.addr, s.addr))
    sim.run()
    assert got == ["down", "up"]


def test_wan_one_way_delay_includes_group_delay():
    sim = Simulator()
    wan = WanTreeTopology(sim, 100e6, seed=1)
    s = wan.add_sender("10.0.0.1")
    r = wan.add_receiver("10.1.0.1", GROUP_C)
    arrivals = []
    r.rx_handler = lambda pkt: arrivals.append(sim.now)
    s.try_transmit(mkpkt(s.addr, r.addr))
    sim.run()
    assert arrivals and arrivals[0] >= GROUP_C.delay_us


def test_wan_multicast_fanout_after_join():
    sim = Simulator()
    wan = WanTreeTopology(sim, 10e6, seed=1)
    s = wan.add_sender("10.0.0.1")
    group = "224.1.0.1"
    receivers = []
    got = []
    for i in range(3):
        spec = GROUP_A if i < 2 else GroupSpec("B", 20_000, 0.0)
        r = wan.add_receiver(f"10.{1 if i < 2 else 2}.0.{i+1}", spec)
        r.rx_handler = lambda pkt, i=i: got.append(i)
        receivers.append(r)
        wan.join_group(r, group)
    s.try_transmit(mkpkt(s.addr, group))
    sim.run()
    assert sorted(got) == [0, 1, 2]


def test_wan_multicast_not_delivered_without_join():
    sim = Simulator()
    wan = WanTreeTopology(sim, 10e6, seed=1)
    s = wan.add_sender("10.0.0.1")
    r = wan.add_receiver("10.1.0.1", GROUP_A)
    got = []
    r.rx_handler = lambda pkt: got.append(1)
    s.try_transmit(mkpkt(s.addr, "224.1.0.1"))
    sim.run()
    assert got == []


def test_wan_leave_group_stops_fanout():
    sim = Simulator()
    wan = WanTreeTopology(sim, 10e6, seed=1)
    s = wan.add_sender("10.0.0.1")
    r = wan.add_receiver("10.1.0.1", GROUP_A)
    group = "224.1.0.1"
    got = []
    r.rx_handler = lambda pkt: got.append(1)
    wan.join_group(r, group)
    wan.leave_group(r, group)
    s.try_transmit(mkpkt(s.addr, group))
    sim.run()
    assert got == []


def test_wan_correlated_loss_affects_whole_group():
    """With a loss-rate-1 group router, no receiver in the group sees
    the packet -- the drop is correlated."""
    sim = Simulator()
    lossy = GroupSpec("L", delay_us=1_000, loss_rate=1.0)
    # router share is 0.9; force full loss at the router by a spec with
    # loss 1.0 -> router_loss 0.9, so ~10% may get through the router.
    wan = WanTreeTopology(sim, 10e6, seed=1)
    s = wan.add_sender("10.0.0.1")
    group = "224.1.0.1"
    counts = {0: 0, 1: 0}
    for i in range(2):
        r = wan.add_receiver(f"10.1.0.{i+1}", lossy)
        r.rx_handler = lambda pkt, i=i: counts.__setitem__(i, counts[i] + 1)
        wan.join_group(r, group)
    for _ in range(300):
        s.try_transmit(mkpkt(s.addr, group))
        sim.run()
    # router drops ~90%; whatever passes is then dropped per-NIC w.p. 0.1
    assert counts[0] < 80 and counts[1] < 80


def test_single_sender_enforced():
    sim = Simulator()
    wan = WanTreeTopology(sim, 10e6)
    wan.add_sender("10.0.0.1")
    with pytest.raises(ValueError):
        wan.add_sender("10.0.0.2")
