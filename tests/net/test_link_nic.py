"""Unit tests for the shared link and NIC models."""

from repro.net.link import SharedLink
from repro.net.nic import NetworkInterface
from repro.net.packet import NetPacket, IP_OVERHEAD, LINK_OVERHEAD
from repro.sim.engine import Simulator


def make_lan(n=2, bandwidth=10e6, **nic_kw):
    sim = Simulator()
    link = SharedLink(sim, bandwidth, prop_delay_us=5)
    nics = []
    for i in range(n):
        nic = NetworkInterface(sim, f"10.0.0.{i+1}", **nic_kw)
        link.attach(nic)
        nic.attach(link)
        nics.append(nic)
    return sim, link, nics


class FakeSeg:
    def __init__(self, dport=7):
        self.dport = dport
        self.length = 0


def mkpkt(src, dst, seg_bytes=1000):
    return NetPacket(src, dst, FakeSeg(), seg_bytes)


def test_wire_overheads():
    pkt = mkpkt("a", "b", 1480)
    assert pkt.wire_bytes == 1480 + IP_OVERHEAD + LINK_OVERHEAD
    assert pkt.wire_bits == pkt.wire_bytes * 8


def test_unicast_delivery_and_filtering():
    sim, link, nics = make_lan(3)
    a, b, c = nics
    got = []
    b.rx_handler = lambda pkt: got.append(pkt.dst)
    c.rx_handler = lambda pkt: got.append("c-saw-it")
    a.try_transmit(mkpkt(a.addr, b.addr))
    sim.run()
    assert got == [b.addr]
    assert c.filtered == 1  # heard it on the wire, filtered by address


def test_sender_does_not_hear_own_frame():
    sim, link, (a, b) = make_lan(2)
    got = []
    a.rx_handler = lambda pkt: got.append("self")
    b.rx_handler = lambda pkt: None
    a.try_transmit(mkpkt(a.addr, b.addr))
    sim.run()
    assert got == []


def test_multicast_needs_group_join():
    sim, link, (a, b) = make_lan(2)
    got = []
    b.rx_handler = lambda pkt: got.append(1)
    a.try_transmit(mkpkt(a.addr, "224.1.0.1"))
    sim.run()
    assert got == []
    assert b.filtered == 1

    b.join_group("224.1.0.1")
    a.try_transmit(mkpkt(a.addr, "224.1.0.1"))
    sim.run()
    assert got == [1]


def test_leave_group_stops_delivery():
    sim, link, (a, b) = make_lan(2)
    got = []
    b.rx_handler = lambda pkt: got.append(1)
    b.join_group("224.1.0.1")
    b.leave_group("224.1.0.1")
    a.try_transmit(mkpkt(a.addr, "224.1.0.1"))
    sim.run()
    assert got == []


def test_serialization_time_matches_bandwidth():
    # 10 Mbps, 1038-byte wire packet => 830.4 us
    sim, link, (a, b) = make_lan(2, bandwidth=10e6)
    arrivals = []
    b.rx_handler = lambda pkt: arrivals.append(sim.now)
    a.try_transmit(mkpkt(a.addr, b.addr, seg_bytes=1000))
    sim.run()
    wire_bits = (1000 + IP_OVERHEAD + LINK_OVERHEAD) * 8
    expect = round(wire_bits / 10e6 * 1e6) + 5  # tx time + prop
    assert arrivals == [expect]


def test_medium_is_serialized_between_nics():
    sim, link, nics = make_lan(3, bandwidth=10e6)
    a, b, c = nics
    arrivals = []
    c.rx_handler = lambda pkt: arrivals.append(sim.now)
    a.try_transmit(mkpkt(a.addr, c.addr, 1000))
    b.try_transmit(mkpkt(b.addr, c.addr, 1000))
    sim.run()
    assert len(arrivals) == 2
    tx = link.tx_time_us(mkpkt("x", "y", 1000))
    assert arrivals[1] - arrivals[0] == tx  # back-to-back, not overlapped


def test_tx_ring_backpressure_no_drop():
    sim, link, (a, b) = make_lan(2, tx_ring=4)
    accepted = sum(a.try_transmit(mkpkt(a.addr, b.addr)) for _ in range(10))
    # ring holds 4; the rest are refused, not dropped
    assert accepted == 4
    assert a.tx_space() == 0
    sim.run()
    assert a.tx_packets == 4


def test_rx_ring_overflow_drops():
    sim = Simulator()
    nic = NetworkInterface(sim, "10.0.0.1", rx_ring=3)
    # No cpu_run/rx_cost -> instant drain; emulate a slow host instead
    nic.rx_cost_fn = lambda pkt: 10_000
    got = []
    nic.rx_handler = lambda pkt: got.append(pkt.id)
    for _ in range(8):
        nic.medium_deliver(mkpkt("10.0.0.9", "10.0.0.1"))
    sim.run()
    assert len(got) == 3
    assert nic.rx_ring_drops == 5


def test_rx_loss_rate_drops_fraction():
    sim = Simulator()
    nic = NetworkInterface(sim, "10.0.0.1", rx_loss_rate=0.5, seed=7)
    got = []
    nic.rx_handler = lambda pkt: got.append(1)
    n = 2000
    for _ in range(n):
        nic.medium_deliver(mkpkt("10.0.0.9", "10.0.0.1"))
        sim.run()
    assert 0.4 < len(got) / n < 0.6
    assert nic.rx_loss_drops == n - len(got)


def test_rx_delay_holds_packet():
    sim = Simulator()
    nic = NetworkInterface(sim, "10.0.0.1", rx_delay_us=123)
    got = []
    nic.rx_handler = lambda pkt: got.append(sim.now)
    nic.medium_deliver(mkpkt("10.0.0.9", "10.0.0.1"))
    sim.run()
    assert got == [123]
