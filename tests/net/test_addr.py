"""Unit tests for addressing helpers."""

import pytest

from repro.net.addr import (Endpoint, addr_hash, host_addr, is_multicast,
                            mcast_addr)


def test_multicast_range():
    assert is_multicast("224.0.0.1")
    assert is_multicast("239.255.255.255")
    assert not is_multicast("223.255.255.255")
    assert not is_multicast("240.0.0.1")
    assert not is_multicast("10.0.0.1")


def test_mcast_addr_distinct_groups():
    addrs = {mcast_addr(g) for g in range(300)}
    assert len(addrs) == 300
    assert all(is_multicast(a) for a in addrs)


def test_mcast_addr_range_check():
    with pytest.raises(ValueError):
        mcast_addr(-1)
    with pytest.raises(ValueError):
        mcast_addr(0x10000)


def test_host_addr_distinct():
    addrs = {host_addr(s, h) for s in range(3) for h in range(1, 100)}
    assert len(addrs) == 3 * 99
    assert all(not is_multicast(a) for a in addrs)


def test_host_addr_validation():
    with pytest.raises(ValueError):
        host_addr(256, 1)
    with pytest.raises(ValueError):
        host_addr(0, 0)


def test_endpoint():
    ep = Endpoint("10.0.0.1", 5000)
    assert ep.addr == "10.0.0.1"
    assert ep.port == 5000


def test_addr_hash_stable_and_bounded():
    h1 = addr_hash("10.1.2.3", 32)
    h2 = addr_hash("10.1.2.3", 32)
    assert h1 == h2
    assert 0 <= h1 < 32


def test_addr_hash_spreads():
    buckets = {addr_hash(host_addr(0, h), 32) for h in range(1, 200)}
    assert len(buckets) > 16  # decent spread over 32 buckets


def test_malformed_address_rejected():
    with pytest.raises(ValueError):
        is_multicast("nonsense")
