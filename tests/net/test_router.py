"""Unit tests for routers and pipes."""

from repro.net.nic import NetworkInterface
from repro.net.packet import NetPacket
from repro.net.router import Pipe, Router
from repro.sim.engine import Simulator


class FakeSeg:
    dport = 7
    length = 0


class SinkNode:
    def __init__(self):
        self.got = []

    def ingress(self, pkt):
        self.got.append(pkt)


def mkpkt(src, dst, seg_bytes=1000):
    return NetPacket(src, dst, FakeSeg(), seg_bytes)


def test_pipe_delivers_with_serialization_and_prop():
    sim = Simulator()
    sink = SinkNode()
    pipe = Pipe(sim, 10e6, prop_delay_us=1000)
    pipe.connect(sink)
    pipe.send(mkpkt("a", "b", 1000))
    sim.run()
    assert len(sink.got) == 1
    assert sim.now == pipe.tx_time_us(mkpkt("a", "b", 1000)) + 1000


def test_pipe_fifo_serialization():
    sim = Simulator()
    arrivals = []

    class StampingSink:
        def ingress(self, pkt):
            arrivals.append(sim.now)

    pipe = Pipe(sim, 10e6, prop_delay_us=0)
    pipe.connect(StampingSink())
    pipe.send(mkpkt("a", "b", 1000))
    pipe.send(mkpkt("a", "b", 1000))
    sim.run()
    tx = pipe.tx_time_us(mkpkt("a", "b", 1000))
    assert arrivals == [tx, 2 * tx]


def test_pipe_queue_limit_drops():
    sim = Simulator()
    sink = SinkNode()
    pipe = Pipe(sim, 10e6, queue_limit=3)
    pipe.connect(sink)
    for _ in range(10):
        pipe.send(mkpkt("a", "b"))
    sim.run()
    assert len(sink.got) == 3
    assert pipe.queue_drops == 7


def test_pipe_loss_rate():
    sim = Simulator()
    sink = SinkNode()
    pipe = Pipe(sim, 1e9, loss_rate=0.5, seed=3, name="lossy",
                queue_limit=10**6)
    pipe.connect(sink)
    n = 2000
    for _ in range(n):
        pipe.send(mkpkt("a", "b"))
    sim.run()
    assert 0.4 < len(sink.got) / n < 0.6
    assert pipe.loss_drops == n - len(sink.got)


def test_router_unicast_routing():
    sim = Simulator()
    r = Router(sim)
    s1, s2 = SinkNode(), SinkNode()
    p1 = Pipe(sim, 1e9); p1.connect(s1)
    p2 = Pipe(sim, 1e9); p2.connect(s2)
    r.add_route("10.0.0.1", p1)
    r.set_default_route(p2)
    r.ingress(mkpkt("x", "10.0.0.1"))
    r.ingress(mkpkt("x", "10.9.9.9"))  # default
    sim.run()
    assert len(s1.got) == 1
    assert len(s2.got) == 1


def test_router_no_route_drops():
    sim = Simulator()
    r = Router(sim)
    r.ingress(mkpkt("x", "10.0.0.1"))
    sim.run()
    assert r.no_route_drops == 1


def test_router_multicast_duplication():
    sim = Simulator()
    r = Router(sim)
    sinks = [SinkNode() for _ in range(3)]
    pipes = []
    for s in sinks:
        p = Pipe(sim, 1e9)
        p.connect(s)
        pipes.append(p)
    group = "224.1.0.1"
    for p in pipes:
        r.mcast_subscribe(group, p)
    r.ingress(mkpkt("x", group))
    sim.run()
    assert all(len(s.got) == 1 for s in sinks)
    # forks must not be the same object but share the segment
    ids = {id(s.got[0]) for s in sinks}
    assert len(ids) == 3
    segs = {id(s.got[0].segment) for s in sinks}
    assert len(segs) == 1


def test_router_mcast_unsubscribe():
    sim = Simulator()
    r = Router(sim)
    s = SinkNode()
    p = Pipe(sim, 1e9)
    p.connect(s)
    group = "224.1.0.1"
    r.mcast_subscribe(group, p)
    r.mcast_unsubscribe(group, p)
    r.ingress(mkpkt("x", group))
    sim.run()
    assert s.got == []
    assert r.no_route_drops == 1


def test_router_subscribe_idempotent():
    sim = Simulator()
    r = Router(sim)
    s = SinkNode()
    p = Pipe(sim, 1e9)
    p.connect(s)
    group = "224.1.0.1"
    r.mcast_subscribe(group, p)
    r.mcast_subscribe(group, p)
    r.ingress(mkpkt("x", group))
    sim.run()
    assert len(s.got) == 1  # no duplicate delivery


def test_router_correlated_loss_before_duplication():
    sim = Simulator()
    r = Router(sim, loss_rate=1.0)
    s = SinkNode()
    p = Pipe(sim, 1e9)
    p.connect(s)
    r.mcast_subscribe("224.1.0.1", p)
    r.ingress(mkpkt("x", "224.1.0.1"))
    sim.run()
    assert s.got == []
    assert r.loss_drops == 1


def test_nic_on_pipe_pair():
    """A NIC can use a Pipe as its medium port (WAN attachment)."""
    sim = Simulator()
    nic = NetworkInterface(sim, "10.0.0.1")
    sink = SinkNode()
    up = Pipe(sim, 10e6, prop_delay_us=100)
    up.connect(sink)
    nic.attach(up)
    nic.try_transmit(mkpkt(nic.addr, "10.0.0.2"))
    sim.run()
    assert len(sink.got) == 1
