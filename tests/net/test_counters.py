"""Accounting tests for fabric counters (links, pipes, NICs)."""

from repro.net.link import SharedLink
from repro.net.nic import NetworkInterface
from repro.net.packet import NetPacket
from repro.net.router import Pipe
from repro.sim.engine import Simulator


class FakeSeg:
    dport = 7
    length = 0


def mkpkt(src, dst, seg_bytes=1000):
    return NetPacket(src, dst, FakeSeg(), seg_bytes)


def test_link_carries_counters():
    sim = Simulator()
    link = SharedLink(sim, 10e6)
    a = NetworkInterface(sim, "10.0.0.1")
    b = NetworkInterface(sim, "10.0.0.2")
    link.attach(a), link.attach(b)
    a.attach(link), b.attach(link)
    b.rx_handler = lambda pkt: None
    for _ in range(5):
        a.try_transmit(mkpkt(a.addr, b.addr, 500))
    sim.run()
    assert link.frames_carried == 5
    assert link.bytes_carried == 5 * (500 + 38)
    assert a.tx_packets == 5
    assert a.tx_bytes == link.bytes_carried
    assert b.rx_packets == 5


def test_pipe_corruption_counted_and_flagged():
    sim = Simulator()
    got = []

    class Sink:
        def ingress(self, pkt):
            got.append(pkt)

    pipe = Pipe(sim, 1e9, corrupt_rate=1.0, seed=1)
    pipe.connect(Sink())
    pipe.send(mkpkt("a", "b"))
    sim.run()
    assert pipe.corruptions == 1
    assert got[0].corrupted


def test_corruption_survives_fork():
    pkt = mkpkt("a", "224.1.0.1")
    pkt.corrupted = True
    assert pkt.fork().corrupted


def test_nic_tx_bytes_match_wire_size():
    sim = Simulator()
    link = SharedLink(sim, 100e6)
    a = NetworkInterface(sim, "10.0.0.1")
    b = NetworkInterface(sim, "10.0.0.2")
    link.attach(a), link.attach(b)
    a.attach(link), b.attach(link)
    b.rx_handler = lambda pkt: None
    pkt = mkpkt(a.addr, b.addr, 1480)
    a.try_transmit(pkt)
    sim.run()
    assert a.tx_bytes == pkt.wire_bytes == 1480 + 38
    assert b.rx_bytes == pkt.wire_bytes
