"""Tests for packet tracing and analysis."""

import numpy as np
import pytest

from repro.core.types import PacketType
from repro.harness.runner import run_transfer
from repro.trace import (PacketTracer, feedback_latency, load_trace,
                         packet_summary, sequence_progress, sparkline,
                         throughput_timeline)
from repro.trace.tracer import TraceEvent
from repro.net.topology import GroupSpec
from repro.workloads.groups import GROUP_B
from repro.workloads.scenarios import build_lan, build_wan


@pytest.fixture(scope="module")
def traced_run():
    sc = build_wan([GROUP_B] * 3, 10e6, seed=60)
    tracer = PacketTracer().attach(sc.sender, *sc.receivers)
    res = run_transfer(sc, nbytes=300_000, sndbuf=256 * 1024,
                       max_sim_s=300)
    tracer.detach()
    return sc, tracer, res


def test_capture_sees_both_directions(traced_run):
    sc, tracer, res = traced_run
    assert res.ok
    dirs = {e.direction for e in tracer.events}
    assert dirs == {"tx", "rx"}
    hosts = {e.host for e in tracer.events}
    assert sc.sender.addr in hosts
    assert len(hosts) == 4


def test_tx_rx_conservation(traced_run):
    """Every DATA rx at a receiver corresponds to some sender tx."""
    sc, tracer, res = traced_run
    tx_data = [e for e in tracer.at_host(sc.sender.addr)
               if e.direction == "tx" and e.ptype == int(PacketType.DATA)]
    rx_data = [e for e in tracer.events
               if e.direction == "rx" and e.ptype == int(PacketType.DATA)]
    assert tx_data
    # 3 receivers, some loss: rx count is bounded by 3x tx count
    assert len(rx_data) <= 3 * len(tx_data)
    tx_seqs = {e.seq for e in tx_data}
    assert all(e.seq in tx_seqs for e in rx_data)


def test_packet_summary_structure(traced_run):
    _, tracer, _ = traced_run
    summary = packet_summary(tracer.events)
    assert "DATA" in summary
    assert summary["DATA"]["count"] > 0
    assert summary["DATA"]["bytes"] >= 300_000
    retr = summary["_retransmissions"]
    assert 0 <= retr["ratio"] < 1


def test_throughput_timeline_accounts_all_bytes(traced_run):
    sc, tracer, _ = traced_run
    rcv = sc.receivers[0].addr
    times, rate = throughput_timeline(tracer.events, host=rcv,
                                      bucket_us=100_000)
    assert len(times) == len(rate)
    total = float((rate * 0.1).sum())
    got = sum(e.length for e in tracer.at_host(rcv)
              if e.direction == "rx" and e.ptype == int(PacketType.DATA))
    assert total == pytest.approx(got, rel=1e-6)


def test_sequence_progress_monotone(traced_run):
    sc, tracer, _ = traced_run
    t, seqs = sequence_progress(tracer.events, sc.receivers[0].addr)
    assert len(t) == len(seqs) > 0
    assert np.all(np.diff(seqs) > 0)
    assert np.all(np.diff(t) >= 0)
    assert seqs[-1] >= 300_000


def test_feedback_latency_measured_under_loss():
    # standalone lossy run (2% per receiver) so NAKs are guaranteed,
    # independent of what the shared fixture's seed happens to drop
    lossy = GroupSpec("L", delay_us=20_000, loss_rate=0.02)
    sc = build_wan([lossy] * 3, 10e6, seed=7)
    tracer = PacketTracer().attach(sc.sender, *sc.receivers)
    res = run_transfer(sc, nbytes=300_000, sndbuf=256 * 1024,
                       max_sim_s=300)
    tracer.detach()
    assert res.ok
    assert res.sender_stats.naks_rcvd > 0
    lat = feedback_latency(tracer.events, sender=sc.sender.addr)
    assert lat["samples"] > 0
    assert 0 <= lat["mean_us"] <= lat["max_us"]


def test_save_and_load_roundtrip(tmp_path, traced_run):
    _, tracer, _ = traced_run
    path = tmp_path / "capture.jsonl"
    n = tracer.save(str(path))
    assert n == len(tracer.events)
    back = load_trace(str(path))
    assert back == tracer.events


def test_max_events_cap():
    sc = build_lan(1, 10e6, seed=61)
    tracer = PacketTracer(max_events=10).attach(sc.sender)
    run_transfer(sc, nbytes=100_000, sndbuf=64 * 1024)
    assert len(tracer.events) == 10
    assert tracer.dropped > 0


def test_double_attach_rejected():
    sc = build_lan(1, 10e6, seed=62)
    PacketTracer().attach(sc.sender)
    with pytest.raises(RuntimeError):
        PacketTracer().attach(sc.sender)


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([1, 1, 1]) == "▁▁▁"
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(range(1000), width=40)) == 40


def test_trace_event_helpers():
    ev = TraceEvent(t_us=1, host="h", direction="tx", peer="p",
                    ptype=int(PacketType.DATA), seq=1, length=10,
                    rate_adv=0, tries=2, flags=0)
    assert ev.type_name == "DATA"
    assert ev.is_retransmission
    ev2 = TraceEvent(t_us=1, host="h", direction="tx", peer="p",
                     ptype=int(PacketType.NAK), seq=1, length=10,
                     rate_adv=0, tries=5, flags=0)
    assert not ev2.is_retransmission


# -- flight-recorder (ring) edge cases --------------------------------------

def _mk_event(t_us, seq, host="h1", direction="tx"):
    return TraceEvent(t_us=t_us, host=host, direction=direction, peer="p",
                      ptype=int(PacketType.DATA), seq=seq, length=10,
                      rate_adv=0, tries=1, flags=0)


def test_ring_save_is_time_ordered_with_meta(tmp_path):
    """A truncated ring capture saves time-ordered events behind a
    _meta line that records the loss."""
    from repro.trace import trace_meta
    tracer = PacketTracer(max_events=5, ring=True)
    for i in range(12):
        tracer.events.append(_mk_event(t_us=100 + i, seq=i))
    tracer.dropped = 7
    path = tmp_path / "ring.jsonl"
    n = tracer.save(str(path))
    assert n == 5
    meta = trace_meta(str(path))
    assert meta == {"truncated": True, "ring": True, "dropped": 7}
    back = load_trace(str(path))
    assert [e.t_us for e in back] == sorted(e.t_us for e in back)
    assert [e.seq for e in back] == [7, 8, 9, 10, 11]


def test_ring_capture_counts_evictions():
    sc = build_lan(1, 10e6, seed=63)
    tracer = PacketTracer(max_events=8, ring=True).attach(sc.sender)
    run_transfer(sc, nbytes=100_000, sndbuf=64 * 1024)
    assert len(tracer.events) == 8
    assert tracer.dropped > 0
    # flight recorder keeps the most recent events, not the oldest
    all_ts = [e.t_us for e in tracer.events]
    assert all_ts == sorted(all_ts)


def test_ring_run_save_load_analyzer(tmp_path):
    """End to end: a truncated live capture saves, loads and analyzes
    even though the first events of the run are missing."""
    from repro.trace import trace_meta
    sc = build_lan(2, 10e6, seed=64)
    tracer = PacketTracer(max_events=32, ring=True)
    res = run_transfer(sc, nbytes=200_000, sndbuf=64 * 1024,
                       tracer=tracer)
    assert res.ok and tracer.dropped > 0
    path = tmp_path / "flight.jsonl"
    tracer.save(str(path))
    assert trace_meta(str(path))["dropped"] == tracer.dropped
    back = load_trace(str(path))
    assert len(back) == 32
    # the analyzers run on the partial window (tx-side summary counts
    # whatever tx events survived; progress is monotone regardless)
    summary = packet_summary(back)
    assert sum(v["count"] for k, v in summary.items()
               if not k.startswith("_")) <= 32
    rcv = sc.receivers[0].addr
    t, seqs = sequence_progress(back, rcv)
    assert np.all(np.diff(seqs) > 0)
    assert np.all(np.diff(t) >= 0)


def test_complete_capture_has_no_meta(tmp_path):
    from repro.trace import trace_meta
    tracer = PacketTracer()
    tracer.events.append(_mk_event(t_us=1, seq=0))
    path = tmp_path / "ok.jsonl"
    tracer.save(str(path))
    assert trace_meta(str(path)) is None


def test_load_trace_ignores_unknown_fields(tmp_path):
    """Forward compatibility: newer writers may add fields."""
    import json
    path = tmp_path / "future.jsonl"
    rec = {"t_us": 5, "host": "h", "direction": "rx", "peer": "p",
           "ptype": 1, "seq": 0, "length": 4, "rate_adv": 0, "tries": 1,
           "flags": 0, "new_field": "ignored"}
    path.write_text(json.dumps(rec) + "\n")
    back = load_trace(str(path))
    assert len(back) == 1 and back[0].t_us == 5


def test_load_trace_sorts_out_of_order_records(tmp_path):
    path = tmp_path / "shuffled.jsonl"
    import json
    from dataclasses import asdict
    evs = [_mk_event(t_us=t, seq=t) for t in (30, 10, 20)]
    path.write_text("\n".join(json.dumps(asdict(e)) for e in evs) + "\n")
    back = load_trace(str(path))
    assert [e.t_us for e in back] == [10, 20, 30]


def test_load_capture_surfaces_truncation(tmp_path):
    """The analyzer consumes the _meta record explicitly: a truncated
    capture is flagged in packet_summary output, a complete one is not."""
    from repro.trace import load_capture
    tracer = PacketTracer(max_events=5, ring=True)
    for i in range(12):
        tracer.events.append(_mk_event(t_us=100 + i, seq=i))
    tracer.dropped = 7
    path = tmp_path / "ring.jsonl"
    tracer.save(str(path))

    events, meta = load_capture(str(path))
    assert len(events) == 5
    assert meta == {"truncated": True, "ring": True, "dropped": 7}
    summary = packet_summary(events, meta)
    assert summary["_capture"] == {"truncated": True, "dropped": 7,
                                   "ring": True}

    # a complete capture carries no _capture entry
    full = PacketTracer()
    full.events.append(_mk_event(t_us=1, seq=0))
    ok_path = tmp_path / "ok.jsonl"
    full.save(str(ok_path))
    events, meta = load_capture(str(ok_path))
    assert meta is None
    assert "_capture" not in packet_summary(events, meta)
