"""The ``health`` CLI family: report (with bounds gating) and sweep.

Exit-code contract (shared with ``diff``/``perf compare``): 0 = healthy
/ clean sweep, 1 = run failed / bound violated / anomalies flagged,
2 = unusable input.  The sweep test doubles as the quick-scale
acceptance check for the paper's §5.2 claim: sender-visible feedback
stays near-flat as the group grows (fitted exponent well below 1).
"""

import json

import pytest

from repro.harness.cli import main as cli_main

WAN_ARGS = ["--receivers", "3", "--nbytes", "200000", "--seed", "21"]


@pytest.fixture(scope="module")
def reported(tmp_path_factory):
    """One observed wan run shared by the report tests."""
    tmp = tmp_path_factory.mktemp("health-cli")
    out = tmp / "health.json"
    html = tmp / "health.html"
    rc = cli_main(["health", "report", "wan", *WAN_ARGS,
                   "--out", str(out), "--html", str(html)])
    assert rc == 0
    return {"out": out, "html": html}


def test_report_writes_payload_and_html(reported):
    payload = json.loads(reported["out"].read_text())
    assert payload["group_size"] == 3
    assert payload["suppression"]["naks_sent"] > 0
    html = reported["html"].read_text()
    assert "NAK-suppression ledger" in html
    assert "implosion" in html


def test_report_text_tables(capsys):
    rc = cli_main(["health", "report", "wan", *WAN_ARGS])
    assert rc == 0
    text = capsys.readouterr().out
    assert "NAK-suppression ledger" in text
    assert "implosion & repair economics" in text
    assert "recovery lag (us)" in text


def test_report_json_mode(capsys):
    rc = cli_main(["health", "report", "wan", *WAN_ARGS, "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["implosion"]["naks_at_sender"] > 0


def test_report_bounds_gate_passes_and_trips(tmp_path, capsys):
    loose = tmp_path / "loose.json"
    loose.write_text(json.dumps(
        {"wan": {"effectiveness_min": 0.01, "unresolved_max": 0}}))
    assert cli_main(["health", "report", "wan", *WAN_ARGS,
                     "--bounds", str(loose)]) == 0
    capsys.readouterr()
    tight = tmp_path / "tight.json"
    tight.write_text(json.dumps(
        {"wan": {"effectiveness_min": 0.999,
                 "redundant_ratio_max": 0.0}}))
    assert cli_main(["health", "report", "wan", *WAN_ARGS,
                     "--bounds", str(tight)]) == 1
    err = capsys.readouterr().err
    assert "HEALTH BOUND VIOLATED" in err
    assert "effectiveness" in err


def test_report_bounds_unusable_inputs(tmp_path):
    missing = tmp_path / "missing.json"
    assert cli_main(["health", "report", "wan", *WAN_ARGS,
                     "--bounds", str(missing)]) == 2
    noscenario = tmp_path / "noscenario.json"
    noscenario.write_text(json.dumps({"lan": {}}))
    assert cli_main(["health", "report", "wan", *WAN_ARGS,
                     "--bounds", str(noscenario)]) == 2


def test_committed_bounds_cover_pinned_scenarios():
    """The repo-root HEALTH_BOUNDS.json (the CI gate file) names both
    pinned scenarios and gates the two ISSUE metrics."""
    import os
    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "HEALTH_BOUNDS.json")
    doc = json.loads(open(path).read())
    assert "lan" in doc and "wan" in doc
    assert "effectiveness_min" in doc["wan"]
    assert "redundant_ratio_max" in doc["wan"]


def test_health_usage_error():
    assert cli_main(["health"]) == 2
    assert cli_main(["health", "bogus"]) == 2


# -- sweep --------------------------------------------------------------

@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    """One quick-scale fig14 sweep shared by the sweep tests."""
    tmp = tmp_path_factory.mktemp("health-sweep")
    out = tmp / "sweep.json"
    html = tmp / "sweep.html"
    rc = cli_main(["health", "sweep", "--experiment", "fig14",
                   "--grid", "2,3,5", "--nbytes", "150000",
                   "--no-cache", "--out", str(out), "--html", str(html)])
    return {"rc": rc, "out": out, "html": html}


def test_sweep_exit_clean(swept):
    assert swept["rc"] == 0


def test_sweep_reproduces_flat_feedback_trend(swept):
    """Paper §5.2 at quick scale: NAK suppression keeps sender-visible
    feedback near-flat as the group grows -- the fitted feedback-vs-
    group-size exponent is far below linear growth."""
    report = json.loads(swept["out"].read_text())
    assert len(report["cells"]) == 3
    fit = report["fits"]["feedback_vs_group"]
    assert fit["n"] == 3
    assert fit["exponent"] < 0.5, \
        f"feedback grows ~n^{fit['exponent']}: suppression is broken"
    # and the per-loss-event implosion index does not explode with n
    imp = report["fits"]["implosion_vs_group"]
    assert imp["exponent"] < 0.5


def test_sweep_html_dashboard(swept):
    html = swept["html"].read_text()
    assert "per-cell protocol health" in html
    assert "scaling-law fits" in html
    assert "<svg" in html, "fit sparklines are inline SVG"
    assert "feedback_vs_group" in html


def test_sweep_rejects_bad_grid(capsys):
    assert cli_main(["health", "sweep", "--grid", "2,x"]) == 2
    assert cli_main(["health", "sweep", "--grid", "0,3"]) == 2
