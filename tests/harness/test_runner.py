"""Tests for the transfer runner and result collection."""

import pytest

from repro.harness.runner import PROTOCOLS, TransferResult, run_transfer
from repro.workloads.scenarios import build_lan


def test_unknown_protocol_rejected():
    sc = build_lan(1, 10e6)
    with pytest.raises(ValueError):
        run_transfer(sc, nbytes=1000, protocol="carrier-pigeon")


def test_result_fields_consistent():
    sc = build_lan(2, 10e6, seed=40)
    res = run_transfer(sc, nbytes=200_000, sndbuf=128 * 1024)
    assert isinstance(res, TransferResult)
    assert res.protocol == "hrmc"
    assert res.nbytes == 200_000
    assert res.n_receivers == 2
    assert res.ok
    assert res.duration_us > 0
    assert res.throughput_bps == pytest.approx(
        200_000 * 8 * 1e6 / res.duration_us)
    assert res.throughput_mbps == pytest.approx(res.throughput_bps / 1e6)
    assert 0 <= res.release_complete_pct <= 100
    assert len(res.per_receiver) == 2
    assert res.sim_events > 0


def test_rcvbuf_defaults_to_sndbuf():
    sc = build_lan(1, 10e6, seed=41)
    res = run_transfer(sc, nbytes=50_000, sndbuf=96 * 1024)
    assert res.ok  # just exercises the default path


def test_receiver_stats_aggregated():
    sc = build_lan(3, 10e6, seed=42)
    res = run_transfer(sc, nbytes=100_000, sndbuf=128 * 1024)
    assert res.receiver_stats.joins_sent == 3
    assert res.receiver_stats.data_pkts_rcvd > 0


def test_max_sim_s_bounds_broken_runs():
    """A run that cannot finish must still return at the time bound."""
    sc = build_lan(1, 10e6, seed=43)
    # receiver never joins the group: transfer cannot complete
    sc.receivers[0].nic.join_group = lambda g: None  # sabotage NIC join
    res = run_transfer(sc, nbytes=100_000, sndbuf=64 * 1024, max_sim_s=2.0)
    assert not res.ok
    assert res.duration_us <= 2_000_001


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_every_protocol_produces_result(protocol):
    sc = build_lan(2, 10e6, seed=44)
    res = run_transfer(sc, nbytes=80_000, protocol=protocol,
                       sndbuf=128 * 1024, max_sim_s=120)
    assert res.ok, protocol
    assert res.protocol == protocol
