"""The ``perf`` CLI family: profile, compare, history.

Exit-code contract (shared with ``diff``): 0 = ok / within thresholds,
1 = regressed / run failed, 2 = unusable input.
"""

import json

import pytest

from repro.harness.cli import main as cli_main


@pytest.fixture(scope="module")
def profiled(tmp_path_factory):
    """One small profiled run shared by the CLI tests (the profile
    subcommand is the expensive part)."""
    tmp = tmp_path_factory.mktemp("perf-cli")
    out = tmp / "artifacts"
    bench = tmp / "fresh.json"
    rc = cli_main(["perf", "profile", "lan", "--receivers", "2",
                   "--nbytes", "200000", "--seed", "7",
                   "--out", str(out), "--bench-out", str(bench)])
    assert rc == 0
    return {"out": out, "bench": bench}


def test_profile_writes_artifacts_and_snapshot(profiled):
    out, bench = profiled["out"], profiled["bench"]
    assert (out / "lan.collapsed.txt").exists()
    lines = (out / "lan.collapsed.txt").read_text().splitlines()
    assert lines and all(line.startswith("engine;") for line in lines)
    doc = json.loads(bench.read_text())
    assert doc["bench"] == "perf-profile"
    assert doc["events_per_s"] > 0
    assert doc["perf"]["coverage"] >= 0.95
    # the snapshot regeneration appended a trajectory row
    hist = bench.parent / "BENCH_HISTORY.jsonl"
    assert hist.exists()
    assert json.loads(hist.read_text().splitlines()[-1])["bench"] == \
        "perf-profile"


def test_profile_html_report_embeds_flamegraph(tmp_path):
    out = tmp_path / "artifacts"
    rc = cli_main(["perf", "profile", "lan", "--receivers", "2",
                   "--nbytes", "100000", "--out", str(out), "--html"])
    assert rc == 0
    html = (out / "lan.report.html").read_text()
    assert "flamegraph" in html and "<svg" in html
    assert "event-class tax table" in html


def test_compare_exit_codes(profiled, tmp_path):
    bench = str(profiled["bench"])
    # same snapshot vs itself: within thresholds
    assert cli_main(["perf", "compare", bench, bench]) == 0
    # injected 50 % regression: gate trips
    doc = json.loads(profiled["bench"].read_text())
    doc["events_per_s"] = doc["events_per_s"] * 0.5
    slow = tmp_path / "slow.json"
    slow.write_text(json.dumps(doc))
    assert cli_main(["perf", "compare", bench, str(slow)]) == 1
    # a wide threshold waves the same pair through
    assert cli_main(["perf", "compare", bench, str(slow),
                     "--threshold", "0.6"]) == 0
    # unusable inputs
    assert cli_main(["perf", "compare", bench,
                     str(tmp_path / "missing.json")]) == 2
    nometric = tmp_path / "nometric.json"
    nometric.write_text('{"bench": "empty"}')
    assert cli_main(["perf", "compare", bench, str(nometric)]) == 2


def test_compare_rejects_bad_threshold(profiled):
    bench = str(profiled["bench"])
    assert cli_main(["perf", "compare", bench, bench,
                     "--threshold", "1.5"]) == 2


def test_history_exit_codes(profiled, tmp_path, capsys):
    hist = profiled["bench"].parent / "BENCH_HISTORY.jsonl"
    assert cli_main(["perf", "history", "--file", str(hist)]) == 0
    assert "perf-profile" in capsys.readouterr().out
    assert cli_main(["perf", "history", "--file",
                     str(tmp_path / "missing.jsonl")]) == 2


def test_perf_usage_on_unknown_subcommand():
    assert cli_main(["perf"]) == 2
    assert cli_main(["perf", "bogus"]) == 2
