"""Tests for the experiment registry, reports and the CLI."""

import pytest

from repro.harness.cli import main
from repro.harness.experiments import (EXPERIMENTS, Report, file_sizes,
                                       run_experiment, run_experiments)


def test_registry_covers_every_paper_artifact():
    expected = {"table1", "fig3", "fig10", "fig11", "fig12", "fig13",
                "fig14", "fig15", "fig16", "scaling", "baselines"}
    assert expected <= set(EXPERIMENTS)
    ablations = {k for k in EXPERIMENTS if k.startswith("ablation-")}
    assert len(ablations) >= 7


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_file_sizes_scale():
    assert file_sizes("quick") == (2_000_000, 8_000_000)
    assert file_sizes("full") == (10_000_000, 40_000_000)


def test_report_render_contains_tables():
    rep = Report("x", "A Title")
    rep.add("tbl", ["a", "b"], [[1, 2]])
    rep.notes.append("hello")
    out = rep.render()
    assert "A Title" in out
    assert "tbl" in out
    assert "note: hello" in out


def test_cheap_experiments_run(capsys):
    for exp in ("table1", "fig14"):
        rep = run_experiment(exp, "quick")
        assert rep.tables


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "ablation-fec" in out


def test_cli_list_shows_figure_and_bench(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    line = next(ln for ln in out.splitlines()
                if ln.startswith("fig13 "))
    assert "Figure 13(a,b)" in line
    assert "benchmarks/test_fig13_nic_drops.py" in line


def test_reports_identical_across_execution_modes(tmp_path):
    """The same experiment through serial, 2-worker and warm-cache
    fleets renders to identical bytes."""
    from repro.fleet import Fleet

    cache = str(tmp_path / "c")
    serial = run_experiment("ablation-fec", "quick")
    cold = run_experiments(["ablation-fec"], "quick",
                           Fleet(workers=2, cache_dir=cache))
    warm_fleet = Fleet(workers=1, cache_dir=cache)
    warm = run_experiments(["ablation-fec"], "quick", warm_fleet)
    assert serial.render() == cold["ablation-fec"].render() \
        == warm["ablation-fec"].render()
    assert warm_fleet.stats.cached == 2
    assert warm_fleet.stats.executed == 0


def test_cli_runs_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "UPDATE" in out and "PROBE" in out


def test_cli_unknown_experiment(capsys):
    assert main(["fig99"]) == 2


def test_cli_usage_without_args(capsys):
    assert main([]) == 2
