"""Tests for workload definitions and scenario builders."""

import pytest

from repro.workloads.groups import (GROUP_A, GROUP_B, GROUP_C, LOSS_BY_ENV,
                                    TEST_CASES, expand_test_case)
from repro.workloads.scenarios import build_lan, build_wan


def test_group_parameters_match_paper():
    assert GROUP_A.delay_us == 2_000 and GROUP_A.loss_rate == 0.00005
    assert GROUP_B.delay_us == 20_000 and GROUP_B.loss_rate == 0.005
    assert GROUP_C.delay_us == 100_000 and GROUP_C.loss_rate == 0.02
    assert LOSS_BY_ENV == {"LAN": 0.00005, "MAN": 0.005, "WAN": 0.02}


def test_loss_split_90_10():
    for g in (GROUP_A, GROUP_B, GROUP_C):
        assert g.router_loss == pytest.approx(0.9 * g.loss_rate)
        assert g.nic_loss == pytest.approx(0.1 * g.loss_rate)


def test_test_cases_match_figure_14b():
    assert expand_test_case(1, 10) == [GROUP_A] * 10
    assert expand_test_case(2, 10) == [GROUP_B] * 10
    assert expand_test_case(3, 10) == [GROUP_C] * 10
    t4 = expand_test_case(4, 10)
    assert t4.count(GROUP_B) == 8 and t4.count(GROUP_C) == 2
    t5 = expand_test_case(5, 10)
    assert t5.count(GROUP_B) == 2 and t5.count(GROUP_C) == 8


def test_test_case_expansion_handles_rounding():
    out = expand_test_case(4, 7)   # 80/20 of 7
    assert len(out) == 7
    assert set(out) <= {GROUP_B, GROUP_C}


def test_build_lan_shape():
    sc = build_lan(4, 10e6, seed=1)
    assert sc.n_receivers == 4
    assert sc.sender.addr == "10.0.0.1"
    assert len({h.addr for h in sc.receivers}) == 4
    assert sc.bandwidth_bps == 10e6


def test_build_wan_places_receivers_in_groups():
    specs = [GROUP_A, GROUP_A, GROUP_C]
    sc = build_wan(specs, 10e6, seed=1)
    assert sc.n_receivers == 3
    # receivers in the same characteristic group share a site router
    wan = sc.network
    assert set(wan._group_routers) == {"A", "C"}


def test_scenario_addresses_unique():
    sc = build_wan([GROUP_B] * 20, 10e6, seed=1)
    addrs = {h.addr for h in sc.receivers} | {sc.sender.addr}
    assert len(addrs) == 21
