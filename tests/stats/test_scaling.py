"""Sweep analytics: power-law fits, anomaly flags, history dedupe."""

import json

import pytest

from repro.stats.bench import append_history
from repro.stats.scaling import (DEFAULT_ANOMALY_THRESHOLDS,
                                 fit_power_law, flag_anomalies,
                                 health_cell, sweep_fits, sweep_report)
from repro.stats.trajectory import collapse_history, history_rows


# -- fit_power_law ------------------------------------------------------

def test_fit_recovers_exact_power_law():
    # y = 3 * x^2 exactly
    fit = fit_power_law([(x, 3 * x ** 2) for x in (1, 2, 4, 8, 16)],
                        x_name="n", y_name="cost")
    assert fit is not None
    assert fit.exponent == pytest.approx(2.0)
    assert fit.coefficient == pytest.approx(3.0)
    assert fit.r2 == pytest.approx(1.0)
    assert fit.n == 5 and fit.skipped == 0
    assert fit.predict(32) == pytest.approx(3 * 32 ** 2)
    assert "cost ~" in fit.describe()


def test_fit_flat_trend_has_near_zero_exponent():
    fit = fit_power_law([(2, 50), (4, 50), (8, 50), (16, 50)])
    assert fit.exponent == pytest.approx(0.0)
    assert fit.coefficient == pytest.approx(50.0)


def test_fit_drops_untransformable_points():
    fit = fit_power_law([(1, 10), (2, 20), (0, 99), (3, -1),
                         (None, 5), (4, 40)])
    assert fit.n == 3 and fit.skipped == 3
    assert fit.exponent == pytest.approx(1.0)


def test_fit_refuses_degenerate_input():
    assert fit_power_law([]) is None
    assert fit_power_law([(2, 10)]) is None
    # distinct y but single-valued x: no law to fit
    assert fit_power_law([(2, 10), (2, 20), (2, 30)]) is None
    assert fit_power_law([(0, 1), (-1, 2)]) is None


def test_fit_to_dict_is_json_safe():
    fit = fit_power_law([(1, 2), (2, 4), (4, 8)])
    doc = json.loads(json.dumps(fit.to_dict()))
    assert doc["exponent"] == pytest.approx(1.0)
    assert set(doc) == {"x", "y", "exponent", "coefficient", "r2", "n",
                        "skipped"}


# -- health_cell flattening --------------------------------------------

PAYLOAD = {
    "group_size": 4,
    "suppression": {"effectiveness": 0.7, "naks_sent": 10,
                    "suppressed_timer": 20, "suppressed_peer": 3},
    "implosion": {"feedback_at_sender": 40, "naks_at_sender": 10,
                  "loss_events": 5, "index": 2.0},
    "repair": {"retrans_pkts": 8, "retrans_bytes": 11680,
               "redundant_ratio": 0.25},
    "lag": {"mean_us": 30_000, "worst_max_us": 90_000, "unresolved": 0},
}


def test_health_cell_flattens_payload():
    cell = health_cell(PAYLOAD, label="n=4", loss_rate=0.02,
                       throughput_bps=2_000_000)
    assert cell["label"] == "n=4"
    assert cell["group_size"] == 4
    assert cell["effectiveness"] == 0.7
    assert cell["suppressed"] == 23
    assert cell["implosion_index"] == 2.0
    assert cell["loss_rate"] == 0.02
    assert cell["throughput_mbps"] == 2.0
    assert cell["worst_lag_us"] == 90_000


def test_health_cell_grid_coordinates_beat_payload():
    assert health_cell(PAYLOAD, group_size=16)["group_size"] == 16


def test_health_cell_tolerates_partial_payload():
    cell = health_cell({"group_size": 2})
    assert cell["effectiveness"] == 0.0
    assert cell["implosion_index"] == 0.0
    assert "loss_rate" not in cell


# -- anomaly flags ------------------------------------------------------

def _cells(**overrides):
    base = {"effectiveness": 0.7, "implosion_index": 2.0,
            "redundant_ratio": 0.2, "worst_lag_us": 50_000}
    cells = []
    for i in range(5):
        cell = dict(base, label=f"n={i}")
        for key, values in overrides.items():
            if i in values:
                cell[key] = values[i]
        cells.append(cell)
    return cells


def test_anomaly_flags_implosion_rise_not_drop():
    """Direction-aware: a high implosion index regresses, a low one is
    an improvement and must NOT be flagged."""
    flags = flag_anomalies(_cells(implosion_index={0: 20.0, 1: 0.1}))
    assert [f.label for f in flags] == ["n=0"]
    assert flags[0].metric == "implosion_index"
    assert flags[0].direction == "high"
    assert "high" in flags[0].describe()


def test_anomaly_flags_effectiveness_drop_not_rise():
    flags = flag_anomalies(_cells(effectiveness={2: 0.1, 3: 0.99}))
    assert [f.label for f in flags] == ["n=2"]
    assert flags[0].direction == "low"


def test_anomaly_needs_three_cells():
    assert flag_anomalies(_cells()[:2]) == []


def test_anomaly_all_equal_cells_are_clean():
    assert flag_anomalies(_cells()) == []


def test_anomaly_custom_thresholds():
    cells = _cells(redundant_ratio={4: 0.25})
    assert flag_anomalies(cells) == []            # within default 50 %
    flags = flag_anomalies(cells, {"redundant_ratio": 0.1})
    assert [f.label for f in flags] == ["n=4"]


def test_default_thresholds_gate_the_issue_metrics():
    assert "effectiveness" in DEFAULT_ANOMALY_THRESHOLDS
    assert "redundant_ratio" in DEFAULT_ANOMALY_THRESHOLDS
    assert "implosion_index" in DEFAULT_ANOMALY_THRESHOLDS


# -- sweep_fits / sweep_report -----------------------------------------

def test_sweep_fits_feedback_vs_group():
    cells = [health_cell({"group_size": n,
                          "implosion": {"feedback_at_sender": 40 + n,
                                        "index": 2.0}},
                         group_size=n, label=f"n={n}")
             for n in (2, 4, 8)]
    fits = sweep_fits(cells)
    assert "feedback_vs_group" in fits
    assert fits["feedback_vs_group"].exponent < 0.2, \
        "near-flat feedback growth fits a near-zero exponent"
    assert "implosion_vs_group" in fits
    # loss axis absent -> repair_vs_loss absent, not crashing
    assert "repair_vs_loss" not in fits


def test_sweep_report_is_json_safe():
    cells = [health_cell(PAYLOAD, group_size=n, label=f"n={n}")
             for n in (2, 4, 8)]
    report = sweep_report(cells)
    assert json.loads(json.dumps(report)) == report
    assert set(report) == {"cells", "fits", "anomalies"}


# -- history dedupe (satellite: BENCH_HISTORY.jsonl hygiene) -----------

ENV = {"git_rev": "abc1234", "python": "3.x", "host": "h", "cpus": 4}


def test_append_history_replaces_same_bench_and_rev(tmp_path):
    hist = str(tmp_path / "BENCH_HISTORY.jsonl")
    append_history(hist, "a", 100.0, ENV)
    append_history(hist, "b", 200.0, ENV)
    append_history(hist, "a", 150.0, ENV)          # rerun, same rev
    rows = history_rows(hist)
    assert [(r["bench"], r["events_per_s"]) for r in rows] == \
        [("b", 200.0), ("a", 150.0)]


def test_append_history_keeps_other_revisions(tmp_path):
    hist = str(tmp_path / "BENCH_HISTORY.jsonl")
    append_history(hist, "a", 100.0, dict(ENV, git_rev="old1234"))
    append_history(hist, "a", 150.0, ENV)
    assert [r["git_rev"] for r in history_rows(hist)] == \
        ["old1234", "abc1234"]


def test_append_history_preserves_unparseable_lines(tmp_path):
    hist = tmp_path / "BENCH_HISTORY.jsonl"
    hist.write_text("not json\n")
    append_history(str(hist), "a", 100.0, ENV)
    lines = hist.read_text().splitlines()
    assert lines[0] == "not json"
    assert json.loads(lines[1])["bench"] == "a"


def test_collapse_history_keeps_last_duplicate():
    rows = [{"bench": "a", "git_rev": "r1", "events_per_s": 1},
            {"bench": "a", "git_rev": "r2", "events_per_s": 2},
            {"bench": "a", "git_rev": "r1", "events_per_s": 3},
            {"note": "no identity keys"}]
    collapsed = collapse_history(rows)
    assert collapsed == [rows[1], rows[2], rows[3]]


def test_collapse_history_no_duplicates_is_identity():
    rows = [{"bench": "a", "git_rev": "r1"},
            {"bench": "b", "git_rev": "r1"}]
    assert collapse_history(rows) == rows
