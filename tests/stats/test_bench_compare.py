"""Bench trajectory: snapshot envelope v2, history log, compare gate."""

import json

import pytest

from repro.stats.bench import (BENCH_SCHEMA_VERSION, append_history,
                               bench_environment, write_bench_snapshot)
from repro.stats.trajectory import (DEFAULT_THRESHOLDS, compare, history_rows,
                                    load_bench, metric_value)


def _doc(events_per_s, **extra):
    return {"bench": "t", "events_per_s": events_per_s, **extra}


# -- compare -----------------------------------------------------------


def test_compare_within_threshold_ok():
    c = compare(_doc(100.0), _doc(90.0))
    assert c.usable and not c.regressed
    (d,) = c.deltas
    assert d.metric == "events_per_s"
    assert d.ratio == pytest.approx(0.9)


def test_compare_detects_regression():
    c = compare(_doc(100.0), _doc(84.9))
    assert c.regressed
    assert c.rows()[0][-1] == "REGRESSED"


def test_compare_improvement_never_regresses():
    c = compare(_doc(100.0), _doc(500.0))
    assert not c.regressed


def test_compare_lower_is_better_direction():
    c = compare(_doc(100.0, wall_s=1.0), _doc(100.0, wall_s=2.0),
                {"events_per_s": 0.15, "wall_s": 0.15})
    verdicts = {d.metric: d.regressed for d in c.deltas}
    assert verdicts == {"events_per_s": False, "wall_s": True}
    # the gate column shows the direction: + for throughput, - for cost
    gates = {r[0]: r[4] for r in c.rows()}
    assert gates["events_per_s"] == "+15%"
    assert gates["wall_s"] == "-15%"


def test_compare_custom_threshold():
    assert not compare(_doc(100.0), _doc(84.9),
                       {"events_per_s": 0.20}).regressed
    assert compare(_doc(100.0), _doc(84.9),
                   {"events_per_s": 0.10}).regressed


def test_compare_rejects_negative_threshold():
    with pytest.raises(ValueError, match="negative threshold"):
        compare(_doc(1.0), _doc(1.0), {"events_per_s": -0.1})


def test_compare_v1_alias_fallback():
    """Pre-v2 snapshots spelled the metric ``engine_events_per_s``;
    they must stay comparable after the schema bump."""
    old = {"bench": "engine-snapshot", "engine_events_per_s": 54959}
    c = compare(old, _doc(54000.0))
    assert c.usable and not c.regressed
    assert metric_value(old, "events_per_s") == 54959.0


def test_compare_missing_metric_is_skipped_not_silent():
    c = compare({"bench": "a"}, _doc(100.0))
    assert not c.usable
    assert c.skipped == ["events_per_s"]
    assert c.rows()[-1][-1] == "skipped"


def test_metric_value_rejects_bool():
    assert metric_value({"events_per_s": True}, "events_per_s") is None


def test_default_thresholds_gate():
    assert DEFAULT_THRESHOLDS == {"events_per_s": 0.15}


# -- load_bench --------------------------------------------------------


def test_load_bench_errors(tmp_path):
    with pytest.raises(ValueError, match="not found"):
        load_bench(str(tmp_path / "missing.json"))
    junk = tmp_path / "junk.json"
    junk.write_text("{nope")
    with pytest.raises(ValueError, match="unreadable"):
        load_bench(str(junk))
    nobench = tmp_path / "nobench.json"
    nobench.write_text('{"events_per_s": 1}')
    with pytest.raises(ValueError, match="no 'bench' key"):
        load_bench(str(nobench))


def test_compare_accepts_paths(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    a.write_text(json.dumps(_doc(100.0)))
    b.write_text(json.dumps(_doc(50.0)))
    assert compare(str(a), str(b)).regressed


# -- snapshot envelope + history --------------------------------------


def test_write_bench_snapshot_envelope_and_history(tmp_path):
    path = tmp_path / "BENCH_X.json"
    doc = write_bench_snapshot(str(path), "x-bench", {"extra": 1},
                               events_per_s=1234.56)
    on_disk = load_bench(str(path))
    assert on_disk == doc
    assert doc["bench"] == "x-bench"
    assert doc["events_per_s"] == 1234.6
    assert doc["extra"] == 1
    assert doc["environment"]["schema_version"] == BENCH_SCHEMA_VERSION
    # one history row appended beside the snapshot
    rows = history_rows(str(tmp_path / "BENCH_HISTORY.jsonl"))
    assert len(rows) == 1
    assert rows[0]["bench"] == "x-bench"
    assert rows[0]["events_per_s"] == 1234.6
    assert rows[0]["git_rev"] == doc["environment"]["git_rev"]


def test_write_bench_snapshot_history_opt_out(tmp_path):
    path = tmp_path / "BENCH_Y.json"
    write_bench_snapshot(str(path), "y", {}, events_per_s=1.0,
                         history=False)
    assert not (tmp_path / "BENCH_HISTORY.jsonl").exists()


def test_append_history_round_trip(tmp_path):
    hist = tmp_path / "BENCH_HISTORY.jsonl"
    env = bench_environment()
    append_history(str(hist), "a", 100.0, env)
    append_history(str(hist), "b", 200.0, env, extra={"note": "x"})
    rows = history_rows(str(hist))
    assert [r["bench"] for r in rows] == ["a", "b"]
    assert rows[1]["note"] == "x"
    # each row is one line of sorted-key JSON (mergeable, diffable)
    lines = hist.read_text().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line) for line in lines)


def test_history_rows_errors(tmp_path):
    with pytest.raises(ValueError, match="not found"):
        history_rows(str(tmp_path / "missing.jsonl"))
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ok": 1}\n{nope\n')
    with pytest.raises(ValueError, match="bad history row"):
        history_rows(str(bad))
