"""Tests for counters, the release tracker and table formatting."""

from repro.stats.metrics import Counters, ReleaseTracker
from repro.stats.report import format_table, format_value


def test_counters_start_zero_and_export():
    c = Counters()
    d = c.as_dict()
    assert all(v == 0 for v in d.values())
    assert "naks_sent" in d and "probes_sent" in d


def test_counters_add_aggregates():
    a = Counters(naks_sent=3, updates_sent=1)
    b = Counters(naks_sent=2, rate_requests_sent=5)
    a.add(b)
    assert a.naks_sent == 5
    assert a.rate_requests_sent == 5
    assert a.updates_sent == 1


def test_feedback_total():
    c = Counters(naks_sent=1, rate_requests_sent=2, updates_sent=3,
                 joins_sent=4, leaves_sent=5)
    assert c.feedback_total == 15


def test_release_tracker_percent():
    t = ReleaseTracker()
    assert t.percent_complete == 100.0
    t.record(True)
    t.record(True)
    t.record(False)
    assert t.checks == 3 and t.complete == 2
    assert abs(t.percent_complete - 66.67) < 0.1


def test_format_value_styles():
    assert format_value(0.0) == "0"
    assert format_value(1234.5) == "1234"
    assert format_value(3.14159) == "3.14"
    assert format_value(0.12345) == "0.1235"
    assert format_value("abc") == "abc"
    assert format_value(42) == "42"


def test_format_table_alignment():
    out = format_table("My Table", ["name", "value"],
                       [["alpha", 1], ["b", 23456]])
    lines = out.splitlines()
    assert lines[0] == "My Table"
    assert lines[1] == "========"
    assert "name" in lines[2] and "value" in lines[2]
    widths = {len(line) for line in lines[2:]}
    assert len(widths) <= 2  # header/rule/rows aligned


def test_format_table_empty_rows():
    out = format_table("Empty", ["a"], [])
    assert "Empty" in out


def test_format_value_non_finite():
    assert format_value(float("nan")) == "nan"
    assert format_value(float("inf")) == "inf"
    assert format_value(float("-inf")) == "-inf"


def test_format_value_negative():
    assert format_value(-0.5) == "-0.5000"
    assert format_value(-3.14159) == "-3.14"
    assert format_value(-1234.5) == "-1234"
    assert format_value(-0.0) == "0"


def test_format_table_with_non_finite_cells():
    out = format_table("T", ["m", "v"],
                       [["a", float("nan")], ["b", float("inf")],
                        ["c", -0.25]])
    lines = out.splitlines()
    assert any("nan" in line for line in lines)
    assert any("inf" in line for line in lines)
    widths = {len(line) for line in lines[2:]}
    assert len(widths) <= 2
