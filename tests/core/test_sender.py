"""Unit tests for the H-RMC sender state machine (driven directly via a
fake host)."""

from dataclasses import replace

from repro.core.config import HRMCConfig
from repro.core.types import FIN, URG, PacketType
from repro.kernel.payload import BytesPayload, PatternPayload
from repro.kernel.skbuff import SKBuff
from repro.sim.timer import JIFFY_US

from tests.core.conftest import make_sender

RCV = "10.0.0.9"


def feedback(ptype, *, seq=1, length=0, rate_adv=0, flags=0):
    return SKBuff(sport=6000, dport=5000, seq=seq, ptype=ptype,
                  length=length, rate_adv=rate_adv, flags=flags, tries=1)


def join_member(sender, addr=RCV, seq=1):
    """Deliver a JOIN so the sender tracks one member."""
    sender.segment_received(feedback(PacketType.JOIN, seq=seq), addr)


def test_sendmsg_fragments_at_mss(sim, fake_host):
    s = make_sender(sim, fake_host)
    n = s.cfg.mss * 2 + 100
    consumed = s.sendmsg_some(PatternPayload(0, n))
    assert consumed == n
    lens = [skb.length for skb in s.sock.write_queue]
    assert lens == [s.cfg.mss, s.cfg.mss, 100]
    assert s.snd_nxt == s.cfg.iss + n


def test_sendmsg_blocks_at_sndbuf(sim, fake_host):
    s = make_sender(sim, fake_host, sndbuf=8 * 1024)
    consumed = s.sendmsg_some(PatternPayload(0, 1 << 20))
    assert 0 < consumed < (1 << 20)
    assert s.sock.wmem_free() >= 0
    # a second call makes no progress until space frees
    assert s.sendmsg_some(PatternPayload(consumed, 1024)) == 0


def test_transmit_tick_sends_data(sim, fake_host):
    s = make_sender(sim, fake_host)
    s.sendmsg_some(BytesPayload(b"x" * 3000))
    sim.run(until=5 * JIFFY_US)
    data = fake_host.sent_of_type(PacketType.DATA)
    assert len(data) >= 1
    assert data[0][1] == "224.1.0.1"        # multicast destination
    assert data[0][0].rate_adv > 0          # rate advertised


def test_rate_budget_paces_transmission(sim, fake_host):
    cfg = replace(HRMCConfig(), min_rate_bps=8 * 1460 * 100,  # 1 pkt/jiffy
                  max_rate_bps=8 * 1460 * 100)
    s = make_sender(sim, fake_host, cfg=cfg, sndbuf=1 << 20)
    s.sendmsg_some(PatternPayload(0, 100 * 1460))
    sim.run(until=10 * JIFFY_US)
    sent = len(fake_host.sent_of_type(PacketType.DATA))
    assert sent <= 13  # ~1/jiffy plus slack for the initial burst cap


def test_fin_is_one_phantom_byte(sim, fake_host):
    s = make_sender(sim, fake_host)
    s.sendmsg_some(BytesPayload(b"abc"))
    s.queue_fin()
    assert s.fin_seq == s.cfg.iss + 3
    assert s.snd_nxt == s.cfg.iss + 4
    tail = s.sock.write_queue.peek_tail()
    assert tail.flags & FIN
    assert tail.length == 1 and tail.payload is None


def test_release_waits_minbuf_rtts(sim, fake_host):
    s = make_sender(sim, fake_host)
    join_member(s)
    s.sendmsg_some(BytesPayload(b"y" * 100))
    s.queue_fin()   # lazy release: closing activates window release
    sim.run(until=2 * JIFFY_US)
    skb = s.sock.write_queue.peek()
    assert skb.tries == 1
    # member has everything, but MINBUF keeps the data buffered
    # (the queue holds the data skb plus the FIN marker)
    s.segment_received(feedback(PacketType.UPDATE, seq=10_000), RCV)
    assert len(s.sock.write_queue) == 2
    hold = s.cfg.minbuf_rtts * s.rtt.rtt_us
    sim.run(until=skb.last_sent_us + hold + 2 * JIFFY_US)
    assert len(s.sock.write_queue) == 0
    assert s.snd_wnd == s.snd_nxt  # slid past data and FIN


def test_release_blocked_without_member_info_probes(sim, fake_host):
    s = make_sender(sim, fake_host)
    join_member(s, seq=1)
    s.sendmsg_some(BytesPayload(b"z" * 100))
    s.queue_fin()
    sim.run(until=JIFFY_US * 3)
    hold = s.cfg.minbuf_rtts * s.rtt.rtt_us
    sim.run(until=sim.now + hold + 5 * JIFFY_US)
    # member's next_expected (1) is behind: data must still be buffered
    # (data skb + FIN marker)
    assert len(s.sock.write_queue) == 2
    probes = fake_host.sent_of_type(PacketType.PROBE)
    assert probes, "sender must probe the lacking member"
    assert probes[0][1] == RCV  # unicast to the member
    assert s.release.checks == 1
    assert s.release.complete == 0


def test_release_after_probe_answer(sim, fake_host):
    s = make_sender(sim, fake_host)
    join_member(s, seq=1)
    s.sendmsg_some(BytesPayload(b"z" * 100))
    s.queue_fin()
    hold = s.cfg.minbuf_rtts * s.rtt.rtt_us
    sim.run(until=hold + 5 * JIFFY_US)
    assert len(s.sock.write_queue) >= 1
    s.segment_received(feedback(PacketType.UPDATE, seq=5000), RCV)
    sim.run(until=sim.now + hold + 5 * JIFFY_US)
    assert len(s.sock.write_queue) == 0


def test_rmc_mode_releases_without_info(sim, fake_host):
    cfg = HRMCConfig().as_rmc()
    s = make_sender(sim, fake_host, cfg=cfg)
    join_member(s, seq=1)  # tracked for metrics only
    s.sendmsg_some(BytesPayload(b"z" * 100))
    s.queue_fin()
    hold = cfg.minbuf_rtts * s.rtt.rtt_us
    sim.run(until=hold + 5 * JIFFY_US)
    assert len(s.sock.write_queue) == 0          # released anyway
    assert fake_host.sent_of_type(PacketType.PROBE) == []
    assert s.release.checks >= 1 and s.release.complete == 0


def test_nak_triggers_retransmission_and_rate_cut(sim, fake_host):
    s = make_sender(sim, fake_host)
    join_member(s)
    s.sendmsg_some(PatternPayload(0, 3 * 1460))
    sim.run(until=3 * JIFFY_US)
    fake_host.clear()
    s.segment_received(
        feedback(PacketType.NAK, seq=1, length=1460, rate_adv=1), RCV)
    sim.run(until=sim.now + 3 * JIFFY_US)
    retrans = [skb for skb, _ in fake_host.sent_of_type(PacketType.DATA)
               if skb.tries > 1]
    assert retrans and retrans[0].seq == 1
    assert s.rate.cuts == 1
    assert s.stats.naks_rcvd == 1


def test_nak_updates_membership_from_rate_adv(sim, fake_host):
    s = make_sender(sim, fake_host)
    join_member(s)
    s.sendmsg_some(PatternPayload(0, 10 * 1460))
    sim.run(until=3 * JIFFY_US)
    s.segment_received(
        feedback(PacketType.NAK, seq=2921, length=1460, rate_adv=2921), RCV)
    assert s.members.get(RCV).next_expected == 2921


def test_nak_below_window_sends_nak_err(sim, fake_host):
    cfg = replace(HRMCConfig().as_rmc(), minbuf_rtts=1)
    s = make_sender(sim, fake_host, cfg=cfg)
    s.sendmsg_some(BytesPayload(b"q" * 100))
    s.queue_fin()
    sim.run(until=1_000_000)  # RMC releases after the short hold
    assert len(s.sock.write_queue) == 0
    fake_host.clear()
    s.segment_received(feedback(PacketType.NAK, seq=1, length=100,
                                rate_adv=1), RCV)
    errs = fake_host.sent_of_type(PacketType.NAK_ERR)
    assert len(errs) == 1
    assert errs[0][1] == RCV
    assert errs[0][0].seq == s.snd_wnd
    assert s.stats.reliability_violations == 1


def test_urgent_control_stops_transmission(sim, fake_host):
    s = make_sender(sim, fake_host, sndbuf=1 << 20)
    join_member(s)
    s.sendmsg_some(PatternPayload(0, 200 * 1460))
    sim.run(until=5 * JIFFY_US)
    s.segment_received(feedback(PacketType.CONTROL, seq=1, flags=URG), RCV)
    assert s.rate.is_stopped(sim.now)
    fake_host.clear()
    sim.run(until=sim.now + JIFFY_US)  # within the stop window
    assert fake_host.sent_of_type(PacketType.DATA) == []
    assert s.stats.urgent_requests_rcvd == 1


def test_warning_control_halves_and_caps(sim, fake_host):
    s = make_sender(sim, fake_host, sndbuf=1 << 20)
    join_member(s)
    s.sendmsg_some(PatternPayload(0, 200 * 1460))
    sim.run(until=20 * JIFFY_US)
    s.segment_received(
        feedback(PacketType.CONTROL, seq=1, rate_adv=200_000), RCV)
    # capped at the suggestion (or the protocol's minimum rate)
    assert s.rate.rate <= max(200_000, s.rate.min_rate) + 1
    assert s.rate.cuts == 1
    assert s.stats.rate_requests_rcvd == 1


def test_join_and_leave_maintain_membership(sim, fake_host):
    s = make_sender(sim, fake_host)
    join_member(s, "10.0.0.7")
    join_member(s, "10.0.0.8")
    assert len(s.members) == 2
    assert fake_host.sent_of_type(PacketType.JOIN_RESPONSE)
    s.segment_received(feedback(PacketType.LEAVE, seq=1), "10.0.0.7")
    assert len(s.members) == 1
    assert fake_host.sent_of_type(PacketType.LEAVE_RESPONSE)


def test_duplicate_join_keeps_one_member(sim, fake_host):
    s = make_sender(sim, fake_host)
    join_member(s)
    join_member(s)
    assert len(s.members) == 1
    assert len(fake_host.sent_of_type(PacketType.JOIN_RESPONSE)) == 2


def test_keepalive_when_idle_with_backoff(sim, fake_host):
    s = make_sender(sim, fake_host)
    sim.run(until=5_000_000)  # 5 s idle
    kas = fake_host.sent_of_type(PacketType.KEEPALIVE)
    assert len(kas) >= 2
    assert all(skb.seq == s.snd_nxt for skb, _ in kas)
    times = [t for skb, dst, t in fake_host.sent
             if skb.ptype == PacketType.KEEPALIVE]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g2 >= g1 for g1, g2 in zip(gaps, gaps[1:]))  # backing off
    assert max(gaps) <= s.cfg.keepalive_max_us + JIFFY_US


def test_probe_backoff_limits_probe_rate(sim, fake_host):
    s = make_sender(sim, fake_host)
    join_member(s, seq=1)
    s.sendmsg_some(BytesPayload(b"z" * 100))
    s.queue_fin()
    sim.run(until=3_000_000)
    probes = fake_host.sent_of_type(PacketType.PROBE)
    # backoff: far fewer probes than elapsed jiffies
    assert 0 < len(probes) < 40


def test_member_eviction_after_probe_timeout(sim, fake_host):
    cfg = replace(HRMCConfig(), member_timeout_probes=3,
                  member_timeout_us=500_000)
    s = make_sender(sim, fake_host, cfg=cfg)
    join_member(s, seq=1)
    s.sendmsg_some(BytesPayload(b"z" * 100))
    s.queue_fin()
    sim.run(until=20_000_000)
    assert len(s.members) == 0
    assert s.stats.member_timeouts == 1
    assert len(s.sock.write_queue) == 0  # window freed after eviction


def test_close_drains_and_stops_timers(sim, fake_host):
    s = make_sender(sim, fake_host)
    s.sendmsg_some(BytesPayload(b"end"))
    s.queue_fin()
    sim.run(until=10_000_000)
    assert s.drained
    assert s.finished
    assert not s.transmit_timer.pending
    assert not s.ka_timer.pending


def test_fec_parity_emitted_every_block(sim, fake_host):
    cfg = replace(HRMCConfig(), fec_enabled=True, fec_block=4)
    s = make_sender(sim, fake_host, cfg=cfg, sndbuf=1 << 20)
    s.sendmsg_some(PatternPayload(0, 12 * 1460))
    sim.run(until=50 * JIFFY_US)
    parity = [skb for skb, _ in fake_host.sent_of_type(PacketType.DATA)
              if skb.flags & 0x8000]
    assert len(parity) == 3
    assert all(skb.rate_adv == 4 * 1460 for skb in parity)
    assert s.stats.fec_pkts_sent == 3


def test_expected_receivers_gate_release(sim, fake_host):
    cfg = replace(HRMCConfig(), expected_receivers=2)
    s = make_sender(sim, fake_host, cfg=cfg)
    join_member(s, "10.0.0.7", seq=10_000)
    s.sendmsg_some(BytesPayload(b"k" * 100))
    s.queue_fin()
    sim.run(until=3_000_000)
    assert len(s.sock.write_queue) >= 1  # quorum not met
    join_member(s, "10.0.0.8", seq=10_000)
    sim.run(until=sim.now + 5 * JIFFY_US)
    assert len(s.sock.write_queue) == 0
