"""End-to-end integration tests: full protocol over the full substrate.

These exercise the reliability invariant (every receiver's delivered
stream equals the sent stream byte-for-byte) under lossy networks,
determinism, the RMC hazard path, close semantics and the future-work
extensions.
"""

from dataclasses import replace

import pytest

from repro.core.config import HRMCConfig
from repro.core.protocol import open_hrmc_socket
from repro.harness.runner import run_transfer
from repro.kernel.payload import PatternPayload, pattern_bytes
from repro.net.topology import GroupSpec
from repro.core.rmc import open_rmc_socket
from repro.sim.process import Process
from repro.workloads.groups import GROUP_A, GROUP_B, GROUP_C
from repro.workloads.scenarios import build_lan, build_wan


def transfer(scenario, nbytes, **kw):
    return run_transfer(scenario, nbytes=nbytes, **kw)


# -- basic reliability -----------------------------------------------------

def test_lan_transfer_bytes_exact():
    sc = build_lan(2, 10e6, seed=1)
    res = transfer(sc, 300_000, sndbuf=128 * 1024, verify="bytes")
    assert res.ok
    assert all(r.bytes_done == 300_000 for r in res.per_receiver)


def test_wan_lossy_transfer_reliable():
    sc = build_wan([GROUP_C] * 5, 10e6, seed=2)
    res = transfer(sc, 300_000, sndbuf=128 * 1024, verify="bytes",
                   max_sim_s=300)
    assert res.ok
    assert res.reliability_violations == 0
    assert res.sender_stats.naks_rcvd > 0  # 2% loss actually exercised


def test_very_lossy_network_still_reliable():
    harsh = GroupSpec("H", delay_us=50_000, loss_rate=0.10)
    sc = build_wan([harsh] * 3, 10e6, seed=3)
    res = transfer(sc, 120_000, sndbuf=64 * 1024, verify="bytes",
                   max_sim_s=600)
    assert res.ok
    assert res.lost_bytes == 0


def test_single_receiver_tiny_transfer():
    sc = build_lan(1, 10e6, seed=4)
    res = transfer(sc, 100, sndbuf=64 * 1024, verify="bytes")
    assert res.ok
    assert res.per_receiver[0].bytes_done == 100


def test_empty_transfer_completes():
    sc = build_lan(1, 10e6, seed=4)
    res = transfer(sc, 0, sndbuf=64 * 1024)
    assert res.ok
    assert res.per_receiver[0].bytes_done == 0


def test_many_receivers_lan():
    sc = build_lan(8, 10e6, seed=5)
    res = transfer(sc, 200_000, sndbuf=256 * 1024)
    assert res.ok
    assert res.sender_stats.joins_rcvd == 8


def test_mixed_groups_reliable():
    sc = build_wan([GROUP_A] * 3 + [GROUP_B] * 3 + [GROUP_C] * 3, 10e6,
                   seed=6)
    res = transfer(sc, 200_000, sndbuf=256 * 1024, max_sim_s=300)
    assert res.ok


# -- determinism -------------------------------------------------------

def test_same_seed_same_trace():
    results = []
    for _ in range(2):
        sc = build_wan([GROUP_B] * 4, 10e6, seed=77)
        res = transfer(sc, 150_000, sndbuf=128 * 1024)
        results.append((res.duration_us, res.sim_events,
                        res.sender_stats.naks_rcvd,
                        res.sender_stats.probes_sent))
    assert results[0] == results[1]


def test_different_seed_different_loss_pattern():
    outcomes = set()
    for seed in (1, 2, 3):
        sc = build_wan([GROUP_C] * 4, 10e6, seed=seed)
        res = transfer(sc, 150_000, sndbuf=128 * 1024, max_sim_s=300)
        assert res.ok
        outcomes.add(res.sender_stats.naks_rcvd)
    assert len(outcomes) > 1


# -- RMC semantics ------------------------------------------------------

def test_rmc_completes_cleanly_at_default_minbuf():
    sc = build_wan([GROUP_B] * 4, 10e6, seed=8)
    res = transfer(sc, 150_000, protocol="rmc", sndbuf=128 * 1024,
                   max_sim_s=300)
    assert res.ok
    assert res.reliability_violations == 0
    # pure NAK: no updates, no probes
    assert res.sender_stats.updates_rcvd == 0
    assert res.sender_stats.probes_sent == 0


def test_rmc_hazard_with_tiny_hold_time():
    cfg = replace(HRMCConfig().as_rmc(), minbuf_rtts=1)
    sc = build_wan([GROUP_C] * 5, 10e6, seed=9)
    res = transfer(sc, 400_000, protocol="rmc", cfg=cfg,
                   sndbuf=64 * 1024, max_sim_s=120)
    # the pure-NAK design with a too-short hold drops data...
    assert res.reliability_violations > 0
    assert res.lost_bytes > 0
    assert not res.ok
    # ...and the applications were told (receiver error surfaced)
    assert any(r.errors for r in res.per_receiver)


def test_hrmc_immune_to_tiny_hold_time():
    cfg = replace(HRMCConfig(), minbuf_rtts=1)
    sc = build_wan([GROUP_C] * 5, 10e6, seed=9)
    res = transfer(sc, 400_000, protocol="hrmc", cfg=cfg,
                   sndbuf=64 * 1024, max_sim_s=600)
    assert res.ok
    assert res.lost_bytes == 0


# -- H-RMC mechanisms observable end-to-end ------------------------------

def test_updates_lift_release_information():
    sc1 = build_wan([GROUP_A] * 6, 10e6, seed=10)
    with_updates = transfer(sc1, 200_000, sndbuf=256 * 1024)
    sc2 = build_wan([GROUP_A] * 6, 10e6, seed=10)
    without = transfer(sc2, 200_000, protocol="rmc", sndbuf=256 * 1024)
    assert with_updates.release_complete_pct > without.release_complete_pct
    assert with_updates.release_complete_pct > 80.0
    assert without.release_complete_pct < 50.0


def test_probes_only_when_information_lacking():
    # low loss, updates on: probes occur but are bounded
    sc = build_wan([GROUP_A] * 4, 10e6, seed=11)
    res = transfer(sc, 200_000, sndbuf=256 * 1024)
    assert res.ok
    pkts = res.sender_stats.data_pkts_sent
    assert res.sender_stats.probes_sent < pkts


def test_dynamic_update_timer_adapts_down_in_quiet_net():
    sc = build_lan(2, 10e6, seed=12)
    cfg = HRMCConfig(expected_receivers=2)
    ssock = open_hrmc_socket(sc.sender, cfg.with_rate_cap(10e6),
                             sndbuf=64 * 1024)
    rsocks = [open_hrmc_socket(h, cfg.with_rate_cap(10e6),
                               rcvbuf=64 * 1024) for h in sc.receivers]

    def rapp(sock):
        sock.join(sc.group_addr, sc.data_port)
        while True:
            chunks = yield from sock.recv_payloads(1 << 20)
            if not chunks:
                break
        # leave the socket open: keep the update generator running

    def sapp(sock):
        sock.bind(sc.sender_port)
        sock.connect(sc.group_addr, sc.data_port)
        yield from sock.send(PatternPayload(0, 2_000_000))
        yield from sock.close()

    for rs in rsocks:
        Process(sc.sim, rapp(rs))
    Process(sc.sim, sapp(ssock))
    sc.sim.run(until=30_000_000)
    periods = [rs.transport.receiver.update.period_jiffies
               for rs in rsocks]
    initial = HRMCConfig().update_initial_jiffies
    assert any(p != initial for p in periods), \
        "dynamic update timers should have moved"


def test_fec_end_to_end_reduces_naks():
    base_naks = fec_naks = None
    for fec in (False, True):
        cfg = replace(HRMCConfig(), fec_enabled=fec, fec_block=8)
        sc = build_wan([GROUP_C] * 4, 10e6, seed=13)
        res = transfer(sc, 300_000, cfg=cfg, sndbuf=256 * 1024,
                       max_sim_s=300)
        assert res.ok
        if fec:
            fec_naks = res.sender_stats.naks_rcvd
            assert res.receiver_stats.fec_repairs > 0
        else:
            base_naks = res.sender_stats.naks_rcvd
    assert fec_naks < base_naks


def test_local_recovery_end_to_end():
    cfg = replace(HRMCConfig(), local_recovery=True)
    sc = build_wan([GROUP_C] * 6, 10e6, seed=14)
    res = transfer(sc, 300_000, cfg=cfg, sndbuf=256 * 1024, max_sim_s=300)
    assert res.ok
    assert res.receiver_stats.local_repairs_sent > 0
    assert res.receiver_stats.local_repairs_used > 0


def test_early_probes_cut_stalls_at_small_buffers():
    tput = {}
    for early in (False, True):
        cfg = replace(HRMCConfig(), early_probes=early)
        sc = build_lan(2, 100e6, seed=15)
        res = transfer(sc, 2_000_000, cfg=cfg, sndbuf=64 * 1024)
        assert res.ok
        tput[early] = res.throughput_bps
    assert tput[True] > tput[False]


def test_mcast_probe_reduces_probe_packets():
    counts = {}
    for threshold in (None, 4):
        cfg = replace(HRMCConfig(), mcast_probe_threshold=threshold)
        sc = build_wan([GROUP_A] * 12, 10e6, seed=16)
        res = transfer(sc, 150_000, cfg=cfg, sndbuf=256 * 1024,
                       max_sim_s=300)
        assert res.ok
        counts[threshold] = res.sender_stats.probes_sent
    assert counts[4] < counts[None]


# -- close / membership robustness --------------------------------------------

def test_close_completes_despite_lossy_feedback_path():
    lossy = GroupSpec("L", delay_us=20_000, loss_rate=0.05)
    sc = build_wan([lossy] * 4, 10e6, seed=17)
    res = transfer(sc, 150_000, sndbuf=128 * 1024, max_sim_s=600)
    assert res.ok  # includes sender close completion


def test_receiver_crash_does_not_block_group_forever():
    """Kill one receiver mid-transfer: the member-eviction backstop
    must let the remaining receivers finish."""
    sc = build_lan(3, 10e6, seed=18)
    cfg = replace(HRMCConfig(expected_receivers=3).with_rate_cap(10e6),
                  member_timeout_us=2_000_000, member_timeout_probes=5)
    ssock = open_hrmc_socket(sc.sender, cfg, sndbuf=128 * 1024)
    rsocks = [open_hrmc_socket(h, cfg, rcvbuf=128 * 1024)
              for h in sc.receivers]
    done = {}

    def rapp(i, sock, crash_after=None):
        sock.join(sc.group_addr, sc.data_port)
        got = 0
        while True:
            chunks = yield from sock.recv_payloads(1 << 20)
            if not chunks:
                break
            got += sum(c.length for c in chunks)
            if crash_after and got >= crash_after:
                sock.abort()   # vanish without LEAVE
                return
        done[i] = got
        yield from sock.close()

    def sapp(sock):
        sock.bind(sc.sender_port)
        sock.connect(sc.group_addr, sc.data_port)
        yield from sock.send(PatternPayload(0, 1_000_000))
        yield from sock.close()
        done["sender"] = sc.sim.now

    Process(sc.sim, rapp(0, rsocks[0]))
    Process(sc.sim, rapp(1, rsocks[1]))
    Process(sc.sim, rapp(2, rsocks[2], crash_after=200_000))
    Process(sc.sim, sapp(ssock))
    sc.sim.run(until=120_000_000)
    assert done.get(0) == 1_000_000
    assert done.get(1) == 1_000_000
    assert "sender" in done, "sender close must not hang on the dead member"
    assert ssock.transport.stats.member_timeouts >= 1


def test_wire_traffic_overhead_is_sane():
    """Total bytes on the wire ~= data + headers + modest feedback."""
    sc = build_lan(2, 10e6, seed=19)
    res = transfer(sc, 500_000, sndbuf=256 * 1024)
    assert res.ok
    sent = res.sender_stats.data_bytes_sent + res.sender_stats.retrans_bytes
    assert sent < 500_001 * 1.05
