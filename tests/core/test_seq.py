"""Unit and property tests for wrap-safe sequence arithmetic."""

from hypothesis import given, strategies as st

from repro.core.seq import (SEQ_MASK, seq_add, seq_between, seq_geq, seq_gt,
                            seq_leq, seq_lt, seq_max, seq_min, seq_sub)

seqs = st.integers(0, SEQ_MASK)
small = st.integers(0, 2**30)  # window-scale distances


def test_basic_ordering():
    assert seq_lt(1, 2)
    assert seq_gt(2, 1)
    assert seq_leq(2, 2)
    assert seq_geq(2, 2)
    assert not seq_lt(2, 2)


def test_wraparound_compare():
    near_top = SEQ_MASK - 10
    assert seq_lt(near_top, 5)          # 5 is "after" the wrap
    assert seq_gt(5, near_top)
    assert seq_sub(5, near_top) == 16


def test_seq_add_wraps():
    assert seq_add(SEQ_MASK, 1) == 0
    assert seq_add(0, -1) == SEQ_MASK
    assert seq_add(10, 5) == 15


def test_seq_sub_signed():
    assert seq_sub(10, 3) == 7
    assert seq_sub(3, 10) == -7
    assert seq_sub(0, SEQ_MASK) == 1


def test_between():
    assert seq_between(10, 10, 20)
    assert seq_between(10, 19, 20)
    assert not seq_between(10, 20, 20)
    assert not seq_between(10, 9, 20)
    # across the wrap
    lo = SEQ_MASK - 5
    assert seq_between(lo, 2, 10)


def test_min_max():
    assert seq_max(5, 10) == 10
    assert seq_min(5, 10) == 5
    assert seq_max(SEQ_MASK - 1, 3) == 3   # 3 is after the wrap


@given(seqs, small)
def test_add_then_sub_roundtrip(a, d):
    assert seq_sub(seq_add(a, d), a) == d


@given(seqs, st.integers(1, 2**30))
def test_strict_order_after_add(a, d):
    b = seq_add(a, d)
    assert seq_lt(a, b)
    assert seq_gt(b, a)
    assert not seq_lt(b, a)


@given(seqs)
def test_reflexivity(a):
    assert seq_leq(a, a)
    assert seq_geq(a, a)
    assert not seq_lt(a, a)
    assert not seq_gt(a, a)
    assert seq_sub(a, a) == 0


@given(seqs, small, small)
def test_transitivity_within_window(a, d1, d2):
    b = seq_add(a, d1)
    c = seq_add(b, d2)
    if d1 + d2 < 2**31:
        assert seq_leq(a, b) and seq_leq(b, c)
        assert seq_leq(a, c)


@given(seqs, small)
def test_min_max_consistent(a, d):
    b = seq_add(a, d)
    assert seq_max(a, b) == b
    assert seq_min(a, b) == a
    assert seq_max(a, b) == seq_max(b, a)
    assert seq_min(a, b) == seq_min(b, a)


@given(seqs, seqs)
def test_lt_gt_duality(a, b):
    # comparison is documented as valid only while the live window spans
    # less than 2**31 bytes; at exactly half the space the ordering of a
    # serial-number pair is undefined (RFC 1982's excluded point)
    if a != b and (a - b) & SEQ_MASK != 2**31:
        assert seq_lt(a, b) != seq_lt(b, a)
        assert seq_lt(a, b) == seq_gt(b, a)
