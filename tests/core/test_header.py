"""Unit and property tests for the 20-byte header codec."""

import pytest
from hypothesis import given, strategies as st

from repro.core.header import HEADER_LEN, Header, checksum
from repro.core.types import FIN, URG, PacketType
from repro.kernel.skbuff import SKBuff


def mk(**kw):
    defaults = dict(sport=5000, dport=6000, seq=12345, rate_adv=125000,
                    length=1460, cksum=0, tries=1, ptype=PacketType.DATA,
                    flags=0)
    defaults.update(kw)
    return Header(**defaults)


def test_header_is_20_bytes():
    assert HEADER_LEN == 20
    assert len(mk().pack()) == 20


def test_pack_unpack_roundtrip():
    h = mk(flags=URG | FIN, tries=3, ptype=PacketType.NAK)
    out = Header.unpack(h.pack())
    assert out.sport == h.sport
    assert out.dport == h.dport
    assert out.seq == h.seq
    assert out.rate_adv == h.rate_adv
    assert out.length == h.length
    assert out.tries == h.tries
    assert out.ptype == h.ptype
    assert out.flags == h.flags


def test_checksum_verifies_clean_packet():
    h = mk()
    payload = b"hello world!"
    wire = h.pack(payload) + payload
    assert checksum(wire) == 0


def test_checksum_detects_single_bit_flip():
    h = mk()
    payload = b"some payload data"
    wire = bytearray(h.pack(payload) + payload)
    for bit in (0, 7, 45, len(wire) * 8 - 1):
        flipped = bytearray(wire)
        flipped[bit // 8] ^= 1 << (bit % 8)
        assert checksum(bytes(flipped)) != 0


def test_short_header_rejected():
    with pytest.raises(ValueError):
        Header.unpack(b"\x00" * 10)


def test_skb_conversion_roundtrip():
    skb = SKBuff(sport=1, dport=2, seq=99, ptype=PacketType.UPDATE,
                 length=0, rate_adv=777, flags=URG, tries=2)
    h = Header.from_skb(skb)
    back = h.to_skb()
    assert back.sport == 1 and back.dport == 2
    assert back.seq == 99
    assert back.ptype == PacketType.UPDATE
    assert back.rate_adv == 777
    assert back.flags == URG
    assert back.tries == 2


def test_rfc1071_known_vector():
    # classic example: checksum of 0x0001 0xf203 0xf4f5 0xf6f7
    data = bytes.fromhex("0001f203f4f5f6f7")
    assert checksum(data) == (~0xddf2) & 0xFFFF


def test_odd_length_padding():
    assert checksum(b"\x01") == checksum(b"\x01\x00")


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
       st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF),
       st.integers(0, 0xFFFF), st.integers(0, 0xFF),
       st.sampled_from(list(PacketType)), st.integers(0, 0xFFFF))
def test_roundtrip_property(sport, dport, seq, rate, length, tries, ptype,
                            flags):
    h = Header(sport, dport, seq, rate, length, 0, tries, ptype, flags)
    out = Header.unpack(h.pack())
    assert (out.sport, out.dport, out.seq, out.rate_adv, out.length,
            out.tries, out.ptype, out.flags) == \
        (sport, dport, seq, rate, length, tries, ptype, flags)


@given(st.binary(min_size=0, max_size=200))
def test_checksum_self_verifies(payload):
    h = mk(length=len(payload))
    wire = h.pack(payload) + payload
    assert checksum(wire) == 0
