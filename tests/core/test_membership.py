"""Unit and property tests for the membership table (DLL + hash)."""

from hypothesis import given, settings, strategies as st

from repro.core.membership import MemberTable
from repro.net.addr import host_addr


def addr(i):
    return host_addr(0, i + 1)


def test_add_and_get():
    t = MemberTable()
    m = t.add(addr(0), 100, now_us=0)
    assert len(t) == 1
    assert t.get(addr(0)) is m
    assert addr(0) in t
    assert m.next_expected == 100


def test_duplicate_join_idempotent():
    t = MemberTable()
    m1 = t.add(addr(0), 100, 0)
    m2 = t.add(addr(0), 999, 5)
    assert m1 is m2
    assert len(t) == 1
    assert m1.next_expected == 100  # original state preserved
    assert t.joins == 1


def test_remove():
    t = MemberTable()
    t.add(addr(0), 1, 0)
    t.add(addr(1), 1, 0)
    assert t.remove(addr(0)) is True
    assert len(t) == 1
    assert t.get(addr(0)) is None
    assert t.get(addr(1)) is not None
    t.check_consistency()


def test_remove_unknown_counts_implicit_departure_once():
    # a LEAVE from an address whose JOIN was lost proves the receiver
    # existed and is done: it joins the quorum tallies exactly once,
    # even when the LEAVE is retransmitted
    t = MemberTable()
    assert t.remove(addr(9)) is False
    assert t.joins == 1 and t.leaves == 1
    assert t.remove(addr(9)) is False
    assert t.joins == 1 and t.leaves == 1
    assert len(t) == 0


def test_retried_leave_after_removal_not_recounted():
    t = MemberTable()
    t.add(addr(0), 1, 0)
    assert t.remove(addr(0)) is True
    assert t.remove(addr(0)) is False  # retransmitted LEAVE
    assert t.joins == 1 and t.leaves == 1


def test_rejoin_after_leave_counts_again():
    t = MemberTable()
    t.add(addr(0), 1, 0)
    t.remove(addr(0))
    t.add(addr(0), 50, 10)
    t.remove(addr(0))
    assert t.joins == 2 and t.leaves == 2


def test_iteration_order_is_join_order():
    t = MemberTable()
    for i in range(5):
        t.add(addr(i), 1, 0)
    assert [m.addr for m in t] == [addr(i) for i in range(5)]


def test_update_feedback_only_advances():
    t = MemberTable()
    t.add(addr(0), 100, 0)
    t.update_feedback(addr(0), 500, 10)
    assert t.get(addr(0)).next_expected == 500
    t.update_feedback(addr(0), 300, 20)  # stale feedback
    assert t.get(addr(0)).next_expected == 500
    assert t.get(addr(0)).last_feedback_us == 20


def test_update_feedback_unknown_member():
    t = MemberTable()
    assert t.update_feedback(addr(0), 100, 0) is None


def test_feedback_clears_outstanding_probe():
    t = MemberTable()
    m = t.add(addr(0), 100, 0)
    m.probe_sent_us = 55
    t.update_feedback(addr(0), 200, 60)
    assert m.probe_sent_us == -1


def test_lacking_and_all_have():
    t = MemberTable()
    t.add(addr(0), 100, 0)
    t.add(addr(1), 200, 0)
    t.add(addr(2), 300, 0)
    assert t.all_have(100)
    assert not t.all_have(150)
    lacking = t.lacking(250)
    assert sorted(m.addr for m in lacking) == sorted([addr(0), addr(1)])
    assert t.lacking(50) == []


def test_all_have_vacuous_when_empty():
    t = MemberTable()
    assert t.all_have(10**6)


def test_hash_collisions_handled():
    # force collisions with a tiny table
    t = MemberTable(buckets=1)
    for i in range(20):
        t.add(addr(i), i, 0)
    t.check_consistency()
    for i in range(20):
        assert t.get(addr(i)).next_expected == i
    for i in range(0, 20, 2):
        t.remove(addr(i))
    t.check_consistency()
    assert len(t) == 10
    for i in range(1, 20, 2):
        assert t.get(addr(i)) is not None


@settings(max_examples=60)
@given(st.lists(st.tuples(st.sampled_from(["add", "remove"]),
                          st.integers(0, 15)), max_size=80))
def test_consistency_under_random_ops(ops):
    t = MemberTable(buckets=4)
    shadow: dict[str, int] = {}
    for op, i in ops:
        a = addr(i)
        if op == "add":
            t.add(a, i, 0)
            shadow.setdefault(a, i)
        else:
            t.remove(a)
            shadow.pop(a, None)
        t.check_consistency()
    assert len(t) == len(shadow)
    assert {m.addr for m in t} == set(shadow)
    for a, seq in shadow.items():
        assert t.get(a).next_expected == seq
