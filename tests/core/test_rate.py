"""Unit and property tests for the rate controller."""

from hypothesis import given, strategies as st

from repro.core.rate import RateController, RatePhase
from repro.sim.timer import JIFFY_US


def mk(min_rate=100_000, max_rate=10_000_000):
    # rates in bytes/second
    return RateController(min_rate=min_rate, max_rate=max_rate, mss=1460)


def test_starts_at_minimum_in_slow_start():
    rc = mk()
    assert rc.rate_bps == 100_000
    assert rc.phase is RatePhase.SLOW_START


def test_slow_start_doubles_per_timescale():
    rc = mk()
    r0 = rc.rate
    rc.grow(JIFFY_US, 1_000)  # sub-jiffy RTT clamps to one jiffy
    assert abs(rc.rate - 2 * r0) / r0 < 0.01


def test_growth_capped_at_max():
    rc = mk(max_rate=500_000)
    for _ in range(100):
        rc.grow(JIFFY_US, JIFFY_US)
    assert rc.rate <= 500_000


def test_loss_halves_and_enters_linear():
    rc = mk()
    for _ in range(20):
        rc.grow(JIFFY_US, JIFFY_US)
    before = rc.rate
    assert rc.on_loss_signal(now_us=1_000_000, rtt_us=JIFFY_US)
    assert abs(rc.rate - before / 2) < 1
    assert rc.phase is RatePhase.CONG_AVOID
    assert rc.cuts == 1


def test_loss_damping_once_per_timescale():
    rc = mk()
    for _ in range(20):
        rc.grow(JIFFY_US, JIFFY_US)
    assert rc.on_loss_signal(1_000_000, JIFFY_US)
    assert not rc.on_loss_signal(1_000_000 + JIFFY_US // 2, JIFFY_US)
    assert rc.on_loss_signal(1_000_000 + 2 * JIFFY_US, JIFFY_US)
    assert rc.cuts == 2


def test_halving_never_underflows_min():
    rc = mk()
    for i in range(50):
        rc.on_loss_signal(i * 2 * JIFFY_US, JIFFY_US)
    assert rc.rate >= rc.min_rate


def test_urgent_stops_for_two_rtts():
    rc = mk()
    for _ in range(20):
        rc.grow(JIFFY_US, JIFFY_US)
    rc.on_urgent(now_us=500_000, rtt_us=40_000, stop_rtts=2)
    assert rc.is_stopped(500_000 + 79_999)
    assert not rc.is_stopped(500_000 + 80_000)
    assert rc.rate == rc.min_rate
    assert rc.phase is RatePhase.SLOW_START
    assert rc.urgent_stops == 1


def test_allowance_zero_while_stopped():
    rc = mk()
    rc.on_urgent(0, 50_000)
    assert rc.allowance(JIFFY_US, 50_000, now_us=10_000) == 0.0
    assert rc.allowance(JIFFY_US, 50_000, now_us=200_000) > 0.0


def test_allowance_proportional_to_elapsed():
    rc = mk()
    a1 = RateController(min_rate=100_000, max_rate=100_000, mss=1460)
    got1 = a1.allowance(10_000, JIFFY_US, 0)
    got2 = a1.allowance(20_000, JIFFY_US, 0)
    assert abs(got2 - 2 * got1) < 2.0


def test_suggestion_caps_rate():
    rc = mk()
    for _ in range(20):
        rc.grow(JIFFY_US, JIFFY_US)
    rc.on_suggestion(200_000)
    assert rc.rate <= 200_000
    rc.on_suggestion(50_000)  # below min: clamps to min
    assert rc.rate == rc.min_rate


def test_suggestion_zero_ignored():
    rc = mk()
    before = rc.rate
    rc.on_suggestion(0)
    assert rc.rate == before


@given(st.lists(st.sampled_from(["grow", "loss", "urgent"]), max_size=200))
def test_rate_always_within_bounds(ops):
    rc = mk()
    now = 0
    for op in ops:
        now += JIFFY_US
        if op == "grow":
            rc.grow(JIFFY_US, JIFFY_US)
        elif op == "loss":
            rc.on_loss_signal(now, JIFFY_US)
        else:
            rc.on_urgent(now, JIFFY_US)
        assert rc.min_rate <= rc.rate <= rc.max_rate
        assert rc.ssthresh >= rc.min_rate


@given(st.integers(0, 10 ** 7), st.integers(1_000, 10 ** 6))
def test_allowance_nonnegative(elapsed, rtt):
    rc = mk()
    assert rc.allowance(elapsed, rtt, now_us=elapsed) >= 0.0
