"""Cross-protocol determinism: identical seeds must yield identical
traces for every protocol (the property that makes A/B experiment
comparisons paired)."""

import pytest

from repro.harness.experiments import chaos_config
from repro.harness.runner import PROTOCOLS, run_transfer
from repro.workloads.groups import GROUP_B
from repro.workloads.scenarios import build_chaos, build_wan


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_protocol_trace_reproducible(protocol):
    def fingerprint():
        sc = build_wan([GROUP_B] * 2, 10e6, seed=123)
        res = run_transfer(sc, nbytes=100_000, protocol=protocol,
                           sndbuf=128 * 1024, max_sim_s=300)
        assert res.ok
        return (res.duration_us, res.sim_events,
                res.sender_stats.data_pkts_sent,
                res.sender_stats.retrans_pkts,
                res.receiver_stats.feedback_total)

    assert fingerprint() == fingerprint()


@pytest.mark.chaos
@pytest.mark.parametrize("protocol", ["hrmc", "ack", "polling"])
def test_chaos_run_reproducible(protocol):
    """Fault injection must preserve determinism: arming the same plan
    twice gives identical fault timing and identical protocol trace."""
    def fingerprint():
        sc = build_chaos(3, 10e6, seed=11, horizon_us=1_000_000,
                         allow_crash=(protocol == "hrmc"),
                         max_outage_us=300_000)
        cfg = chaos_config() if protocol == "hrmc" else None
        res = run_transfer(sc, nbytes=200_000, protocol=protocol,
                           sndbuf=128 * 1024, cfg=cfg, invariants=True,
                           max_sim_s=120)
        return (sc.fault_plan.describe(), res.fault_events,
                tuple(res.crashed_receivers), tuple(res.restarted_receivers),
                res.duration_us, res.sim_events, res.invariant_checks,
                res.sender_stats.data_pkts_sent,
                res.sender_stats.retrans_pkts)

    assert fingerprint() == fingerprint()
