"""Cross-protocol determinism: identical seeds must yield identical
traces for every protocol (the property that makes A/B experiment
comparisons paired)."""

import pytest

from repro.harness.runner import PROTOCOLS, run_transfer
from repro.workloads.groups import GROUP_B
from repro.workloads.scenarios import build_wan


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_protocol_trace_reproducible(protocol):
    def fingerprint():
        sc = build_wan([GROUP_B] * 2, 10e6, seed=123)
        res = run_transfer(sc, nbytes=100_000, protocol=protocol,
                           sndbuf=128 * 1024, max_sim_s=300)
        assert res.ok
        return (res.duration_us, res.sim_events,
                res.sender_stats.data_pkts_sent,
                res.sender_stats.retrans_pkts,
                res.receiver_stats.feedback_total)

    assert fingerprint() == fingerprint()
