"""Property-based end-to-end fuzzing: random network conditions, random
buffer sizes, random transfer lengths -- the reliability invariant must
hold in every case.

Deliberately small transfers keep each example fast; hypothesis
explores the parameter space (including its corners: tiny buffers,
nasty loss, odd transfer sizes).
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import HRMCConfig
from repro.harness.runner import run_transfer
from repro.net.topology import GroupSpec
from repro.workloads.scenarios import build_lan, build_wan


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    nbytes=st.integers(1, 120_000),
    sndbuf_k=st.sampled_from([16, 32, 64, 128]),
    loss_pct=st.floats(0.0, 0.05),
    delay_ms=st.integers(1, 120),
    n_receivers=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_hrmc_reliable_under_random_conditions(nbytes, sndbuf_k, loss_pct,
                                               delay_ms, n_receivers,
                                               seed):
    group = GroupSpec("F", delay_us=delay_ms * 1000, loss_rate=loss_pct)
    sc = build_wan([group] * n_receivers, 10e6, seed=seed)
    res = run_transfer(sc, nbytes=nbytes, sndbuf=sndbuf_k * 1024,
                       verify="bytes", max_sim_s=900)
    assert res.ok, (nbytes, sndbuf_k, loss_pct, delay_ms, n_receivers,
                    seed, res.lost_bytes,
                    [r.bytes_done for r in res.per_receiver])
    assert res.reliability_violations == 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    nbytes=st.integers(1, 200_000),
    mss=st.sampled_from([100, 536, 1000, 1460]),
    chunk=st.sampled_from([1000, 4096, 64 * 1024]),
    seed=st.integers(0, 1000),
)
def test_hrmc_any_segmentation(nbytes, mss, chunk, seed):
    """Odd MSS and application chunk sizes must not break reassembly."""
    sc = build_lan(2, 10e6, seed=seed)
    cfg = replace(HRMCConfig(), mss=mss)
    res = run_transfer(sc, nbytes=nbytes, cfg=cfg, sndbuf=64 * 1024,
                       chunk=chunk, verify="bytes", max_sim_s=300)
    assert res.ok, (nbytes, mss, chunk, seed)
