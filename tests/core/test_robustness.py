"""Failure-injection tests: corruption, crashed senders, locked sockets."""

from dataclasses import replace

from repro.core.config import HRMCConfig
from repro.core.protocol import open_hrmc_socket
from repro.harness.runner import run_transfer
from repro.kernel.payload import PatternPayload
from repro.net.topology import GroupSpec
from repro.sim.process import Process
from repro.workloads.scenarios import build_wan, build_lan


def test_corruption_detected_and_recovered():
    """Bit errors on the wire are caught by the checksum and repaired
    through the normal NAK path; the delivered stream stays exact."""
    sc = build_wan([GroupSpec("X", 10_000, 0.0)] * 3, 10e6, seed=50)
    # inject corruption on the group's downstream pipe
    wan = sc.network
    wan._group_down["X"].corrupt_rate = 0.01
    res = run_transfer(sc, nbytes=300_000, sndbuf=128 * 1024,
                       verify="bytes", max_sim_s=300)
    assert res.ok
    assert wan._group_down["X"].corruptions > 0
    drops = sum(h.checksum_drops for h in sc.receivers)
    assert drops > 0
    assert res.sender_stats.naks_rcvd > 0   # recovery actually ran


def test_sender_crash_unblocks_receivers():
    sc = build_lan(2, 10e6, seed=51)
    cfg = replace(HRMCConfig(expected_receivers=2).with_rate_cap(10e6),
                  session_timeout_us=3_000_000)
    ssock = open_hrmc_socket(sc.sender, cfg, sndbuf=128 * 1024)
    rsocks = [open_hrmc_socket(h, cfg, rcvbuf=128 * 1024)
              for h in sc.receivers]
    outcome = {}

    def rapp(i, sock):
        sock.join(sc.group_addr, sc.data_port)
        got = 0
        while True:
            chunks = yield from sock.recv_payloads(1 << 20)
            if not chunks:
                break
            got += sum(c.length for c in chunks)
        outcome[i] = (got, sock.transport.receiver.error)

    def sapp(sock):
        sock.bind(sc.sender_port)
        sock.connect(sc.group_addr, sc.data_port)
        yield from sock.send(PatternPayload(0, 400_000))
        sock.abort()   # crash before FIN: no close handshake

    for i, rs in enumerate(rsocks):
        Process(sc.sim, rapp(i, rs))
    Process(sc.sim, sapp(ssock))
    sc.sim.run(until=60_000_000)
    assert len(outcome) == 2, "receivers must not hang forever"
    for got, error in outcome.values():
        assert error is not None and "timeout" in error


def test_backlog_queue_preserves_packets_during_lock():
    """Packets arriving while the application copy holds the socket are
    backlogged, not lost, and the stream stays exact."""
    sc = build_lan(1, 100e6, seed=52)
    # huge copy cost -> long locked windows while data keeps arriving
    from repro.kernel.host import CostModel
    slow_copy = CostModel(copy_per_byte_us=0.2)
    sc.receivers[0].cost = slow_copy
    res = run_transfer(sc, nbytes=500_000, sndbuf=256 * 1024,
                       verify="bytes", max_sim_s=120)
    assert res.ok


def test_liveness_timer_not_tripped_by_idle_but_alive_sender():
    """Keepalives keep the session alive through long idle stretches."""
    sc = build_lan(1, 10e6, seed=53)
    cfg = replace(HRMCConfig(expected_receivers=1).with_rate_cap(10e6),
                  session_timeout_us=5_000_000)
    ssock = open_hrmc_socket(sc.sender, cfg, sndbuf=128 * 1024)
    rsock = open_hrmc_socket(sc.receivers[0], cfg, rcvbuf=128 * 1024)
    outcome = {}

    def rapp(sock):
        sock.join(sc.group_addr, sc.data_port)
        got = 0
        while True:
            chunks = yield from sock.recv_payloads(1 << 20)
            if not chunks:
                break
            got += sum(c.length for c in chunks)
        outcome["got"] = got
        outcome["error"] = sock.transport.receiver.error
        yield from sock.close()

    def sapp(sock):
        from repro.sim.process import Delay
        sock.bind(sc.sender_port)
        sock.connect(sc.group_addr, sc.data_port)
        yield from sock.send(PatternPayload(0, 50_000))
        yield Delay(10_000_000)     # 10 s idle: keepalives must cover it
        yield from sock.send(PatternPayload(50_000, 50_000))
        yield from sock.close()

    Process(sc.sim, rapp(rsock))
    Process(sc.sim, sapp(ssock))
    sc.sim.run(until=120_000_000)
    assert outcome.get("got") == 100_000
    assert outcome.get("error") is None


def test_lost_join_on_tiny_transfer_does_not_deadlock_close():
    """Regression (found by the chaos fuzzer): a 1-byte transfer ends
    before the join-retry timer fires, so a receiver whose JOIN was
    lost says LEAVE without the sender ever counting its join.  The
    LEAVE must satisfy the join quorum, or the sender's close blocks
    until the simulation horizon."""
    sc = build_wan([GroupSpec("F", 1_000, 0.03125)] * 2, 10e6, seed=123)
    res = run_transfer(sc, nbytes=1, sndbuf=16 * 1024, verify="bytes",
                       max_sim_s=900)
    # ok requires the sender's close handshake to have completed too
    assert res.ok, [r.bytes_done for r in res.per_receiver]
    assert res.sender_stats.keepalives_sent < 5  # no multi-second stall
