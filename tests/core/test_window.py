"""Unit and property tests for receive-window regions (paper Fig. 2)."""

from hypothesis import given, strategies as st

from repro.core.seq import SEQ_MASK, seq_add
from repro.core.window import Region, classify_fill, window_empty, window_fill


def test_fill_and_empty_complement():
    assert window_fill(100, 150) == 50
    assert window_empty(100, 150, 200) == 150
    assert window_fill(100, 100) == 0
    assert window_empty(100, 100, 200) == 200


def test_fill_across_wrap():
    lo = SEQ_MASK - 10
    assert window_fill(lo, seq_add(lo, 30)) == 30


def test_region_thresholds():
    size = 1000
    assert classify_fill(0, size, 0.5, 0.9) is Region.SAFE
    assert classify_fill(499, size, 0.5, 0.9) is Region.SAFE
    assert classify_fill(500, size, 0.5, 0.9) is Region.WARNING
    assert classify_fill(899, size, 0.5, 0.9) is Region.WARNING
    assert classify_fill(900, size, 0.5, 0.9) is Region.CRITICAL
    assert classify_fill(1000, size, 0.5, 0.9) is Region.CRITICAL


def test_zero_window_is_critical():
    assert classify_fill(0, 0, 0.5, 0.9) is Region.CRITICAL


_SEVERITY = {Region.SAFE: 0, Region.WARNING: 1, Region.CRITICAL: 2}


@given(st.integers(1, 10**6), st.data())
def test_classification_monotone_in_fill(size, data):
    f1 = data.draw(st.integers(0, size))
    f2 = data.draw(st.integers(f1, size))
    r1 = classify_fill(f1, size, 0.5, 0.9)
    r2 = classify_fill(f2, size, 0.5, 0.9)
    assert _SEVERITY[r2] >= _SEVERITY[r1]


@given(st.integers(0, 10**6), st.integers(1, 10**6))
def test_classification_total(fill, size):
    region = classify_fill(fill, size, 0.5, 0.9)
    assert region in (Region.SAFE, Region.WARNING, Region.CRITICAL)


@given(st.integers(0, SEQ_MASK), st.integers(0, 2**20),
       st.integers(1, 2**20))
def test_fill_plus_empty_equals_size(base, fill, size):
    high = seq_add(base, fill)
    f = window_fill(base, high)
    e = window_empty(base, high, size)
    if fill <= size:
        assert f + e == size
    else:
        assert e == 0
