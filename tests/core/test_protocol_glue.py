"""Tests for the transport glue and socket facade semantics."""

import pytest

from repro.core.config import HRMCConfig
from repro.core.protocol import HRMCTransport, open_hrmc_socket
from repro.kernel.payload import PatternPayload
from repro.core.rmc import open_rmc_socket, rmc_config
from repro.sim.process import Process
from repro.workloads.scenarios import build_lan


def test_bind_before_connect_required():
    sc = build_lan(1, 10e6)
    t = HRMCTransport(sc.sender)
    with pytest.raises(RuntimeError):
        t.connect("224.1.0.1", 6000)


def test_double_bind_rejected():
    sc = build_lan(1, 10e6)
    t = HRMCTransport(sc.sender)
    t.bind(5000)
    with pytest.raises(RuntimeError):
        t.bind(5001)


def test_role_exclusivity():
    sc = build_lan(2, 10e6)
    t = HRMCTransport(sc.receivers[0])
    t.join("224.1.0.1", 6000)
    with pytest.raises(RuntimeError):
        t.connect("224.1.0.1", 6000)
    t2 = HRMCTransport(sc.sender)
    t2.bind(5000)
    t2.connect("224.1.0.1", 6000)
    with pytest.raises(RuntimeError):
        t2.join("224.1.0.1", 6000)


def test_join_registers_with_network():
    sc = build_lan(2, 10e6)
    t = HRMCTransport(sc.receivers[0])
    t.join("224.1.0.1", 6000)
    assert sc.receivers[0].nic.in_group("224.1.0.1")
    t.abort()
    assert not sc.receivers[0].nic.in_group("224.1.0.1")


def test_send_on_receiving_socket_rejected():
    sc = build_lan(2, 10e6)
    t = HRMCTransport(sc.receivers[0])
    t.join("224.1.0.1", 6000)
    with pytest.raises(RuntimeError):
        t.sendmsg_some(PatternPayload(0, 10))


def test_recv_on_sending_socket_rejected():
    sc = build_lan(1, 10e6)
    t = HRMCTransport(sc.sender)
    t.bind(5000)
    t.connect("224.1.0.1", 6000)
    with pytest.raises(RuntimeError):
        t.recvmsg(100)


def test_rmc_config_disables_hybrid_features():
    cfg = rmc_config()
    assert not cfg.updates_enabled
    assert not cfg.probes_enabled
    assert not cfg.reliable_release
    assert not cfg.dynamic_update_timer


def test_rmc_socket_runs_end_to_end():
    sc = build_lan(1, 10e6, seed=30)
    ssock = open_rmc_socket(sc.sender, sndbuf=128 * 1024)
    rsock = open_rmc_socket(sc.receivers[0], rcvbuf=128 * 1024)
    got = {}

    def rapp():
        rsock.join(sc.group_addr, sc.data_port)
        n = 0
        while True:
            chunks = yield from rsock.recv_payloads(1 << 20)
            if not chunks:
                break
            n += sum(c.length for c in chunks)
        got["n"] = n
        yield from rsock.close()

    def sapp():
        ssock.bind(sc.sender_port)
        ssock.connect(sc.group_addr, sc.data_port)
        yield from ssock.send(PatternPayload(0, 100_000))
        yield from ssock.close()

    Process(sc.sim, rapp())
    Process(sc.sim, sapp())
    sc.sim.run(until=60_000_000)
    assert got.get("n") == 100_000
    # no hybrid machinery was used
    assert ssock.transport.stats.probes_sent == 0
    assert ssock.transport.stats.updates_rcvd == 0


def test_socket_send_accepts_raw_bytes():
    sc = build_lan(1, 10e6, seed=31)
    cfg = HRMCConfig(expected_receivers=1).with_rate_cap(10e6)
    ssock = open_hrmc_socket(sc.sender, cfg)
    rsock = open_hrmc_socket(sc.receivers[0], cfg)
    got = {}

    def rapp():
        rsock.join(sc.group_addr, sc.data_port)
        data = yield from rsock.recv(1 << 20)
        got["data"] = data
        yield from rsock.close()

    def sapp():
        ssock.bind(sc.sender_port)
        ssock.connect(sc.group_addr, sc.data_port)
        yield from ssock.send(b"raw bytes over multicast")
        yield from ssock.close()

    Process(sc.sim, rapp())
    Process(sc.sim, sapp())
    sc.sim.run(until=60_000_000)
    assert got.get("data") == b"raw bytes over multicast"


def test_recv_returns_empty_at_eof():
    sc = build_lan(1, 10e6, seed=32)
    cfg = HRMCConfig(expected_receivers=1).with_rate_cap(10e6)
    ssock = open_hrmc_socket(sc.sender, cfg)
    rsock = open_hrmc_socket(sc.receivers[0], cfg)
    reads = []

    def rapp():
        rsock.join(sc.group_addr, sc.data_port)
        while True:
            data = yield from rsock.recv(1 << 20)
            reads.append(len(data))
            if not data:
                break
        yield from rsock.close()

    def sapp():
        ssock.bind(sc.sender_port)
        ssock.connect(sc.group_addr, sc.data_port)
        yield from ssock.send(b"x" * 5000)
        yield from ssock.close()

    Process(sc.sim, rapp())
    Process(sc.sim, sapp())
    sc.sim.run(until=60_000_000)
    assert sum(reads) == 5000
    assert reads[-1] == 0


def test_socket_blocks_until_buffer_space():
    """send() of more than sndbuf must block and complete gradually."""
    sc = build_lan(1, 10e6, seed=33)
    cfg = HRMCConfig(expected_receivers=1).with_rate_cap(10e6)
    ssock = open_hrmc_socket(sc.sender, cfg, sndbuf=32 * 1024)
    rsock = open_hrmc_socket(sc.receivers[0], cfg, rcvbuf=32 * 1024)
    marks = {}

    def rapp():
        rsock.join(sc.group_addr, sc.data_port)
        n = 0
        while True:
            chunks = yield from rsock.recv_payloads(1 << 20)
            if not chunks:
                break
            n += sum(c.length for c in chunks)
        marks["rcv"] = n
        yield from rsock.close()

    def sapp():
        ssock.bind(sc.sender_port)
        ssock.connect(sc.group_addr, sc.data_port)
        t0 = sc.sim.now
        yield from ssock.send(PatternPayload(0, 500_000))
        marks["send_blocked_us"] = sc.sim.now - t0
        yield from ssock.close()

    Process(sc.sim, rapp())
    Process(sc.sim, sapp())
    sc.sim.run(until=60_000_000)
    assert marks.get("rcv") == 500_000
    assert marks["send_blocked_us"] > 100_000  # really blocked
