"""Unit tests for Karn/Jacobson RTT estimation."""

from hypothesis import given, strategies as st

from repro.core.rtt import RttEstimator, WorstRtt


def test_initial_estimate():
    est = RttEstimator(50_000)
    assert est.rtt_us == 50_000
    assert est.samples == 0


def test_first_sample_replaces_initial():
    est = RttEstimator(50_000)
    est.sample(10_000)
    assert est.rtt_us == 10_000
    assert est.rttvar == 5_000


def test_smoothing_converges():
    est = RttEstimator(50_000)
    for _ in range(100):
        est.sample(8_000)
    assert abs(est.rtt_us - 8_000) < 200
    assert est.rto_us >= est.rtt_us


def test_min_floor():
    est = RttEstimator(50_000, min_us=2_000)
    for _ in range(50):
        est.sample(1)
    assert est.rtt_us >= 2_000
    assert est.rto_us >= 2_000


def test_variance_raises_rto():
    steady = RttEstimator(10_000)
    jittery = RttEstimator(10_000)
    for i in range(50):
        steady.sample(10_000)
        jittery.sample(5_000 if i % 2 else 15_000)
    assert jittery.rto_us > steady.rto_us


@given(st.lists(st.integers(1_000, 1_000_000), min_size=1, max_size=100))
def test_estimate_within_sample_range(samples):
    est = RttEstimator(50_000)
    for s in samples:
        est.sample(s)
    assert min(samples) - 1 <= est.rtt_us <= max(max(samples), 50_000) + 1


def test_worst_rtt_tracks_max():
    worst = WorstRtt(50_000)
    worst.sample("a", 5_000)
    worst.sample("b", 30_000)
    worst.sample("c", 12_000)
    assert abs(worst.rtt_us - 30_000) < 100


def test_worst_rtt_initial_without_samples():
    worst = WorstRtt(70_000)
    assert worst.rtt_us == 70_000
    assert worst.rto_us == 140_000
    assert not worst.have_samples


def test_worst_rtt_forget_member():
    worst = WorstRtt(50_000)
    worst.sample("a", 5_000)
    worst.sample("b", 90_000)
    worst.forget("b")
    assert abs(worst.rtt_us - 5_000) < 100


def test_worst_rtt_forget_unknown_noop():
    worst = WorstRtt(50_000)
    worst.forget("nobody")
    assert worst.rtt_us == 50_000


def test_worst_rtt_per_member_smoothing():
    worst = WorstRtt(50_000)
    for _ in range(50):
        worst.sample("a", 4_000)
    # one outlier from another member dominates as the worst
    worst.sample("b", 100_000)
    assert worst.rtt_us >= 90_000
