"""Unit and property tests for the dynamic update-timer policy."""

import pytest
from hypothesis import given, strategies as st

from repro.core.update import UpdatePolicy
from repro.sim.timer import JIFFY_US


def mk(**kw):
    defaults = dict(initial_jiffies=50, min_jiffies=2, max_jiffies=200)
    defaults.update(kw)
    return UpdatePolicy(**defaults)


def test_initial_period():
    p = mk()
    assert p.period_jiffies == 50
    assert p.period_us == 50 * JIFFY_US


def test_probe_shrinks_period_by_one_jiffy():
    p = mk()
    p.note_probe()
    p.end_period()
    assert p.period_jiffies == 49
    assert p.adjust_downs == 1


def test_quiet_period_grows_by_one_jiffy():
    p = mk()
    p.end_period()
    assert p.period_jiffies == 51
    assert p.adjust_ups == 1


def test_probe_flag_resets_each_period():
    p = mk()
    p.note_probe()
    p.end_period()   # probe seen -> down to 49
    p.end_period()   # flag was reset, no probe now -> back up to 50
    assert p.period_jiffies == 50
    assert p.adjust_downs == 1 and p.adjust_ups == 1


def test_bounded_below():
    p = mk(initial_jiffies=3)
    for _ in range(10):
        p.note_probe()
        p.end_period()
    assert p.period_jiffies == 2


def test_bounded_above():
    p = mk(initial_jiffies=198)
    for _ in range(10):
        p.end_period()
    assert p.period_jiffies == 200


def test_static_mode_never_adjusts():
    p = mk(dynamic=False)
    p.note_probe()
    p.end_period()
    p.end_period()
    assert p.period_jiffies == 50
    assert p.adjust_ups == p.adjust_downs == 0


def test_bad_bounds_rejected():
    with pytest.raises(ValueError):
        UpdatePolicy(initial_jiffies=1, min_jiffies=2, max_jiffies=200)
    with pytest.raises(ValueError):
        UpdatePolicy(initial_jiffies=300, min_jiffies=2, max_jiffies=200)


@given(st.lists(st.booleans(), max_size=500))
def test_period_always_within_bounds(probe_flags):
    p = mk()
    for probed in probe_flags:
        if probed:
            p.note_probe()
        period_us = p.end_period()
        assert p.min_jiffies <= p.period_jiffies <= p.max_jiffies
        assert period_us == p.period_jiffies * JIFFY_US


@given(st.integers(1, 100))
def test_moves_toward_fewer_probes(n):
    """Sustained probing drives the period to its minimum (more
    updates); sustained quiet drives it to its maximum."""
    p = mk()
    for _ in range(200):
        p.note_probe()
        p.end_period()
    assert p.period_jiffies == p.min_jiffies
    for _ in range(400):
        p.end_period()
    assert p.period_jiffies == p.max_jiffies
