"""Unit tests for the H-RMC receiver state machine."""

from dataclasses import replace

from repro.core.config import HRMCConfig
from repro.core.types import FIN, URG, PacketType
from repro.kernel.payload import BytesPayload, PatternPayload
from repro.kernel.skbuff import SKBuff
from repro.sim.timer import JIFFY_US

from tests.core.conftest import make_receiver

SND = "10.0.0.1"


def data(seq, payload: bytes, *, flags=0, rate_adv=100_000, tries=1):
    return SKBuff(sport=5000, dport=6000, seq=seq, ptype=PacketType.DATA,
                  length=len(payload), rate_adv=rate_adv, flags=flags,
                  tries=tries, payload=BytesPayload(payload))


def fin(seq):
    return SKBuff(sport=5000, dport=6000, seq=seq, ptype=PacketType.DATA,
                  length=1, flags=FIN, tries=1)


def drain(r, max_bytes=1 << 20) -> bytes:
    return b"".join(p.tobytes() for p in r.recvmsg(max_bytes))


def test_in_order_delivery(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"hello "), SND)
    r.segment_received(data(7, b"world"), SND)
    assert r.rcv_nxt == 12
    assert drain(r) == b"hello world"
    assert r.rcv_wnd == 12


def test_join_sent_on_first_data(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"x"), SND)
    joins = fake_host.sent_of_type(PacketType.JOIN)
    assert len(joins) == 1
    skb, dst = joins[0]
    assert dst == SND
    assert skb.rate_adv == 1        # echoes the triggering seq
    assert r.sender_addr == SND
    assert r.join_state == "sent"


def test_join_response_completes_handshake_with_rtt(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"x"), SND)
    sim.run(until=4_000)
    r.segment_received(
        SKBuff(sport=5000, dport=6000, seq=2, tries=1,
               ptype=PacketType.JOIN_RESPONSE), SND)
    assert r.join_state == "joined"
    assert r.rtt.samples == 1
    assert abs(r.rtt.rtt_us - 4_000) < 100


def test_join_retries_until_response(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"x"), SND)
    sim.run(until=3 * r.cfg.join_retry_us + 1000)
    assert len(fake_host.sent_of_type(PacketType.JOIN)) >= 3


def test_gap_generates_immediate_nak(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"a" * 100), SND)
    r.segment_received(data(301, b"c" * 100), SND)  # gap [101, 301)
    naks = fake_host.sent_of_type(PacketType.NAK)
    assert len(naks) == 1
    skb, dst = naks[0]
    assert dst == SND
    assert skb.seq == 101
    assert skb.length == 200
    assert skb.rate_adv == 101          # rcv_nxt rides in rate_adv
    assert r.stats.out_of_order_pkts == 1


def test_gap_fill_delivers_in_order(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"aa"), SND)
    r.segment_received(data(5, b"cc"), SND)
    assert drain(r) == b"aa"
    r.segment_received(data(3, b"bb"), SND)
    assert r.rcv_nxt == 7
    assert drain(r) == b"bbcc"


def test_nak_manager_resends_under_suppression(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"a" * 10), SND)
    r.segment_received(data(111, b"c" * 10), SND)
    sim.run(until=2_000_000)
    naks = fake_host.sent_of_type(PacketType.NAK)
    assert 2 <= len(naks) <= 12     # resent, but suppressed/backed off


def test_duplicate_data_counted_not_delivered(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"abc"), SND)
    r.segment_received(data(1, b"abc"), SND)
    assert r.stats.dup_pkts_rcvd == 1
    assert drain(r) == b"abc"


def test_partial_overlap_trimmed(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"abcd"), SND)
    r.segment_received(data(3, b"cdEF"), SND)  # overlaps [3,5)
    assert drain(r) == b"abcdEF"


def test_fin_sets_eof_after_consumption(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"last"), SND)
    r.segment_received(fin(5), SND)
    assert r.eof_seq == 5
    assert not r.at_eof()            # data still unread
    assert drain(r) == b"last"
    assert r.at_eof()


def test_fin_out_of_order_recovered(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"ab"), SND)
    r.segment_received(fin(5), SND)          # gap [3,5)
    assert r.eof_seq is None                 # FIN parked out of order
    r.segment_received(data(3, b"cd"), SND)
    assert r.eof_seq == 5
    assert drain(r) == b"abcd"
    assert r.at_eof()


def test_probe_answered_with_update_when_complete(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"abc"), SND)
    fake_host.clear()
    probe = SKBuff(sport=5000, dport=6000, seq=4, tries=1,
                   ptype=PacketType.PROBE)
    r.segment_received(probe, SND)
    ups = fake_host.sent_of_type(PacketType.UPDATE)
    assert len(ups) == 1
    assert ups[0][0].seq == 4
    assert r.update.probe_seen is True


def test_probe_answered_with_nak_when_lacking(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"abc"), SND)
    fake_host.clear()
    probe = SKBuff(sport=5000, dport=6000, seq=500, tries=1,
                   ptype=PacketType.PROBE)
    r.segment_received(probe, SND)
    naks = fake_host.sent_of_type(PacketType.NAK)
    assert len(naks) == 1
    assert naks[0][0].seq == 4
    assert fake_host.sent_of_type(PacketType.UPDATE) == []


def test_keepalive_tail_loss_detection(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"abc"), SND)
    fake_host.clear()
    ka = SKBuff(sport=5000, dport=6000, seq=1000, tries=1,
                ptype=PacketType.KEEPALIVE)
    r.segment_received(ka, SND)
    naks = fake_host.sent_of_type(PacketType.NAK)
    assert len(naks) == 1
    assert naks[0][0].seq == 4
    assert r.stats.keepalives_rcvd == 1


def test_update_generator_periodic(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"abc"), SND)
    # complete the join handshake so join retries stop counting as
    # reverse traffic (which would suppress updates)
    r.segment_received(SKBuff(sport=5000, dport=6000, seq=4, tries=1,
                              ptype=PacketType.JOIN_RESPONSE), SND)
    fake_host.clear()
    sim.run(until=4 * r.cfg.update_initial_jiffies * JIFFY_US)
    ups = fake_host.sent_of_type(PacketType.UPDATE)
    assert 2 <= len(ups) <= 5
    assert all(skb.seq == r.rcv_nxt for skb, _ in ups)


def test_update_suppressed_by_other_feedback(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"a"), SND)   # JOIN counts as feedback
    fake_host.clear()
    # keep generating feedback every period: no UPDATEs expected
    period = r.cfg.update_initial_jiffies * JIFFY_US

    def spam_nak():
        r._feedback_since_update = True

    for k in range(1, 6):
        sim.call_at(k * period - 1000, spam_nak)
    sim.run(until=5 * period)
    assert fake_host.sent_of_type(PacketType.UPDATE) == []


def test_dynamic_update_period_shrinks_on_probes(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"abc"), SND)
    start = r.update.period_jiffies
    probe = SKBuff(sport=5000, dport=6000, seq=1, tries=1,
                   ptype=PacketType.PROBE)
    for k in range(1, 6):
        sim.call_at(k * 400_000, r.segment_received, probe, SND)
    sim.run(until=3_000_000)
    assert r.update.period_jiffies < start


def test_out_of_window_data_dropped_with_urgent(sim, fake_host):
    r = make_receiver(sim, fake_host, rcvbuf=4096)
    r.segment_received(data(1, b"a" * 100), SND)
    fake_host.clear()
    r.segment_received(data(50_000, b"b" * 100), SND)  # far past window
    assert r.stats.out_of_window_drops == 1
    urg = [skb for skb, _ in fake_host.sent_of_type(PacketType.CONTROL)
           if skb.flags & URG]
    assert len(urg) == 1


def test_warning_rate_request_math(sim, fake_host):
    cfg = replace(HRMCConfig(), warn_fill=0.5, crit_fill=0.95)
    r = make_receiver(sim, fake_host, cfg=cfg, rcvbuf=2000)
    # fill past the warning threshold without reading
    r.segment_received(data(1, b"x" * 800, rate_adv=10_000_000), SND)
    fake_host.clear()
    r.segment_received(data(801, b"y" * 400, rate_adv=10_000_000), SND)
    ctrls = fake_host.sent_of_type(PacketType.CONTROL)
    assert ctrls, "warning-region arrival at a huge advertised rate " \
                  "must request a lower rate"
    skb = ctrls[0][0]
    assert not skb.flags & URG
    assert 0 <= skb.rate_adv < 10_000_000  # suggests something lower


def test_safe_region_no_rate_request(sim, fake_host):
    r = make_receiver(sim, fake_host, rcvbuf=1 << 20)
    r.segment_received(data(1, b"x" * 1000, rate_adv=1_000), SND)
    assert fake_host.sent_of_type(PacketType.CONTROL) == []


def test_nak_err_skips_hole_and_records_loss(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"ab"), SND)
    r.segment_received(data(103, b"cd"), SND)  # gap [3,103)
    err = SKBuff(sport=5000, dport=6000, seq=103, tries=1,
                 ptype=PacketType.NAK_ERR)
    r.segment_received(err, SND)
    assert r.lost_bytes == 100
    assert r.error is not None
    assert r.rcv_nxt == 105          # resumed past the hole
    assert len(r.naks) == 0


def test_recvmsg_partial_read_splits_head(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"abcdefgh"), SND)
    first = b"".join(p.tobytes() for p in r.recvmsg(3))
    rest = b"".join(p.tobytes() for p in r.recvmsg(100))
    assert first == b"abc"
    assert rest == b"defgh"
    assert r.rcv_wnd == 9


def test_fec_parity_repairs_single_gap(sim, fake_host):
    cfg = replace(HRMCConfig(), fec_enabled=True, fec_block=4)
    r = make_receiver(sim, fake_host, cfg=cfg, rcvbuf=1 << 20)
    mss = cfg.mss
    # stream is the canonical pattern (iss=1 => offset = seq-1)
    def pat(seq, n):
        s = SKBuff(sport=5000, dport=6000, seq=seq, ptype=PacketType.DATA,
                   length=n, tries=1,
                   payload=PatternPayload(seq - 1, n))
        return s
    r.segment_received(pat(1, mss), SND)
    # drop the 2nd packet; deliver 3rd & 4th
    r.segment_received(pat(1 + 2 * mss, mss), SND)
    r.segment_received(pat(1 + 3 * mss, mss), SND)
    parity = SKBuff(sport=5000, dport=6000, seq=1, ptype=PacketType.DATA,
                    length=0, flags=0x8000, rate_adv=4 * mss, tries=1)
    r.segment_received(parity, SND)
    assert r.stats.fec_repairs == 1
    assert r.rcv_nxt == 1 + 4 * mss
    got = drain(r)
    assert got == PatternPayload(0, 4 * mss).tobytes()


def test_leave_sent_on_close(sim, fake_host):
    r = make_receiver(sim, fake_host)
    r.segment_received(data(1, b"x"), SND)
    r.send_leave()
    leaves = fake_host.sent_of_type(PacketType.LEAVE)
    assert len(leaves) == 1
    assert leaves[0][1] == SND
