"""Unit and property tests for the receiver NAK list."""

from hypothesis import given, settings, strategies as st

from repro.core.nak import NakList, NakRange


def spans(nl: NakList) -> list[tuple[int, int]]:
    return [(r.start, r.end) for r in nl]


def test_add_gap_creates_range():
    nl = NakList()
    new = nl.add_gap(100, 200, now_us=0)
    assert [(r.start, r.end) for r in new] == [(100, 200)]
    assert spans(nl) == [(100, 200)]
    assert nl.total_missing() == 100


def test_add_overlapping_gap_only_new_portions():
    nl = NakList()
    nl.add_gap(100, 200, 0)
    new = nl.add_gap(150, 300, 1)
    assert [(r.start, r.end) for r in new] == [(200, 300)]
    assert nl.total_missing() == 200


def test_add_gap_subsumed_returns_nothing():
    nl = NakList()
    nl.add_gap(100, 300, 0)
    assert nl.add_gap(150, 250, 1) == []
    assert nl.total_missing() == 200


def test_add_gap_bridges_two_ranges():
    nl = NakList()
    nl.add_gap(100, 150, 0)
    nl.add_gap(300, 350, 0)
    new = nl.add_gap(100, 350, 1)
    assert [(r.start, r.end) for r in new] == [(150, 300)]
    assert nl.total_missing() == 250


def test_empty_gap_ignored():
    nl = NakList()
    assert nl.add_gap(100, 100, 0) == []
    assert nl.add_gap(200, 100, 0) == []
    assert not nl


def test_fill_removes_covered():
    nl = NakList()
    nl.add_gap(100, 200, 0)
    nl.fill(100, 200)
    assert not nl


def test_fill_partial_splits():
    nl = NakList()
    nl.add_gap(100, 400, 0)
    nl.fill(200, 300)
    assert spans(nl) == [(100, 200), (300, 400)]


def test_fill_preserves_send_bookkeeping():
    nl = NakList()
    nl.add_gap(100, 400, 0)
    rng = nl.first()
    nl.mark_sent(rng, 50)
    nl.fill(100, 200)
    remaining = nl.first()
    assert remaining.last_sent_us == 50
    assert remaining.tries == 1


def test_fill_below():
    nl = NakList()
    nl.add_gap(100, 200, 0)
    nl.add_gap(300, 400, 0)
    nl.fill_below(350)
    assert spans(nl) == [(350, 400)]


def test_due_respects_suppression():
    nl = NakList()
    nl.add_gap(100, 200, 0)
    rng = nl.first()
    assert nl.due(now_us=0, suppress_interval_us=1000) == [rng]
    nl.mark_sent(rng, 0)
    assert nl.due(500, 1000) == []
    # one try => backoff factor 2: due after 2 * 1000
    assert nl.due(1500, 1000) == []
    assert nl.due(2000, 1000) == [rng]


def test_due_backoff_capped():
    nl = NakList()
    nl.add_gap(100, 200, 0)
    rng = nl.first()
    for _ in range(20):
        nl.mark_sent(rng, 0)
    # tries are capped at 8: interval = min(1000 * 2**8, MAX) = 256000
    assert nl.due(255_999, 1000) == []
    assert nl.due(256_000, 1000) == [rng]
    # with a large base interval the absolute cap binds
    assert nl.due(NakList.MAX_INTERVAL_US - 1, 100_000) == []
    assert nl.due(NakList.MAX_INTERVAL_US, 100_000) == [rng]


def test_mark_sent_counts_tries():
    nl = NakList()
    nl.add_gap(0, 10, 0)
    rng = nl.first()
    nl.mark_sent(rng, 5)
    nl.mark_sent(rng, 6)
    assert rng.tries == 2
    assert rng.last_sent_us == 6


@settings(max_examples=80)
@given(st.lists(st.tuples(st.sampled_from(["gap", "fill"]),
                          st.integers(0, 400), st.integers(1, 120)),
                max_size=60))
def test_naklist_matches_set_model(ops):
    """The NAK list must track exactly the missing byte set."""
    nl = NakList()
    model: set[int] = set()
    for op, start, length in ops:
        end = start + length
        if op == "gap":
            nl.add_gap(start, end, 0)
            model |= set(range(start, end))
        else:
            nl.fill(start, end)
            model -= set(range(start, end))
        listed = set()
        for r in nl:
            listed |= set(range(r.start, r.end))
        assert listed == model
        # ranges disjoint and ordered
        ends = [(r.start, r.end) for r in nl]
        for (s1, e1), (s2, e2) in zip(ends, ends[1:]):
            assert e1 <= s2


def test_range_length_wraps():
    r = NakRange(0xFFFFFFF0, 16, 0)
    assert r.length == 32
