"""Shared fixtures: a capture-everything fake host for driving the
sender and receiver state machines directly."""

from __future__ import annotations

import pytest

from repro.core.config import HRMCConfig
from repro.core.receiver import HRMCReceiver
from repro.core.sender import HRMCSender
from repro.kernel.host import CostModel, HostClock
from repro.kernel.sock import Sock
from repro.sim.engine import Simulator
from repro.stats.metrics import Counters


class FakeHost:
    """Quacks like kernel.Host but just records outgoing segments."""

    def __init__(self, sim, addr="10.0.0.1", tx_space=1000):
        self.sim = sim
        self.addr = addr
        self.clock = HostClock(sim)
        self.cost = CostModel()
        self.sent: list[tuple] = []          # (skb, dst, time)
        self._tx_space = tx_space
        self.tx_ring_busy_drops = 0
        self.joined: list[str] = []

    def ip_send(self, skb, dst):
        self.sent.append((skb, dst, self.sim.now))

    def tx_space(self):
        return self._tx_space

    def cpu_run(self, cost, fn):
        self.sim.call_after(cost, fn)

    def join_group(self, group):
        self.joined.append(group)

    def leave_group(self, group):
        self.joined.remove(group)

    # helpers -----------------------------------------------------------

    def sent_of_type(self, ptype):
        return [(skb, dst) for skb, dst, _ in self.sent
                if skb.ptype == ptype]

    def clear(self):
        self.sent.clear()


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fake_host(sim):
    return FakeHost(sim)


def make_sender(sim, host, cfg=None, sndbuf=64 * 1024):
    cfg = cfg or HRMCConfig()
    sock = Sock(sim, sndbuf=sndbuf)
    sock.num = 5000
    sock.daddr = "224.1.0.1"
    sock.dport = 6000
    sender = HRMCSender(host, sock, cfg, Counters())
    sender.start()
    return sender


def make_receiver(sim, host, cfg=None, rcvbuf=64 * 1024):
    cfg = cfg or HRMCConfig()
    sock = Sock(sim, rcvbuf=rcvbuf)
    sock.num = 6000
    sock.daddr = "224.1.0.1"
    sock.dport = 6000
    receiver = HRMCReceiver(host, sock, cfg, Counters())
    receiver.start()
    return receiver
