"""Unit tests for the metrics primitives."""

import pytest

from repro.obs.metrics import (Counter, Histogram, MetricsRegistry,
                               TimeSeries)


def test_counter_increments():
    c = Counter("x")
    assert c.value == 0
    c.inc()
    c.inc(5)
    assert c.value == 6


def test_histogram_bucketing():
    h = Histogram("lat", bounds=(10, 100, 1000))
    for v in (5, 10, 50, 500, 5000):
        h.observe(v)
    # bisect_left on inclusive upper edges: 5,10 -> <=10; 50 -> <=100;
    # 500 -> <=1000; 5000 -> overflow
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.min == 5 and h.max == 5000
    assert h.mean == pytest.approx(5565 / 5)


def test_histogram_quantile_upper_bound():
    h = Histogram("lat", bounds=(10, 100, 1000))
    for v in (1, 2, 3, 50, 5000):
        h.observe(v)
    assert h.quantile(0.5) == 10       # 3 of 5 in the first bucket
    assert h.quantile(0.8) == 100
    assert h.quantile(1.0) == 5000     # overflow reports the true max
    assert Histogram("e").quantile(0.5) == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(10, 10, 20))
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(20, 10))


def test_histogram_render_and_rows():
    h = Histogram("lat", bounds=(10, 100))
    h.observe(5)
    h.observe(500)
    rows = h.bucket_rows()
    assert rows == [("<= 10", 1), ("<= 100", 0), ("> 100", 1)]
    text = h.render()
    assert "lat: n=2" in text and "#" in text


def test_timeseries_basics():
    s = TimeSeries("q", unit="pkts")
    assert len(s) == 0 and s.last is None
    s.append(10, 1.5)
    s.append(20, 2.5)
    assert list(s.samples()) == [(10, 1.5), (20, 2.5)]
    assert s.last == 2.5


def test_registry_gauge_scrape_and_none_skip():
    reg = MetricsRegistry()
    state = {"v": None}
    reg.gauge("g", lambda: state["v"])
    reg.scrape(0)                 # gauge not ready: no sample
    assert len(reg.series["g"]) == 0
    state["v"] = 7
    reg.scrape(100)
    reg.scrape(200)
    assert list(reg.series["g"].samples()) == [(100, 7.0), (200, 7.0)]
    assert reg.scrapes == 3


def test_registry_rate_gauge():
    reg = MetricsRegistry()
    state = {"v": 0}
    reg.rate_gauge("r", lambda: state["v"])
    reg.scrape(0)                 # establishes the baseline, no sample
    assert len(reg.series["r"]) == 0
    state["v"] = 1000
    reg.scrape(500_000)           # +1000 over 0.5 s -> 2000/s
    assert list(reg.series["r"].samples()) == [(500_000, 2000.0)]


def test_registry_rate_gauge_scale():
    reg = MetricsRegistry()
    state = {"v": 0}
    # bytes -> percent of a 8000 bit/s line: scale = 8 * 100 / 8000
    reg.rate_gauge("util", lambda: state["v"], unit="%", scale=0.1)
    reg.scrape(0)
    state["v"] = 1000
    reg.scrape(1_000_000)
    assert reg.series["util"].last == pytest.approx(100.0)


def test_registry_idempotent_registration():
    reg = MetricsRegistry()
    assert reg.counter("c") is reg.counter("c")
    assert reg.histogram("h") is reg.histogram("h")
    assert reg.timeseries("s") is reg.timeseries("s")


def test_registry_snapshot_and_summary():
    reg = MetricsRegistry()
    reg.counter("events").inc(3)
    reg.gauge("depth", lambda: 4)
    reg.scrape(1000)
    snap = reg.snapshot()
    assert snap == {"depth": 4.0, "events": 3}
    rows = reg.summary_rows()
    assert rows == [["depth", 1, 4.0, 4.0, 4.0, 4.0]]
