"""Spans, profiler and exporter tests over one observed lossy run."""

import csv
import json

import pytest

from repro.harness.runner import run_transfer
from repro.net.topology import GroupSpec
from repro.obs import Observability, chrome_trace
from repro.workloads.scenarios import build_lan, build_wan

LOSSY = GroupSpec("L", delay_us=20_000, loss_rate=0.02)


@pytest.fixture(scope="module")
def observed_run():
    sc = build_wan([LOSSY] * 3, 10e6, seed=7)
    obs = Observability(profile=True)
    res = run_transfer(sc, nbytes=300_000, sndbuf=256 * 1024,
                       max_sim_s=300, obs=obs)
    return sc, obs, res


def test_run_completes_and_obs_attached(observed_run):
    sc, obs, res = observed_run
    assert res.ok
    assert res.obs is obs
    assert obs.finalized_at_us == res.obs.finalized_at_us is not None
    assert obs.registry.scrapes > 2


def test_series_populated(observed_run):
    _, obs, res = observed_run
    for name in ("engine.queue_depth", "sender.sndbuf_used_bytes",
                 "sender.window_bytes", "sender.rate_adv_bps",
                 "recv.rcvbuf_used_bytes", "recv.repair_cache_bytes"):
        assert len(obs.registry.series[name]) > 0, name
    # 2% loss guarantees NAK traffic, visible in the rate series
    naks = obs.registry.series["sender.naks_per_s"]
    assert max(naks.values) > 0
    assert res.sender_stats.naks_rcvd > 0


def test_lifecycle_histograms(observed_run):
    _, obs, _ = observed_run
    spans = obs.spans
    assert spans.one_way_us.count > 100
    # one-way latency at least the group's propagation delay
    assert spans.one_way_us.min >= LOSSY.delay_us
    assert spans.queueing_us.count > 0
    assert spans.queueing_us.min >= 0
    # lossy run: NAK -> repair latency must have been observed
    assert spans.recovery_us.count > 0
    assert spans.recovery_us.min > 0


def test_phase_spans(observed_run):
    sc, obs, _ = observed_run
    by_name = {}
    for s in obs.spans.spans:
        by_name.setdefault(s.name, []).append(s)
    assert len(by_name["join"]) == 3
    assert len(by_name["transfer"]) == 3
    for s in obs.spans.spans:
        assert s.end_us is not None and s.end_us >= s.start_us
    # recovery spans carry the repaired range offsets
    assert any(s.cat == "recovery" for s in obs.spans.spans)


def test_profiler_attribution(observed_run):
    _, obs, res = observed_run
    prof = obs.profiler
    assert prof.events == res.sim_events
    assert sum(s.events for s in prof.sites.values()) == prof.events
    assert sum(s.wall_ns for s in prof.sites.values()) == prof.wall_ns_total
    assert prof.events_per_sec() > 0
    top = prof.top(5)
    assert 0 < len(top) <= 5
    # ranked by wall time, shares parse as percentages
    walls = [row[3] for row in top]
    assert walls == sorted(walls, reverse=True)
    assert all(row[4].endswith("%") for row in top)
    with pytest.raises(ValueError):
        prof.top(key="bogus")


def test_jsonl_and_csv_exports(observed_run, tmp_path):
    _, obs, _ = observed_run
    paths = obs.write_artifacts(str(tmp_path), prefix="t")
    kinds = set()
    with open(paths["series_jsonl"]) as fh:
        for line in fh:
            rec = json.loads(line)
            kinds.add(rec["kind"])
            if rec["kind"] == "sample":
                assert rec["t_us"] >= 0 and "series" in rec
    assert "sample" in kinds
    with open(paths["series_csv"]) as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["series", "unit", "t_us", "value"]
    assert len(rows) > 10
    with open(paths["summary"]) as fh:
        text = fh.read()
    assert "metric series" in text and "packet-lifecycle" in text


def test_chrome_trace_structure(observed_run, tmp_path):
    sc, obs, _ = observed_run
    doc = chrome_trace(obs)
    events = doc["traceEvents"]
    phs = {e["ph"] for e in events}
    assert {"M", "X", "C"} <= phs
    # spans land on per-host threads named in metadata
    names = {e["args"]["name"] for e in events if e["ph"] == "M"
             and e["name"] == "thread_name"}
    assert sc.receivers[0].addr in names
    for e in events:
        if e["ph"] == "X":
            assert e["dur"] >= 1 and e["ts"] >= 0
    ts = [e["ts"] for e in events if "ts" in e]
    assert ts == sorted(ts)
    # and the file round-trips as JSON
    path = tmp_path / "trace.json"
    from repro.obs import write_chrome_trace
    n = write_chrome_trace(obs, str(path))
    assert n == len(events)
    assert json.loads(path.read_text())["displayTimeUnit"] == "ms"


def test_snapshot_merges_span_stats(observed_run):
    _, obs, _ = observed_run
    snap = obs.snapshot()
    assert snap["span.one_way_us.count"] == obs.spans.one_way_us.count
    assert "engine.queue_depth" in snap


def test_obs_attach_is_single_use(observed_run):
    sc, obs, _ = observed_run
    with pytest.raises(RuntimeError):
        obs.attach(sc, None)


def test_scrape_interval_validation():
    with pytest.raises(ValueError):
        Observability(scrape_interval_us=0)


def test_lan_run_has_link_utilization():
    sc = build_lan(2, 10e6, seed=3)
    obs = Observability()
    res = run_transfer(sc, nbytes=100_000, obs=obs)
    assert res.ok
    util = obs.registry.series["link.eth0.util_pct"]
    assert len(util) > 0
    assert 0 <= max(util.values) <= 100.5
