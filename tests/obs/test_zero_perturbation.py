"""Zero-perturbation regression: observing a run must not change it.

Two identical seeded lossy runs -- one bare, one with the full
observability stack (metrics scrape, span collector, profiler) -- must
produce byte-identical packet traces and final protocol counters.  The
engine event count may differ (the scrape loop schedules events), but
nothing the protocol does may.
"""

import pytest

from repro.harness.runner import run_transfer
from repro.net.topology import GroupSpec
from repro.obs import Observability
from repro.trace import PacketTracer
from repro.workloads.scenarios import build_chaos, build_lan, build_wan

LOSSY = GroupSpec("L", delay_us=20_000, loss_rate=0.02)


def _run(observe: bool, build, lineage: bool = False,
         health: bool = False):
    sc = build()
    tracer = PacketTracer()   # run_transfer attaches it to every host
    obs = Observability(profile=True, lineage=lineage,
                        health=health) if observe else None
    res = run_transfer(sc, nbytes=250_000, sndbuf=128 * 1024,
                       max_sim_s=300, obs=obs, tracer=tracer)
    return sc, tracer, res


def _assert_identical(bare, observed):
    sc_a, tr_a, res_a = bare
    sc_b, tr_b, res_b = observed
    # byte-identical packet history, event for event
    assert list(tr_a.events) == list(tr_b.events)
    # identical protocol counters on every endpoint
    assert res_a.sender_stats.as_dict() == res_b.sender_stats.as_dict()
    assert res_a.receiver_stats.as_dict() == res_b.receiver_stats.as_dict()
    assert res_a.ok == res_b.ok
    assert res_a.duration_us == res_b.duration_us
    assert res_a.drop_summary == res_b.drop_summary
    # the observed run does schedule extra (scrape) events
    assert res_b.sim_events >= res_a.sim_events


def test_zero_perturbation_lossy_wan():
    build = lambda: build_wan([LOSSY] * 3, 10e6, seed=21)
    _assert_identical(_run(False, build), _run(True, build))


def test_zero_perturbation_chaos():
    """Holds under fault injection too (crash-free plan so every
    endpoint survives to be compared)."""
    build = lambda: build_chaos(3, 10e6, seed=4, horizon_us=1_000_000,
                                allow_crash=False)
    bare = _run(False, build)
    observed = _run(True, build)
    _assert_identical(bare, observed)
    assert bare[2].fault_events == observed[2].fault_events


def test_zero_perturbation_with_lineage_lossy_wan():
    """Causal lineage tracing (PR 3) keeps the guarantee: a
    lineage-enabled run is byte-identical to a bare run."""
    build = lambda: build_wan([LOSSY] * 3, 10e6, seed=21)
    bare = _run(False, build)
    traced = _run(True, build, lineage=True)
    _assert_identical(bare, traced)
    # non-vacuous: the lineage DAG actually recorded the run
    obs = traced[2].obs
    assert len(obs.lineage.nodes) > 100
    assert obs.lineage.drops, "seed 21 is known lossy"


def test_zero_perturbation_with_lineage_chaos():
    build = lambda: build_chaos(3, 10e6, seed=4, horizon_us=1_000_000,
                                allow_crash=False)
    bare = _run(False, build)
    traced = _run(True, build, lineage=True)
    _assert_identical(bare, traced)
    assert bare[2].fault_events == traced[2].fault_events
    obs = traced[2].obs
    # fault actions became pinned lineage roots
    assert obs.lineage.find(kind="fault")


def test_zero_perturbation_with_health_lan():
    """The protocol-health observatory (PR 8) keeps the guarantee on
    the clean path: every hook is a None-guarded attribute read."""
    build = lambda: build_lan(3, 10e6, seed=7)
    bare = _run(False, build)
    healthy = _run(True, build, health=True)
    _assert_identical(bare, healthy)
    # non-vacuous even when lossless: feedback still reaches the sender
    payload = healthy[2].obs.health.payload()
    assert payload["implosion"]["feedback_at_sender"] > 0
    assert payload["suppression"]["naks_sent"] == 0


def test_zero_perturbation_with_health_lossy_wan():
    """...and on the recovery path, where every ledger hook fires."""
    build = lambda: build_wan([LOSSY] * 3, 10e6, seed=21)
    bare = _run(False, build)
    healthy = _run(True, build, health=True)
    _assert_identical(bare, healthy)
    payload = healthy[2].obs.health.payload()
    # seed 21 is known lossy: the ledger saw real recovery traffic
    assert payload["suppression"]["gaps_opened"] > 0
    assert payload["suppression"]["naks_sent"] > 0
    assert payload["implosion"]["loss_events"] > 0
    assert payload["lag"]["filled"] > 0
    # counters the bare run also keeps must agree exactly
    assert payload["implosion"]["naks_at_sender"] == \
        bare[2].sender_stats.naks_rcvd
    assert payload["suppression"]["naks_sent"] == \
        bare[2].receiver_stats.naks_sent


def test_zero_perturbation_with_health_chaos():
    build = lambda: build_chaos(3, 10e6, seed=4, horizon_us=1_000_000,
                                allow_crash=False)
    bare = _run(False, build)
    healthy = _run(True, build, health=True)
    _assert_identical(bare, healthy)
    assert bare[2].fault_events == healthy[2].fault_events
    assert healthy[2].obs.health.payload()["group_size"] == 3


def test_observed_run_yields_data():
    """The guarantee is not vacuous: the observed twin actually
    collected series, spans and a profile."""
    sc = build_wan([LOSSY] * 3, 10e6, seed=21)
    obs = Observability(profile=True)
    res = run_transfer(sc, nbytes=250_000, sndbuf=128 * 1024,
                       max_sim_s=300, obs=obs)
    assert res.ok
    assert obs.registry.scrapes > 2
    assert obs.spans.one_way_us.count > 0
    assert obs.profiler.events == res.sim_events
