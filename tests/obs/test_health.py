"""Protocol-health observatory: does the ledger measure what it claims?

The zero-perturbation battery proves health-on runs don't change the
protocol; this file proves the numbers mean something.  The core
evidence is a *mutation test*: disabling the NAK suppression timer
(``nak_suppress_rtts=0``) must visibly shift the ledger from
suppressed-by-timer to sent and inflate the feedback-implosion index
-- if it doesn't, the ledger isn't actually distinguishing suppressed
from sent feedback.  A second mutation (``local_recovery=True``)
exercises the peer-suppression and repair-cache columns.
"""

from dataclasses import replace

import pytest

from repro.core.config import HRMCConfig
from repro.harness.runner import run_transfer
from repro.net.topology import GroupSpec
from repro.obs import Observability
from repro.obs.health import HealthMonitor
from repro.workloads.scenarios import build_wan

LOSSY = GroupSpec("L", delay_us=20_000, loss_rate=0.02)


def _run_health(cfg=None):
    sc = build_wan([LOSSY] * 3, 10e6, seed=21)
    obs = Observability(profile=False, health=True)
    res = run_transfer(sc, nbytes=250_000, sndbuf=128 * 1024,
                       max_sim_s=300, obs=obs, cfg=cfg)
    assert res.ok
    return res, obs.health.payload()


@pytest.fixture(scope="module")
def baseline():
    return _run_health()


@pytest.fixture(scope="module")
def timer_disabled():
    return _run_health(replace(HRMCConfig(), nak_suppress_rtts=0.0))


@pytest.fixture(scope="module")
def local_recovery():
    return _run_health(replace(HRMCConfig(), local_recovery=True))


# -- the mutation test: timer off => ledger shifts, implosion rises ----

def test_baseline_ledger_sees_timer_suppression(baseline):
    supp = baseline[1]["suppression"]
    assert supp["naks_sent"] > 0
    assert supp["suppressed_timer"] > supp["naks_sent"], \
        "seed 21 holds most pending NAKs under the suppression timer"
    assert supp["effectiveness"] > 0.5


def test_disabling_timer_shifts_suppressed_to_sent(baseline,
                                                   timer_disabled):
    base, mut = baseline[1]["suppression"], timer_disabled[1]["suppression"]
    # every tick now sends everything pending: nothing timer-suppressed
    assert mut["suppressed_timer"] == 0
    assert mut["effectiveness"] == 0.0
    # ...and the feedback that suppression was absorbing hits the wire
    assert mut["naks_sent"] > base["naks_sent"] * 1.5


def test_disabling_timer_inflates_implosion_index(baseline,
                                                  timer_disabled):
    base, mut = baseline[1]["implosion"], timer_disabled[1]["implosion"]
    assert mut["naks_at_sender"] > base["naks_at_sender"] * 1.5
    assert mut["index"] > base["index"] * 1.5, \
        "without suppression the sender drowns in per-loss feedback"


def test_mutated_run_still_counted_consistently(timer_disabled):
    res, payload = timer_disabled
    assert payload["implosion"]["naks_at_sender"] == \
        res.sender_stats.naks_rcvd
    assert payload["suppression"]["naks_sent"] == \
        res.receiver_stats.naks_sent


# -- peer-vs-timer distinction: local recovery lights the peer columns -

def test_local_recovery_exercises_peer_suppression(local_recovery):
    _, payload = local_recovery
    supp, cache = payload["suppression"], payload["repair"]["cache"]
    assert supp["suppressed_peer"] > 0, \
        "a peer repair overlapping a pending NAK counts as peer-suppressed"
    assert cache["inserts"] > 0, "receivers cache data for local repair"
    assert cache["hits"] > 0, "some peer NAKs were served from the cache"
    assert cache["peer_suppressed"] > 0, \
        "hearing another receiver's repair suppresses own emission"
    # timer suppression still dominates; the two columns are distinct
    assert supp["suppressed_timer"] > supp["suppressed_peer"]


# -- payload shape and unit-level accounting ---------------------------

def test_payload_is_json_safe_and_complete(baseline):
    import json
    _, payload = baseline
    rehydrated = json.loads(json.dumps(payload))
    assert rehydrated == payload
    for section in ("suppression", "implosion", "repair", "lag",
                    "update"):
        assert section in payload
    assert payload["group_size"] == 3
    lag = payload["lag"]
    assert lag["filled"] > 0
    assert lag["worst_host"].startswith("10.")
    # percentiles are bucket upper bounds, so p90 may exceed the true
    # max; only the ordering within each family is guaranteed
    assert lag["p90_us"] >= lag["p50_us"] > 0
    assert lag["max_us"] > 0
    hosts = [row["host"] for row in lag["per_host"]]
    assert hosts == sorted(hosts)


def test_effectiveness_ratio_definition():
    assert HealthMonitor.suppression_effectiveness(0, 0, 0) == 0.0
    assert HealthMonitor.suppression_effectiveness(1, 0, 0) == 0.0
    assert HealthMonitor.suppression_effectiveness(0, 3, 1) == 1.0
    assert HealthMonitor.suppression_effectiveness(1, 2, 1) == 0.75


def test_standalone_monitor_needs_no_registry():
    mon = HealthMonitor()
    mon.c["nak_sent"].inc(3)
    mon.observe_lag("10.1.0.2", 4_000)
    mon.finalize(10_000)
    payload = mon.payload()
    assert payload["suppression"]["naks_sent"] == 3
    assert payload["lag"]["per_host"][0]["host"] == "10.1.0.2"
    assert mon.summary_tables()


def test_registry_backed_counters_ride_metric_exports(baseline):
    """With a registry, health counters appear as health.* metrics."""
    sc = build_wan([LOSSY] * 3, 10e6, seed=21)
    obs = Observability(profile=False, health=True)
    run_transfer(sc, nbytes=250_000, sndbuf=128 * 1024, max_sim_s=300,
                 obs=obs)
    names = set(obs.registry.counters)
    assert "health.nak_sent" in names
    assert obs.registry.counters["health.nak_sent"].value == \
        baseline[1]["suppression"]["naks_sent"]
