"""Causal-lineage tests: determinism, fault pinpointing, pruning.

The two load-bearing properties:

* **determinism** -- the same seed and fault plan must serialize to a
  byte-identical lineage file (the DAG is part of the run's identity,
  and ``hrmc diff`` relies on it),
* **pinpointing** -- for a known injected fault, ``why(seq)`` must walk
  back to the *exact* fault-plan action that caused the drop, not just
  "a loss happened".
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan, NicBurstDrop
from repro.harness.runner import run_transfer
from repro.net.topology import GroupSpec
from repro.obs import Observability
from repro.obs.causal import (CauseNode, LineageRecorder, load_lineage,
                              walk_chain)
from repro.workloads.scenarios import build_chaos, build_lan, build_wan

LOSSY = GroupSpec("L", delay_us=20_000, loss_rate=0.02)


def _observed(build, nbytes=200_000, **kwargs):
    sc = build()
    obs = Observability(profile=False, lineage=True)
    res = run_transfer(sc, nbytes=nbytes, sndbuf=128 * 1024,
                       max_sim_s=300, obs=obs, **kwargs)
    return obs, res


class _StubSim:
    """The minimum surface LineageRecorder needs off an engine."""
    now = 0
    lineage = None


# -- determinism --------------------------------------------------------

def test_lineage_serialization_is_deterministic(tmp_path):
    """Identical seed + plan => byte-identical saved lineage."""
    build = lambda: build_chaos(3, 10e6, seed=4, horizon_us=1_000_000,
                                allow_crash=False)
    paths = []
    for name in ("a", "b"):
        obs, res = _observed(build, nbytes=250_000)
        assert res.ok
        path = tmp_path / f"{name}.lineage.jsonl"
        obs.lineage.save(str(path))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()
    nodes, meta = load_lineage(str(paths[0]))
    assert len(nodes) == meta["nodes"] > 0


def test_lineage_roundtrip_preserves_chains(tmp_path):
    obs, _ = _observed(lambda: build_wan([LOSSY] * 3, 10e6, seed=21))
    lin = obs.lineage
    path = str(tmp_path / "run.lineage.jsonl")
    lin.save(path)
    loaded, _ = load_lineage(path)
    assert len(loaded) == len(lin.nodes)
    # chains walk identically on the live store and the loaded dict
    drop = lin.drops[0]
    live, live_trunc = lin.chain(drop)
    offline, off_trunc = walk_chain(loaded, loaded[drop.eid])
    assert [n.label() for n in live] == [n.label() for n in offline]
    assert live_trunc == off_trunc


def test_load_lineage_rejects_corrupt_file(tmp_path):
    path = tmp_path / "bad.lineage.jsonl"
    path.write_text("not json at all {{{\n")
    with pytest.raises(ValueError, match="corrupt lineage file"):
        load_lineage(str(path))


# -- mutation test: why(seq) pinpoints the injected fault ---------------

def test_why_pinpoints_injected_burst_drop():
    """On a loss-free LAN, inject exactly one NIC burst drop; every
    recorded DATA loss must be blamed on precisely that plan action."""
    plan = FaultPlan(seed=0, actions=(
        NicBurstDrop(at_us=60_000, target=0, duration_us=60_000),))
    build = lambda: build_lan(2, 10e6, seed=5)
    obs, res = _observed(build, fault_plan=plan)
    assert res.ok
    lin = obs.lineage
    drops = [d for d in lin.drops if d.blame]
    assert drops, "the burst window dropped no DATA -- widen it"
    diag = obs.diag()
    for drop in drops:
        report = diag.why(drop.seq)
        assert report.found
        root = report.root()
        assert root is not None
        assert root.kind == "fault"
        assert root.what == "nic_burst_drop"
        assert "plan[0]" in root.detail
        # the packet recovered, and the report shows the chain
        assert any(title.startswith("recovery")
                   for title, _ in report.chains), report.render()


def test_why_chain_reaches_loss_on_lossy_wan():
    """Acceptance: on a seeded lossy WAN the chain ends at the concrete
    drop event that triggered recovery."""
    obs, res = _observed(lambda: build_wan([LOSSY] * 3, 10e6, seed=21))
    assert res.ok
    lin = obs.lineage
    assert lin.drops, "seed 21 is known lossy"
    drop = lin.drops[0]
    report = obs.diag().why(drop.seq)
    assert report.found
    assert any(d is drop for d, _ in report.losses)
    rendered = report.render()
    assert f"drop:{drop.what}" in rendered
    # the loss chain walks back to the original transmission
    assert "tx:DATA" in rendered


def test_explain_worst_returns_rooted_reports():
    obs, _ = _observed(lambda: build_wan([LOSSY] * 3, 10e6, seed=21))
    worst = obs.diag().explain_worst(3)
    assert worst
    durations = [span.dur_us for span, _ in worst]
    assert durations == sorted(durations, reverse=True)
    for span, report in worst:
        assert report.found, span.name


# -- bounded memory -----------------------------------------------------

def test_ring_pruning_bounds_and_pins_faults():
    sim = _StubSim()
    lin = LineageRecorder(sim, max_nodes=1024, max_drops=10)
    fault_eid = lin.emit("fault", "lan", "link_flap", detail="plan[0]")
    parent = 0
    for i in range(5_000):
        sim.now = i
        parent = lin.emit("tx", "10.0.0.1", "DATA", seq=i, end=i + 1,
                          parent=parent, advance=False)
    assert len(lin.nodes) <= 1024
    assert lin.pruned > 0
    # the fault node survives every eviction wave
    assert lin.node(fault_eid) is not None
    # a chain that walks onto a pruned ancestor says so
    chain, truncated = lin.chain(lin.node(parent), max_depth=10_000)
    assert truncated
    # the drop index is independently bounded
    for i in range(50):
        class _Skb:
            ptype, seq, length, tries = 1, i, 1, 1
        lin.emit_drop("rx_loss", "10.0.0.2", _Skb())
    assert len(lin.drops) <= 10


def test_walk_chain_survives_cycles():
    a = CauseNode(1, 2, 0, 0, "tx", "h", "DATA", -1, -1, 0, "")
    b = CauseNode(2, 1, 0, 0, "rx", "h", "DATA", -1, -1, 0, "")
    nodes = {1: a, 2: b}
    chain, truncated = walk_chain(nodes, a)
    assert truncated
    assert len(chain) == 2


# -- observability wiring ----------------------------------------------

def test_diag_requires_lineage():
    obs = Observability(profile=False)
    with pytest.raises(RuntimeError):
        obs.diag()
