"""Run-divergence diffing, stall watchdog, HTML report and CLI glue."""

from __future__ import annotations

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.runner import run_transfer
from repro.net.topology import GroupSpec
from repro.obs import Observability, diff_runs, load_run
from repro.obs.diag import Watchdog
from repro.trace import PacketTracer
from repro.workloads.scenarios import build_wan

LOSSY = GroupSpec("L", delay_us=20_000, loss_rate=0.02)


def _write_run(tmp_path, name, seed, nbytes=150_000):
    sc = build_wan([LOSSY] * 3, 10e6, seed=seed)
    obs = Observability(profile=False, lineage=True)
    res = run_transfer(sc, nbytes=nbytes, sndbuf=128 * 1024,
                       max_sim_s=300, obs=obs, tracer=PacketTracer())
    assert res.ok
    outdir = tmp_path / name
    obs.write_artifacts(str(outdir), prefix="wan")
    return str(outdir)


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("runs")
    return {"a": _write_run(tmp, "a", seed=21),
            "a2": _write_run(tmp, "a2", seed=21),
            "b": _write_run(tmp, "b", seed=22)}


# -- diffing ------------------------------------------------------------

def test_same_seed_runs_do_not_diverge(runs):
    result = diff_runs(runs["a"], runs["a2"])
    assert not result.diverged
    assert result.common_prefix > 0
    assert result.max_time_drift_us == 0
    assert "no causal divergence" in result.render()


def test_different_seeds_diverge_with_lineage(runs):
    result = diff_runs(runs["a"], runs["b"])
    assert result.diverged
    assert result.divergence_index == result.common_prefix
    # the divergent events really differ structurally
    assert result.event_a is not None and result.event_b is not None
    # both sides carry a causal chain from their saved lineage
    assert result.lineage_a and result.lineage_b
    rendered = result.render()
    assert "first causal divergence" in rendered
    assert "  A: " in rendered and "  B: " in rendered


def test_tail_divergence_when_one_run_is_longer(runs):
    run_a = load_run(runs["a"])
    run_b = load_run(runs["a2"])
    run_b.trace = run_b.trace[:-5]
    result = diff_runs(run_a, run_b)
    assert result.diverged
    assert result.event_b is None
    assert "no more events" in result.render()


def test_load_run_rejects_unusable_input(tmp_path):
    with pytest.raises(ValueError, match="not found"):
        load_run(str(tmp_path / "nope"))
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ValueError, match="no \\*.trace.jsonl"):
        load_run(str(empty))
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "x.trace.jsonl").write_text("garbage{{{\n")
    with pytest.raises(ValueError, match="corrupt trace file"):
        load_run(str(bad))


# -- CLI exit-code contract --------------------------------------------

def test_cli_diff_exit_codes(runs, tmp_path, capsys):
    assert cli_main(["diff", runs["a"], runs["a2"]]) == 0
    assert cli_main(["diff", runs["a"], runs["b"]]) == 1
    assert cli_main(["diff", runs["a"], str(tmp_path / "gone")]) == 2
    err = capsys.readouterr().err
    assert "not found" in err
    assert "\n" in err and err.count("\n") == 1  # one-line error


def test_cli_report_offline_errors(tmp_path, capsys):
    # missing artifact directory: exit 2 + one-line stderr error
    assert cli_main(["report", "lan",
                     "--from", str(tmp_path / "missing")]) == 2
    assert "cannot read metrics summary" in capsys.readouterr().err
    # corrupt series file: exit 2 + one-line stderr error
    outdir = tmp_path / "corrupt"
    outdir.mkdir()
    (outdir / "lan.summary.txt").write_text("summary\n")
    (outdir / "lan.series.jsonl").write_text("garbage{{{\n")
    assert cli_main(["report", "lan", "--from", str(outdir),
                     "--html"]) == 2
    assert "corrupt series file" in capsys.readouterr().err


def test_cli_report_offline_renders(runs, capsys):
    assert cli_main(["report", "wan", "--from", runs["a"]]) == 0
    out = capsys.readouterr().out
    assert "metric series (simulated-time scrape)" in out


# -- HTML report --------------------------------------------------------

def test_html_report_is_self_contained(runs, tmp_path):
    sc = build_wan([LOSSY] * 3, 10e6, seed=21)
    obs = Observability(profile=False, lineage=True)
    res = run_transfer(sc, nbytes=150_000, sndbuf=128 * 1024,
                       max_sim_s=300, obs=obs, tracer=PacketTracer())
    assert res.ok
    paths = obs.write_artifacts(str(tmp_path), prefix="wan", html=True)
    text = open(paths["html"]).read()
    assert text.startswith("<!DOCTYPE html>")
    assert "<svg" in text                      # sparklines are inline
    assert 'class="chain"' in text             # causal chains embedded
    assert "recovery episodes" in text
    # self-contained: no external assets referenced anywhere
    assert "src=" not in text and "href=" not in text


# -- watchdog -----------------------------------------------------------

class _StubEntry:
    def __init__(self, time, cause=0):
        self.time = time
        self.cause = cause
        self.callback = lambda: None


class _StubSim:
    def __init__(self):
        self.now = 0
        self.lineage = None
        self._entries = [_StubEntry(10), _StubEntry(20)]

    def pending(self):
        return len(self._entries)

    def pending_entries(self, limit=32):
        return self._entries[:limit]


def test_watchdog_trips_once_per_stall_episode():
    sim = _StubSim()
    progress = [0]
    dog = Watchdog(sim, lambda: (progress[0],), stall_after_us=1_000)
    assert dog.check(0) is None          # baseline signature
    assert dog.check(500) is None        # frozen, but not long enough
    report = dog.check(1_500)            # frozen past the threshold
    assert report is not None
    assert report.stalled_for_us == 1_500
    assert report.pending_events == 2
    assert len(report.frontier) == 2
    assert dog.check(2_000) is None      # same episode: no re-trip
    progress[0] = 1                      # progress resumes...
    assert dog.check(3_000) is None
    assert dog.check(5_000) is not None  # ...and a new stall re-arms it
    assert len(dog.reports) == 2
