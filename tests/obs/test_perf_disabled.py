# simlint: module=tests.obs.test_perf_disabled
"""The performance observatory's disabled-path guarantees.

Two claims, both stronger than "probably fine":

1. **Zero perturbation when enabled** -- a run under the full
   observatory (event-class attribution, stack sampling, allocation
   tracking) is byte-identical to a bare run: same packet trace, same
   counters, same duration.  Measurement never feeds back.
2. **Zero cost when disabled** -- a bare run (no ``obs``, no
   ``tracer``) executes *no* code from the ``repro.obs`` / ``repro.trace``
   layers at all, proven with a tracemalloc diff: not a single byte is
   allocated from those files during the run.

The tracemalloc/gc calls below are test *measurement*, not simulation
state (the module annotation above keeps simlint's R1 rule honest if a
fixture sweep ever widens to the test tree).
"""

import tracemalloc

from repro.harness.runner import run_transfer
from repro.net.topology import GroupSpec
from repro.obs import Observability
from repro.obs.perf import PerfObservatory
from repro.trace import PacketTracer
from repro.workloads.scenarios import build_chaos, build_wan

LOSSY = GroupSpec("L", delay_us=20_000, loss_rate=0.02)


def _run(perf_on: bool, build):
    sc = build()
    tracer = PacketTracer()
    obs = None
    if perf_on:
        perf = PerfObservatory(sample_every=16, alloc=True)
        obs = Observability(perf=perf)
    res = run_transfer(sc, nbytes=250_000, sndbuf=128 * 1024,
                       max_sim_s=300, obs=obs, tracer=tracer)
    return sc, tracer, res


def _assert_identical(bare, observed):
    _, tr_a, res_a = bare
    _, tr_b, res_b = observed
    assert list(tr_a.events) == list(tr_b.events)
    assert res_a.sender_stats.as_dict() == res_b.sender_stats.as_dict()
    assert res_a.receiver_stats.as_dict() == res_b.receiver_stats.as_dict()
    assert res_a.ok == res_b.ok
    assert res_a.duration_us == res_b.duration_us
    assert res_a.drop_summary == res_b.drop_summary
    # the observed run schedules extra (scrape) events, never fewer
    assert res_b.sim_events >= res_a.sim_events


def test_perf_zero_perturbation_lossy_wan():
    build = lambda: build_wan([LOSSY] * 3, 10e6, seed=21)
    bare = _run(False, build)
    profiled = _run(True, build)
    _assert_identical(bare, profiled)
    # non-vacuous: the observatory really measured the run
    perf = profiled[2].obs.perf
    assert perf.profiler.events == profiled[2].sim_events
    assert perf.coverage() >= 0.95
    assert perf.sampler.samples > 0
    assert perf.alloc.phase_rows()


def test_perf_zero_perturbation_chaos():
    """Holds under fault injection too (crash-free plan so every
    endpoint survives to be compared)."""
    build = lambda: build_chaos(3, 10e6, seed=4, horizon_us=1_000_000,
                                allow_crash=False)
    bare = _run(False, build)
    profiled = _run(True, build)
    _assert_identical(bare, profiled)
    assert bare[2].fault_events == profiled[2].fault_events
    assert profiled[2].obs.perf.coverage() >= 0.95


def _obs_layer_bytes(before, after):
    """Bytes newly allocated from repro.obs / repro.trace source files
    between two tracemalloc snapshots."""
    layer = (tracemalloc.Filter(True, "*/repro/obs/*"),
             tracemalloc.Filter(True, "*/repro/trace/*"))
    diff = after.filter_traces(layer).compare_to(
        before.filter_traces(layer), "filename")
    return sum(stat.size_diff for stat in diff if stat.size_diff > 0)


def test_disabled_path_allocates_nothing_in_obs_layers():
    """A bare run never touches the observability/trace layers: the
    tracemalloc diff across the run shows zero bytes allocated from
    their files.  This is the ROADMAP "allocation-free when disabled"
    guarantee, stated as a hard invariant rather than a benchmark."""
    build = lambda: build_wan([LOSSY] * 2, 10e6, seed=21)

    def bare_run():
        sc = build()
        res = run_transfer(sc, nbytes=100_000, sndbuf=128 * 1024,
                           max_sim_s=300)
        assert res.ok
        return res

    bare_run()            # warm-up: imports, code objects, caches
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        bare_run()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert _obs_layer_bytes(before, after) == 0


def test_disabled_path_allocates_nothing_under_faults():
    """Same invariant with a fault plan active: the injector is part of
    the harness, not the obs layer, so a chaos run with observation off
    still allocates zero bytes from repro.obs / repro.trace.  (The
    invariant checker is off too -- it rides an internal tracer.)"""
    build = lambda: build_chaos(2, 10e6, seed=4, horizon_us=1_000_000,
                                allow_crash=False)

    def bare_run():
        sc = build()
        run_transfer(sc, nbytes=100_000, sndbuf=128 * 1024, max_sim_s=300)

    bare_run()
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        bare_run()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert _obs_layer_bytes(before, after) == 0
